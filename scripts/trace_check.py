#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file's structural invariants.

Usage:
    trace_check.py TRACE.json [TRACE2.json ...]

Checks, per file:
  - the file parses as JSON and carries a traceEvents array;
  - duration events balance: every 'E' closes the most recent open
    'B' on the same (pid, tid) stack, and nothing is left open;
  - timestamps never go backwards within one (pid, tid) track
    (Perfetto tolerates this but it always indicates a writer bug
    here, where each track is emitted in order);
  - flow events bind: every flow id opened with 's' is closed by
    exactly one 'f' at a timestamp >= the 's', and no 'f' appears
    without its 's'.

The span exporter (docs/TRACING.md) lays each sampled transaction on
its own synthetic tid, so these invariants hold for any valid export
regardless of sampling rate or thread count. Counter ('C') and
instant ('i') events only participate in the monotonicity check.

Exit codes: 0 ok, 1 invariant violated, 2 usage/parse error.
"""

import json
import sys


def fail(path, msg):
    print(f"trace_check: {path}: {msg}", file=sys.stderr)
    return 1


def check(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_check: {path}: cannot parse: {e}",
              file=sys.stderr)
        return 2

    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return fail(path, "no traceEvents array")

    open_stacks = {}   # (pid, tid) -> [name, ...] of open 'B' events
    last_ts = {}       # (pid, tid) -> last timestamp seen
    flows = {}         # flow id -> {'s': ts or None, 'f': ts or None}
    rc = 0

    for i, e in enumerate(events):
        if not isinstance(e, dict) or "ph" not in e:
            rc = fail(path, f"event {i} is not a trace event object")
            continue
        ph = e["ph"]
        ts = e.get("ts")
        track = (e.get("pid", 0), e.get("tid", 0))

        if not isinstance(ts, (int, float)):
            rc = fail(path, f"event {i} ({ph}) has no numeric ts")
            continue
        if ts < last_ts.get(track, float("-inf")):
            rc = fail(
                path,
                f"event {i} ({ph} '{e.get('name', '')}') goes "
                f"backwards on pid/tid {track}: ts {ts} after "
                f"{last_ts[track]}")
        last_ts[track] = ts

        if ph == "B":
            open_stacks.setdefault(track, []).append(
                e.get("name", ""))
        elif ph == "E":
            stack = open_stacks.get(track, [])
            if not stack:
                rc = fail(
                    path,
                    f"event {i} ('E' '{e.get('name', '')}') closes "
                    f"nothing on pid/tid {track}")
            else:
                stack.pop()
        elif ph in ("s", "f"):
            fid = e.get("id")
            if fid is None:
                rc = fail(path, f"event {i} ('{ph}') has no flow id")
                continue
            slot = flows.setdefault(fid, {"s": None, "f": None})
            if slot[ph] is not None:
                rc = fail(path,
                          f"flow id {fid} has a duplicate '{ph}'")
            slot[ph] = ts

    for track, stack in open_stacks.items():
        if stack:
            rc = fail(
                path,
                f"pid/tid {track} ends with {len(stack)} unclosed "
                f"'B' event(s): {stack[-1]!r} never closed")

    for fid, slot in flows.items():
        if slot["s"] is None:
            rc = fail(path, f"flow id {fid} has 'f' but no 's'")
        elif slot["f"] is None:
            rc = fail(path, f"flow id {fid} has 's' but no 'f'")
        elif slot["f"] < slot["s"]:
            rc = fail(
                path,
                f"flow id {fid} finishes at {slot['f']} before it "
                f"starts at {slot['s']}")

    if rc == 0:
        n_flows = len(flows)
        print(f"trace_check: {path}: ok "
              f"({len(events)} events, {n_flows} flows)")
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    worst = 0
    for path in argv[1:]:
        worst = max(worst, check(path))
    return worst


if __name__ == "__main__":
    sys.exit(main(sys.argv))

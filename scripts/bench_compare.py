#!/usr/bin/env python3
"""Compare two google-benchmark JSON files for performance regressions.

Usage:
    bench_compare.py BASELINE CANDIDATE [--max-regress 0.15]
                     [--warn-only] [--require-speedup NAME=FACTOR ...]
                     [--require-scaling NAME=FACTOR ...]

Compares items_per_second (falling back to 1/real_time when a
benchmark reports no item rate) for every benchmark present in both
files. A benchmark slower than baseline by more than --max-regress
fails the run (or warns with --warn-only, for noisy shared runners).
--require-speedup asserts a named benchmark got at least FACTOR times
faster than baseline — used to pin intentional optimizations so they
cannot silently rot back.

Thread-swept benchmark families (google-benchmark arg suffixes, e.g.
BM_ParallelEpoch/1 ... BM_ParallelEpoch/8) additionally get a scaling
report from the candidate file: speedup of each arg over the /1
variant and the parallel efficiency (speedup divided by threads).
--require-scaling NAME=FACTOR asserts the family's widest variant
runs at least FACTOR times faster than its /1 variant — the knob the
perf-parallel CI lane uses to keep the parallel engine's speedup
honest (warn-only on shared runners, like everything else here).

Benchmarks named mem.* are footprint gauges (bytes per simulated
node, reported through items_per_second; see perf_microbench.cpp):
for them LOWER is better, so the regression test inverts — a
candidate more than --max-regress ABOVE baseline fails. Everything
else about the comparison (strict/warn-only, NEW/MISSING handling)
is unchanged.

Benchmarks present in only one file are reported but never fail the
run: baselines are updated deliberately, not implicitly.

Exit codes: 0 ok, 1 regression (strict mode), 2 usage/parse error.
"""

import argparse
import json
import re
import sys


def die(msg):
    """One actionable line on stderr, exit 2 (usage/parse error) —
    never a traceback: CI logs should show what to fix, not where
    this script crashed."""
    print(f"bench_compare: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_rates(path):
    """Map benchmark name -> items/sec (or inverse time) from a
    google-benchmark JSON file. Aggregate rows (mean/median/stddev,
    emitted with --benchmark_repetitions) are skipped so a repeated
    run compares like a plain one."""
    regen = ("regenerate it with: perf_microbench "
             f"--benchmark_out={path} --benchmark_out_format=json")
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        die(f"{path} does not exist; {regen}")
    except OSError as e:
        die(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON (line {e.lineno}: {e.msg}); "
            f"{regen}")
    if not isinstance(doc, dict) or not isinstance(
            doc.get("benchmarks"), list):
        die(f"{path} is JSON but not google-benchmark output "
            f"(expected an object with a 'benchmarks' array); {regen}")
    rates = {}
    for b in doc["benchmarks"]:
        if not isinstance(b, dict) or b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if not isinstance(name, str):
            continue
        rate = b.get("items_per_second")
        if rate is None:
            t = b.get("real_time")
            rate = 1.0 / t if isinstance(t, (int, float)) and t else None
        if isinstance(rate, (int, float)) and rate:
            rates[name] = float(rate)
    if not rates:
        die(f"{path} contains no usable benchmark entries; {regen}")
    return rates


def lower_is_better(name):
    """mem.* rows are gauges (bytes/node) riding the items/sec
    channel: a bigger number is a fatter simulation, not a faster
    one."""
    return name.startswith("mem.")


def parse_speedup(spec):
    name, _, factor = spec.partition("=")
    if not name or not factor:
        die(f"bad requirement '{spec}', expected NAME=FACTOR")
    try:
        return name, float(factor)
    except ValueError:
        die(f"bad factor in requirement '{spec}', "
            "expected NAME=FACTOR with a numeric FACTOR")


def thread_families(rates):
    """Group thread-swept benchmarks into {family: {threads: rate}}.

    The thread count is the FIRST google-benchmark arg; any further
    args (e.g. the pinned tile shape of BM_ParallelEpochTile/T/R/C)
    are part of the family key, so 'BM_ParallelEpochTile/2/4/2' files
    under family 'BM_ParallelEpochTile/4/2' with threads=2. Every
    multi-variant family is returned, including ones missing the
    threads=1 anchor (a partial rerun, say): callers that need the
    anchor check for it and warn instead of this function silently
    dropping the family."""
    fams = {}
    for name, rate in rates.items():
        m = re.fullmatch(r"([^/]+)/(\d+)((?:/\d+)*)(?:/real_time)?",
                         name)
        if m:
            family = m.group(1) + m.group(3)
            fams.setdefault(family, {})[int(m.group(2))] = rate
    return {n: a for n, a in fams.items() if len(a) > 1}


def scaling_report(rates):
    fams = thread_families(rates)
    if not fams:
        return
    print("\nscaling (candidate, vs the 1-thread variant):")
    for name, by_arg in sorted(fams.items()):
        if 1 not in by_arg:
            print(f"  warning: thread family {name} has no /1 "
                  f"variant (have {sorted(by_arg)}); skipping its "
                  "scaling rows")
            continue
        for arg in sorted(by_arg):
            speedup = by_arg[arg] / by_arg[1]
            eff = speedup / arg
            print(f"  {name} @{arg}t: {speedup:5.2f}x "
                  f"(efficiency {eff:.0%})")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="allowed fractional slowdown (default 0.15)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 "
                         "(noisy shared runners)")
    ap.add_argument("--require-speedup", action="append", default=[],
                    metavar="NAME=FACTOR",
                    help="require NAME to be >= FACTOR x baseline")
    ap.add_argument("--require-scaling", action="append", default=[],
                    metavar="NAME=FACTOR",
                    help="require NAME's widest /THREADS variant to "
                         "be >= FACTOR x its /1 variant (candidate)")
    args = ap.parse_args()

    base = load_rates(args.baseline)
    cand = load_rates(args.candidate)
    required = dict(parse_speedup(s) for s in args.require_speedup)

    failures = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"  NEW      {name}: {cand[name]:,.0f}/s "
                  "(no baseline)")
            continue
        if name not in cand:
            print(f"  MISSING  {name}: in baseline only")
            continue
        ratio = cand[name] / base[name]
        status = "ok"
        if lower_is_better(name):
            # Gauge row: growth is the regression, shrinkage the win.
            if ratio > 1.0 + args.max_regress:
                status = "REGRESSED"
                failures.append(
                    f"{name}: {ratio:.2f}x of baseline, but lower is "
                    f"better ({base[name]:,.0f} -> {cand[name]:,.0f} "
                    "bytes/node)")
            elif ratio < 1.0 - args.max_regress:
                status = "improved"
        elif ratio < 1.0 - args.max_regress:
            status = "REGRESSED"
            failures.append(
                f"{name}: {ratio:.2f}x of baseline "
                f"({base[name]:,.0f}/s -> {cand[name]:,.0f}/s)")
        elif ratio > 1.0 + args.max_regress:
            status = "improved"
        print(f"  {status:9s}{name}: {ratio:5.2f}x "
              f"({base[name]:,.0f}/s -> {cand[name]:,.0f}/s)")

    for name, factor in sorted(required.items()):
        if name not in base or name not in cand:
            failures.append(
                f"{name}: required {factor}x speedup but benchmark "
                "missing from "
                + ("baseline" if name not in base else "candidate"))
            continue
        ratio = cand[name] / base[name]
        ok = ratio >= factor
        print(f"  {'ok' if ok else 'TOO SLOW':9s}{name}: "
              f"required >= {factor}x, got {ratio:.2f}x")
        if not ok:
            failures.append(
                f"{name}: required >= {factor}x baseline, "
                f"got {ratio:.2f}x")

    scaling_report(cand)
    fams = thread_families(cand)
    base_fams = thread_families(base)
    for spec in args.require_scaling:
        name, factor = parse_speedup(spec)
        if name not in fams or 1 not in fams[name]:
            failures.append(
                f"{name}: required {factor}x scaling but no "
                "/1-anchored thread family in candidate")
            continue
        if name not in base_fams or 1 not in base_fams[name]:
            # A family the baseline has never seen would otherwise
            # sail through on candidate-only numbers — refresh the
            # baseline so the scaling requirement has teeth.
            failures.append(
                f"{name}: required {factor}x scaling but the family "
                f"is missing from baseline {args.baseline} — "
                "regenerate it (perf_microbench "
                f"--benchmark_out={args.baseline} "
                "--benchmark_out_format=json, see docs/PARALLEL.md) "
                "and commit the result")
            continue
        by_arg = fams[name]
        widest = max(by_arg)
        ratio = by_arg[widest] / by_arg[1]
        ok = ratio >= factor
        print(f"  {'ok' if ok else 'TOO SLOW':9s}{name} @{widest}t: "
              f"required >= {factor}x of the 1-thread variant, "
              f"got {ratio:.2f}x")
        if not ok:
            failures.append(
                f"{name}: required >= {factor}x scaling at "
                f"/{widest}, got {ratio:.2f}x")

    if failures:
        print("\nbench_compare: "
              + ("warnings:" if args.warn_only else "FAILURES:"))
        for f in failures:
            print(f"  {f}")
        return 0 if args.warn_only else 1
    print("\nbench_compare: all benchmarks within "
          f"{args.max_regress:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

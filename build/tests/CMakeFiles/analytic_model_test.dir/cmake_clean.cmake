file(REMOVE_RECURSE
  "CMakeFiles/analytic_model_test.dir/analytic/loadtest_model_test.cc.o"
  "CMakeFiles/analytic_model_test.dir/analytic/loadtest_model_test.cc.o.d"
  "CMakeFiles/analytic_model_test.dir/analytic/shuffle_model_test.cc.o"
  "CMakeFiles/analytic_model_test.dir/analytic/shuffle_model_test.cc.o.d"
  "analytic_model_test"
  "analytic_model_test.pdb"
  "analytic_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

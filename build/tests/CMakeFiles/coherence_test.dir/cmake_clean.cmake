file(REMOVE_RECURSE
  "CMakeFiles/coherence_test.dir/coherence/protocol_test.cc.o"
  "CMakeFiles/coherence_test.dir/coherence/protocol_test.cc.o.d"
  "CMakeFiles/coherence_test.dir/coherence/race_test.cc.o"
  "CMakeFiles/coherence_test.dir/coherence/race_test.cc.o.d"
  "CMakeFiles/coherence_test.dir/coherence/stress_test.cc.o"
  "CMakeFiles/coherence_test.dir/coherence/stress_test.cc.o.d"
  "CMakeFiles/coherence_test.dir/coherence/tracer_test.cc.o"
  "CMakeFiles/coherence_test.dir/coherence/tracer_test.cc.o.d"
  "coherence_test"
  "coherence_test.pdb"
  "coherence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_model_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

# Empty dependencies file for gs_coherence.
# This may be replaced when dependencies are built.

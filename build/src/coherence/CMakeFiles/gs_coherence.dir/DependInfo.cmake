
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/checker.cc" "src/coherence/CMakeFiles/gs_coherence.dir/checker.cc.o" "gcc" "src/coherence/CMakeFiles/gs_coherence.dir/checker.cc.o.d"
  "/root/repo/src/coherence/node.cc" "src/coherence/CMakeFiles/gs_coherence.dir/node.cc.o" "gcc" "src/coherence/CMakeFiles/gs_coherence.dir/node.cc.o.d"
  "/root/repo/src/coherence/tracer.cc" "src/coherence/CMakeFiles/gs_coherence.dir/tracer.cc.o" "gcc" "src/coherence/CMakeFiles/gs_coherence.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gs_coherence.dir/checker.cc.o"
  "CMakeFiles/gs_coherence.dir/checker.cc.o.d"
  "CMakeFiles/gs_coherence.dir/node.cc.o"
  "CMakeFiles/gs_coherence.dir/node.cc.o.d"
  "CMakeFiles/gs_coherence.dir/tracer.cc.o"
  "CMakeFiles/gs_coherence.dir/tracer.cc.o.d"
  "libgs_coherence.a"
  "libgs_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

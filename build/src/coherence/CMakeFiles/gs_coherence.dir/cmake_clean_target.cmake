file(REMOVE_RECURSE
  "libgs_coherence.a"
)

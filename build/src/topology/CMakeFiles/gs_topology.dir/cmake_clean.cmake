file(REMOVE_RECURSE
  "CMakeFiles/gs_topology.dir/shuffle.cc.o"
  "CMakeFiles/gs_topology.dir/shuffle.cc.o.d"
  "CMakeFiles/gs_topology.dir/topology.cc.o"
  "CMakeFiles/gs_topology.dir/topology.cc.o.d"
  "CMakeFiles/gs_topology.dir/torus.cc.o"
  "CMakeFiles/gs_topology.dir/torus.cc.o.d"
  "CMakeFiles/gs_topology.dir/tree.cc.o"
  "CMakeFiles/gs_topology.dir/tree.cc.o.d"
  "libgs_topology.a"
  "libgs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

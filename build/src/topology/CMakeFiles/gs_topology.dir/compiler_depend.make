# Empty compiler generated dependencies file for gs_topology.
# This may be replaced when dependencies are built.

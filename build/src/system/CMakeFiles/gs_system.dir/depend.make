# Empty dependencies file for gs_system.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gs_system.dir/io.cc.o"
  "CMakeFiles/gs_system.dir/io.cc.o.d"
  "CMakeFiles/gs_system.dir/machine.cc.o"
  "CMakeFiles/gs_system.dir/machine.cc.o.d"
  "CMakeFiles/gs_system.dir/xmesh.cc.o"
  "CMakeFiles/gs_system.dir/xmesh.cc.o.d"
  "libgs_system.a"
  "libgs_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgs_system.a"
)

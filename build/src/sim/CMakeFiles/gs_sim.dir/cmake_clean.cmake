file(REMOVE_RECURSE
  "CMakeFiles/gs_sim.dir/args.cc.o"
  "CMakeFiles/gs_sim.dir/args.cc.o.d"
  "CMakeFiles/gs_sim.dir/logging.cc.o"
  "CMakeFiles/gs_sim.dir/logging.cc.o.d"
  "CMakeFiles/gs_sim.dir/table.cc.o"
  "CMakeFiles/gs_sim.dir/table.cc.o.d"
  "libgs_sim.a"
  "libgs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gs_sim.
# This may be replaced when dependencies are built.

# Empty dependencies file for gs_cpu.
# This may be replaced when dependencies are built.

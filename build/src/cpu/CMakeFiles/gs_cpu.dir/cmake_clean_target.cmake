file(REMOVE_RECURSE
  "libgs_cpu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gs_cpu.dir/analytic_core.cc.o"
  "CMakeFiles/gs_cpu.dir/analytic_core.cc.o.d"
  "CMakeFiles/gs_cpu.dir/core.cc.o"
  "CMakeFiles/gs_cpu.dir/core.cc.o.d"
  "CMakeFiles/gs_cpu.dir/trace.cc.o"
  "CMakeFiles/gs_cpu.dir/trace.cc.o.d"
  "libgs_cpu.a"
  "libgs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

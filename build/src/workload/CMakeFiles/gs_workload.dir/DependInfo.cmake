
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/commercial.cc" "src/workload/CMakeFiles/gs_workload.dir/commercial.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/commercial.cc.o.d"
  "/root/repo/src/workload/fluent.cc" "src/workload/CMakeFiles/gs_workload.dir/fluent.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/fluent.cc.o.d"
  "/root/repo/src/workload/gups.cc" "src/workload/CMakeFiles/gs_workload.dir/gups.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/gups.cc.o.d"
  "/root/repo/src/workload/hptc_apps.cc" "src/workload/CMakeFiles/gs_workload.dir/hptc_apps.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/hptc_apps.cc.o.d"
  "/root/repo/src/workload/load_test.cc" "src/workload/CMakeFiles/gs_workload.dir/load_test.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/load_test.cc.o.d"
  "/root/repo/src/workload/nas_ft.cc" "src/workload/CMakeFiles/gs_workload.dir/nas_ft.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/nas_ft.cc.o.d"
  "/root/repo/src/workload/nas_sp.cc" "src/workload/CMakeFiles/gs_workload.dir/nas_sp.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/nas_sp.cc.o.d"
  "/root/repo/src/workload/pointer_chase.cc" "src/workload/CMakeFiles/gs_workload.dir/pointer_chase.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/pointer_chase.cc.o.d"
  "/root/repo/src/workload/profile_traffic.cc" "src/workload/CMakeFiles/gs_workload.dir/profile_traffic.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/profile_traffic.cc.o.d"
  "/root/repo/src/workload/spec_profiles.cc" "src/workload/CMakeFiles/gs_workload.dir/spec_profiles.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/spec_profiles.cc.o.d"
  "/root/repo/src/workload/spec_rate.cc" "src/workload/CMakeFiles/gs_workload.dir/spec_rate.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/spec_rate.cc.o.d"
  "/root/repo/src/workload/stream.cc" "src/workload/CMakeFiles/gs_workload.dir/stream.cc.o" "gcc" "src/workload/CMakeFiles/gs_workload.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/gs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/gs_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

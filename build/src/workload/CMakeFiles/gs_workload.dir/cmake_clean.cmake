file(REMOVE_RECURSE
  "CMakeFiles/gs_workload.dir/commercial.cc.o"
  "CMakeFiles/gs_workload.dir/commercial.cc.o.d"
  "CMakeFiles/gs_workload.dir/fluent.cc.o"
  "CMakeFiles/gs_workload.dir/fluent.cc.o.d"
  "CMakeFiles/gs_workload.dir/gups.cc.o"
  "CMakeFiles/gs_workload.dir/gups.cc.o.d"
  "CMakeFiles/gs_workload.dir/hptc_apps.cc.o"
  "CMakeFiles/gs_workload.dir/hptc_apps.cc.o.d"
  "CMakeFiles/gs_workload.dir/load_test.cc.o"
  "CMakeFiles/gs_workload.dir/load_test.cc.o.d"
  "CMakeFiles/gs_workload.dir/nas_ft.cc.o"
  "CMakeFiles/gs_workload.dir/nas_ft.cc.o.d"
  "CMakeFiles/gs_workload.dir/nas_sp.cc.o"
  "CMakeFiles/gs_workload.dir/nas_sp.cc.o.d"
  "CMakeFiles/gs_workload.dir/pointer_chase.cc.o"
  "CMakeFiles/gs_workload.dir/pointer_chase.cc.o.d"
  "CMakeFiles/gs_workload.dir/profile_traffic.cc.o"
  "CMakeFiles/gs_workload.dir/profile_traffic.cc.o.d"
  "CMakeFiles/gs_workload.dir/spec_profiles.cc.o"
  "CMakeFiles/gs_workload.dir/spec_profiles.cc.o.d"
  "CMakeFiles/gs_workload.dir/spec_rate.cc.o"
  "CMakeFiles/gs_workload.dir/spec_rate.cc.o.d"
  "CMakeFiles/gs_workload.dir/stream.cc.o"
  "CMakeFiles/gs_workload.dir/stream.cc.o.d"
  "libgs_workload.a"
  "libgs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgs_workload.a"
)

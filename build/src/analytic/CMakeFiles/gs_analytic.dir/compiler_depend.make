# Empty compiler generated dependencies file for gs_analytic.
# This may be replaced when dependencies are built.

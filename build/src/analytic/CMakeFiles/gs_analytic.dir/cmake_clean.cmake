file(REMOVE_RECURSE
  "CMakeFiles/gs_analytic.dir/latency_model.cc.o"
  "CMakeFiles/gs_analytic.dir/latency_model.cc.o.d"
  "CMakeFiles/gs_analytic.dir/loadtest_model.cc.o"
  "CMakeFiles/gs_analytic.dir/loadtest_model.cc.o.d"
  "CMakeFiles/gs_analytic.dir/shuffle_model.cc.o"
  "CMakeFiles/gs_analytic.dir/shuffle_model.cc.o.d"
  "libgs_analytic.a"
  "libgs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgs_analytic.a"
)

# Empty compiler generated dependencies file for gs_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgs_mem.a"
)

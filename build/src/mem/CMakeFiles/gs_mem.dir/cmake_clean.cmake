file(REMOVE_RECURSE
  "CMakeFiles/gs_mem.dir/cache.cc.o"
  "CMakeFiles/gs_mem.dir/cache.cc.o.d"
  "CMakeFiles/gs_mem.dir/zbox.cc.o"
  "CMakeFiles/gs_mem.dir/zbox.cc.o.d"
  "libgs_mem.a"
  "libgs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

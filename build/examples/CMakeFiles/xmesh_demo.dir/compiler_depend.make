# Empty compiler generated dependencies file for xmesh_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/xmesh_demo.dir/xmesh_demo.cpp.o"
  "CMakeFiles/xmesh_demo.dir/xmesh_demo.cpp.o.d"
  "xmesh_demo"
  "xmesh_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmesh_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

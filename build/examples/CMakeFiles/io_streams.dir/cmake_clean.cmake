file(REMOVE_RECURSE
  "CMakeFiles/io_streams.dir/io_streams.cpp.o"
  "CMakeFiles/io_streams.dir/io_streams.cpp.o.d"
  "io_streams"
  "io_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

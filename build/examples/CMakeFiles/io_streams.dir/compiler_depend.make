# Empty compiler generated dependencies file for io_streams.
# This may be replaced when dependencies are built.

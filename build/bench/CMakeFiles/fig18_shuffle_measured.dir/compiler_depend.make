# Empty compiler generated dependencies file for fig18_shuffle_measured.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig18_shuffle_measured.dir/fig18_shuffle_measured.cpp.o"
  "CMakeFiles/fig18_shuffle_measured.dir/fig18_shuffle_measured.cpp.o.d"
  "fig18_shuffle_measured"
  "fig18_shuffle_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_shuffle_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig13_latency_map.dir/fig13_latency_map.cpp.o"
  "CMakeFiles/fig13_latency_map.dir/fig13_latency_map.cpp.o.d"
  "fig13_latency_map"
  "fig13_latency_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_latency_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

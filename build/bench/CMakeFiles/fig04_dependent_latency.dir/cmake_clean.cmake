file(REMOVE_RECURSE
  "CMakeFiles/fig04_dependent_latency.dir/fig04_dependent_latency.cpp.o"
  "CMakeFiles/fig04_dependent_latency.dir/fig04_dependent_latency.cpp.o.d"
  "fig04_dependent_latency"
  "fig04_dependent_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dependent_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig04_dependent_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_npb_ft.dir/ext_npb_ft.cpp.o"
  "CMakeFiles/ext_npb_ft.dir/ext_npb_ft.cpp.o.d"
  "ext_npb_ft"
  "ext_npb_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_npb_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_npb_ft.
# This may be replaced when dependencies are built.

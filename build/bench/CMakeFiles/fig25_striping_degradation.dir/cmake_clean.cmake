file(REMOVE_RECURSE
  "CMakeFiles/fig25_striping_degradation.dir/fig25_striping_degradation.cpp.o"
  "CMakeFiles/fig25_striping_degradation.dir/fig25_striping_degradation.cpp.o.d"
  "fig25_striping_degradation"
  "fig25_striping_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_striping_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig25_striping_degradation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig19_fluent.dir/fig19_fluent.cpp.o"
  "CMakeFiles/fig19_fluent.dir/fig19_fluent.cpp.o.d"
  "fig19_fluent"
  "fig19_fluent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_fluent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig19_fluent.
# This may be replaced when dependencies are built.

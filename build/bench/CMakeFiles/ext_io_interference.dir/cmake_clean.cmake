file(REMOVE_RECURSE
  "CMakeFiles/ext_io_interference.dir/ext_io_interference.cpp.o"
  "CMakeFiles/ext_io_interference.dir/ext_io_interference.cpp.o.d"
  "ext_io_interference"
  "ext_io_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_io_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

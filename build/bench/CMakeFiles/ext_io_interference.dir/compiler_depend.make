# Empty compiler generated dependencies file for ext_io_interference.
# This may be replaced when dependencies are built.

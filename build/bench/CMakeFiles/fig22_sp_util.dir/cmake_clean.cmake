file(REMOVE_RECURSE
  "CMakeFiles/fig22_sp_util.dir/fig22_sp_util.cpp.o"
  "CMakeFiles/fig22_sp_util.dir/fig22_sp_util.cpp.o.d"
  "fig22_sp_util"
  "fig22_sp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_sp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig22_sp_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig01_specfp_rate.dir/fig01_specfp_rate.cpp.o"
  "CMakeFiles/fig01_specfp_rate.dir/fig01_specfp_rate.cpp.o.d"
  "fig01_specfp_rate"
  "fig01_specfp_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_specfp_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_mcutil_int.
# This may be replaced when dependencies are built.

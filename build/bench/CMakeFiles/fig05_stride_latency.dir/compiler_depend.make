# Empty compiler generated dependencies file for fig05_stride_latency.
# This may be replaced when dependencies are built.

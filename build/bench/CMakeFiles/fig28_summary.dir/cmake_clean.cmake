file(REMOVE_RECURSE
  "CMakeFiles/fig28_summary.dir/fig28_summary.cpp.o"
  "CMakeFiles/fig28_summary.dir/fig28_summary.cpp.o.d"
  "fig28_summary"
  "fig28_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig28_summary.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig12_latency_16p.
# This may be replaced when dependencies are built.

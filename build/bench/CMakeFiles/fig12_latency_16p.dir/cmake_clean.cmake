file(REMOVE_RECURSE
  "CMakeFiles/fig12_latency_16p.dir/fig12_latency_16p.cpp.o"
  "CMakeFiles/fig12_latency_16p.dir/fig12_latency_16p.cpp.o.d"
  "fig12_latency_16p"
  "fig12_latency_16p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_latency_16p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

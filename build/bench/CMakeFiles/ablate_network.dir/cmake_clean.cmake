file(REMOVE_RECURSE
  "CMakeFiles/ablate_network.dir/ablate_network.cpp.o"
  "CMakeFiles/ablate_network.dir/ablate_network.cpp.o.d"
  "ablate_network"
  "ablate_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

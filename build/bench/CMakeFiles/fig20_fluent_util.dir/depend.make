# Empty dependencies file for fig20_fluent_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig20_fluent_util.dir/fig20_fluent_util.cpp.o"
  "CMakeFiles/fig20_fluent_util.dir/fig20_fluent_util.cpp.o.d"
  "fig20_fluent_util"
  "fig20_fluent_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_fluent_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

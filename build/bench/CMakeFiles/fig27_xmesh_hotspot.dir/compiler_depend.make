# Empty compiler generated dependencies file for fig27_xmesh_hotspot.
# This may be replaced when dependencies are built.

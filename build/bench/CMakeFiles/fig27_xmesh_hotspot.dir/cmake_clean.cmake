file(REMOVE_RECURSE
  "CMakeFiles/fig27_xmesh_hotspot.dir/fig27_xmesh_hotspot.cpp.o"
  "CMakeFiles/fig27_xmesh_hotspot.dir/fig27_xmesh_hotspot.cpp.o.d"
  "fig27_xmesh_hotspot"
  "fig27_xmesh_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_xmesh_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_latency_scaling.
# This may be replaced when dependencies are built.

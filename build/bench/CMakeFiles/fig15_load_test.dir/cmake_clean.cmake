file(REMOVE_RECURSE
  "CMakeFiles/fig15_load_test.dir/fig15_load_test.cpp.o"
  "CMakeFiles/fig15_load_test.dir/fig15_load_test.cpp.o.d"
  "fig15_load_test"
  "fig15_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig15_load_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_mcutil_fp.dir/fig10_mcutil_fp.cpp.o"
  "CMakeFiles/fig10_mcutil_fp.dir/fig10_mcutil_fp.cpp.o.d"
  "fig10_mcutil_fp"
  "fig10_mcutil_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mcutil_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_mcutil_fp.cpp" "bench/CMakeFiles/fig10_mcutil_fp.dir/fig10_mcutil_fp.cpp.o" "gcc" "bench/CMakeFiles/fig10_mcutil_fp.dir/fig10_mcutil_fp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/gs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/gs_system.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/gs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/gs_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/gs_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fig10_mcutil_fp.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig21_nas_sp.
# This may be replaced when dependencies are built.

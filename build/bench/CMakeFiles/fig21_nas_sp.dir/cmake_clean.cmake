file(REMOVE_RECURSE
  "CMakeFiles/fig21_nas_sp.dir/fig21_nas_sp.cpp.o"
  "CMakeFiles/fig21_nas_sp.dir/fig21_nas_sp.cpp.o.d"
  "fig21_nas_sp"
  "fig21_nas_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_nas_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

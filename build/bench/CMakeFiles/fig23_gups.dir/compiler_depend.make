# Empty compiler generated dependencies file for fig23_gups.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig23_gups.dir/fig23_gups.cpp.o"
  "CMakeFiles/fig23_gups.dir/fig23_gups.cpp.o.d"
  "fig23_gups"
  "fig23_gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

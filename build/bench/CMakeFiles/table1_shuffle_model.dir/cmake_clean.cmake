file(REMOVE_RECURSE
  "CMakeFiles/table1_shuffle_model.dir/table1_shuffle_model.cpp.o"
  "CMakeFiles/table1_shuffle_model.dir/table1_shuffle_model.cpp.o.d"
  "table1_shuffle_model"
  "table1_shuffle_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_shuffle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

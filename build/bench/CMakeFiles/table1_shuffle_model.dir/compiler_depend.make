# Empty compiler generated dependencies file for table1_shuffle_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_ipc_int.dir/fig09_ipc_int.cpp.o"
  "CMakeFiles/fig09_ipc_int.dir/fig09_ipc_int.cpp.o.d"
  "fig09_ipc_int"
  "fig09_ipc_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ipc_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

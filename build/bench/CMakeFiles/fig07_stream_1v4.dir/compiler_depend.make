# Empty compiler generated dependencies file for fig07_stream_1v4.
# This may be replaced when dependencies are built.

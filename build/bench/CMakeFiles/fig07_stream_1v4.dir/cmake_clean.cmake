file(REMOVE_RECURSE
  "CMakeFiles/fig07_stream_1v4.dir/fig07_stream_1v4.cpp.o"
  "CMakeFiles/fig07_stream_1v4.dir/fig07_stream_1v4.cpp.o.d"
  "fig07_stream_1v4"
  "fig07_stream_1v4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stream_1v4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

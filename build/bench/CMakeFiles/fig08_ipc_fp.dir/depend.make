# Empty dependencies file for fig08_ipc_fp.
# This may be replaced when dependencies are built.

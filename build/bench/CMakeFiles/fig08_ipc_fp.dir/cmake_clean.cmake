file(REMOVE_RECURSE
  "CMakeFiles/fig08_ipc_fp.dir/fig08_ipc_fp.cpp.o"
  "CMakeFiles/fig08_ipc_fp.dir/fig08_ipc_fp.cpp.o.d"
  "fig08_ipc_fp"
  "fig08_ipc_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ipc_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig24_gups_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig24_gups_util.dir/fig24_gups_util.cpp.o"
  "CMakeFiles/fig24_gups_util.dir/fig24_gups_util.cpp.o.d"
  "fig24_gups_util"
  "fig24_gups_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_gups_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig26_hotspot_striping.
# This may be replaced when dependencies are built.

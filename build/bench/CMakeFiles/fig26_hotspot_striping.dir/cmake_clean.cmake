file(REMOVE_RECURSE
  "CMakeFiles/fig26_hotspot_striping.dir/fig26_hotspot_striping.cpp.o"
  "CMakeFiles/fig26_hotspot_striping.dir/fig26_hotspot_striping.cpp.o.d"
  "fig26_hotspot_striping"
  "fig26_hotspot_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_hotspot_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig06_stream_scaling.
# This may be replaced when dependencies are built.

/**
 * @file
 * Figure 22: NAS SP memory-controller and IP-link utilization over
 * time on the GS1280 (paper: MC ~26%, IP links low).
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/xmesh.hh"
#include "workload/nas_sp.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, {{"cpus", "CPU count (default 8)"}});
    int cpus = static_cast<int>(args.getInt("cpus", 8));

    printBanner(std::cout,
                "Figure 22: SP memory and IP-link utilization over "
                "time (" + std::to_string(cpus) + "P GS1280)");

    auto m = sys::Machine::buildGS1280(cpus);
    sys::Xmesh mon(*m, 60 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<wl::NasSP>> ranks;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        ranks.push_back(std::make_unique<wl::NasSP>(c, cpus));
        sources.push_back(ranks.back().get());
    }
    bool ok = m->run(sources, 30000 * tickMs);
    mon.stop();

    Table t({"timestamp us", "memory controllers (avg %)",
             "IP-links (avg %)"});
    double peakMem = 0;
    for (const auto &s : mon.samples()) {
        peakMem = std::max(peakMem, s.avgMemUtil);
        t.addRow({Table::num(ticksToNs(s.when) / 1000.0, 0),
                  Table::num(s.avgMemUtil * 100, 1),
                  Table::num(s.avgLinkUtil * 100, 1)});
    }
    t.print(std::cout);
    if (!ok)
        std::cout << "[run hit the time limit]\n";
    std::cout << "\npeak memory utilization: "
              << Table::num(peakMem * 100, 1)
              << "%   (paper: ~26% plateau, IP links low)\n";
    return 0;
}

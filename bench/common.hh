/**
 * @file
 * Shared helpers for the bench harnesses. Every bench binary
 * regenerates one table or figure of the paper; these helpers keep
 * the measurements and the output format uniform.
 */

#ifndef GS_BENCH_COMMON_HH
#define GS_BENCH_COMMON_HH

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/args.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"
#include "sim/telemetry.hh"
#include "system/machine.hh"
#include "workload/pointer_chase.hh"
#include "workload/stream.hh"

namespace gs::bench
{

/**
 * @name Declarative sweeps
 *
 * A figure bench declares its sweep points up front, then submits
 * them to a SweepRunner; points execute across hardware threads
 * (`--jobs N`, default hardware concurrency, `--jobs 1` = the old
 * serial path) and rows come back in declared order. Each point
 * builds its own Machine from the point's counted seed, so output is
 * bit-identical at every jobs value.
 */
/// @{

/** Register the sweep options every figure bench shares. */
inline std::map<std::string, std::string>
withSweepArgs(std::map<std::string, std::string> known = {})
{
    known.emplace("jobs", "worker threads (default: all hardware "
                          "threads; 1 = serial)");
    known.emplace("seed", "master seed for per-point RNG streams "
                          "(default 1)");
    known.emplace("threads", "worker threads per simulated machine "
                             "(default 1 = serial engine; results "
                             "are bit-identical at any value for a "
                             "fixed tile shape, see "
                             "docs/PARALLEL.md)");
    known.emplace("tile-shape",
                  "pin the parallel engine's tile decomposition to "
                  "RxC, or RxCxS on 3-D machines (e.g. 2x4 or "
                  "2x2x2; default: chosen from --threads). Runs "
                  "compared across thread counts must pin the same "
                  "shape");
    return known;
}

/** The --threads value a bench passes into Gs1280Options::threads. */
inline int
machineThreads(const Args &args)
{
    return static_cast<int>(args.getInt("threads", 1));
}

/** Register the --router backend option (compose like the others). */
inline std::map<std::string, std::string>
withRouterArg(std::map<std::string, std::string> known = {})
{
    known.emplace("router",
                  "router backend: buffered (EV7 adaptive-VC, the "
                  "default) or bufferless (deflection ablation, "
                  "docs/ROUTER.md)");
    return known;
}

/** Parse --router=buffered|bufferless; die on anything else. */
inline net::RouterKind
routerKindArg(const Args &args)
{
    const std::string v = args.getString("router", "buffered");
    if (v == "buffered")
        return net::RouterKind::Buffered;
    if (v == "bufferless")
        return net::RouterKind::Bufferless;
    gs_fatal("--router=", v, ": expected buffered or bufferless");
}

/** Apply --router to @p opt before buildGS1280. */
inline void
applyRouterKind(const Args &args, sys::Gs1280Options &opt)
{
    opt.routerKind = routerKindArg(args);
}

/** Apply --tile-shape=RxC or RxCxS (if given); die on malformed. */
inline void
applyTileShape(const Args &args, sys::Gs1280Options &opt)
{
    const std::string shape = args.getString("tile-shape", "");
    if (shape.empty())
        return;
    std::size_t x = shape.find('x');
    int r = 0, c = 0, s = 0;
    if (x != std::string::npos && x > 0 && x + 1 < shape.size()) {
        std::size_t x2 = shape.find('x', x + 1);
        try {
            r = std::stoi(shape.substr(0, x));
            if (x2 == std::string::npos) {
                c = std::stoi(shape.substr(x + 1));
                s = 1;
            } else {
                c = std::stoi(shape.substr(x + 1, x2 - x - 1));
                s = std::stoi(shape.substr(x2 + 1));
            }
        } catch (...) {
            r = c = s = 0;
        }
    }
    if (r < 1 || c < 1 || s < 1) {
        gs_fatal("--tile-shape=", shape,
                 ": expected RxC or RxCxS with positive integers "
                 "(e.g. 2x4 or 2x4x2)");
    }
    opt.tileRows = r;
    opt.tileCols = c;
    opt.tileSlabs = s;
}

/** Build the runner a bench's --jobs/--seed options ask for. */
inline SweepRunner
makeRunner(const Args &args)
{
    return SweepRunner(
        static_cast<int>(args.getInt("jobs", 0)),
        static_cast<std::uint64_t>(args.getInt("seed", 1)));
}

/** A table row produced by one sweep point. */
using Row = std::vector<std::string>;

/**
 * Run one declared point per table row: @p fn maps (point,
 * SweepPoint) to that row's cells; rows land in declared order.
 */
template <typename P, typename Fn>
Table
sweepTable(SweepRunner &runner, std::vector<std::string> header,
           const std::vector<P> &points, Fn &&fn)
{
    Table t(std::move(header));
    for (auto &row : runner.map(points, std::forward<Fn>(fn)))
        t.addRow(std::move(row));
    return t;
}

/// @}

/**
 * @name Machine telemetry plumbing
 *
 * Benches that expose the telemetry layer share four options:
 * `--stats-out=FILE` writes a full registry snapshot after the run
 * (JSON, or scalar CSV when FILE ends in .csv), `--trace=FILE`
 * writes a Chrome trace_event file Perfetto can open,
 * `--sample-interval=NS` sets the time-series cadence in simulated
 * nanoseconds, and `--verbose` prints simulator self-metrics to
 * stderr. A TelemetrySession wires all of it to one Machine; with no
 * option given it attaches nothing and the run is unobserved.
 */
/// @{

/** Register the telemetry options (compose with withSweepArgs). */
inline std::map<std::string, std::string>
withTelemetryArgs(std::map<std::string, std::string> known = {})
{
    known.emplace("stats-out", "write a telemetry snapshot to FILE "
                               "(JSON; scalar CSV when FILE ends in "
                               ".csv)");
    known.emplace("trace", "write a Chrome trace_event file to FILE "
                           "(open in Perfetto / chrome://tracing)");
    known.emplace("sample-interval", "time-series sampling cadence in "
                                     "simulated ns (default 1000)");
    known.emplace("verbose", "print simulator self-metrics (events "
                             "fired, events/s, peak queue) to stderr");
    known.emplace("trace-sample",
                  "latency x-ray: sample this fraction of coherence "
                  "misses for per-stage span tracing (0..1, default 0 "
                  "= off; deterministic for a fixed --seed at any "
                  "--threads, see docs/TRACING.md)");
    known.emplace("span-trace",
                  "write the sampled spans as a Chrome trace_event "
                  "file to FILE (works with --threads > 1 and with "
                  "checkpointing, unlike --trace)");
    return known;
}

/**
 * Apply --trace-sample to @p opt before buildGS1280. Spans are wired
 * at machine construction (the collector is a checkpoint client, so
 * it must exist before any snapshot is cut), which is why this is a
 * builder-option helper rather than a TelemetrySession duty.
 */
inline void
applySpanSampling(const Args &args, sys::Gs1280Options &opt)
{
    const double rate = args.getDouble("trace-sample", 0.0);
    if (rate < 0.0 || rate > 1.0)
        gs_fatal("--trace-sample=", rate, ": expected a fraction in "
                 "[0, 1]");
    if (rate == 0.0 && !args.getString("span-trace", "").empty()) {
        gs_fatal("--span-trace needs --trace-sample > 0: no spans "
                 "are collected at the default rate of 0");
    }
    opt.spanSampleRate = rate;
}

/**
 * Binds the shared telemetry options to one Machine: attaches the
 * trace writer, samples every external-link and memory-controller
 * utilization, and writes the requested files in finish().
 *
 * @p force_sample starts the sampler even with no output file, for
 * benches that read the time-series directly (ext_link_heatmap).
 */
class TelemetrySession
{
  public:
    TelemetrySession(const Args &args, sys::Machine &m,
                     bool force_sample = false)
        : machine(m),
          statsPath(args.getString("stats-out", "")),
          tracePath(args.getString("trace", "")),
          spanTracePath(args.getString("span-trace", "")),
          verbose(args.getBool("verbose", false)),
          wallStart(std::chrono::steady_clock::now())
    {
        // A bad output path is a user error; fail before the run,
        // not after the simulation time is already spent.
        checkWritable(statsPath);
        checkWritable(tracePath);
        checkWritable(spanTracePath);
        if (!spanTracePath.empty() && !machine.spans()) {
            gs_fatal("--span-trace needs span sampling enabled: pass "
                     "--trace-sample and apply it with "
                     "applySpanSampling() before buildGS1280");
        }
        if (machine.isParallel() && !tracePath.empty()) {
            gs_fatal("--trace requires --threads 1: event tracing "
                     "hooks the serial engine");
        }
        if (!tracePath.empty()) {
            trace_ = std::make_unique<telem::TraceWriter>();
            machine.attachTrace(*trace_);
        }
        if (!statsPath.empty() || trace_ || force_sample) {
            if (machine.isParallel()) {
                // The sampler's periodic event would read counters
                // other worker threads are writing; snapshots taken
                // after the run in finish() are still exact.
                std::cerr << "# telemetry: time-series sampling is "
                             "serial-only; --threads > 1 writes "
                             "end-of-run snapshots without a "
                             "series\n";
            } else {
                Tick interval = nsToTicks(
                    args.getDouble("sample-interval", 1000.0));
                sampler_ = std::make_unique<telem::Sampler>(
                    machine.ctx(), machine.telemetry(), interval);
                watchLinkUtilization();
                watchMemUtilization();
                if (trace_)
                    sampler_->mirrorToTrace(*trace_);
                sampler_->start();
            }
        }
    }

    bool active() const { return sampler_ != nullptr; }
    telem::Sampler *sampler() { return sampler_.get(); }
    telem::TraceWriter *trace() { return trace_.get(); }

    /** Write the requested files; print --verbose self-metrics. */
    void
    finish()
    {
        if (sampler_)
            sampler_->stop();
        // Canonical single-threaded merge of completed spans; must
        // run before the stats export so the xray.* histograms and
        // counters reflect this run (idempotent, cheap when off).
        if (machine.spans())
            machine.spans()->finalize();
        if (!spanTracePath.empty()) {
            telem::TraceWriter spanTrace;
            machine.spans()->exportTrace(spanTrace);
            std::ofstream os(spanTracePath);
            if (!os.good())
                gs_fatal("cannot write ", spanTracePath);
            spanTrace.write(os);
            if (spanTrace.dropped() > 0) {
                std::cerr << "# span-trace: capacity cap hit, "
                          << spanTrace.dropped()
                          << " event(s) not recorded\n";
            }
        }
        if (!statsPath.empty()) {
            std::ofstream os(statsPath);
            if (!os.good())
                gs_fatal("cannot write ", statsPath);
            if (endsWith(statsPath, ".csv")) {
                telem::exportCsv(os, machine.telemetry());
            } else {
                telem::exportJson(os, machine.telemetry(),
                                  sampler_.get(), machine.ctx().now());
            }
        }
        if (trace_) {
            std::ofstream os(tracePath);
            if (!os.good())
                gs_fatal("cannot write ", tracePath);
            trace_->write(os);
            if (trace_->dropped() > 0) {
                std::cerr << "# trace: capacity cap hit, "
                          << trace_->dropped()
                          << " event(s) not recorded\n";
            }
        }
        if (verbose) {
            double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count();
            // The eq.* gauges sum over every domain queue when the
            // machine is parallel and read the one global queue when
            // it is serial, so this block works for both engines.
            const auto &reg = machine.telemetry();
            auto count = [&reg](const char *path) {
                return static_cast<std::uint64_t>(reg.value(path));
            };
            const std::uint64_t fired = count("eq.fired");
            std::cerr << "# self: " << fired << " events fired, peak "
                      << "queue " << count("eq.peak_pending") << ", "
                      << wall << " s wall, "
                      << (wall > 0
                              ? static_cast<double>(fired) / wall
                              : 0.0)
                      << " events/s\n";
            std::cerr << "# self: queue ring " << count("eq.buckets")
                      << " / overflow " << count("eq.overflow")
                      << " pending; packet pool "
                      << count("net.packet_pool.reuse")
                      << " reused / "
                      << count("net.packet_pool.allocated")
                      << " allocated, peak in use "
                      << count("net.packet_pool.peak_in_use")
                      << "\n";
            if (machine.isParallel()) {
                std::cerr << "# self: parallel "
                          << count("par.domains") << " domains, "
                          << count("par.epochs") << " epochs, "
                          << "lookahead "
                          << count("par.lookahead_ticks")
                          << " ticks, barrier wait "
                          << reg.value("par.barrier_wait_frac")
                          << " of worker time, mailbox "
                          << count("par.mailbox.arrivals")
                          << " arrivals / "
                          << count("par.mailbox.credits")
                          << " credits\n";
                std::cerr << "# self: tiles "
                          << count("par.tile_rows") << "x"
                          << count("par.tile_cols") << ", "
                          << count("par.lookahead_widened")
                          << " widened epochs, "
                          << count("par.steal_count") << " steals\n";
            }
        }
    }

  private:
    static void
    checkWritable(const std::string &path)
    {
        if (path.empty())
            return;
        std::ofstream probe(path);
        if (!probe.good())
            gs_fatal("cannot write ", path);
    }

    static bool
    endsWith(const std::string &s, const std::string &suffix)
    {
        return s.size() >= suffix.size() &&
               s.compare(s.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
    }

    /**
     * Busy fraction of every external link: one flit crosses per
     * network cycle, so delta(flits) * period / interval. Skips the
     * per-VC breakdown (per-port aggregates only).
     */
    void
    watchLinkUtilization()
    {
        double period =
            static_cast<double>(machine.network().period());
        for (const auto &p : machine.telemetry().paths("node.")) {
            if (p.find(".router.port.") == std::string::npos ||
                p.find(".vc.") != std::string::npos ||
                !endsWith(p, ".flits")) {
                continue;
            }
            sampler_->watchRate(p, period);
        }
    }

    /** Memory-controller utilization: busy ticks over channels. */
    void
    watchMemUtilization()
    {
        auto &reg = machine.telemetry();
        for (const auto &p : reg.paths("node.")) {
            if (!endsWith(p, ".busy_ticks"))
                continue;
            std::string base =
                p.substr(0, p.size() - std::string("busy_ticks").size());
            double channels = reg.value(base + "channels");
            sampler_->watchRate(p,
                                channels > 0 ? 1.0 / channels : 0.0);
        }
    }

    sys::Machine &machine;
    std::string statsPath;
    std::string tracePath;
    std::string spanTracePath;
    bool verbose;
    std::chrono::steady_clock::time_point wallStart;
    std::unique_ptr<telem::TraceWriter> trace_;
    std::unique_ptr<telem::Sampler> sampler_;
};

/// @}

/**
 * @name Checkpoint / restore plumbing
 *
 * Benches that run one long-lived machine share three options:
 * `--checkpoint-every=NS` snapshots the whole machine every NS of
 * simulated time (files `PREFIX.N.gsckpt`, atomic tmp+rename),
 * `--checkpoint-prefix=PREFIX` names them (default `gsckpt`), and
 * `--restore-from=FILE` resumes a previous snapshot before running.
 * A restored run continues bit-identically: its final stats export
 * matches the uninterrupted run's byte-for-byte
 * (docs/CHECKPOINT.md). Checkpointing is incompatible with
 * `--trace` — the trace buffer holds unreplayable history.
 */
/// @{

/** Register the checkpoint options (compose with the others). */
inline std::map<std::string, std::string>
withCheckpointArgs(std::map<std::string, std::string> known = {})
{
    known.emplace("checkpoint-every",
                  "snapshot the machine every NS of simulated time "
                  "(default 0 = off; files PREFIX.N.gsckpt)");
    known.emplace("checkpoint-prefix",
                  "snapshot path prefix (default gsckpt)");
    known.emplace("restore-from",
                  "resume from a snapshot file before running");
    return known;
}

/**
 * Binds the shared checkpoint options to one Machine. Construct it
 * AFTER TelemetrySession (the sampler must exist to be registered as
 * a snapshot participant) and call maybeRestore() with the traffic
 * sources right before Machine::run.
 */
class CheckpointSession
{
  public:
    CheckpointSession(const Args &args, sys::Machine &m,
                      telem::Sampler *sampler = nullptr)
        : machine(m),
          restorePath(args.getString("restore-from", ""))
    {
        const double everyNs =
            args.getDouble("checkpoint-every", 0.0);
        if ((everyNs > 0 || !restorePath.empty()) &&
            !args.getString("trace", "").empty()) {
            gs_fatal("--trace is incompatible with checkpointing: "
                     "the trace buffer holds history a snapshot "
                     "cannot replay (drop --trace, or drop "
                     "--checkpoint-every/--restore-from)");
        }
        // Registration order is part of the snapshot layout, so it
        // must match between the saving and the restoring run; both
        // go through this constructor, keeping them in lockstep.
        if (sampler)
            machine.registerCkptClient(*sampler);
        if (everyNs > 0) {
            machine.setCheckpointPolicy(
                nsToTicks(everyNs),
                args.getString("checkpoint-prefix", "gsckpt"));
        }
    }

    /** Apply --restore-from (no-op without it); die loudly on a
     *  corrupt, truncated, or mismatched snapshot. */
    void
    maybeRestore(const std::vector<cpu::TrafficSource *> &sources)
    {
        if (restorePath.empty())
            return;
        std::string err;
        if (!machine.restore(restorePath, sources, &err))
            gs_fatal("--restore-from ", restorePath, ": ", err);
    }

    bool restoring() const { return !restorePath.empty(); }

  private:
    sys::Machine &machine;
    std::string restorePath;
};

/// @}

/**
 * End-to-end dependent-load latency (ns) of CPU @p from chasing a
 * cold chain in CPU @p to's region: total time / loads, the
 * load-to-use number the paper's lmbench plots report.
 */
inline double
dependentLoadNs(sys::Machine &m, int from, int to,
                std::uint64_t dataset = 16ULL << 20,
                std::uint64_t stride = 64, std::uint64_t loads = 8000,
                std::uint64_t offset = 0)
{
    // Offset each probe so repeated measurements stay cold.
    wl::PointerChase chase(m.cpuAddr(to, offset), dataset, stride,
                           loads);
    std::vector<cpu::TrafficSource *> sources(
        static_cast<std::size_t>(from) + 1, nullptr);
    sources[static_cast<std::size_t>(from)] = &chase;
    bool ok = m.run(sources);
    gs_assert(ok, "dependent-load probe timed out");
    return m.core(from).stats().elapsedNs() /
           static_cast<double>(loads);
}

/** STREAM Triad GB/s for CPUs [0, n) on machine @p m. */
inline double
streamTriadGBs(sys::Machine &m, int n,
               std::uint64_t array_bytes = 8ULL << 20)
{
    std::vector<std::unique_ptr<wl::StreamTriad>> kernels;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < n; ++c) {
        kernels.push_back(std::make_unique<wl::StreamTriad>(
            m.cpuAddr(c, 0), array_bytes));
        sources.push_back(kernels.back().get());
    }
    Tick start = m.ctx().now();
    bool ok = m.run(sources, 2000 * tickMs);
    gs_assert(ok, "STREAM run timed out");
    double ns = ticksToNs(m.ctx().now() - start);

    double lines = 0;
    for (const auto &k : kernels)
        lines += static_cast<double>(k->linesProcessed());
    return lines * wl::StreamTriad::bytesPerLine / ns;
}

} // namespace gs::bench

#endif // GS_BENCH_COMMON_HH

/**
 * @file
 * Shared helpers for the bench harnesses. Every bench binary
 * regenerates one table or figure of the paper; these helpers keep
 * the measurements and the output format uniform.
 */

#ifndef GS_BENCH_COMMON_HH
#define GS_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/args.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"
#include "system/machine.hh"
#include "workload/pointer_chase.hh"
#include "workload/stream.hh"

namespace gs::bench
{

/**
 * @name Declarative sweeps
 *
 * A figure bench declares its sweep points up front, then submits
 * them to a SweepRunner; points execute across hardware threads
 * (`--jobs N`, default hardware concurrency, `--jobs 1` = the old
 * serial path) and rows come back in declared order. Each point
 * builds its own Machine from the point's counted seed, so output is
 * bit-identical at every jobs value.
 */
/// @{

/** Register the sweep options every figure bench shares. */
inline std::map<std::string, std::string>
withSweepArgs(std::map<std::string, std::string> known = {})
{
    known.emplace("jobs", "worker threads (default: all hardware "
                          "threads; 1 = serial)");
    known.emplace("seed", "master seed for per-point RNG streams "
                          "(default 1)");
    return known;
}

/** Build the runner a bench's --jobs/--seed options ask for. */
inline SweepRunner
makeRunner(const Args &args)
{
    return SweepRunner(
        static_cast<int>(args.getInt("jobs", 0)),
        static_cast<std::uint64_t>(args.getInt("seed", 1)));
}

/** A table row produced by one sweep point. */
using Row = std::vector<std::string>;

/**
 * Run one declared point per table row: @p fn maps (point,
 * SweepPoint) to that row's cells; rows land in declared order.
 */
template <typename P, typename Fn>
Table
sweepTable(SweepRunner &runner, std::vector<std::string> header,
           const std::vector<P> &points, Fn &&fn)
{
    Table t(std::move(header));
    for (auto &row : runner.map(points, std::forward<Fn>(fn)))
        t.addRow(std::move(row));
    return t;
}

/// @}

/**
 * End-to-end dependent-load latency (ns) of CPU @p from chasing a
 * cold chain in CPU @p to's region: total time / loads, the
 * load-to-use number the paper's lmbench plots report.
 */
inline double
dependentLoadNs(sys::Machine &m, int from, int to,
                std::uint64_t dataset = 16ULL << 20,
                std::uint64_t stride = 64, std::uint64_t loads = 8000,
                std::uint64_t offset = 0)
{
    // Offset each probe so repeated measurements stay cold.
    wl::PointerChase chase(m.cpuAddr(to, offset), dataset, stride,
                           loads);
    std::vector<cpu::TrafficSource *> sources(
        static_cast<std::size_t>(from) + 1, nullptr);
    sources[static_cast<std::size_t>(from)] = &chase;
    bool ok = m.run(sources);
    gs_assert(ok, "dependent-load probe timed out");
    return m.core(from).stats().elapsedNs() /
           static_cast<double>(loads);
}

/** STREAM Triad GB/s for CPUs [0, n) on machine @p m. */
inline double
streamTriadGBs(sys::Machine &m, int n,
               std::uint64_t array_bytes = 8ULL << 20)
{
    std::vector<std::unique_ptr<wl::StreamTriad>> kernels;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < n; ++c) {
        kernels.push_back(std::make_unique<wl::StreamTriad>(
            m.cpuAddr(c, 0), array_bytes));
        sources.push_back(kernels.back().get());
    }
    Tick start = m.ctx().now();
    bool ok = m.run(sources, 2000 * tickMs);
    gs_assert(ok, "STREAM run timed out");
    double ns = ticksToNs(m.ctx().now() - start);

    double lines = 0;
    for (const auto &k : kernels)
        lines += static_cast<double>(k->linesProcessed());
    return lines * wl::StreamTriad::bytesPerLine / ns;
}

} // namespace gs::bench

#endif // GS_BENCH_COMMON_HH

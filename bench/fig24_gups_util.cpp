/**
 * @file
 * Figure 24: GUPS on the 32P (8x4 torus) GS1280 — memory controller
 * and per-direction link utilization over time.
 *
 * Paper: East/West (horizontal) links run hotter than North/South
 * because the horizontal dimension is longer and carries more of
 * the uniform traffic; this is also why the GUPS curve bends at 32P.
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/xmesh.hh"
#include "workload/gups.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              {{"updates", "updates per CPU (default 2000)"}});
    auto updates =
        static_cast<std::uint64_t>(args.getInt("updates", 2000));

    printBanner(std::cout,
                "Figure 24: GUPS utilization over time, 32P GS1280 "
                "(8x4 torus)");

    sys::Gs1280Options opt;
    opt.mlp = 16;
    auto m = sys::Machine::buildGS1280(32, opt);
    sys::Xmesh mon(*m, 30 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 32; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            32, 256ULL << 20, updates, 8000 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    bool ok = m->run(sources, 60000 * tickMs);
    mon.stop();

    Table t({"timestamp us", "memory controller %",
             "avg North/South %", "avg East/West %"});
    double ewSum = 0, nsSum = 0;
    int n = 0;
    for (const auto &s : mon.samples()) {
        t.addRow({Table::num(ticksToNs(s.when) / 1000.0, 0),
                  Table::num(s.avgMemUtil * 100, 1),
                  Table::num(s.avgNorthSouth * 100, 1),
                  Table::num(s.avgEastWest * 100, 1)});
        ewSum += s.avgEastWest;
        nsSum += s.avgNorthSouth;
        n += 1;
    }
    t.print(std::cout);
    if (!ok)
        std::cout << "[run hit the time limit]\n";
    if (n > 0 && nsSum > 0) {
        std::cout << "\nEast/West : North/South utilization ratio: "
                  << Table::num(ewSum / nsSum, 2)
                  << "   (paper: E/W runs visibly hotter in the 8x4 "
                     "torus)\n";
    }
    return 0;
}

/**
 * @file
 * Figure 12: local/remote memory latency from CPU0 to every CPU of a
 * 16-CPU machine, GS1280 vs GS320, plus the Read-Dirty comparison
 * (the paper's 4x average / 6.6x read-dirty advantage).
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/pointer_chase.hh"

namespace
{

using namespace gs;

/**
 * Read-Dirty latency 0 <- dst: dst first dirties the lines in its
 * own region, then CPU0 chases them — every load forwards from
 * dst's cache.
 */
double
readDirtyNs(sys::Machine &m, int dst, std::uint64_t loads)
{
    const std::uint64_t span = loads * 64;
    // dst dirties the lines first (Modified in dst's L2).
    struct Writes : cpu::TrafficSource
    {
        mem::Addr base;
        std::uint64_t left;
        std::optional<cpu::MemOp> next() override
        {
            if (left == 0)
                return std::nullopt;
            left -= 1;
            cpu::MemOp op;
            op.addr = base + left * 64;
            op.write = true;
            return op;
        }
    } writes;
    writes.base = m.cpuAddr(dst, 0);
    writes.left = loads;
    std::vector<cpu::TrafficSource *> wsrc(
        static_cast<std::size_t>(dst) + 1, nullptr);
    wsrc[static_cast<std::size_t>(dst)] = &writes;
    if (!m.run(wsrc))
        return -1;

    wl::PointerChase chase(m.cpuAddr(dst, 0), span, 64, loads);
    std::vector<cpu::TrafficSource *> src{&chase};
    if (!m.run(src))
        return -1;
    return m.core(0).stats().elapsedNs() / static_cast<double>(loads);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"loads", "loads per probe (default 4000)"}}));
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 4000));
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 12: GS1280 vs GS320 latency, 16 CPUs (ns)");

    // One sweep point per destination; each probes a fresh pair of
    // machines so points are independent (and always cold).
    struct Pair
    {
        double gs1280, gs320;
    };
    std::vector<int> dsts(16);
    for (int d = 0; d < 16; ++d)
        dsts[static_cast<std::size_t>(d)] = d;

    auto pairs = runner.map(
        dsts, [&](int dst, SweepPoint) -> Pair {
            auto gs1280 = sys::Machine::buildGS1280(16);
            auto gs320 = sys::Machine::buildGS320(16);
            return {bench::dependentLoadNs(*gs1280, 0, dst, 16 << 20,
                                           64, loads),
                    bench::dependentLoadNs(*gs320, 0, dst, 64 << 20,
                                           64, loads / 2)};
        });

    Table t({"path", "GS1280/1.15GHz", "GS320/1.2GHz"});
    double sumA = 0, sumB = 0;
    for (int dst = 0; dst < 16; ++dst) {
        const auto &p = pairs[static_cast<std::size_t>(dst)];
        sumA += p.gs1280;
        sumB += p.gs320;
        t.addRow({"0 ->" + std::to_string(dst),
                  Table::num(p.gs1280, 0), Table::num(p.gs320, 0)});
    }
    t.addRow({"average", Table::num(sumA / 16, 0),
              Table::num(sumB / 16, 0)});
    t.print(std::cout);
    std::cout << "\nread-clean average advantage: "
              << Table::num(sumB / sumA, 2)
              << "x   (paper: ~4x)\n";

    // Read-Dirty: remote CPU's cache supplies the line. Two
    // independent points, one per system.
    auto dirty = runner.map(
        std::size_t(2), [&](SweepPoint sp) -> double {
            if (sp.index == 0) {
                auto m = sys::Machine::buildGS1280(16);
                return readDirtyNs(*m, 10, 3000); // 4 hops away
            }
            auto m = sys::Machine::buildGS320(16);
            return readDirtyNs(*m, 12, 1500); // remote QBB
        });
    std::cout << "read-dirty, worst-case remote: GS1280 "
              << Table::num(dirty[0], 0) << " ns vs GS320 "
              << Table::num(dirty[1], 0) << " ns -> "
              << Table::num(dirty[1] / dirty[0], 2)
              << "x   (paper: ~6.6x)\n";
    return 0;
}

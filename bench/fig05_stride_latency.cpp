/**
 * @file
 * Figure 5: GS1280 dependent-load latency as dataset size and stride
 * grow — the open-page (~80 ns) to closed-page (~130 ns) surface.
 */

#include <iostream>

#include "common.hh"
#include "sim/args.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, {{"loads", "loads per point (default 3000)"}});
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 3000));

    printBanner(std::cout,
                "Figure 5: GS1280 dependent-load latency (ns) by "
                "dataset x stride");

    const std::uint64_t strides[] = {64,   128,  256,   1024,
                                     4096, 8192, 16384};
    const std::uint64_t sizes[] = {1ULL << 20, 4ULL << 20,
                                   16ULL << 20, 64ULL << 20};

    std::vector<std::string> header{"dataset\\stride"};
    for (auto s : strides)
        header.push_back(Table::num(std::uint64_t(s)));
    Table t(header);

    for (std::uint64_t size : sizes) {
        std::vector<std::string> row{
            Table::num(std::uint64_t(size >> 20)) + "m"};
        for (std::uint64_t stride : strides) {
            auto m = sys::Machine::buildGS1280(2);
            std::uint64_t steps = size / stride;
            std::uint64_t n = std::min(loads, 4 * steps);
            // Warm only when the set is L2-resident.
            if (size <= (2ULL << 20))
                bench::dependentLoadNs(*m, 0, 0, size, stride, steps);
            row.push_back(Table::num(
                bench::dependentLoadNs(*m, 0, 0, size, stride, n),
                1));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\npaper: ~80 ns open-page (small stride) rising to "
                 "~130 ns closed-page (large stride);\n"
                 "cache-resident sets stay at L2/L1 latency\n";
    return 0;
}

/**
 * @file
 * Figure 5: GS1280 dependent-load latency as dataset size and stride
 * grow — the open-page (~80 ns) to closed-page (~130 ns) surface.
 */

#include <iostream>

#include "common.hh"
#include "sim/args.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"loads", "loads per point (default 3000)"}}));
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 3000));
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 5: GS1280 dependent-load latency (ns) by "
                "dataset x stride");

    const std::vector<std::uint64_t> strides = {64,   128,  256,  1024,
                                                4096, 8192, 16384};
    const std::vector<std::uint64_t> sizes = {1ULL << 20, 4ULL << 20,
                                              16ULL << 20, 64ULL << 20};

    // One sweep point per (dataset, stride) cell of the surface.
    struct Cell
    {
        std::uint64_t size;
        std::uint64_t stride;
    };
    std::vector<Cell> cells;
    for (std::uint64_t size : sizes)
        for (std::uint64_t stride : strides)
            cells.push_back({size, stride});

    auto values =
        runner.map(cells, [&](const Cell &c, SweepPoint) -> double {
            auto m = sys::Machine::buildGS1280(2);
            std::uint64_t steps = c.size / c.stride;
            std::uint64_t n = std::min(loads, 4 * steps);
            // Warm only when the set is L2-resident.
            if (c.size <= (2ULL << 20))
                bench::dependentLoadNs(*m, 0, 0, c.size, c.stride,
                                       steps);
            return bench::dependentLoadNs(*m, 0, 0, c.size, c.stride,
                                          n);
        });

    std::vector<std::string> header{"dataset\\stride"};
    for (auto s : strides)
        header.push_back(Table::num(std::uint64_t(s)));
    Table t(header);
    for (std::size_t y = 0; y < sizes.size(); ++y) {
        std::vector<std::string> row{
            Table::num(std::uint64_t(sizes[y] >> 20)) + "m"};
        for (std::size_t x = 0; x < strides.size(); ++x)
            row.push_back(
                Table::num(values[y * strides.size() + x], 1));
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\npaper: ~80 ns open-page (small stride) rising to "
                 "~130 ns closed-page (large stride);\n"
                 "cache-resident sets stay at L2/L1 latency\n";
    return 0;
}

/**
 * @file
 * Figure 28: summary comparisons — GS1280 advantage over GS320 as
 * performance ratios, across system components and workloads.
 *
 * Every row this library reproduces is measured (simulation) or
 * evaluated (analytic model) here, next to the paper's reading. The
 * ISV application rows (Nastran/StarCD/Dyna/MM5/Nwchem/Gaussian)
 * aggregate proprietary workloads we do not model individually; see
 * EXPERIMENTS.md.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common.hh"
#include "cpu/analytic_core.hh"
#include "sim/args.hh"
#include "workload/gups.hh"
#include "workload/load_test.hh"
#include "workload/commercial.hh"
#include "workload/hptc_apps.hh"
#include "workload/nas_sp.hh"
#include "workload/spec_profiles.hh"
#include "workload/spec_rate.hh"

namespace
{

using namespace gs;

double
gupsMups(sys::Machine &m, int cpus, std::uint64_t updates, int mlp)
{
    (void)mlp;
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            cpus, 256ULL << 20, updates, 40 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    Tick start = m.ctx().now();
    if (!m.run(sources, 30000 * tickMs))
        return 0;
    double s = ticksToNs(m.ctx().now() - start) * 1e-9;
    return cpus * static_cast<double>(updates) / s / 1e6;
}

double
aggregateReadBw(sys::Machine &m, int cpus, std::uint64_t reads)
{
    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            c, cpus, 512ULL << 20, reads, 77 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    Tick start = m.ctx().now();
    if (!m.run(sources, 30000 * tickMs))
        return 0;
    double ns = ticksToNs(m.ctx().now() - start);
    return cpus * static_cast<double>(reads) * 64.0 / ns; // GB/s
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, {{"fast", "skip the 32P simulations"}});
    bool fast = args.getBool("fast", false);

    printBanner(std::cout,
                "Figure 28: GS1280/1.15GHz advantage vs GS320/1.2GHz "
                "(performance ratios)");

    Table t({"metric", "this work", "paper", "source"});

    // CPU speed: same core, comparable clock.
    t.addRow({"CPU speed", Table::num(1.15 / 1.2, 2), "~0.96",
              "params"});

    // Memory copy bandwidth, 1 CPU (STREAM-like).
    {
        auto a = sys::Machine::buildGS1280(1);
        auto b = sys::Machine::buildGS320(4);
        double r = bench::streamTriadGBs(*a, 1, 4 << 20) /
                   bench::streamTriadGBs(*b, 1, 4 << 20);
        t.addRow({"memory copy bw (1P)", Table::num(r, 1), "~4",
                  "sim"});
    }

    // Memory copy bandwidth, 32 CPUs.
    if (!fast) {
        auto a = sys::Machine::buildGS1280(32);
        auto b = sys::Machine::buildGS320(32);
        double r = bench::streamTriadGBs(*a, 32, 1 << 20) /
                   bench::streamTriadGBs(*b, 32, 1 << 20);
        t.addRow({"memory copy bw (32P)", Table::num(r, 1), "~8",
                  "sim"});
    }

    // Local memory latency.
    {
        auto a = sys::Machine::buildGS1280(4);
        auto b = sys::Machine::buildGS320(4);
        double r = bench::dependentLoadNs(*b, 0, 0, 64 << 20, 64,
                                          2000) /
                   bench::dependentLoadNs(*a, 0, 0, 32 << 20, 64,
                                          4000);
        t.addRow({"memory latency (local)", Table::num(r, 1), "~3.9",
                  "sim"});
    }

    // Remote (clean) latency at 16P as the dirty-remote proxy is in
    // fig12; keep the clean ratio here.
    {
        auto a = sys::Machine::buildGS1280(16);
        auto b = sys::Machine::buildGS320(16);
        double r = bench::dependentLoadNs(*b, 0, 12, 64 << 20, 64,
                                          1500) /
                   bench::dependentLoadNs(*a, 0, 10, 16 << 20, 64,
                                          3000);
        t.addRow({"memory latency (remote)", Table::num(r, 1),
                  "4-6.6", "sim"});
    }

    // Inter-processor bandwidth at 16/32P.
    {
        int cpus = fast ? 16 : 32;
        sys::Gs1280Options opt;
        opt.mlp = 16;
        auto a = sys::Machine::buildGS1280(cpus, opt);
        auto b = sys::Machine::buildGS320(cpus);
        double r = aggregateReadBw(*a, cpus, 1200) /
                   aggregateReadBw(*b, cpus, 300);
        t.addRow({"Inter-Processor bandwidth",
                  Table::num(r, 1), ">10", "sim"});
    }

    // I/O bandwidth: per-node 3.1 GB/s full duplex x nodes vs the
    // GS320's shared I/O risers (~0.4 GB/s per QBB).
    t.addRow({"I/O bandwidth (32P)",
              Table::num(32 * 3.1 / (8 * 1.6), 1), "~8", "params"});

    // SPEC rate rows (analytic model).
    {
        double fp = wl::specRate(wl::specFp2000(),
                                 wl::RateSystem::GS1280, 16) /
                    wl::specRate(wl::specFp2000(),
                                 wl::RateSystem::GS320, 16);
        double in = wl::specRate(wl::specInt2000(),
                                 wl::RateSystem::GS1280, 16) /
                    wl::specRate(wl::specInt2000(),
                                 wl::RateSystem::GS320, 16);
        t.addRow({"SPECint_rate2000 (16P)", Table::num(in, 1), "~1.1",
                  "model"});
        t.addRow({"SAP SD Transaction Processing (32P)",
                  Table::num(wl::commercialAdvantage(wl::sapSd(), 32),
                             1),
                  "~1.3", "model"});
        t.addRow({"Decision Support (32P)",
                  Table::num(wl::commercialAdvantage(
                                 wl::decisionSupport(), 32),
                             1),
                  "~1.6", "model"});
        t.addRow({"SPECfp_rate2000 (16P)", Table::num(fp, 1), "~2.0",
                  "model"});
    }

    // NAS SP (simulated, 8P to keep the run short).
    {
        auto run = [](sys::Machine &m, int cpus) {
            std::vector<std::unique_ptr<wl::NasSP>> ranks;
            std::vector<cpu::TrafficSource *> sources;
            wl::NasSpParams p;
            p.sweepLines = 4096;
            for (int c = 0; c < cpus; ++c) {
                ranks.push_back(
                    std::make_unique<wl::NasSP>(c, cpus, p));
                sources.push_back(ranks.back().get());
            }
            Tick start = m.ctx().now();
            m.run(sources, 30000 * tickMs);
            return ticksToNs(m.ctx().now() - start);
        };
        auto a = sys::Machine::buildGS1280(8);
        auto b = sys::Machine::buildGS320(8);
        double r = run(*b, 8) / run(*a, 8);
        t.addRow({"NAS Parallel SP (8P)", Table::num(r, 1), "~2.6",
                  "sim"});
    }

    // HPTC ISV application rows (modelled profiles; see
    // docs/CALIBRATION.md and src/workload/hptc_apps.cc).
    for (const auto &app : wl::hptcApplications()) {
        char paper[16];
        std::snprintf(paper, sizeof paper, "~%.1f", app.paperRatio);
        t.addRow({app.profile.name + " (" +
                      std::to_string(app.paperCpus) + "P)",
                  Table::num(wl::hptcAdvantage(app), 1), paper,
                  "model"});
    }

    // swim (the paper's SPEComp poster child).
    {
        const auto &swim = wl::specProfile("swim");
        double r =
            cpu::evaluateIpc(swim, cpu::MachineTiming::gs1280()).ipc /
            cpu::evaluateIpc(swim, cpu::MachineTiming::gs320()).ipc;
        t.addRow({"swim (32P SPEComp)", Table::num(r, 1), "~4",
                  "model"});
    }

    // GUPS.
    {
        int cpus = fast ? 8 : 16;
        sys::Gs1280Options opt;
        opt.mlp = 16;
        auto a = sys::Machine::buildGS1280(cpus, opt);
        auto b = sys::Machine::buildGS320(cpus);
        double r = gupsMups(*a, cpus, 1200, 16) /
                   gupsMups(*b, cpus, 300, 16);
        t.addRow({"GUPS", Table::num(r, 1), ">10", "sim"});
    }

    t.print(std::cout);
    std::cout << "\nISV rows are modelled from each code's memory "
                 "character (src/workload/hptc_apps.cc); Fluent's "
                 "class is additionally simulated in bench/fig19.\n";
    return 0;
}

/**
 * @file
 * Router-backend ablation: the EV7 buffered adaptive-VC router
 * against the bufferless deflection (hot-potato) alternative, on the
 * paper's two most network-bound experiments.
 *
 *  1. The Figure 15 load test (random remote reads, outstanding
 *     count swept): where the buffered design's curve stays flat and
 *     where deflection's extra hops start costing latency and
 *     delivered bandwidth.
 *  2. The Figure 23/24 GUPS congestion point: all-to-all single-line
 *     updates at maximum overlap, the traffic that saturates the
 *     torus — with the deflection accounting (misroutes per packet,
 *     worst per-packet count, retreats) alongside the rates.
 *
 * Not a paper figure: the GS1280 shipped the buffered router. This
 * is the design-space answer to "how much of Figure 15/23 is the VC
 * buffering actually buying?" — see docs/ROUTER.md.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/gups.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

struct Point
{
    double bwMBs;
    double latencyNs;
};

Point
loadPoint(net::RouterKind kind, int cpus, int outstanding,
          std::uint64_t reads, std::uint64_t seed)
{
    sys::Gs1280Options opt;
    opt.mlp = outstanding;
    opt.routerKind = kind;
    auto m = sys::Machine::buildGS1280(cpus, opt);

    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            c, cpus, 512ULL << 20, reads,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }

    Tick start = m->ctx().now();
    bool ok = m->run(sources, 20000 * tickMs);
    double ns = ticksToNs(m->ctx().now() - start);
    if (!ok)
        return Point{0, 0};

    double bytes = static_cast<double>(cpus) *
                   static_cast<double>(reads) * 64.0;
    double lat = 0;
    for (int c = 0; c < cpus; ++c)
        lat += m->node(c).stats().missLatencyNs.mean();
    return Point{bytes / ns * 1000.0, lat / cpus};
}

/** One GUPS run's rate plus the deflection accounting. */
struct GupsPoint
{
    double mups = 0;
    double deflectPerPkt = 0;
    double maxDeflect = 0;
    double retreats = 0;
};

GupsPoint
gupsPoint(net::RouterKind kind, int cpus, std::uint64_t updates,
          std::uint64_t seed)
{
    sys::Gs1280Options opt;
    opt.mlp = 16; // GUPS overlaps updates aggressively
    opt.routerKind = kind;
    auto m = sys::Machine::buildGS1280(cpus, opt);

    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            cpus, 256ULL << 20, updates,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    Tick start = m->ctx().now();
    if (!m->run(sources, 30000 * tickMs))
        return GupsPoint{};
    double seconds = ticksToNs(m->ctx().now() - start) * 1e-9;

    GupsPoint p;
    p.mups = static_cast<double>(cpus) *
             static_cast<double>(updates) / seconds / 1e6;
    if (kind == net::RouterKind::Bufferless) {
        const telem::Registry &reg = m->telemetry();
        double delivered = reg.value("net.delivered_packets");
        p.deflectPerPkt = delivered > 0
                              ? reg.value("net.deflect.count") /
                                    delivered
                              : 0;
        p.maxDeflect = reg.value("net.deflect.max_per_packet");
        p.retreats = reg.value("net.deflect.retreats");
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"reads", "reads per CPU per load point (default "
                             "400)"},
                   {"updates", "GUPS updates per CPU (default 1000)"},
                   {"full", "include the 32P GUPS point (slow)"}}));
    auto reads = static_cast<std::uint64_t>(args.getInt("reads", 400));
    auto updates =
        static_cast<std::uint64_t>(args.getInt("updates", 1000));
    bool full = args.getBool("full", false);
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Router ablation 1: Figure 15 load test at 16P, "
                "buffered vs bufferless deflection");
    {
        const std::vector<int> outs = {1, 2, 4, 8, 12, 16, 24, 30};
        auto t = bench::sweepTable(
            runner,
            {"outstanding", "buffered MB/s", "buffered ns",
             "bufferless MB/s", "bufferless ns"},
            outs, [&](int o, SweepPoint sp) -> bench::Row {
                Point b = loadPoint(net::RouterKind::Buffered, 16, o,
                                    reads, sp.seed);
                Point d = loadPoint(net::RouterKind::Bufferless, 16,
                                    o, reads, sp.seed);
                return {Table::num(o), Table::num(b.bwMBs, 0),
                        Table::num(b.latencyNs, 0),
                        Table::num(d.bwMBs, 0),
                        Table::num(d.latencyNs, 0)};
            });
        t.print(std::cout);
        std::cout << "\nshape: the curves track at low load (an idle "
                     "deflection router IS a minimal router); past "
                     "saturation the bufferless fabric pays misroute "
                     "hops where the buffered one pays VC waits\n";
    }

    printBanner(std::cout,
                "Router ablation 2: GUPS congestion (Figures 23/24), "
                "buffered vs bufferless deflection");
    {
        std::vector<int> points = {8, 16};
        if (full)
            points.push_back(32);
        auto t = bench::sweepTable(
            runner,
            {"#CPUs", "buffered MUP/s", "bufferless MUP/s",
             "deflects/pkt", "max deflect", "retreats"},
            points, [&](int cpus, SweepPoint sp) -> bench::Row {
                GupsPoint b =
                    gupsPoint(net::RouterKind::Buffered, cpus,
                              updates, Rng::deriveSeed(sp.seed, 0));
                GupsPoint d =
                    gupsPoint(net::RouterKind::Bufferless, cpus,
                              updates, Rng::deriveSeed(sp.seed, 1));
                return {Table::num(cpus), Table::num(b.mups, 1),
                        Table::num(d.mups, 1),
                        Table::num(d.deflectPerPkt, 3),
                        Table::num(d.maxDeflect, 0),
                        Table::num(d.retreats, 0)};
            });
        t.print(std::cout);
        std::cout << "\nshape: GUPS is the worst case for deflection "
                     "— every misroute burns cross-section bandwidth "
                     "the torus is already short of\n";
    }
    return 0;
}

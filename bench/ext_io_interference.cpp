/**
 * @file
 * Extension: I/O-intensive characterization — the paper's stated
 * future work ("we will also place more emphasis on characterizing
 * real I/O intensive applications").
 *
 * Measures how cross-fabric DMA floods interact with application
 * traffic on the GS1280: the IO packet class rides its own virtual
 * channels, so coherent workloads should degrade only where they
 * genuinely share link bandwidth with the DMA path.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "system/io.hh"
#include "workload/gups.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;

struct Outcome
{
    double appMetric = 0; ///< GB/s (stream) or Mup/s (gups)
    double ioGBs = 0;
};

Outcome
run(bool stream_app, int dma_streams, std::uint64_t dma_bytes)
{
    sys::Gs1280Options opt;
    opt.mlp = 12;
    auto m = sys::Machine::buildGS1280(16, opt);

    std::vector<std::unique_ptr<sys::IoDma>> dmas;
    for (int k = 0; k < dma_streams; ++k) {
        sys::IoDmaParams p;
        p.totalBytes = dma_bytes;
        // Distant endpoint pairs crossing the 4x4 fabric.
        NodeId from = static_cast<NodeId>(k);
        NodeId to = static_cast<NodeId>(15 - k);
        dmas.push_back(std::make_unique<sys::IoDma>(m->network(),
                                                    from, to, p));
        dmas.back()->attachSink(m->node(to));
        dmas.back()->start(nullptr);
    }

    // Drive the application cores directly and stop the clock when
    // *they* finish: Machine::run waits for the whole fabric to
    // drain, which would fold the DMA's lifetime into the app time.
    auto appRun = [&](const std::vector<cpu::TrafficSource *> &srcs) {
        int running = 0;
        for (std::size_t c = 0; c < srcs.size(); ++c) {
            if (!srcs[c])
                continue;
            running += 1;
            m->core(static_cast<int>(c))
                .run(*srcs[c], [&running] { running -= 1; });
        }
        Tick deadline = m->ctx().now() + 30000 * tickMs;
        while (running > 0 && m->ctx().now() < deadline) {
            if (!m->ctx().queue().step())
                break;
        }
        return running == 0;
    };

    Outcome out;
    if (stream_app) {
        // Local streaming: shares no links with the DMA.
        wl::StreamTriad triad(m->cpuAddr(5, 0), 4 << 20);
        std::vector<cpu::TrafficSource *> sources(6, nullptr);
        sources[5] = &triad;
        if (!appRun(sources))
            return out;
        out.appMetric = static_cast<double>(triad.linesProcessed()) *
                        192.0 / m->core(5).stats().elapsedNs();
    } else {
        // GUPS: fights the DMA for the same fabric.
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 16; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                16, 256ULL << 20, 1200,
                500 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        if (!appRun(sources))
            return out;
        double s = ticksToNs(m->ctx().now() - start) * 1e-9;
        out.appMetric = 16.0 * 1200.0 / s / 1e6;
    }

    // Let any residual DMA finish, then read its bandwidth.
    m->ctx().queue().runUntil(m->ctx().now() + 200 * tickMs);
    for (auto &dma : dmas)
        out.ioGBs += dma->deliveredGBs();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, bench::withSweepArgs());
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Extension: I/O DMA interference on a 16P GS1280");

    // One declared point per (app, DMA-stream-count); the streams=0
    // point doubles as each app's quiet baseline.
    const std::vector<int> streamCounts = {0, 2, 4};
    struct Task
    {
        bool streamApp;
        int streams;
    };
    std::vector<Task> tasks;
    for (bool app : {true, false})
        for (int streams : streamCounts)
            tasks.push_back({app, streams});

    auto outcomes = runner.map(
        tasks, [&](const Task &tk, SweepPoint) -> Outcome {
            return run(tk.streamApp, tk.streams, 8 << 20);
        });

    Table t({"app", "DMA streams", "app metric", "vs quiet", "IO GB/s"});
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &tk = tasks[i];
        const Outcome &o = outcomes[i];
        // The quiet baseline is this app's streams=0 point.
        const std::size_t base = tk.streamApp ? 0 : streamCounts.size();
        double quiet = outcomes[base].appMetric;
        t.addRow({tk.streamApp ? "STREAM (GB/s, local)"
                               : "GUPS (Mup/s, fabric)",
                  Table::num(tk.streams),
                  Table::num(o.appMetric, tk.streamApp ? 2 : 1),
                  Table::num(o.appMetric / quiet, 2),
                  Table::num(o.ioGBs, 1)});
    }
    t.print(std::cout);

    std::cout << "\nexpectation: local STREAM is untouched (IO rides "
                 "its own VCs and other links); GUPS cedes some link "
                 "bandwidth to the DMA flood\n";
    return 0;
}

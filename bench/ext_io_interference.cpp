/**
 * @file
 * Extension: I/O-intensive characterization — the paper's stated
 * future work ("we will also place more emphasis on characterizing
 * real I/O intensive applications").
 *
 * Measures how cross-fabric DMA floods interact with application
 * traffic on the GS1280: the IO packet class rides its own virtual
 * channels, so coherent workloads should degrade only where they
 * genuinely share link bandwidth with the DMA path.
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/io.hh"
#include "system/machine.hh"
#include "workload/gups.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;

struct Outcome
{
    double appMetric = 0; ///< GB/s (stream) or Mup/s (gups)
    double ioGBs = 0;
};

Outcome
run(bool stream_app, int dma_streams, std::uint64_t dma_bytes)
{
    sys::Gs1280Options opt;
    opt.mlp = 12;
    auto m = sys::Machine::buildGS1280(16, opt);

    std::vector<std::unique_ptr<sys::IoDma>> dmas;
    for (int k = 0; k < dma_streams; ++k) {
        sys::IoDmaParams p;
        p.totalBytes = dma_bytes;
        // Distant endpoint pairs crossing the 4x4 fabric.
        NodeId from = static_cast<NodeId>(k);
        NodeId to = static_cast<NodeId>(15 - k);
        dmas.push_back(std::make_unique<sys::IoDma>(m->network(),
                                                    from, to, p));
        dmas.back()->attachSink(m->node(to));
        dmas.back()->start(nullptr);
    }

    // Drive the application cores directly and stop the clock when
    // *they* finish: Machine::run waits for the whole fabric to
    // drain, which would fold the DMA's lifetime into the app time.
    auto appRun = [&](const std::vector<cpu::TrafficSource *> &srcs) {
        int running = 0;
        for (std::size_t c = 0; c < srcs.size(); ++c) {
            if (!srcs[c])
                continue;
            running += 1;
            m->core(static_cast<int>(c))
                .run(*srcs[c], [&running] { running -= 1; });
        }
        Tick deadline = m->ctx().now() + 30000 * tickMs;
        while (running > 0 && m->ctx().now() < deadline) {
            if (!m->ctx().queue().step())
                break;
        }
        return running == 0;
    };

    Outcome out;
    if (stream_app) {
        // Local streaming: shares no links with the DMA.
        wl::StreamTriad triad(m->cpuAddr(5, 0), 4 << 20);
        std::vector<cpu::TrafficSource *> sources(6, nullptr);
        sources[5] = &triad;
        if (!appRun(sources))
            return out;
        out.appMetric = static_cast<double>(triad.linesProcessed()) *
                        192.0 / m->core(5).stats().elapsedNs();
    } else {
        // GUPS: fights the DMA for the same fabric.
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 16; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                16, 256ULL << 20, 1200,
                500 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        if (!appRun(sources))
            return out;
        double s = ticksToNs(m->ctx().now() - start) * 1e-9;
        out.appMetric = 16.0 * 1200.0 / s / 1e6;
    }

    // Let any residual DMA finish, then read its bandwidth.
    m->ctx().queue().runUntil(m->ctx().now() + 200 * tickMs);
    for (auto &dma : dmas)
        out.ioGBs += dma->deliveredGBs();
    return out;
}

} // namespace

int
main(int, char **)
{
    using namespace gs;
    printBanner(std::cout,
                "Extension: I/O DMA interference on a 16P GS1280");

    Table t({"app", "DMA streams", "app metric", "vs quiet", "IO GB/s"});

    double quietStream = run(true, 0, 0).appMetric;
    for (int streams : {0, 2, 4}) {
        auto o = run(true, streams, 8 << 20);
        t.addRow({"STREAM (GB/s, local)", Table::num(streams),
                  Table::num(o.appMetric, 2),
                  Table::num(o.appMetric / quietStream, 2),
                  Table::num(o.ioGBs, 1)});
    }

    double quietGups = run(false, 0, 0).appMetric;
    for (int streams : {0, 2, 4}) {
        auto o = run(false, streams, 8 << 20);
        t.addRow({"GUPS (Mup/s, fabric)", Table::num(streams),
                  Table::num(o.appMetric, 1),
                  Table::num(o.appMetric / quietGups, 2),
                  Table::num(o.ioGBs, 1)});
    }
    t.print(std::cout);

    std::cout << "\nexpectation: local STREAM is untouched (IO rides "
                 "its own VCs and other links); GUPS cedes some link "
                 "bandwidth to the DMA flood\n";
    return 0;
}

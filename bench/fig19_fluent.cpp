/**
 * @file
 * Figure 19: Fluent (CFD, fl5l1-class) rating vs CPU count.
 *
 * Paper: the blocked solver stresses neither memory nor IP links, so
 * GS1280 and ES45/SC45 run comparably (the 16 MB cache even helps);
 * scaling is near-linear on both, GS320 trails on clock+cache path.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/fluent.hh"

namespace
{

using namespace gs;

double
rating(sys::Machine &m, int cpus)
{
    std::vector<std::unique_ptr<wl::FluentCfd>> ranks;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        ranks.push_back(std::make_unique<wl::FluentCfd>(c, cpus));
        sources.push_back(ranks.back().get());
    }
    Tick start = m.ctx().now();
    if (!m.run(sources, 20000 * tickMs))
        return 0;
    double seconds = ticksToNs(m.ctx().now() - start) * 1e-9;
    double cells = 0;
    for (auto &r : ranks)
        cells += static_cast<double>(r->cellsDone());
    // "Rating" ~ jobs/day; scale cells/s into the paper's ballpark.
    return cells / seconds / 5.0e5;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, bench::withSweepArgs());
    auto runner = bench::makeRunner(args);

    printBanner(std::cout, "Figure 19: Fluent rating vs CPU count");

    const std::vector<int> points = {1, 2, 4, 8, 16, 32};
    auto t = bench::sweepTable(
        runner,
        {"#CPUs", "GS1280/1.15GHz", "ES45-class/1.25GHz",
         "GS320/1.2GHz"},
        points, [&](int cpus, SweepPoint) -> bench::Row {
            auto gs1280 = sys::Machine::buildGS1280(cpus);
            double a = rating(*gs1280, cpus);

            // SC45 = clusters of 4-CPU ES45 boxes; throughput adds
            // per box for this blocked, low-communication solver.
            std::string b = "-";
            {
                int perBox = std::min(cpus, 4);
                auto es45 = sys::Machine::buildES45(perBox);
                double boxRating = rating(*es45, perBox);
                b = Table::num(
                    boxRating * (static_cast<double>(cpus) / perBox),
                    1);
            }

            std::string c = "-";
            if (cpus <= 32 && (cpus % 4 == 0 || cpus < 4)) {
                auto gs320 = sys::Machine::buildGS320(cpus);
                c = Table::num(rating(*gs320, cpus), 1);
            }
            return {Table::num(cpus), Table::num(a, 1), b, c};
        });
    t.print(std::cout);

    std::cout << "\npaper shape: GS1280 comparable to SC45 (the "
                 "application is CPU-bound); both scale near-"
                 "linearly\n";
    return 0;
}

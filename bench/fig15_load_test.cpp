/**
 * @file
 * Figure 15: the interconnect load test. Every CPU issues random
 * remote reads; the outstanding-request count sweeps up and the
 * curve traces delivered bandwidth (x) against observed latency (y).
 *
 * Paper shape: the GS1280 curves stay low and flat far longer than
 * the GS320's (which saturates almost immediately); past saturation
 * the GS1280's delivered bandwidth *decreases* as latency climbs —
 * the adaptive-network phenomenon the paper remarks on.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

struct Point
{
    double bwMBs;
    double latencyNs;
};

Point
loadPoint(sys::SystemKind kind, int cpus, int outstanding,
          std::uint64_t reads, std::uint64_t seed,
          net::RouterKind router)
{
    std::unique_ptr<sys::Machine> m;
    if (kind == sys::SystemKind::GS1280) {
        sys::Gs1280Options opt;
        opt.mlp = outstanding;
        opt.routerKind = router;
        m = sys::Machine::buildGS1280(cpus, opt);
    } else {
        m = sys::Machine::buildGS320(cpus, 1, outstanding);
    }

    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            c, cpus, 512ULL << 20, reads,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }

    Tick start = m->ctx().now();
    bool ok = m->run(sources, 20000 * tickMs);
    double ns = ticksToNs(m->ctx().now() - start);
    if (!ok)
        return Point{0, 0};

    double bytes = static_cast<double>(cpus) *
                   static_cast<double>(reads) * 64.0;
    double lat = 0;
    for (int c = 0; c < cpus; ++c)
        lat += m->node(c).stats().missLatencyNs.mean();
    return Point{bytes / ns * 1000.0, lat / cpus};
}

/** One sweep: a named (system, CPU-count) latency/bandwidth curve. */
struct Curve
{
    const char *name;
    sys::SystemKind kind;
    int cpus;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withRouterArg(bench::withSweepArgs(
                  {{"reads", "reads per CPU per point (default 600)"},
                   {"full", "include the 64P sweep (slow)"}})));
    auto reads = static_cast<std::uint64_t>(args.getInt("reads", 600));
    bool full = args.getBool("full", false);
    // Applies to the GS1280 curves; the GS320 reference system has
    // its own switch-based fabric and ignores the flag.
    net::RouterKind router = bench::routerKindArg(args);
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 15: load test, latency (ns) vs delivered "
                "bandwidth (MB/s)");

    const std::vector<int> outs = {1, 2, 4, 8, 12, 16, 24, 30};

    std::vector<Curve> curves = {
        {"GS1280 16P", sys::SystemKind::GS1280, 16},
        {"GS1280 32P", sys::SystemKind::GS1280, 32},
    };
    if (full)
        curves.push_back({"GS1280 64P", sys::SystemKind::GS1280, 64});
    curves.push_back({"GS320 16P", sys::SystemKind::GS320, 16});
    curves.push_back({"GS320 32P", sys::SystemKind::GS320, 32});

    // Flatten (curve x outstanding) into one declared point list.
    struct Task
    {
        Curve curve;
        int outstanding;
    };
    std::vector<Task> tasks;
    for (const auto &c : curves)
        for (int o : outs)
            tasks.push_back({c, o});

    auto measured = runner.map(
        tasks, [&](const Task &tk, SweepPoint sp) -> Point {
            return loadPoint(tk.curve.kind, tk.curve.cpus,
                             tk.outstanding, reads, sp.seed, router);
        });

    std::size_t at = 0;
    for (const auto &c : curves) {
        Table t({"outstanding", "bandwidth MB/s", "latency ns"});
        for (int o : outs) {
            const Point &p = measured[at++];
            t.addRow({Table::num(o), Table::num(p.bwMBs, 0),
                      Table::num(p.latencyNs, 0)});
        }
        std::cout << "\n-- " << c.name << " --\n";
        t.print(std::cout);
    }

    std::cout << "\npaper shape: GS1280 gains bandwidth with modest "
                 "latency growth; GS320 latency explodes at ~1/10th "
                 "the bandwidth\n";
    return 0;
}

/**
 * @file
 * Ablation study: how much of the GS1280's interconnect behaviour
 * comes from each design choice Section 2 describes?
 *
 *  1. Minimal-adaptive routing vs dimension-order only, under
 *     uniform random traffic (latency/throughput curves).
 *  2. Cut-through forwarding vs store-and-forward per hop.
 *  3. Adaptive-VC buffer depth.
 *
 * Not a paper figure: this is the design-space homework behind the
 * paper's claims (DESIGN.md's ablation item).
 */

#include <iostream>

#include "common.hh"
#include "net/synthetic.hh"
#include "sim/args.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::net;

SyntheticResult
run(const NetworkParams &params, double rate, int w = 4, int h = 4)
{
    SimContext ctx;
    topo::Torus2D topo(w, h);
    Network net(ctx, topo, params);
    SyntheticConfig cfg;
    cfg.injectionRate = rate;
    cfg.measureCycles = 6000;
    return runSynthetic(ctx, net, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, bench::withSweepArgs());
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Ablation 1: adaptive routing vs dimension-order "
                "(4x4, uniform random)");
    {
        const std::vector<double> rates = {0.02, 0.05, 0.10, 0.20,
                                           0.35};
        auto t = bench::sweepTable(
            runner,
            {"inj rate", "adaptive lat ns", "adaptive thru",
             "DOR lat ns", "DOR thru"},
            rates, [&](double rate, SweepPoint) -> bench::Row {
                NetworkParams a = NetworkParams::gs1280();
                NetworkParams d = NetworkParams::gs1280();
                d.adaptiveEnabled = false;
                auto ra = run(a, rate);
                auto rd = run(d, rate);
                return {Table::num(rate, 2),
                        Table::num(ra.avgLatencyNs, 0),
                        Table::num(ra.acceptedFlitsPerNodeCycle, 2),
                        Table::num(rd.avgLatencyNs, 0),
                        Table::num(rd.acceptedFlitsPerNodeCycle, 2)};
            });
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Ablation 2: cut-through vs store-and-forward "
                "(latency at low load, by distance)");
    {
        const std::vector<std::pair<int, int>> shapes = {
            {4, 2}, {4, 4}, {8, 4}, {8, 8}};
        auto t = bench::sweepTable(
            runner,
            {"torus", "cut-through ns", "store-fwd ns", "penalty"},
            shapes,
            [&](const std::pair<int, int> &s, SweepPoint)
                -> bench::Row {
                auto [w, h] = s;
                NetworkParams ct = NetworkParams::gs1280();
                NetworkParams sf = NetworkParams::gs1280();
                sf.cutThrough = false;
                auto rc = run(ct, 0.01, w, h);
                auto rs = run(sf, 0.01, w, h);
                return {std::to_string(w) + "x" + std::to_string(h),
                        Table::num(rc.avgLatencyNs, 0),
                        Table::num(rs.avgLatencyNs, 0),
                        Table::num(rs.avgLatencyNs / rc.avgLatencyNs,
                                   2)};
            });
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Ablation 3: adaptive VC depth (4x4, 0.2 inj rate)");
    {
        const std::vector<int> depths = {18, 36, 72, 144};
        auto t = bench::sweepTable(
            runner, {"adaptive VC flits", "latency ns", "throughput"},
            depths, [&](int depth, SweepPoint) -> bench::Row {
                NetworkParams p = NetworkParams::gs1280();
                p.adaptiveVcFlits = depth;
                auto r = run(p, 0.2);
                return {Table::num(depth),
                        Table::num(r.avgLatencyNs, 0),
                        Table::num(r.acceptedFlitsPerNodeCycle, 2)};
            });
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Ablation 4: traffic patterns (4x4, 0.1 inj rate)");
    {
        const std::vector<std::pair<const char *, TrafficPattern>>
            patterns = {
                {"uniform", TrafficPattern::UniformRandom},
                {"bit-complement", TrafficPattern::BitComplement},
                {"transpose", TrafficPattern::Transpose},
                {"nearest-neighbour", TrafficPattern::NearestNeighbor},
                {"hot-spot", TrafficPattern::HotSpot},
            };
        auto t = bench::sweepTable(
            runner, {"pattern", "latency ns", "throughput", "avg hops"},
            patterns,
            [&](const std::pair<const char *, TrafficPattern> &p,
                SweepPoint) -> bench::Row {
                SimContext ctx;
                topo::Torus2D topo(4, 4);
                Network net(ctx, topo, NetworkParams::gs1280());
                SyntheticConfig cfg;
                cfg.pattern = p.second;
                cfg.injectionRate = 0.1;
                cfg.measureCycles = 6000;
                auto r = runSynthetic(ctx, net, cfg);
                return {p.first, Table::num(r.avgLatencyNs, 0),
                        Table::num(r.acceptedFlitsPerNodeCycle, 2),
                        Table::num(r.avgHops, 2)};
            });
        t.print(std::cout);
    }
    return 0;
}

/**
 * @file
 * Figure 20: Fluent memory-controller and IP-link utilization over
 * time on the GS1280, sampled Xmesh-style.
 *
 * Paper: both averages sit in low single digits (2-12%) — the
 * application is CPU-bound, which is why Figure 19 shows no GS1280
 * advantage.
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/xmesh.hh"
#include "workload/fluent.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, {{"cpus", "CPU count (default 8)"}});
    int cpus = static_cast<int>(args.getInt("cpus", 8));

    printBanner(std::cout,
                "Figure 20: Fluent memory and IP-link utilization "
                "over time (" + std::to_string(cpus) + "P GS1280)");

    auto m = sys::Machine::buildGS1280(cpus);
    sys::Xmesh mon(*m, 60 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<wl::FluentCfd>> ranks;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        ranks.push_back(std::make_unique<wl::FluentCfd>(c, cpus));
        sources.push_back(ranks.back().get());
    }
    bool ok = m->run(sources, 20000 * tickMs);
    mon.stop();

    Table t({"timestamp us", "memory controllers (avg %)",
             "IP-links (avg %)"});
    for (const auto &s : mon.samples()) {
        t.addRow({Table::num(ticksToNs(s.when) / 1000.0, 0),
                  Table::num(s.avgMemUtil * 100, 1),
                  Table::num(s.avgLinkUtil * 100, 1)});
    }
    t.print(std::cout);
    if (!ok)
        std::cout << "[run hit the time limit]\n";
    std::cout << "\npaper: both curves sit at ~2-12% — no memory or "
                 "interconnect stress\n";
    return 0;
}

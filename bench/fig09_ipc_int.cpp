/**
 * @file
 * Figure 9: SPECint2000 IPC per benchmark — comparable across
 * machines (cache-resident) except mcf, which follows latency.
 */

#include <iostream>

#include "cpu/analytic_core.hh"
#include "sim/table.hh"
#include "workload/spec_profiles.hh"

int
main(int, char **)
{
    using namespace gs;
    printBanner(std::cout, "Figure 9: IPC comparison, SPECint2000");

    auto gs1280 = cpu::MachineTiming::gs1280();
    auto es45 = cpu::MachineTiming::es45();
    auto gs320 = cpu::MachineTiming::gs320();

    Table t({"benchmark", "GS1280/1.15GHz", "ES45/1.25GHz",
             "GS320/1.22GHz"});
    for (const auto &p : wl::specInt2000()) {
        t.addRow({p.name,
                  Table::num(cpu::evaluateIpc(p, gs1280).ipc, 2),
                  Table::num(cpu::evaluateIpc(p, es45).ipc, 2),
                  Table::num(cpu::evaluateIpc(p, gs320).ipc, 2)});
    }
    t.print(std::cout);

    std::cout << "\npaper shape: comparable IPC everywhere (the "
                 "integer suite fits MB-size caches); mcf favors the "
                 "GS1280's 83 ns memory\n";
    return 0;
}

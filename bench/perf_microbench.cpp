/**
 * @file
 * Simulator-performance microbenchmarks (google-benchmark): how fast
 * the substrate itself runs. Useful when sizing experiments — e.g.
 * a 64P GUPS run executes millions of events and these numbers say
 * what that costs on the host.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "coherence/node.hh"
#include "mem/cache.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/telemetry.hh"
#include "system/machine.hh"
#include "topology/torus.hh"
#include "workload/gups.hh"

// The frozen pre-SoA router, kept verbatim as the A/B reference
// (tests/net/router_ab_test.cc proves bit-identity; BM_RouterStorm*
// below measures what the layout change buys).
#include "../tests/net/legacy_router.hh"

namespace
{

using namespace gs;

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        eq.schedule(1, [&] { fired += 1; });
        eq.step();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_EventQueueScheduleFireFar(benchmark::State &state)
{
    // Events landing beyond the calendar window: every schedule goes
    // through the overflow heap and migrates into the ring later.
    EventQueue eq;
    std::uint64_t fired = 0;
    const Tick far = EventQueue::horizon + 1;
    for (auto _ : state) {
        eq.schedule(1, [&] { fired += 1; });  // keeps the ring live
        eq.schedule(far, [&] { fired += 1; }); // parks in the heap
        eq.step();
        eq.step();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueScheduleFireFar);

void
BM_EventQueueMixed(benchmark::State &state)
{
    // Burst-and-drain with mixed offsets: same-tick ties, in-window
    // spreads and occasional far events — the simulator's steady
    // state in miniature.
    EventQueue eq;
    std::uint64_t fired = 0;
    Rng rng(42);
    for (auto _ : state) {
        for (int k = 0; k < 16; ++k) {
            Tick d = rng.below(4 * EventQueue::bucketWidth);
            if (k == 15)
                d = EventQueue::horizon + d;
            eq.schedule(d, [&] { fired += 1; });
        }
        eq.runUntil();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueMixed);

void
BM_EventQueueCaptureLarge(benchmark::State &state)
{
    // A capture bigger than InlineFn's buffer (a Packet by value
    // plus a pointer): the heap-fallback path, the cost every event
    // paid before handles shrank the hot captures.
    EventQueue eq;
    std::uint64_t sink = 0;
    net::Packet pkt;
    pkt.flits = net::dataFlits;
    static_assert(sizeof(net::Packet) + sizeof(void *) >
                      InlineFn::inlineCapacity,
                  "capture must overflow the inline buffer");
    for (auto _ : state) {
        eq.schedule(1, [pkt, &sink] {
            sink += static_cast<std::uint64_t>(pkt.flits);
        });
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCaptureLarge);

void
BM_PacketPoolAcquireRelease(benchmark::State &state)
{
    net::PacketPool pool;
    net::Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.flits = net::dataFlits;
    for (auto _ : state) {
        net::PacketHandle h = pool.acquire(pkt);
        benchmark::DoNotOptimize(pool.get(h).flits);
        pool.release(h);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketPoolAcquireRelease);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= rng.next();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngNext);

void
BM_CacheLookupHit(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams::ev7L2());
    for (mem::Addr a = 0; a < 1024 * 64; a += 64)
        cache.fill(a, mem::LineState::Shared);
    mem::Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a, false).hit);
        a = (a + 64) % (1024 * 64);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupHit);

void
BM_TorusRouteCompute(benchmark::State &state)
{
    topo::Torus2D torus(8, 8);
    Rng rng(7);
    for (auto _ : state) {
        auto src = static_cast<NodeId>(rng.below(64));
        auto dst = static_cast<NodeId>(rng.below(64));
        benchmark::DoNotOptimize(torus.adaptivePorts(src, dst, 0));
        benchmark::DoNotOptimize(torus.escapeRoute(src, dst, 0));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TorusRouteCompute);

void
BM_NetworkPacketDelivery(benchmark::State &state)
{
    // End-to-end cost of simulating one 4-hop packet on a 4x4 torus.
    SimContext ctx;
    topo::Torus2D torus(4, 4);
    net::Network network(ctx, torus, net::NetworkParams::gs1280());
    network.setHandler(10, [](const net::Packet &) {});
    for (auto _ : state) {
        net::Packet pkt;
        pkt.src = 0;
        pkt.dst = 10;
        pkt.cls = net::MsgClass::BlockResponse;
        pkt.flits = net::dataFlits;
        network.inject(pkt);
        ctx.queue().runUntil();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkPacketDelivery);

void
BM_NetworkPacketDeliveryRegistered(benchmark::State &state)
{
    // The BM_NetworkPacketDelivery hot path with the full telemetry
    // registry attached. Registration is pull-based (the registry
    // only holds pointers), so this must track the bare benchmark
    // within noise — the telemetry layer's <=2% overhead budget.
    SimContext ctx;
    topo::Torus2D torus(4, 4);
    net::Network network(ctx, torus, net::NetworkParams::gs1280());
    network.setHandler(10, [](const net::Packet &) {});

    telem::Registry reg;
    network.registerTelemetry(reg, "net");
    auto portName = [](int p) { return "p" + std::to_string(p); };
    for (NodeId n = 0; n < 16; ++n) {
        network.router(n).registerTelemetry(
            reg, telem::path("node", n, "router"), portName);
    }

    for (auto _ : state) {
        net::Packet pkt;
        pkt.src = 0;
        pkt.dst = 10;
        pkt.cls = net::MsgClass::BlockResponse;
        pkt.flits = net::dataFlits;
        network.inject(pkt);
        ctx.queue().runUntil();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkPacketDeliveryRegistered);

/**
 * The router hot-path microbenchmark: a seeded uniform-random packet
 * storm on an 8x8 torus, injected in bursts deep enough to keep every
 * VC arbitration, credit round-trip and link serialization busy, then
 * drained. Templated over the fabric so the SoA Network, the frozen
 * legacy AoS router and the bufferless deflection backend all run the
 * exact same traffic; items/sec is packets delivered per wall second.
 */
template <typename Net, typename... Extra>
void
routerStorm(benchmark::State &state, Extra &&...extra)
{
    constexpr int w = 8, h = 8;
    constexpr int nodes = w * h;
    constexpr int burst = 512;
    SimContext ctx;
    topo::Torus2D torus(w, h);
    Net network(ctx, torus, std::forward<Extra>(extra)...);
    std::uint64_t delivered = 0;
    for (NodeId n = 0; n < nodes; ++n)
        network.setHandler(n, [&](const net::Packet &) {
            delivered += 1;
        });
    Rng rng(99);
    for (auto _ : state) {
        for (int k = 0; k < burst; ++k) {
            net::Packet pkt;
            pkt.src = static_cast<NodeId>(rng.below(nodes));
            do {
                pkt.dst = static_cast<NodeId>(rng.below(nodes));
            } while (pkt.dst == pkt.src);
            pkt.cls = (k % 3 == 0) ? net::MsgClass::BlockResponse
                                   : net::MsgClass::Request;
            pkt.flits = pkt.cls == net::MsgClass::BlockResponse
                            ? net::dataFlits
                            : net::headerFlits;
            network.inject(pkt);
        }
        ctx.queue().runUntil();
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}

void
BM_RouterStormSoA(benchmark::State &state)
{
    routerStorm<net::Network>(state, net::NetworkParams::gs1280());
}
BENCHMARK(BM_RouterStormSoA);

void
BM_RouterStormLegacy(benchmark::State &state)
{
    routerStorm<net::legacy::LegacyNet>(state,
                                        net::NetworkParams::gs1280());
}
BENCHMARK(BM_RouterStormLegacy);

void
BM_RouterStormBufferless(benchmark::State &state)
{
    net::NetworkParams prm = net::NetworkParams::gs1280();
    prm.routerKind = net::RouterKind::Bufferless;
    routerStorm<net::Network>(state, prm);
}
BENCHMARK(BM_RouterStormBufferless);

void
BM_CoherentLocalMiss(benchmark::State &state)
{
    // One local read miss through MAF + directory + Zbox and back.
    SimContext ctx;
    topo::Torus2D torus(2, 1);
    net::Network network(ctx, torus, net::NetworkParams::gs1280());
    mem::NodeOwnedMap map;
    coher::NodeConfig cfg;
    coher::CoherentNode node(ctx, network, 0, map, cfg);
    coher::CoherentNode other(ctx, network, 1, map, cfg);

    mem::Addr a = 0;
    for (auto _ : state) {
        bool done = false;
        node.memAccess(a, false, [&] { done = true; });
        ctx.queue().runUntil();
        benchmark::DoNotOptimize(done);
        a += 64; // fresh line every time: always a miss
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoherentLocalMiss);

/**
 * The mem.* gauge family (docs/SCALING.md): bytes of host memory per
 * simulated node, reported through the items/sec channel so the same
 * JSON machinery that gates throughput can gate footprint. Each
 * iteration takes a fixed manual "time" of 1 s and claims
 * bytes-per-node "items", so items_per_second IS the gauge — a pure
 * function of the build, not of host speed. scripts/bench_compare.py
 * treats every benchmark named mem.* as lower-is-better; the CI
 * scale-smoke lane diffs these rows against
 * bench/baselines/BENCH_scale.json with --max-regress.
 */
void
memBytesPerNode(benchmark::State &state, int x, int y, int z,
                bool dense, std::uint64_t gupsUpdates)
{
    double bytesPerNode = 0;
    for (auto _ : state) {
        sys::Gs1280Options opt;
        std::unique_ptr<sys::Machine> m =
            z > 1 ? sys::Machine::buildGS1280_3D(x, y, z, opt)
                  : sys::Machine::buildGS1280(x * y, opt);
        if (gupsUpdates > 0) {
            std::vector<std::unique_ptr<wl::Gups>> gens;
            std::vector<cpu::TrafficSource *> sources;
            for (int c = 0; c < 16; ++c) {
                gens.push_back(std::make_unique<wl::Gups>(
                    m->cpuCount(), 64ULL << 10, gupsUpdates,
                    Rng::deriveSeed(5,
                                    static_cast<std::uint64_t>(c))));
                sources.push_back(gens.back().get());
            }
            bool ok = m->run(sources);
            benchmark::DoNotOptimize(ok);
        }
        const auto nodes = static_cast<double>(m->nodeCount());
        bytesPerNode =
            static_cast<double>(dense ? m->denseMemFootprintBytes()
                                      : m->memFootprintBytes()) /
            nodes;
        state.SetIterationTime(1.0);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        static_cast<double>(state.iterations()) * bytesPerNode));
}

// One iteration each: the gauge is deterministic, repetition buys
// nothing. Registered by name (not the BENCHMARK macro) so the family
// shares one body across shapes.
const int memBenchesRegistered = [] {
    auto reg = [](const char *name, int x, int y, int z, bool dense,
                  std::uint64_t updates) {
        benchmark::RegisterBenchmark(
            name,
            [x, y, z, dense, updates](benchmark::State &st) {
                memBytesPerNode(st, x, y, z, dense, updates);
            })
            ->UseManualTime()
            ->Iterations(1);
    };
    reg("mem.bytes_per_node_2d64", 8, 8, 1, false, 0);
    reg("mem.bytes_per_node_3d512", 8, 8, 8, false, 0);
    reg("mem.bytes_per_node_3d2048", 16, 16, 8, false, 0);
    reg("mem.bytes_per_node_3d2048_gups", 16, 16, 8, false, 25);
    reg("mem.dense_bytes_per_node_3d2048", 16, 16, 8, true, 0);
    return 1;
}();

void
BM_ParallelEpoch(benchmark::State &state)
{
    // End-to-end cost of the parallel engine's epoch machinery on
    // the canonical 64P GUPS workload, swept over worker-thread
    // counts (Arg). Results are bit-identical across args — only the
    // wall clock moves — so items/sec here IS the engine speedup.
    const int threads = static_cast<int>(state.range(0));
    constexpr int cpus = 64;
    constexpr std::uint64_t updates = 200;
    for (auto _ : state) {
        state.PauseTiming();
        sys::Gs1280Options opt;
        opt.mlp = 16;
        opt.threads = threads;
        auto m = sys::Machine::buildGS1280(cpus, opt);
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < cpus; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                cpus, 256ULL << 20, updates,
                Rng::deriveSeed(7, static_cast<std::uint64_t>(c))));
            sources.push_back(gens.back().get());
        }
        state.ResumeTiming();
        bool ok = m->run(sources, 30000 * tickMs);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * cpus * static_cast<std::int64_t>(updates)));
}
// UseRealTime: the engine's own workers do most of the simulating,
// so main-thread CPU time shrinks with Arg and would fake scaling;
// wall clock is the number the speedup claim is about.
BENCHMARK(BM_ParallelEpoch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_ParallelEpochTile(benchmark::State &state)
{
    // Same 64P GUPS workload with the tile decomposition pinned to
    // Arg(1) x Arg(2), swept over worker-thread counts (Arg(0)).
    // Pinning the shape keeps the decomposition — and therefore the
    // simulated results — identical across the thread sweep, so this
    // family measures pure engine scaling at a fixed tiling.
    const int threads = static_cast<int>(state.range(0));
    constexpr int cpus = 64;
    constexpr std::uint64_t updates = 200;
    for (auto _ : state) {
        state.PauseTiming();
        sys::Gs1280Options opt;
        opt.mlp = 16;
        opt.threads = threads;
        opt.tileRows = static_cast<int>(state.range(1));
        opt.tileCols = static_cast<int>(state.range(2));
        auto m = sys::Machine::buildGS1280(cpus, opt);
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < cpus; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                cpus, 256ULL << 20, updates,
                Rng::deriveSeed(7, static_cast<std::uint64_t>(c))));
            sources.push_back(gens.back().get());
        }
        state.ResumeTiming();
        bool ok = m->run(sources, 30000 * tickMs);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * cpus * static_cast<std::int64_t>(updates)));
}
BENCHMARK(BM_ParallelEpochTile)
    ->Args({1, 4, 2})->Args({2, 4, 2})->Args({4, 4, 2})->Args({8, 4, 2})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

BENCHMARK_MAIN();

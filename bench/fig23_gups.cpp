/**
 * @file
 * Figure 23: GUPS (Mupdates/s) vs CPU count — the paper's strongest
 * GS1280 result (>10x the GS320 at scale), with the bend at 32P
 * where the 8x4 torus's cross-sectional bandwidth matches the 16P
 * machine's.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/gups.hh"

namespace
{

using namespace gs;

double
mups(sys::Machine &m, int cpus, std::uint64_t updates,
     std::uint64_t seed)
{
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            cpus, 256ULL << 20, updates,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    Tick start = m.ctx().now();
    if (!m.run(sources, 30000 * tickMs))
        return 0;
    double seconds = ticksToNs(m.ctx().now() - start) * 1e-9;
    return static_cast<double>(cpus) *
           static_cast<double>(updates) / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withRouterArg(bench::withCheckpointArgs(
                  bench::withTelemetryArgs(bench::withSweepArgs(
                      {{"updates", "updates per CPU (default 1500)"},
                       {"full",
                        "include the 64P point (slow)"}})))));
    auto updates =
        static_cast<std::uint64_t>(args.getInt("updates", 1500));
    bool full = args.getBool("full", false);
    int threads = bench::machineThreads(args);
    auto runner = bench::makeRunner(args);

    printBanner(std::cout, "Figure 23: GUPS (Mupdates/s) vs CPUs");

    std::vector<int> points;
    for (int cpus : {2, 4, 8, 16, 32, 64}) {
        if (cpus == 64 && !full)
            break;
        points.push_back(cpus);
    }

    auto t = bench::sweepTable(
        runner,
        {"#CPUs", "GS1280/1.15GHz", "GS320/1.2GHz",
         "ES45-class/1.25GHz"},
        points, [&](int cpus, SweepPoint sp) -> bench::Row {
            sys::Gs1280Options opt;
            opt.mlp = 16; // GUPS overlaps updates aggressively
            // bit-identical at any value for a fixed tile shape
            opt.threads = threads;
            bench::applyTileShape(args, opt);
            bench::applyRouterKind(args, opt);
            auto gs1280 = sys::Machine::buildGS1280(cpus, opt);
            double a = mups(*gs1280, cpus, updates,
                            Rng::deriveSeed(sp.seed, 0));

            std::string b = "-";
            if (cpus <= 32 && (cpus % 4 == 0 || cpus < 4)) {
                auto gs320 = sys::Machine::buildGS320(cpus);
                b = Table::num(mups(*gs320, cpus, updates / 4,
                                    Rng::deriveSeed(sp.seed, 1)),
                               1);
            }

            std::string c = "-";
            if (cpus <= 4) {
                auto es45 = sys::Machine::buildES45(cpus);
                c = Table::num(mups(*es45, cpus, updates / 2,
                                    Rng::deriveSeed(sp.seed, 2)),
                               1);
            }
            return {Table::num(cpus), Table::num(a, 1), b, c};
        });
    t.print(std::cout);

    std::cout << "\npaper shape: GS1280 climbs toward ~1000 Mup/s at "
                 "64P with a bend at 32P (bisection-limited 8x4 "
                 "torus); GS320 stays near ~50-100\n";

    // The sweep above spreads point machines across worker threads,
    // so the observed run is a separate one: the 32P (8x4) machine of
    // the Figure 24 discussion, with the telemetry session attached
    // for --stats-out / --trace / --verbose and the checkpoint
    // session for --checkpoint-every / --restore-from. A restored run
    // reproduces the uninterrupted run's stats export byte-for-byte.
    if (args.has("stats-out") || args.has("trace") ||
        args.getBool("verbose", false) ||
        args.has("checkpoint-every") || args.has("restore-from") ||
        args.has("trace-sample") || args.has("span-trace")) {
        auto master =
            static_cast<std::uint64_t>(args.getInt("seed", 1));
        sys::Gs1280Options opt;
        opt.mlp = 16;
        opt.seed = master;
        opt.threads = threads;
        bench::applyTileShape(args, opt);
        bench::applyRouterKind(args, opt);
        bench::applySpanSampling(args, opt);
        auto m = sys::Machine::buildGS1280(32, opt);
        bench::TelemetrySession session(args, *m);
        bench::CheckpointSession ckpt(args, *m, session.sampler());

        const std::uint64_t seed = Rng::deriveSeed(master, 0);
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 32; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                32, 256ULL << 20, updates,
                Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
            sources.push_back(gens.back().get());
        }
        ckpt.maybeRestore(sources);
        Tick start = m->ctx().now();
        double rate = 0;
        if (m->run(sources, 30000 * tickMs)) {
            double seconds = ticksToNs(m->ctx().now() - start) * 1e-9;
            rate = 32.0 * static_cast<double>(updates) / seconds / 1e6;
        }
        session.finish();
        std::cout << "\ninstrumented 32P run: " << Table::num(rate, 1)
                  << " Mup/s";
        if (ckpt.restoring())
            std::cout << " (measured from the restored snapshot on)";
        if (args.has("stats-out"))
            std::cout << ", stats -> "
                      << args.getString("stats-out", "");
        if (args.has("trace"))
            std::cout << ", trace -> " << args.getString("trace", "");
        if (args.has("span-trace"))
            std::cout << ", spans -> "
                      << args.getString("span-trace", "");
        std::cout << "\n";
    }
    return 0;
}

/**
 * @file
 * Figure 27: the Xmesh display with a hot spot — all CPUs read from
 * CPU0; the monitor's per-node view shows the victim's memory
 * controllers far above everyone else's (the paper reads 53% on the
 * hot node).
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/xmesh.hh"
#include "workload/load_test.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              {{"cpus", "CPU count (default 16)"},
               {"reads", "reads per CPU (default 2500)"}});
    int cpus = static_cast<int>(args.getInt("cpus", 16));
    auto reads = static_cast<std::uint64_t>(args.getInt("reads", 2500));

    printBanner(std::cout,
                "Figure 27: Xmesh with a hot spot (" +
                    std::to_string(cpus) + "P GS1280, everyone reads "
                    "CPU0)");

    sys::Gs1280Options opt;
    opt.mlp = 8;
    auto m = sys::Machine::buildGS1280(cpus, opt);
    sys::Xmesh mon(*m, 100 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<wl::HotSpotReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::HotSpotReads>(
            0, 512ULL << 20, reads, 900 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    bool ok = m->run(sources, 30000 * tickMs);
    mon.stop();

    if (!mon.samples().empty()) {
        // Show the display at mid-run, like a live Xmesh screen.
        const auto &mid = mon.samples()[mon.samples().size() / 2];
        std::cout << mon.heatmap(mid) << '\n';
        std::cout << "hot node Zbox utilization: "
                  << Table::num(mid.memUtil[0] * 100, 1)
                  << "%   (paper's display reads 53% on the corner "
                     "CPU)\n";
    }
    if (!ok)
        std::cout << "[run hit the time limit]\n";
    return 0;
}

/**
 * @file
 * Table 1: performance gains from the shuffle rewiring — average
 * latency, worst-case latency and bisection width vs the torus.
 *
 * Prints both the paper's published model values and this library's
 * graph-derived values for its reconstructed wiring (exact for the
 * 4x2 machine that was physically rewired and measured in Figure 18,
 * and for the worst-case/bisection columns of nearly every row; see
 * EXPERIMENTS.md for the 16x16 deviation discussion).
 */

#include <iostream>

#include "analytic/shuffle_model.hh"
#include "sim/table.hh"

int
main(int, char **)
{
    using namespace gs;
    printBanner(std::cout, "Table 1: performance gains from shuffle");

    struct PaperRow
    {
        const char *size;
        double avg, worst, bisect;
    };
    const PaperRow paper[] = {
        {"4x2", 1.200, 1.500, 2.000},  {"4x4", 1.067, 1.333, 1.000},
        {"8x4", 1.171, 1.500, 2.000},  {"8x8", 1.185, 1.333, 1.000},
        {"16x8", 1.371, 1.500, 2.000}, {"16x16", 1.454, 1.778, 1.000},
    };

    Table t({"size", "aver. latency", "(paper)", "worst latency",
             "(paper)", "bisection width", "(paper)"});
    auto rows = analytic::table1();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        const auto &p = paper[i];
        t.addRow({p.size, Table::num(r.avgLatencyGain, 3),
                  Table::num(p.avg, 3),
                  Table::num(r.worstLatencyGain, 3),
                  Table::num(p.worst, 3),
                  Table::num(r.bisectionGain, 3),
                  Table::num(p.bisect, 3)});
    }
    t.print(std::cout);

    std::cout << "\nabsolute values (this library's wiring):\n";
    Table abs({"size", "torus avg", "shuffle avg", "torus worst",
               "shuffle worst", "torus bisect", "shuffle bisect"});
    for (const auto &r : rows) {
        abs.addRow({std::to_string(r.width) + "x" +
                        std::to_string(r.height),
                    Table::num(r.torusAvg, 3),
                    Table::num(r.shuffleAvg, 3),
                    Table::num(r.torusWorst),
                    Table::num(r.shuffleWorst),
                    Table::num(r.torusBisection),
                    Table::num(r.shuffleBisection)});
    }
    abs.print(std::cout);
    return 0;
}

/**
 * @file
 * Figure 14: average load-to-use latency vs CPU count (4-64),
 * GS1280 vs GS320 — simulated per-destination probes averaged over
 * all pairs via topology symmetry, cross-checked against the
 * closed-form model.
 */

#include <iostream>

#include "analytic/latency_model.hh"
#include "common.hh"
#include "sim/args.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;

/** One independent latency probe of the sweep. */
struct Probe
{
    sys::SystemKind kind;
    int cpus;
    int dst;
    std::uint64_t loads;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withCheckpointArgs(bench::withTelemetryArgs(
                  bench::withSweepArgs(
                      {{"loads", "loads per probe (default 3000)"}}))));
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 3000));
    int threads = bench::machineThreads(args);
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 14: average load-to-use latency (ns) vs CPUs");

    const std::vector<int> cpuCounts = {4, 8, 16, 32, 64};

    // Declare every probe up front: GS1280 node 0 -> every
    // destination (vertex-transitive torus, so node 0's average is
    // the machine average), GS320 local + worst remote.
    std::vector<Probe> probes;
    for (int cpus : cpuCounts) {
        for (int dst = 0; dst < cpus; ++dst)
            probes.push_back(
                {sys::SystemKind::GS1280, cpus, dst, loads});
        if (cpus <= 32) {
            probes.push_back(
                {sys::SystemKind::GS320, cpus, 0, loads / 2});
            if (cpus > 4)
                probes.push_back({sys::SystemKind::GS320, cpus,
                                  cpus - 1, loads / 2});
        }
    }

    auto ns = runner.map(
        probes, [&](const Probe &p, SweepPoint) -> double {
            if (p.kind == sys::SystemKind::GS1280) {
                sys::Gs1280Options opt;
                // bit-identical at any value for a fixed tile shape
                opt.threads = threads;
                bench::applyTileShape(args, opt);
                auto m = sys::Machine::buildGS1280(p.cpus, opt);
                return bench::dependentLoadNs(*m, 0, p.dst, 16 << 20,
                                              64, p.loads);
            }
            auto m = sys::Machine::buildGS320(p.cpus);
            return bench::dependentLoadNs(*m, 0, p.dst, 64 << 20, 64,
                                          p.loads);
        });

    Table t({"#CPUs", "GS1280 (sim)", "GS1280 (model)",
             "GS320 (sim)", "GS320 (model)"});
    std::size_t at = 0;
    for (int cpus : cpuCounts) {
        double sum = 0;
        for (int dst = 0; dst < cpus; ++dst)
            sum += ns[at++];
        double sim1280 = sum / cpus;

        auto [w, h] = sys::torusShape(cpus);
        topo::Torus2D torus(w, h);
        double model1280 =
            analytic::avgIdleLatencyNs(torus, 83.0, 44.0);

        std::string sim320 = "-", model320 = "-";
        if (cpus <= 32) {
            double local = ns[at++];
            double remote = cpus > 4 ? ns[at++] : local;
            int perQbb = std::min(cpus, 4);
            double avg = (perQbb * local + (cpus - perQbb) * remote) /
                         cpus;
            sim320 = Table::num(avg, 0);
            model320 = Table::num(
                analytic::gs320AvgLatencyNs(cpus, 4, local, remote),
                0);
        }

        t.addRow({Table::num(cpus), Table::num(sim1280, 0),
                  Table::num(model1280, 0), sim320, model320});
    }
    t.print(std::cout);

    std::cout << "\npaper shape: GS1280 grows gently (~180 ns at 16P, "
                 "~280 ns at 64P); GS320 sits at ~700-850 ns beyond "
                 "one QBB\n";

    // The probes above are sweep points on short-lived machines; the
    // observed run is a separate 16P GS1280 probe (CPU 0 chasing the
    // far-corner node) with the telemetry and checkpoint sessions
    // attached. A run restored via --restore-from reproduces the
    // uninterrupted run's --stats-out export byte-for-byte — the CI
    // determinism lane byte-compares exactly that.
    if (args.has("stats-out") || args.has("trace") ||
        args.getBool("verbose", false) ||
        args.has("checkpoint-every") || args.has("restore-from")) {
        auto master =
            static_cast<std::uint64_t>(args.getInt("seed", 1));
        sys::Gs1280Options opt;
        opt.seed = master;
        opt.threads = threads;
        bench::applyTileShape(args, opt);
        auto m = sys::Machine::buildGS1280(16, opt);
        bench::TelemetrySession session(args, *m);
        bench::CheckpointSession ckpt(args, *m, session.sampler());

        wl::PointerChase chase(m->cpuAddr(10, 0), 16 << 20, 64,
                               loads);
        std::vector<cpu::TrafficSource *> sources(16, nullptr);
        sources[0] = &chase;
        ckpt.maybeRestore(sources);
        bool ok = m->run(sources);
        session.finish();
        std::cout << "\ninstrumented 16P probe (0 -> 10): "
                  << (ok ? Table::num(
                               m->core(0).stats().elapsedNs() /
                                   static_cast<double>(loads),
                               1) + " ns/load"
                         : std::string("timed out"));
        if (args.has("stats-out"))
            std::cout << ", stats -> "
                      << args.getString("stats-out", "");
        std::cout << "\n";
    }
    return 0;
}

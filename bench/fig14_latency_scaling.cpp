/**
 * @file
 * Figure 14: average load-to-use latency vs CPU count (4-64),
 * GS1280 vs GS320 — simulated per-destination probes averaged over
 * all pairs via topology symmetry, cross-checked against the
 * closed-form model.
 */

#include <iostream>

#include "analytic/latency_model.hh"
#include "common.hh"
#include "sim/args.hh"
#include "topology/torus.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, {{"loads", "loads per probe (default 3000)"}});
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 3000));

    printBanner(std::cout,
                "Figure 14: average load-to-use latency (ns) vs CPUs");

    Table t({"#CPUs", "GS1280 (sim)", "GS1280 (model)",
             "GS320 (sim)", "GS320 (model)"});

    for (int cpus : {4, 8, 16, 32, 64}) {
        // GS1280: node 0's average over all destinations equals the
        // machine average (vertex-transitive torus).
        auto m = sys::Machine::buildGS1280(cpus);
        double sum = 0;
        for (int dst = 0; dst < cpus; ++dst)
            sum += bench::dependentLoadNs(*m, 0, dst, 16 << 20, 64,
                                          loads);
        double sim1280 = sum / cpus;

        auto [w, h] = sys::torusShape(cpus);
        topo::Torus2D torus(w, h);
        double model1280 =
            analytic::avgIdleLatencyNs(torus, 83.0, 44.0);

        std::string sim320 = "-", model320 = "-";
        if (cpus <= 32) {
            auto g = sys::Machine::buildGS320(cpus);
            double local = bench::dependentLoadNs(*g, 0, 0, 64 << 20,
                                                  64, loads / 2);
            double remote =
                cpus > 4 ? bench::dependentLoadNs(
                               *g, 0, cpus - 1, 64 << 20, 64,
                               loads / 2)
                         : local;
            int perQbb = std::min(cpus, 4);
            double avg = (perQbb * local + (cpus - perQbb) * remote) /
                         cpus;
            sim320 = Table::num(avg, 0);
            model320 = Table::num(
                analytic::gs320AvgLatencyNs(cpus, 4, local, remote),
                0);
        }

        t.addRow({Table::num(cpus), Table::num(sim1280, 0),
                  Table::num(model1280, 0), sim320, model320});
    }
    t.print(std::cout);

    std::cout << "\npaper shape: GS1280 grows gently (~180 ns at 16P, "
                 "~280 ns at 64P); GS320 sits at ~700-850 ns beyond "
                 "one QBB\n";
    return 0;
}

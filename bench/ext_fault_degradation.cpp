/**
 * @file
 * Failure-degradation study (extension; not a paper figure).
 *
 * Section 2 argues the GS1280's torus degrades gracefully: every
 * node pair has many paths, so a broken cable costs bandwidth, not
 * connectivity. The GS320's switch hierarchy is the opposite — one
 * uplink is a single point of failure for its whole QBB. This bench
 * quantifies both claims with the fault layer:
 *
 *  1. 8x8 torus, uniform and bit-complement synthetic traffic, with
 *     0 -> 8 East links of row 0 cut: bandwidth/latency vs failures.
 *  2. The same fabric's surviving-graph metrics (average/worst hop
 *     distance, connectivity) per failure count.
 *  3. GS320 contrast: cutting one QBB uplink. Cross-QBB traffic is
 *     dropped as unroutable; the machine partitions.
 *  4. Machine-level 16P GS1280: remote-region STREAM bandwidth and
 *     dependent-load latency as torus links fail.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "common.hh"
#include "fault/degraded.hh"
#include "fault/injector.hh"
#include "net/synthetic.hh"
#include "sim/table.hh"
#include "topology/torus.hh"
#include "topology/tree.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::fault;

/** Cut the East links of row 0's first @p k nodes. */
void
cutRowLinks(FaultInjector &inj, int k)
{
    for (int x = 0; x < k; ++x)
        inj.failLink(static_cast<NodeId>(x), topo::portEast);
}

net::SyntheticResult
degradedSynthetic(net::TrafficPattern pattern, int failedLinks)
{
    SimContext ctx;
    topo::Torus2D base(8, 8);
    DegradedTopology deg(base);
    net::Network net(ctx, deg, net::NetworkParams::gs1280());
    FaultInjector inj(ctx, net, deg);
    cutRowLinks(inj, failedLinks);

    net::SyntheticConfig cfg;
    cfg.pattern = pattern;
    cfg.injectionRate = 0.08;
    cfg.measureCycles = 6000;
    cfg.seed = 5;
    return runSynthetic(ctx, net, cfg);
}

/** Aggregate STREAM GB/s with every CPU streaming a remote region. */
double
remoteStreamGBs(sys::Machine &m, int cpus)
{
    std::vector<std::unique_ptr<wl::StreamTriad>> kernels;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        kernels.push_back(std::make_unique<wl::StreamTriad>(
            m.cpuAddr((c + cpus / 2) % cpus, 0), 2ULL << 20));
        sources.push_back(kernels.back().get());
    }
    Tick start = m.ctx().now();
    bool ok = m.run(sources, 2000 * tickMs);
    gs_assert(ok, "remote STREAM run timed out");
    double ns = ticksToNs(m.ctx().now() - start);
    double lines = 0;
    for (const auto &k : kernels)
        lines += static_cast<double>(k->linesProcessed());
    return lines * wl::StreamTriad::bytesPerLine / ns;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, gs::bench::withSweepArgs());
    auto runner = gs::bench::makeRunner(args);

    const std::vector<int> kCounts = {0, 1, 2, 4, 8};

    printBanner(std::cout,
                "Fault degradation 1: 8x8 torus synthetic traffic vs "
                "failed row-0 East links");
    {
        auto t = gs::bench::sweepTable(
            runner,
            {"failed links", "uniform lat ns", "uniform thru",
             "bit-comp lat ns", "bit-comp thru"},
            kCounts,
            [&](int k, SweepPoint) -> gs::bench::Row {
                auto u = degradedSynthetic(
                    net::TrafficPattern::UniformRandom, k);
                auto b = degradedSynthetic(
                    net::TrafficPattern::BitComplement, k);
                return {Table::num(k), Table::num(u.avgLatencyNs, 0),
                        Table::num(u.acceptedFlitsPerNodeCycle, 3),
                        Table::num(b.avgLatencyNs, 0),
                        Table::num(b.acceptedFlitsPerNodeCycle, 3)};
            });
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Fault degradation 2: surviving 8x8 graph metrics");
    {
        auto t = gs::bench::sweepTable(
            runner,
            {"failed links", "connected", "avg hops", "worst hops"},
            kCounts,
            [&](int k, SweepPoint) -> gs::bench::Row {
                SimContext ctx;
                topo::Torus2D base(8, 8);
                DegradedTopology deg(base);
                net::Network net(ctx, deg,
                                 net::NetworkParams::gs1280());
                FaultInjector inj(ctx, net, deg);
                cutRowLinks(inj, k);
                return {Table::num(k), deg.connected() ? "yes" : "NO",
                        Table::num(deg.averageDistance(), 3),
                        Table::num(deg.worstDistance())};
            });
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Fault degradation 3: GS320 QBB uplink failure "
                "(single point of failure)");
    {
        SimContext ctx;
        topo::QbbTree base(32, 4);
        DegradedTopology deg(base);
        net::Network net(ctx, deg, net::NetworkParams::gs320());
        FaultInjector inj(ctx, net, deg);

        // Drop accounting read back through the telemetry registry —
        // the same `fault.*` paths a Machine export carries.
        telem::Registry reg;
        inj.registerTelemetry(reg, "fault");

        int delivered = 0;
        for (NodeId n = 0; n < 32; ++n)
            net.setHandler(n, [&](const net::Packet &) {
                delivered += 1;
            });

        // QBB 0's switch is node 32; port 4 is its global uplink.
        inj.failLink(32, 4);

        int pairsCut = 0, pairsKept = 0;
        for (NodeId a = 0; a < 32; ++a)
            for (NodeId b = 0; b < 32; ++b)
                if (a != b)
                    (deg.reachable(a, b) ? pairsKept : pairsCut) += 1;

        // Offer one packet per ordered CPU pair.
        for (NodeId a = 0; a < 32; ++a) {
            for (NodeId b = 0; b < 32; ++b) {
                if (a == b)
                    continue;
                net::Packet p;
                p.src = a;
                p.dst = b;
                p.cls = net::MsgClass::Request;
                p.flits = net::headerFlits;
                net.inject(p);
            }
        }
        ctx.queue().runUntil(100 * tickMs);

        Table t({"metric", "value"});
        t.addRow({"CPU pairs still reachable", Table::num(pairsKept)});
        t.addRow({"CPU pairs disconnected", Table::num(pairsCut)});
        t.addRow({"packets delivered", Table::num(delivered)});
        t.addRow({"packets dropped (unroutable)",
                  Table::num(reg.value("fault.drops.unroutable"), 0)});
        t.addRow({"link failures applied",
                  Table::num(reg.value("fault.link_failures"), 0)});
        t.print(std::cout);
        std::cout << "(the torus above keeps every pair reachable "
                     "through 8 failures)\n";
    }

    printBanner(std::cout,
                "Fault degradation 4: 16P GS1280 remote STREAM + "
                "latency vs failed links");
    {
        const std::vector<int> machineCuts = {0, 1, 2, 4};
        auto t = gs::bench::sweepTable(
            runner,
            {"failed links", "remote STREAM GB/s", "remote load ns"},
            machineCuts,
            [&](int k, SweepPoint) -> gs::bench::Row {
                double gbs, ns;
                {
                    auto m = sys::Machine::buildGS1280(16);
                    cutRowLinks(m->faults(), k);
                    gbs = remoteStreamGBs(*m, 16);
                }
                {
                    auto m = sys::Machine::buildGS1280(16);
                    cutRowLinks(m->faults(), k);
                    // CPU 0 chasing node 2's region crosses the cut
                    // row.
                    ns = gs::bench::dependentLoadNs(*m, 0, 2);
                }
                return {Table::num(k), Table::num(gbs, 2),
                        Table::num(ns, 1)};
            });
        t.print(std::cout);
    }
    return 0;
}

/**
 * @file
 * Figure 25: throughput degradation from memory striping across
 * SPECfp_rate2000 (paper: 10-30%, from the extra inter-processor
 * traffic and remote-half latency).
 */

#include <iostream>

#include "sim/table.hh"
#include "workload/spec_profiles.hh"
#include "workload/spec_rate.hh"

int
main(int, char **)
{
    using namespace gs;
    printBanner(std::cout,
                "Figure 25: degradation from striping, "
                "SPECfp_rate2000 (16 copies)");

    Table t({"benchmark", "degradation %"});
    double worst = 0;
    for (const auto &p : wl::specFp2000()) {
        double d = wl::stripingDegradationPct(p, 16);
        worst = std::max(worst, d);
        t.addRow({p.name, Table::num(d, 1)});
    }
    t.print(std::cout);

    std::cout << "\nworst degradation: " << Table::num(worst, 1)
              << "%   (paper: 10-30% typical, up to 70% extreme "
                 "cases)\n";
    return 0;
}

/**
 * @file
 * Figure 21: NAS Parallel SP performance (MOPS) vs CPU count.
 *
 * Paper: SP streams memory hard (26% MC utilization, Figure 22), so
 * the GS1280's per-CPU bandwidth gives a large advantage over the
 * shared-memory SC45/ES45 and a bigger one over the GS320.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/nas_sp.hh"

namespace
{

using namespace gs;

double
mops(sys::Machine &m, int cpus)
{
    std::vector<std::unique_ptr<wl::NasSP>> ranks;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        ranks.push_back(std::make_unique<wl::NasSP>(c, cpus));
        sources.push_back(ranks.back().get());
    }
    Tick start = m.ctx().now();
    if (!m.run(sources, 30000 * tickMs))
        return 0;
    double seconds = ticksToNs(m.ctx().now() - start) * 1e-9;
    double points = 0;
    for (auto &r : ranks)
        points += static_cast<double>(r->pointsDone());
    // ~45 flop per processed grid point puts 16P in the paper's
    // thousands-of-MOPS range.
    return points * 45.0 / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, bench::withSweepArgs());
    auto runner = bench::makeRunner(args);

    printBanner(std::cout, "Figure 21: NAS Parallel SP (MOPS) vs CPUs");

    const std::vector<int> points = {1, 4, 8, 16, 32};
    auto t = bench::sweepTable(
        runner,
        {"#CPUs", "GS1280/1.15GHz", "SC45/1.25GHz", "GS320/1.2GHz"},
        points, [&](int cpus, SweepPoint) -> bench::Row {
            auto gs1280 = sys::Machine::buildGS1280(cpus);
            double a = mops(*gs1280, cpus);

            // SC45: 4-CPU boxes; SP's modest exchanges cost ~10%
            // across the cluster interconnect.
            int perBox = std::min(cpus, 4);
            auto es45 = sys::Machine::buildES45(perBox);
            double box = mops(*es45, perBox);
            double sc45 = box * (static_cast<double>(cpus) / perBox) *
                          (cpus > 4 ? 0.9 : 1.0);

            std::string c = "-";
            if (cpus <= 32 && (cpus % 4 == 0 || cpus < 4)) {
                auto gs320 = sys::Machine::buildGS320(cpus);
                c = Table::num(mops(*gs320, cpus), 0);
            }
            return {Table::num(cpus), Table::num(a, 0),
                    Table::num(sc45, 0), c};
        });
    t.print(std::cout);

    std::cout << "\npaper shape: GS1280 well above SC45, which is "
                 "above GS320; near-linear GS1280 scaling\n";
    return 0;
}

/**
 * @file
 * Scale-out extension (docs/SCALING.md): the 2-D vs 3-D torus at
 * matched node counts, 256P-2048P. The 2-D column is the analytic
 * model on the shape torusShape() would pick (the paper's machines
 * stop at 64P; these are the "what if HP had kept folding" shapes);
 * the 3-D column is the same model on the slab-stacked shape plus
 * simulated dependent-load probes and the lazy bytes/node gauge on
 * the real machine.
 *
 * With --gups-updates the bench also runs an aggregate-stats GUPS
 * on one 3-D machine (default 8x8x8 = 512P) — the CI scale-smoke
 * lane runs exactly that at --threads 1 vs 4 under a pinned
 * --tile-shape and byte-compares the output (docs/PARALLEL.md).
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "analytic/latency_model.hh"
#include "common.hh"
#include "sim/args.hh"
#include "sim/random.hh"
#include "topology/torus.hh"
#include "topology/torus3d.hh"
#include "workload/gups.hh"

namespace
{

using namespace gs;

/** One machine size of the sweep: N = x*y*z nodes both ways. */
struct Shape3D
{
    int x, y, z;

    int nodes() const { return x * y * z; }
    std::string
    name() const
    {
        return std::to_string(x) + "x" + std::to_string(y) + "x" +
               std::to_string(z);
    }
};

/** Mean hop count from node 0 to every other node (the torus is
 *  vertex-transitive, so node 0's average is the machine average). */
double
avgHops(const topo::Topology &topo)
{
    auto d = topo.distancesFrom(0);
    double sum = 0;
    for (int h : d)
        sum += h;
    return sum / static_cast<double>(d.size() - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(
        argc, argv,
        bench::withSweepArgs(
            {{"loads", "dependent loads per probe (default 1200)"},
             {"gups-updates",
              "also run a 3-D GUPS with this many updates per CPU "
              "and print aggregate stats (default 0 = off)"},
             {"gups-shape",
              "XxYxZ shape of the GUPS machine (default 8x8x8)"}}));
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 1200));
    int threads = bench::machineThreads(args);
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Scale-out: 2-D vs 3-D torus at matched node counts");

    const std::vector<Shape3D> shapes = {
        {8, 8, 4}, {8, 8, 8}, {16, 8, 8}, {16, 16, 8}};

    // Analytic comparison (mirrored by the Golden.Scaling3DModel row
    // in tests/integration/golden_test.cc): same node count, same
    // latency model, only the fold differs.
    Table model({"nodes", "2D shape", "2D hops", "2D model ns",
                 "3D shape", "3D hops", "3D model ns", "hop gain"});
    for (const auto &s : shapes) {
        auto [w, h] = sys::torusShape(s.nodes());
        topo::Torus2D t2(w, h);
        topo::Torus3D t3(s.x, s.y, s.z);
        double h2 = avgHops(t2), h3 = avgHops(t3);
        model.addRow(
            {Table::num(s.nodes()),
             std::to_string(w) + "x" + std::to_string(h),
             Table::num(h2, 3),
             Table::num(analytic::avgIdleLatencyNs(t2, 83.0, 44.0), 2),
             s.name(), Table::num(h3, 3),
             Table::num(analytic::avgIdleLatencyNs(t3, 83.0, 44.0), 2),
             Table::num(h2 / h3, 3)});
    }
    model.print(std::cout);

    // Simulated probes on the real 3-D machines: a one-hop neighbour
    // and the far corner, plus what the lazily-built machine actually
    // costs per node in host memory.
    std::cout << "\nsimulated 3-D probes (node 0, idle machine):\n";
    auto rows = runner.map(
        shapes, [&](const Shape3D &s, SweepPoint) -> bench::Row {
            sys::Gs1280Options opt;
            opt.threads = threads;
            bench::applyTileShape(args, opt);
            auto m = sys::Machine::buildGS1280_3D(s.x, s.y, s.z, opt);
            topo::Torus3D t3(s.x, s.y, s.z);
            NodeId far = t3.nodeAt(s.x / 2, s.y / 2, s.z / 2);
            double nearNs =
                bench::dependentLoadNs(*m, 0, 1, 4 << 20, 64, loads);
            double farNs = bench::dependentLoadNs(
                *m, 0, far, 4 << 20, 64, loads, 1 << 20);
            return {s.name(), Table::num(s.nodes()),
                    Table::num(nearNs, 1), Table::num(farNs, 1),
                    Table::num(
                        analytic::avgIdleLatencyNs(t3, 83.0, 44.0), 1),
                    Table::num(m->telemetry().value(
                                   "mem.bytes_per_node") /
                                   1024.0,
                               1)};
        });
    Table sim({"shape", "nodes", "1-hop ns", "far-corner ns",
               "model avg ns", "KiB/node"});
    for (auto &r : rows)
        sim.addRow(std::move(r));
    sim.print(std::cout);

    std::cout << "\nshape: the 3-D fold halves the diameter at every "
                 "matched size; 2048P lands near the 256P 2-D "
                 "machine's average hop count\n";

    // Optional GUPS leg: aggregate (per-CPU-free) stats only, so the
    // output is byte-comparable across worker-thread counts at any
    // machine size.
    auto gupsUpdates =
        static_cast<std::uint64_t>(args.getInt("gups-updates", 0));
    if (gupsUpdates > 0) {
        const std::string shape =
            args.getString("gups-shape", "8x8x8");
        int x = 0, y = 0, z = 0;
        if (std::sscanf(shape.c_str(), "%dx%dx%d", &x, &y, &z) != 3 ||
            x < 1 || y < 1 || z < 1)
            gs_fatal("--gups-shape=", shape, ": expected XxYxZ");

        sys::Gs1280Options opt;
        opt.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
        opt.threads = threads;
        bench::applyTileShape(args, opt);
        auto m = sys::Machine::buildGS1280_3D(x, y, z, opt);

        const int cpus = m->cpuCount();
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < cpus; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                cpus, 1ULL << 20, gupsUpdates,
                Rng::deriveSeed(opt.seed,
                                static_cast<std::uint64_t>(c))));
            sources.push_back(gens.back().get());
        }
        bool ok = m->run(sources);
        std::uint64_t updates = 0;
        for (auto &g : gens)
            updates += g->updatesIssued();
        const auto &st = m->network().stats();

        printBanner(std::cout, "3-D GUPS " + shape + " (" +
                                   std::to_string(cpus) + "P)");
        Table g({"metric", "value"});
        g.addRow({"completed", ok ? "yes" : "timed out"});
        g.addRow({"updates", Table::num(updates)});
        g.addRow({"sim end ns",
                  Table::num(ticksToNs(m->ctx().now()), 0)});
        g.addRow({"packets injected", Table::num(st.injectedPackets)});
        g.addRow({"packets delivered",
                  Table::num(st.deliveredPackets)});
        g.addRow({"latency min ns", Table::num(st.latencyNs.min(), 2)});
        g.addRow({"latency max ns", Table::num(st.latencyNs.max(), 2)});
        g.addRow({"latency mean ns",
                  Table::num(st.latencyNs.mean(), 2)});
        g.addRow({"KiB/node (lazy)",
                  Table::num(m->telemetry().value(
                                 "mem.bytes_per_node") /
                                 1024.0,
                             1)});
        g.addRow({"dense/lazy reduction",
                  Table::num(m->telemetry().value("mem.reduction"),
                             2)});
        g.print(std::cout);
    }
    return 0;
}

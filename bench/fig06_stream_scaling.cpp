/**
 * @file
 * Figure 6: McCalpin STREAM Triad bandwidth vs CPU count. The
 * GS1280's per-CPU RDRAM makes aggregate bandwidth scale linearly;
 * the shared-memory GS320 saturates per QBB.
 */

#include <iostream>

#include "common.hh"
#include "sim/args.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"max-cpus", "largest GS1280 point (default 32)"},
                   {"array-mb", "per-CPU array MB (default 2)"}}));
    int maxCpus = static_cast<int>(args.getInt("max-cpus", 32));
    auto arrayBytes = static_cast<std::uint64_t>(
                          args.getInt("array-mb", 2)) << 20;
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 6: STREAM Triad bandwidth (GB/s) vs CPUs");

    std::vector<int> points;
    for (int cpus : {1, 2, 4, 8, 16, 32, 64})
        if (cpus <= maxCpus)
            points.push_back(cpus);

    auto t = bench::sweepTable(
        runner, {"#CPUs", "GS1280/1.15GHz", "GS320/1.2GHz"}, points,
        [&](int cpus, SweepPoint) -> bench::Row {
            auto gs1280 = sys::Machine::buildGS1280(cpus);
            double a =
                bench::streamTriadGBs(*gs1280, cpus, arrayBytes);

            std::string b = "-";
            if (cpus <= 32 && (cpus % 4 == 0 || cpus < 4)) {
                auto gs320 = sys::Machine::buildGS320(cpus);
                b = Table::num(
                    bench::streamTriadGBs(*gs320, cpus, arrayBytes),
                    2);
            }
            return {Table::num(cpus), Table::num(a, 2), b};
        });
    t.print(std::cout);

    std::cout << "\npaper shape: GS1280 ~4.2 GB/s per CPU, linear to "
                 "64P (~260 GB/s est.); GS320 ~20 GB/s at 32P\n";
    return 0;
}

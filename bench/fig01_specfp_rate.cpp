/**
 * @file
 * Figure 1: SPECfp_rate2000 vs CPU count — GS1280 vs SC45 (ES45
 * cluster) vs GS320.
 *
 * Paper shape: GS1280 scales steeply and nearly linearly (private
 * memory per CPU), SC45 linearly at a lower slope, GS320 flattest;
 * GS1280 holds ~2x the GS320 at 16P (Figure 28's rate row).
 */

#include <iostream>

#include "sim/args.hh"
#include "sim/table.hh"
#include "workload/spec_profiles.hh"
#include "workload/spec_rate.hh"

int
main(int, char **)
{
    using namespace gs;

    printBanner(std::cout,
                "Figure 1: SPECfp_rate2000 (model) vs CPU count");

    Table t({"#CPUs", "GS1280/1.15GHz", "SC45/1.25GHz",
             "GS320/1.2GHz"});
    const auto &suite = wl::specFp2000();
    for (int cpus : {1, 2, 4, 8, 16, 32}) {
        auto row = [&](wl::RateSystem sys) {
            return Table::num(wl::specRate(suite, sys, cpus), 0);
        };
        t.addRow({Table::num(cpus), row(wl::RateSystem::GS1280),
                  row(wl::RateSystem::SC45),
                  row(wl::RateSystem::GS320)});
    }
    t.print(std::cout);

    double r16 = wl::specRate(suite, wl::RateSystem::GS1280, 16) /
                 wl::specRate(suite, wl::RateSystem::GS320, 16);
    std::cout << "\nGS1280/GS320 at 16P: " << Table::num(r16, 2)
              << "x   (paper Figure 28 row: ~2x)\n"
              << "paper anchors: GS1280 16P ~290, 32P ~540 "
                 "(published/estimated)\n";
    return 0;
}

/**
 * @file
 * Figure 7: STREAM Triad, 1 CPU vs 4 CPUs, for GS1280, ES45 and
 * GS320 — the linear-vs-contended scaling bar chart.
 */

#include <iostream>

#include "common.hh"
#include "sim/args.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, bench::withSweepArgs());
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 7: STREAM Triad 1P vs 4P (GB/s)");

    // One point per (system, active-CPU-count) measurement.
    struct Point
    {
        const char *name;
        sys::SystemKind kind;
        int cpus;
    };
    const std::vector<Point> points = {
        {"GS1280/1.15GHz", sys::SystemKind::GS1280, 1},
        {"GS1280/1.15GHz", sys::SystemKind::GS1280, 4},
        {"ES45/1.25GHz", sys::SystemKind::ES45, 1},
        {"ES45/1.25GHz", sys::SystemKind::ES45, 4},
        {"GS320/1.2GHz", sys::SystemKind::GS320, 1},
        {"GS320/1.2GHz", sys::SystemKind::GS320, 4},
    };

    auto gbs = runner.map(
        points, [&](const Point &p, SweepPoint) -> double {
            std::unique_ptr<sys::Machine> m;
            switch (p.kind) {
              case sys::SystemKind::GS1280:
                m = sys::Machine::buildGS1280(p.cpus);
                break;
              case sys::SystemKind::ES45:
                m = sys::Machine::buildES45(4);
                break;
              case sys::SystemKind::GS320:
                m = sys::Machine::buildGS320(4);
                break;
            }
            return bench::streamTriadGBs(*m, p.cpus, 4ULL << 20);
        });

    Table t({"system", "1 CPU", "4 CPUs", "scaling"});
    for (std::size_t i = 0; i + 1 < points.size(); i += 2) {
        double one = gbs[i], four = gbs[i + 1];
        t.addRow({points[i].name, Table::num(one, 2),
                  Table::num(four, 2), Table::num(four / one, 2)});
    }
    t.print(std::cout);
    std::cout << "\npaper shape: GS1280 ~4.2 -> ~16.8 (4.0x); "
                 "ES45 ~1.8 -> ~3.4; GS320 ~1.1 -> ~2.3\n";
    return 0;
}

/**
 * @file
 * Figure 7: STREAM Triad, 1 CPU vs 4 CPUs, for GS1280, ES45 and
 * GS320 — the linear-vs-contended scaling bar chart.
 */

#include <iostream>

#include "common.hh"
#include "sim/args.hh"

int
main(int, char **)
{
    using namespace gs;
    printBanner(std::cout,
                "Figure 7: STREAM Triad 1P vs 4P (GB/s)");

    auto point = [&](auto builder, int cpus) {
        auto m = builder(cpus);
        return bench::streamTriadGBs(*m, cpus, 4ULL << 20);
    };

    Table t({"system", "1 CPU", "4 CPUs", "scaling"});
    auto addRow = [&](const char *name, double one, double four) {
        t.addRow({name, Table::num(one, 2), Table::num(four, 2),
                  Table::num(four / one, 2)});
    };

    double g1 = point([](int n) { return sys::Machine::buildGS1280(n); }, 1);
    double g4 = point([](int n) { return sys::Machine::buildGS1280(n); }, 4);
    addRow("GS1280/1.15GHz", g1, g4);

    double e1 = point([](int n) { return sys::Machine::buildES45(4); }, 1);
    double e4 = point([](int n) { return sys::Machine::buildES45(4); }, 4);
    addRow("ES45/1.25GHz", e1, e4);

    double q1 = point([](int n) { return sys::Machine::buildGS320(4); }, 1);
    double q4 = point([](int n) { return sys::Machine::buildGS320(4); }, 4);
    addRow("GS320/1.2GHz", q1, q4);

    t.print(std::cout);
    std::cout << "\npaper shape: GS1280 ~4.2 -> ~16.8 (4.0x); "
                 "ES45 ~1.8 -> ~3.4; GS320 ~1.1 -> ~2.3\n";
    return 0;
}

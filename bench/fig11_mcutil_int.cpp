/**
 * @file
 * Figure 11: GS1280 memory-controller utilization over the run,
 * SPECint2000 — low everywhere but mcf (the paper's 0-28% axis).
 */

#include <iostream>

#include "cpu/analytic_core.hh"
#include "sim/args.hh"
#include "sim/table.hh"
#include "workload/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, {{"samples", "time samples (default 16)"}});
    int samples = static_cast<int>(args.getInt("samples", 16));

    printBanner(std::cout,
                "Figure 11: SPECint2000 memory controller utilization "
                "(%, time samples left to right)");

    auto machine = cpu::MachineTiming::gs1280();

    std::vector<std::string> header{"benchmark", "mean"};
    for (int s = 0; s < samples; ++s)
        header.push_back("t" + std::to_string(s));
    Table t(header);

    for (const auto &p : wl::specInt2000()) {
        auto series = cpu::utilizationSeries(p, machine, samples);
        double mean = 0;
        for (double u : series)
            mean += u;
        mean /= static_cast<double>(samples);

        std::vector<std::string> row{p.name, Table::num(mean * 100, 1)};
        for (double u : series)
            row.push_back(Table::num(u * 100, 0));
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\npaper shape: mcf leads (pointer-chasing misses); "
                 "everything else sits in low single digits\n";
    return 0;
}

/**
 * @file
 * Figure 26: hot-spot improvement from striping — every CPU reads
 * CPU0's memory; the striped machine spreads the load over the
 * module pair (paper: up to 80% improvement).
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

struct Point
{
    double bwMBs;
    double latencyNs;
};

Point
hotSpot(bool striped, int outstanding, int cpus, std::uint64_t reads,
        std::uint64_t seed)
{
    sys::Gs1280Options opt;
    opt.striped = striped;
    opt.mlp = outstanding;
    auto m = sys::Machine::buildGS1280(cpus, opt);

    std::vector<std::unique_ptr<wl::HotSpotReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::HotSpotReads>(
            0, 512ULL << 20, reads,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    Tick start = m->ctx().now();
    if (!m->run(sources, 30000 * tickMs))
        return Point{0, 0};
    double ns = ticksToNs(m->ctx().now() - start);
    double lat = 0;
    for (int c = 0; c < cpus; ++c)
        lat += m->node(c).stats().missLatencyNs.mean();
    return Point{static_cast<double>(cpus) *
                     static_cast<double>(reads) * 64.0 / ns * 1000.0,
                 lat / cpus};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"cpus", "CPU count (default 16)"},
                   {"reads", "reads per CPU per point (default 700)"}}));
    int cpus = static_cast<int>(args.getInt("cpus", 16));
    auto reads = static_cast<std::uint64_t>(args.getInt("reads", 700));
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 26: hot-spot latency (ns) vs bandwidth "
                "(MB/s), striped vs non-striped");

    // One declared point per (load level, striped?) measurement.
    const std::vector<int> outs = {1, 2, 4, 8, 16, 24, 30};
    struct Task
    {
        int outstanding;
        bool striped;
    };
    std::vector<Task> tasks;
    for (int o : outs) {
        tasks.push_back({o, false});
        tasks.push_back({o, true});
    }

    auto points = runner.map(
        tasks, [&](const Task &tk, SweepPoint sp) -> Point {
            return hotSpot(tk.striped, tk.outstanding, cpus, reads,
                           sp.seed);
        });

    Table t({"outstanding", "non-striped bw", "non-striped lat",
             "striped bw", "striped lat", "bw gain %"});
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const Point &plain = points[2 * i];
        const Point &striped = points[2 * i + 1];
        t.addRow({Table::num(outs[i]), Table::num(plain.bwMBs, 0),
                  Table::num(plain.latencyNs, 0),
                  Table::num(striped.bwMBs, 0),
                  Table::num(striped.latencyNs, 0),
                  Table::num((striped.bwMBs / plain.bwMBs - 1) * 100,
                             1)});
    }
    t.print(std::cout);

    std::cout << "\npaper: striping buys up to ~80% more hot-spot "
                 "bandwidth at lower latency\n";
    return 0;
}

/**
 * @file
 * Figure 4: dependent-load latency vs dataset size on the GS1280,
 * ES45 and GS320 (lmbench lat_mem_rd, 64 B stride).
 *
 * Paper shape: GS1280 ~2.5 ns L1 / ~10 ns on-chip L2 / ~83 ns
 * memory; ES45/GS320 ~25 ns off-chip L2 out to 16 MB, then ~195 ns /
 * ~315 ns memory. GS1280 is 3.8x faster than GS320 at 32 MB but
 * slower in the 1.75-16 MB band.
 */

#include <iostream>

#include "common.hh"
#include "sim/args.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"loads", "loads per point (default 6000)"}}));
    auto loads = static_cast<std::uint64_t>(args.getInt("loads", 6000));
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 4: dependent load latency vs dataset (ns)");

    const std::vector<std::uint64_t> sizes = {
        4ULL << 10,   16ULL << 10,  64ULL << 10,  256ULL << 10,
        512ULL << 10, 1ULL << 20,   2ULL << 20,   4ULL << 20,
        8ULL << 20,   16ULL << 20,  32ULL << 20,  64ULL << 20,
        128ULL << 20,
    };

    auto t = bench::sweepTable(
        runner,
        {"dataset", "GS1280/1.15GHz", "ES45/1.25GHz", "GS320/1.22GHz"},
        sizes, [&](std::uint64_t size, SweepPoint) -> bench::Row {
            // Fresh machines per point; warm with one full pass so
            // cache-resident sizes measure hits, then measure.
            auto probe = [&](sys::Machine &m) {
                std::uint64_t lines = size / 64;
                // Warm with one full pass when a cache could hold
                // the set; beyond 24 MB nothing caches it and cold
                // access is the measurement.
                if (size <= (24ULL << 20))
                    bench::dependentLoadNs(m, 0, 0, size, 64, lines);
                return bench::dependentLoadNs(m, 0, 0, size, 64,
                                              std::min(loads,
                                                       4 * lines));
            };
            auto gs1280 = sys::Machine::buildGS1280(2);
            auto es45 = sys::Machine::buildES45(2);
            auto gs320 = sys::Machine::buildGS320(4);

            std::string label =
                size >= (1ULL << 20)
                    ? Table::num(std::uint64_t(size >> 20)) + "m"
                    : Table::num(std::uint64_t(size >> 10)) + "k";
            return {label, Table::num(probe(*gs1280), 1),
                    Table::num(probe(*es45), 1),
                    Table::num(probe(*gs320), 1)};
        });
    t.print(std::cout);

    std::cout << "\npaper anchors: GS1280 83 ns / ES45 ~195 ns / "
                 "GS320 ~315 ns at 32m;\n"
                 "GS320/ES45 ~25 ns in the 2m-16m band (16 MB "
                 "off-chip cache)\n";
    return 0;
}

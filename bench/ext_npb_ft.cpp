/**
 * @file
 * Extension: NAS FT (3-D FFT with a global transpose) across the
 * three machines. The paper's Section 5.2 names FFT among the
 * memory-stressing NPB kernels but plots only SP; FT's all-to-all
 * transpose adds bisection load, so it sits between SP and GUPS in
 * interconnect stress — a natural extra point on the paper's
 * application spectrum.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "workload/nas_ft.hh"

namespace
{

using namespace gs;

double
mops(sys::Machine &m, int cpus)
{
    std::vector<std::unique_ptr<wl::NasFT>> ranks;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        ranks.push_back(std::make_unique<wl::NasFT>(c, cpus));
        sources.push_back(ranks.back().get());
    }
    Tick start = m.ctx().now();
    if (!m.run(sources, 30000 * tickMs))
        return 0;
    double seconds = ticksToNs(m.ctx().now() - start) * 1e-9;
    double points = 0;
    for (auto &r : ranks)
        points += static_cast<double>(r->pointsDone());
    return points * 45.0 / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv, bench::withSweepArgs());
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Extension: NAS FT (MOPS) vs CPUs - all-to-all "
                "transpose");

    const std::vector<int> points = {1, 4, 8, 16, 32};
    auto t = bench::sweepTable(
        runner,
        {"#CPUs", "GS1280/1.15GHz", "GS320/1.2GHz",
         "ES45-class/1.25GHz"},
        points, [&](int cpus, SweepPoint) -> bench::Row {
            auto gs1280 = sys::Machine::buildGS1280(cpus);
            double a = mops(*gs1280, cpus);

            std::string b = "-";
            if (cpus <= 32 && (cpus % 4 == 0 || cpus < 4)) {
                auto gs320 = sys::Machine::buildGS320(cpus);
                b = Table::num(mops(*gs320, cpus), 0);
            }
            std::string c = "-";
            if (cpus <= 4) {
                auto es45 = sys::Machine::buildES45(cpus);
                c = Table::num(mops(*es45, cpus), 0);
            }
            return {Table::num(cpus), Table::num(a, 0), b, c};
        });
    t.print(std::cout);

    std::cout << "\nexpectation (no paper figure): GS1280 advantage "
                 "between SP's (memory) and GUPS's (bisection); the "
                 "transpose makes GS320 scaling worse than in SP\n";
    return 0;
}

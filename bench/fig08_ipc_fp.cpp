/**
 * @file
 * Figure 8: SPECfp2000 IPC per benchmark on GS1280, ES45 and GS320
 * (analytic CPI model over the calibrated benchmark profiles).
 */

#include <iostream>

#include "cpu/analytic_core.hh"
#include "sim/table.hh"
#include "workload/spec_profiles.hh"

int
main(int, char **)
{
    using namespace gs;
    printBanner(std::cout, "Figure 8: IPC comparison, SPECfp2000");

    auto gs1280 = cpu::MachineTiming::gs1280();
    auto es45 = cpu::MachineTiming::es45();
    auto gs320 = cpu::MachineTiming::gs320();

    Table t({"benchmark", "GS1280/1.15GHz", "ES45/1.25GHz",
             "GS320/1.22GHz", "best"});
    for (const auto &p : wl::specFp2000()) {
        double a = cpu::evaluateIpc(p, gs1280).ipc;
        double b = cpu::evaluateIpc(p, es45).ipc;
        double c = cpu::evaluateIpc(p, gs320).ipc;
        const char *best = a >= b && a >= c ? "GS1280"
                           : b >= c        ? "ES45"
                                           : "GS320";
        t.addRow({p.name, Table::num(a, 2), Table::num(b, 2),
                  Table::num(c, 2), best});
    }
    t.print(std::cout);

    std::cout << "\npaper anchors: swim 2.3x vs ES45 / 4x vs GS320; "
                 "facerec and ammp run faster on the 16 MB-cache "
                 "machines\n";
    return 0;
}

/**
 * @file
 * External-link heatmap (extension of Figure 24), regenerated from
 * the telemetry layer instead of the Xmesh monitor: a 32P (8x4
 * torus) GS1280 runs GUPS while a Sampler records every router
 * port's flit rate as a busy fraction. The bench then reduces those
 * per-link time-series to the paper's story — East/West (horizontal)
 * links run hotter than North/South because the 8-wide dimension
 * carries more of the uniform traffic — plus a per-node ASCII
 * heatmap of where the East/West load lands on the torus.
 *
 * The same series are what --stats-out embeds in its JSON, so this
 * bench doubles as a readable cross-check of that export.
 */

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common.hh"
#include "sim/args.hh"
#include "topology/torus.hh"
#include "workload/gups.hh"

namespace
{

using namespace gs;

/** Mean of series @p idxs at sample @p t. */
double
meanAt(const std::vector<telem::Sampler::Series> &series,
       const std::vector<std::size_t> &idxs, std::size_t t)
{
    if (idxs.empty())
        return 0.0;
    double sum = 0;
    for (std::size_t i : idxs)
        sum += series[i].values[t];
    return sum / static_cast<double>(idxs.size());
}

/** Node id embedded in a "node.<n>...." telemetry path. */
int
nodeOf(const std::string &path)
{
    return std::stoi(path.substr(std::string("node.").size()));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withTelemetryArgs(
                  {{"updates", "updates per CPU (default 2000)"},
                   {"seed", "master seed (default 1)"}}));
    auto updates =
        static_cast<std::uint64_t>(args.getInt("updates", 2000));
    auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    printBanner(std::cout,
                "Link heatmap: GUPS on the 32P GS1280 (8x4 torus), "
                "from sampled telemetry");

    const int cpus = 32;
    sys::Gs1280Options opt;
    opt.mlp = 16;
    opt.seed = seed;
    auto m = sys::Machine::buildGS1280(cpus, opt);
    bench::TelemetrySession session(args, *m, /*force_sample=*/true);

    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            cpus, 256ULL << 20, updates,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    bool ok = m->run(sources, 60000 * tickMs);
    session.finish();

    // Classify the sampled series by what they measure.
    const auto &series = session.sampler()->series();
    const auto &times = session.sampler()->times();
    std::vector<std::size_t> ew, ns, mem;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const std::string &p = series[i].path;
        if (p.find(".port.E.") != std::string::npos ||
            p.find(".port.W.") != std::string::npos) {
            ew.push_back(i);
        } else if (p.find(".port.N.") != std::string::npos ||
                   p.find(".port.S.") != std::string::npos) {
            ns.push_back(i);
        } else if (p.find(".busy_ticks") != std::string::npos) {
            mem.push_back(i);
        }
    }

    // Utilization over time, strided to a readable number of rows.
    Table t({"timestamp us", "memory controller %",
             "avg North/South %", "avg East/West %"});
    std::size_t stride = std::max<std::size_t>(1, times.size() / 16);
    double ewSum = 0, nsSum = 0;
    for (std::size_t s = 0; s < times.size(); ++s) {
        double e = meanAt(series, ew, s);
        double n = meanAt(series, ns, s);
        ewSum += e;
        nsSum += n;
        if (s % stride == 0) {
            t.addRow({Table::num(ticksToNs(times[s]) / 1000.0, 1),
                      Table::num(meanAt(series, mem, s) * 100, 1),
                      Table::num(n * 100, 1), Table::num(e * 100, 1)});
        }
    }
    t.print(std::cout);
    if (!ok)
        std::cout << "[run hit the time limit]\n";
    if (nsSum > 0) {
        std::cout << "\nEast/West : North/South utilization ratio: "
                  << Table::num(ewSum / nsSum, 2)
                  << "   (paper: E/W runs visibly hotter in the 8x4 "
                     "torus)\n";
    }

    // Per-node East/West load, time-averaged, drawn on the torus.
    std::map<int, double> nodeEw;
    for (std::size_t i : ew) {
        double sum = 0;
        for (double v : series[i].values)
            sum += v;
        nodeEw[nodeOf(series[i].path)] +=
            series[i].values.empty()
                ? 0.0
                : sum / static_cast<double>(series[i].values.size());
    }
    double peak = 0;
    for (const auto &[n, u] : nodeEw)
        peak = std::max(peak, u);
    const std::string shades = " .:-=+*#%@";
    std::cout << "\nE/W load per node (8x4 torus, '@' = hottest):\n";
    for (int y = 0; y < 4; ++y) {
        std::cout << "  ";
        for (int x = 0; x < 8; ++x) {
            double u = peak > 0 ? nodeEw[y * 8 + x] / peak : 0.0;
            auto idx = static_cast<std::size_t>(
                u * static_cast<double>(shades.size() - 1));
            std::cout << shades[std::min(idx, shades.size() - 1)]
                      << ' ';
        }
        std::cout << "\n";
    }
    return 0;
}

/**
 * @file
 * Figure 13: remote memory latencies (ns) on a 16-CPU GS1280 —
 * measured dependent-load latency from node 0 to every node of the
 * 4x4 torus, printed in grid layout like the paper's figure.
 *
 * Paper values: local 83; 1-hop 139 (on-module) / 145 (backplane) /
 * 154 (cable); 2-hop 175-195; 4-hop 259.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "sim/args.hh"
#include "topology/torus.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"cpus", "CPU count (default 16)"}}));
    int cpus = static_cast<int>(args.getInt("cpus", 16));
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 13: remote memory latency map, " +
                    std::to_string(cpus) + "P GS1280 (ns)");

    std::vector<int> targets(static_cast<std::size_t>(cpus));
    for (int to = 0; to < cpus; ++to)
        targets[static_cast<std::size_t>(to)] = to;

    // Each probe gets its own machine, so every point is cold and
    // independent of sweep order.
    auto lat = runner.map(
        targets, [&](int to, SweepPoint) -> double {
            auto m = sys::Machine::buildGS1280(cpus);
            return bench::dependentLoadNs(*m, 0, to, 16ULL << 20, 64,
                                          6000, /*offset=*/0);
        });

    auto shape = sys::torusShape(cpus);
    topo::Torus2D torus(shape.first, shape.second);
    for (int y = 0; y < torus.height(); ++y) {
        for (int x = 0; x < torus.width(); ++x) {
            NodeId n = torus.nodeAt(x, y);
            std::printf("%7.0f", lat[static_cast<std::size_t>(n)]);
        }
        std::printf("\n");
    }

    std::printf("\npaper (4x4):\n"
                "     83    145    186    154\n"
                "    139    175    221    182\n"
                "    181    221    259    222\n"
                "    154    191    235    195\n");
    return 0;
}

/**
 * @file
 * Extension: latency x-ray — regenerates the Figure 12/13 remote-
 * latency story as a per-stage breakdown. Every coherence miss of a
 * 16-CPU GS1280 pointer-chase sweep is span-traced (inject / VC-wait
 * / link / directory / DRAM / reply), and the table reports each
 * stage's mean and tail percentiles next to its share of the total.
 *
 * Two built-in cross-checks make this bench a regression gate:
 *  - per-stage means must sum to the end-to-end span mean within 1%
 *    (by construction every tick of a span lands in exactly one
 *    stage, so a drift means an attribution bug);
 *  - the measured load-to-use average is compared against the
 *    closed-form idle-latency model of Figure 14.
 */

#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "analytic/latency_model.hh"
#include "common.hh"
#include "sim/args.hh"
#include "sim/trace_span.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(
        argc, argv,
        bench::withTelemetryArgs(bench::withSweepArgs(
            {{"loads", "loads per probe (default 3000)"}})));
    auto loads =
        static_cast<std::uint64_t>(args.getInt("loads", 3000));

    printBanner(std::cout,
                "Extension: latency x-ray, 16-CPU GS1280 (ns)");

    sys::Gs1280Options opt;
    opt.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    opt.threads = bench::machineThreads(args);
    bench::applyTileShape(args, opt);
    // Unlike the shared-plumbing benches this one IS the x-ray, so
    // sampling defaults to every miss rather than off.
    opt.spanSampleRate = args.getDouble("trace-sample", 1.0);
    if (opt.spanSampleRate <= 0.0 || opt.spanSampleRate > 1.0) {
        gs_fatal("--trace-sample=", opt.spanSampleRate,
                 ": expected a fraction in (0, 1]");
    }
    auto m = sys::Machine::buildGS1280(16, opt);
    bench::TelemetrySession session(args, *m);

    // CPU0 chases a cold chain in every CPU's region (the Figure 12
    // probe set); all 16 probes run on the one machine so the spans
    // accumulate into a single breakdown.
    double sumProbeNs = 0;
    for (int dst = 0; dst < 16; ++dst)
        sumProbeNs += bench::dependentLoadNs(*m, 0, dst, 16 << 20,
                                             64, loads);
    double measuredAvg = sumProbeNs / 16.0;

    // finish() merges the spans canonically and writes any requested
    // --stats-out / --span-trace files before we read the registry.
    session.finish();

    const auto &reg = m->telemetry();
    const double totalMean = reg.value("xray.total_ns");

    Table t({"stage", "mean", "p50", "p95", "p99", "share"});
    double stageSum = 0;
    for (int s = 0; s < trace::numStages; ++s) {
        const std::string base =
            std::string("xray.stage.") + trace::stageName(s) + "_ns";
        const double mean = reg.value(base);
        stageSum += mean;
        t.addRow({trace::stageName(s), Table::num(mean, 1),
                  Table::num(reg.value(base + ".p50"), 1),
                  Table::num(reg.value(base + ".p95"), 1),
                  Table::num(reg.value(base + ".p99"), 1),
                  Table::num(totalMean > 0
                                 ? 100.0 * mean / totalMean
                                 : 0.0,
                             1) +
                      "%"});
    }
    t.addRow({"total", Table::num(totalMean, 1),
              Table::num(reg.value("xray.total_ns.p50"), 1),
              Table::num(reg.value("xray.total_ns.p95"), 1),
              Table::num(reg.value("xray.total_ns.p99"), 1), "100%"});
    t.print(std::cout);

    const auto sampled =
        static_cast<std::uint64_t>(reg.value("xray.sampled"));
    const auto completed =
        static_cast<std::uint64_t>(reg.value("xray.completed"));
    std::cout << "\nspans: " << completed << " completed / " << sampled
              << " sampled (rate " << opt.spanSampleRate << ")\n";
    std::cout << "dram queueing: mean "
              << Table::num(reg.value("xray.dram.queue_ns"), 1)
              << " ns ahead of "
              << Table::num(reg.value("xray.dram.service_ns"), 1)
              << " ns service\n";

    // Cross-check 1: exhaustive stage attribution. Every span tick
    // lands in exactly one stage, so the stage means must sum to the
    // end-to-end mean; 1% of slack covers float accumulation only.
    const double drift =
        totalMean > 0 ? std::abs(stageSum - totalMean) / totalMean
                      : 0.0;
    std::cout << "stage-sum check: " << Table::num(stageSum, 2)
              << " vs total " << Table::num(totalMean, 2) << " ("
              << Table::num(100.0 * drift, 3) << "% drift)\n";
    if (drift > 0.01) {
        gs_fatal("per-stage breakdown drifted ",
                 100.0 * drift,
                 "% from the end-to-end span latency (budget 1%)");
    }

    // Cross-check 2: the closed-form idle model of Figure 14 on the
    // same topology. The probe average sits above the span total by
    // the core-side issue overhead the x-ray deliberately excludes.
    const double analytic =
        analytic::avgIdleLatencyNs(m->topology(), 83.0, 44.0);
    std::cout << "measured load-to-use average "
              << Table::num(measuredAvg, 0) << " ns vs analytic "
              << Table::num(analytic, 0) << " ns ("
              << Table::num(measuredAvg / analytic, 2) << "x)\n";
    return 0;
}

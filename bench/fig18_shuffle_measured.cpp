/**
 * @file
 * Figure 18: measured improvement from shuffle on the 8-CPU (4x2)
 * machine — random-traffic load curves for the standard torus, the
 * 1-hop shuffle and the 2-hop shuffle.
 *
 * Paper: 1-hop shuffle gains 5-25% depending on load; 2-hop adds a
 * further 2-5%.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "topology/shuffle.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

struct Point
{
    double bwMBs;
    double latencyNs;
};

Point
run8p(bool shuffle, topo::ShufflePolicy policy, int outstanding,
      std::uint64_t reads, std::uint64_t seed)
{
    sys::Gs1280Options opt;
    opt.mlp = outstanding;
    opt.shuffle = shuffle;
    opt.shufflePolicy = policy;
    auto m = sys::Machine::buildGS1280(8, opt);

    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            c, 8, 512ULL << 20, reads,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    Tick start = m->ctx().now();
    if (!m->run(sources, 20000 * tickMs))
        return Point{0, 0};
    double ns = ticksToNs(m->ctx().now() - start);
    double lat = 0;
    for (int c = 0; c < 8; ++c)
        lat += m->node(c).stats().missLatencyNs.mean();
    return Point{8.0 * static_cast<double>(reads) * 64.0 / ns * 1000.0,
                 lat / 8.0};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              bench::withSweepArgs(
                  {{"reads", "reads per CPU per point (default 800)"}}));
    auto reads = static_cast<std::uint64_t>(args.getInt("reads", 800));
    auto runner = bench::makeRunner(args);

    printBanner(std::cout,
                "Figure 18: shuffle improvement on 8P (4x2), "
                "bandwidth (MB/s) and latency (ns) by load");

    // Three wiring configurations measured at each load level; one
    // declared point per (load, wiring) pair.
    const std::vector<int> outs = {1, 2, 4, 8, 16, 24, 30};
    struct Task
    {
        int outstanding;
        bool shuffle;
        topo::ShufflePolicy policy;
    };
    std::vector<Task> tasks;
    for (int o : outs) {
        tasks.push_back({o, false, topo::ShufflePolicy::OneHop});
        tasks.push_back({o, true, topo::ShufflePolicy::OneHop});
        tasks.push_back({o, true, topo::ShufflePolicy::TwoHop});
    }

    auto points = runner.map(
        tasks, [&](const Task &tk, SweepPoint sp) -> Point {
            return run8p(tk.shuffle, tk.policy, tk.outstanding, reads,
                         sp.seed);
        });

    Table t({"outstanding", "torus bw", "torus lat", "shuffle bw",
             "shuffle lat", "shuffle2 bw", "shuffle2 lat",
             "1-hop gain %"});
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const Point &torus = points[3 * i];
        const Point &s1 = points[3 * i + 1];
        const Point &s2 = points[3 * i + 2];
        double gain = (torus.latencyNs / s1.latencyNs - 1.0) * 100.0;
        t.addRow({Table::num(outs[i]), Table::num(torus.bwMBs, 0),
                  Table::num(torus.latencyNs, 0),
                  Table::num(s1.bwMBs, 0), Table::num(s1.latencyNs, 0),
                  Table::num(s2.bwMBs, 0), Table::num(s2.latencyNs, 0),
                  Table::num(gain, 1)});
    }
    t.print(std::cout);

    std::cout << "\npaper: 1-hop shuffle 5-25% better with load; "
                 "2-hop a further 2-5%\n";
    return 0;
}

/**
 * @file
 * Figure 18: measured improvement from shuffle on the 8-CPU (4x2)
 * machine — random-traffic load curves for the standard torus, the
 * 1-hop shuffle and the 2-hop shuffle.
 *
 * Paper: 1-hop shuffle gains 5-25% depending on load; 2-hop adds a
 * further 2-5%.
 */

#include <iostream>
#include <memory>

#include "common.hh"
#include "sim/args.hh"
#include "topology/shuffle.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

struct Point
{
    double bwMBs;
    double latencyNs;
};

Point
run8p(bool shuffle, topo::ShufflePolicy policy, int outstanding,
      std::uint64_t reads)
{
    sys::Gs1280Options opt;
    opt.mlp = outstanding;
    opt.shuffle = shuffle;
    opt.shufflePolicy = policy;
    auto m = sys::Machine::buildGS1280(8, opt);

    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            c, 8, 512ULL << 20, reads, 300 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    Tick start = m->ctx().now();
    if (!m->run(sources, 20000 * tickMs))
        return Point{0, 0};
    double ns = ticksToNs(m->ctx().now() - start);
    double lat = 0;
    for (int c = 0; c < 8; ++c)
        lat += m->node(c).stats().missLatencyNs.mean();
    return Point{8.0 * static_cast<double>(reads) * 64.0 / ns * 1000.0,
                 lat / 8.0};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              {{"reads", "reads per CPU per point (default 800)"}});
    auto reads = static_cast<std::uint64_t>(args.getInt("reads", 800));

    printBanner(std::cout,
                "Figure 18: shuffle improvement on 8P (4x2), "
                "bandwidth (MB/s) and latency (ns) by load");

    Table t({"outstanding", "torus bw", "torus lat", "shuffle bw",
             "shuffle lat", "shuffle2 bw", "shuffle2 lat",
             "1-hop gain %"});
    for (int o : {1, 2, 4, 8, 16, 24, 30}) {
        Point torus =
            run8p(false, topo::ShufflePolicy::OneHop, o, reads);
        Point s1 = run8p(true, topo::ShufflePolicy::OneHop, o, reads);
        Point s2 = run8p(true, topo::ShufflePolicy::TwoHop, o, reads);
        double gain = (torus.latencyNs / s1.latencyNs - 1.0) * 100.0;
        t.addRow({Table::num(o), Table::num(torus.bwMBs, 0),
                  Table::num(torus.latencyNs, 0),
                  Table::num(s1.bwMBs, 0), Table::num(s1.latencyNs, 0),
                  Table::num(s2.bwMBs, 0), Table::num(s2.latencyNs, 0),
                  Table::num(gain, 1)});
    }
    t.print(std::cout);

    std::cout << "\npaper: 1-hop shuffle 5-25% better with load; "
                 "2-hop a further 2-5%\n";
    return 0;
}

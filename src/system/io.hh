/**
 * @file
 * I/O subsystem model: DMA streams over the IO packet class.
 *
 * Each 21364 connects its IO7 chip through a full-duplex 3.1 GB/s
 * port (Section 2 of the paper); IO traffic rides the torus in its
 * own packet class, which has the two deadlock-free VCs but no
 * adaptive channel. The paper's Figure 28 credits the GS1280 with
 * ~8x the GS320's I/O bandwidth, and its future work singles out
 * I/O-intensive characterization — this model supports both: paced
 * DMA streams whose delivered bandwidth and interference with
 * coherence traffic can be measured.
 */

#ifndef GS_SYSTEM_IO_HH
#define GS_SYSTEM_IO_HH

#include <functional>

#include "coherence/node.hh"
#include "net/network.hh"
#include "sim/types.hh"

namespace gs::sys
{

/** Configuration of one DMA stream. */
struct IoDmaParams
{
    std::uint64_t totalBytes = 1 << 20;

    /** Device pacing; the 21364 IO port sustains 3.1 GB/s. */
    double rateGBs = 3.1;

    /** Payload per packet (one cache line per IO packet here). */
    int packetBytes = 64;
};

/**
 * A paced DMA stream from a device behind @p from's IO port to
 * @p to's IO port (e.g. disk-to-disk or NIC traffic crossing the
 * fabric). Injection is paced at the device rate; the network
 * applies its own backpressure on top.
 */
class IoDma
{
  public:
    IoDma(net::Network &net, NodeId from, NodeId to,
          IoDmaParams params = {});

    /** Begin streaming; @p on_done fires when all bytes arrived. */
    void start(std::function<void()> on_done);

    /** Count one arrived packet (called from the receiver's sink). */
    void deliver(const net::Packet &pkt);

    /**
     * Convenience: register this stream as @p node's IO sink (one
     * stream per receiving node; use a custom sink to multiplex).
     */
    void attachSink(coher::CoherentNode &node);

    bool done() const { return received >= packets; }

    /** Delivered bandwidth over the stream's lifetime, in GB/s. */
    double deliveredGBs() const;

    std::uint64_t packetsDelivered() const { return received; }

  private:
    void injectNext();

    net::Network &net;
    NodeId from;
    NodeId to;
    IoDmaParams prm;

    std::uint64_t packets = 0;
    std::uint64_t injected = 0;
    std::uint64_t received = 0;
    Tick startTick = 0;
    Tick endTick = 0;
    Tick gap = 0; ///< pacing interval between injections
    std::function<void()> onDone;
};

} // namespace gs::sys

#endif // GS_SYSTEM_IO_HH

/**
 * @file
 * Whole-machine assembly for the three systems the paper compares:
 *
 *  - GS1280: up to 64 EV7 nodes (core + L1 + 1.75 MB L2 + two RDRAM
 *    Zboxes + router) on a 2-D torus, optionally with the Section 6
 *    memory striping or the Section 4.1 shuffle rewiring;
 *  - GS320: QBBs of four EV68 CPUs (16 MB off-chip L2) sharing a
 *    memory behind a QBB switch, QBBs joined by a global switch;
 *  - ES45: a four-CPU shared-memory SMP (one switch, one memory).
 *
 * A Machine owns the simulation context and every component, and
 * offers the experiment-facing API: build, attach traffic, run to
 * completion, read the counters.
 */

#ifndef GS_SYSTEM_MACHINE_HH
#define GS_SYSTEM_MACHINE_HH

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coherence/node.hh"
#include "cpu/analytic_core.hh"
#include "cpu/core.hh"
#include "cpu/traffic.hh"
#include "fault/degraded.hh"
#include "fault/injector.hh"
#include "fault/watchdog.hh"
#include "mem/address.hh"
#include "net/network.hh"
#include "sim/checkpoint.hh"
#include "sim/context.hh"
#include "sim/parallel.hh"
#include "sim/telemetry.hh"
#include "topology/shuffle.hh"
#include "topology/topology.hh"

namespace gs::sys
{

/** Which system a Machine models. */
enum class SystemKind
{
    GS1280,
    GS320,
    ES45,
};

/** GS1280 build options. */
struct Gs1280Options
{
    int width = 0;  ///< torus columns; 0 = derive from CPU count
    int height = 0; ///< torus rows; 0 = derive
    /**
     * Torus planes. 1 (default) keeps the shipped 2-D fabric; > 1
     * stacks `depth` W x H slabs into a 3-D torus (topology/
     * torus3d.hh) for the 256P-2048P scale-out studies in
     * docs/SCALING.md. 3-D machines need an explicit width/height
     * (use buildGS1280_3D) and support neither shuffle rewiring nor
     * the Section 6 striping's 2-D module pairing semantics changing
     * — striping pairs along Z instead (see moduleBuddy).
     */
    int depth = 1;
    bool striped = false; ///< Section 6 memory striping
    bool shuffle = false; ///< Section 4.1 cable swap (needs W>=4 even)
    topo::ShufflePolicy shufflePolicy = topo::ShufflePolicy::OneHop;
    int mlp = 10; ///< EV7 prefetch sustains ~10 overlapped misses
    std::uint64_t seed = 1;
    /**
     * Worker threads for the conservative parallel engine
     * (docs/PARALLEL.md). 1 = the classic serial event loop. More
     * than 1 partitions the torus into rectangular tiles (one
     * domain per tile) and runs them in barrier-synchronized
     * epochs; results are bit-identical at any thread count *for a
     * fixed tile shape*. Ignored (serial) on a 1x1 torus.
     */
    int threads = 1;
    /**
     * Tile decomposition. 0 = choose from `threads` via
     * gs::chooseTileShape (the default decomposition therefore
     * follows the thread count). Runs that must be byte-comparable
     * or snapshot-compatible across *different* thread counts pin an
     * explicit RxC here (--tile-shape in the benches); the shape is
     * recorded in snapshots and checked at restore.
     */
    int tileRows = 0;
    int tileCols = 0;
    int tileSlabs = 0; ///< Z cut of the 3-D tiling (--tile-shape RxCxS)
    /**
     * Latency x-ray sampling rate (docs/TRACING.md): the fraction of
     * coherence misses that carry a per-stage span, chosen by a
     * seed-derived hash of each miss's stable id (bit-identical at
     * any --threads). 0 (default) builds no collector at all; 1
     * traces every miss.
     */
    double spanSampleRate = 0.0;
    /**
     * Router backend (docs/ROUTER.md): the EV7 buffered adaptive-VC
     * design (default) or the bufferless deflection ablation
     * (--router=bufferless in the benches). Part of the machine's
     * deterministic identity; recorded in snapshots and checked at
     * restore.
     */
    net::RouterKind routerKind = net::RouterKind::Buffered;
};

/** The standard torus shape for @p cpus (2x1, 2x2, 4x2, ... 8x8). */
std::pair<int, int> torusShape(int cpus);

/** A fully assembled system. */
class Machine
{
  public:
    static std::unique_ptr<Machine> buildGS1280(int cpus,
                                                Gs1280Options opt = {});

    /**
     * A 3-D-torus GS1280 of @p x * @p y * @p z nodes (the scale-out
     * configurations of docs/SCALING.md: 8x8x4 = 256P up to 16x16x8
     * = 2048P). Fills opt.width/height/depth and delegates to
     * buildGS1280; directory sharer vectors coarsen automatically
     * (coher::NodeConfig::sharerGroupSize) past 64 nodes, and the
     * per-node telemetry subtrees switch to the lite layout so
     * registry size stays flat in machine size.
     */
    static std::unique_ptr<Machine> buildGS1280_3D(int x, int y, int z,
                                                   Gs1280Options opt = {});
    static std::unique_ptr<Machine> buildGS320(int cpus,
                                               std::uint64_t seed = 1,
                                               int mlp = 8);
    static std::unique_ptr<Machine> buildES45(int cpus,
                                              std::uint64_t seed = 1,
                                              int mlp = 8);

    /** @name Component access */
    /// @{
    /**
     * The machine's time/RNG context. Serial: the sole context.
     * Parallel: domain 0's — after any run()/runFor() every domain
     * clock is synced, so now() is the machine time either way.
     */
    SimContext &ctx()
    {
        return par_ ? par_->domainCtx(0) : *context;
    }
    net::Network &network() { return *net; }
    const topo::Topology &topology() const { return *topo_; }
    const mem::AddressMap &addressMap() const { return *map; }
    SystemKind kind() const { return kind_; }

    int cpuCount() const { return nCpus; }
    int nodeCount() const { return topo_->numNodes(); }

    /** Coherence engine of @p node (may be a switch node). */
    coher::CoherentNode &node(NodeId n) { return *nodes[std::size_t(n)]; }
    bool hasNode(NodeId n) const { return nodes[std::size_t(n)] != nullptr; }

    /** Timing core of CPU @p c. */
    cpu::TimingCore &core(int c) { return *cores[std::size_t(c)]; }

    /** True when this machine runs on the parallel engine. */
    bool isParallel() const { return par_ != nullptr; }

    /** The parallel engine, or nullptr for serial machines. */
    ParallelEngine *parallel() { return par_.get(); }
    /// @}

    /** @name Fault injection & health monitoring
     *
     * Every machine routes over a fault::DegradedTopology wrapper;
     * until a fault is applied it forwards verbatim, so healthy runs
     * behave exactly as before. faults() schedules or applies
     * link/router failures; armWatchdog() starts the deadlock /
     * stuck-transaction monitor.
     */
    /// @{
    fault::FaultInjector &faults() { return *injector_; }
    const fault::FaultInjector &faults() const { return *injector_; }

    /** The degraded (maskable) view the network routes over. */
    fault::DegradedTopology &fabric() { return *fabric_; }
    const fault::DegradedTopology &fabric() const { return *fabric_; }

    /**
     * Create (first call) and arm the watchdog. When
     * @p coherenceTimeoutNs > 0 a probe also trips on any MAF miss
     * outstanding longer than that.
     */
    fault::Watchdog &armWatchdog(fault::WatchdogConfig cfg = {},
                                 double coherenceTimeoutNs = 0.0);

    /** The watchdog, if armWatchdog() was called. */
    fault::Watchdog *watchdog() { return watchdog_.get(); }
    /// @}

    /** @name Telemetry
     *
     * Every build registers the whole machine in a per-machine
     * registry: network aggregates under `net.*`, fault accounting
     * under `fault.*`, and per-node subtrees under `node.<n>.*`
     * (router ports/VCs, protocol counters, Zboxes). The registry
     * holds pointers into the components — reading it is always
     * current, and machines in different sweep threads never share
     * state.
     */
    /// @{
    telem::Registry &telemetry() { return telemetry_; }
    const telem::Registry &telemetry() const { return telemetry_; }

    /**
     * Stream every coherence message into @p trace as an instant
     * event, observed at its receiver, one Perfetto track per node.
     * @p trace must outlive the machine's runs. Replaces any
     * previously attached message observers.
     */
    void attachTrace(telem::TraceWriter &trace);

    /**
     * The latency x-ray span collector, or nullptr when the machine
     * was built with spanSampleRate == 0. Call finalize() on it
     * after a run before reading xray.* telemetry or exporting the
     * span trace.
     */
    trace::SpanCollector *spans() { return spans_.get(); }
    /// @}

    /** @name Addressing helpers */
    /// @{
    /** An address at byte @p offset of CPU @p c's local region. */
    mem::Addr
    cpuAddr(int c, std::uint64_t offset) const
    {
        return mem::regionBase(static_cast<NodeId>(c)) + offset;
    }

    /** The on-module buddy used by striping (GS1280 only). */
    NodeId moduleBuddy(NodeId n) const;
    /// @}

    /** @name Running experiments */
    /// @{
    /**
     * Attach one TrafficSource per CPU (sources may be fewer than
     * CPUs; extra CPUs stay idle) and run until every core finishes
     * and the machine drains, or @p limit elapses.
     * @return true when everything completed within the limit.
     */
    bool run(const std::vector<cpu::TrafficSource *> &sources,
             Tick limit = 500 * tickMs);

    /** Run the event queue for a fixed duration (open-ended loads). */
    void runFor(Tick duration);

    /** True when cores, protocol and network are all drained. */
    bool drained() const;

    /** Reset every statistic (not state) for a measurement phase. */
    void clearStats();
    /// @}

    /** Per-CPU analytic timing view (for the SPEC IPC model). */
    cpu::MachineTiming analyticTiming() const;

    /** @name Memory accounting (docs/SCALING.md)
     *
     * Model-memory telemetry for the scale-out configurations: how
     * many bytes the per-node simulation state (L2 tags, Zbox bank
     * tables, directory + transaction maps, MAF/VB) occupies right
     * now, versus what the pre-PR-10 dense layout (eager tag arrays,
     * eager bank tables, fat directory entries) would occupy. The
     * ratio is the bytes/node reduction the mem.* bench family and
     * BENCH_scale.json gate on. Exposed in the registry as
     * wall-clock gauges (`mem.*`) — allocation footprints depend on
     * access history and STL growth policy, so they are visible live
     * but excluded from deterministic exports.
     */
    /// @{
    /** Current bytes across every coherent node's simulation state. */
    std::size_t memFootprintBytes() const;

    /** Bytes the dense (pre-lazy, fat-directory) layout would need. */
    std::size_t denseMemFootprintBytes() const;
    /// @}

    /** @name Checkpoint / restore / crash recovery
     *
     * save() writes the whole machine — clocks, RNGs, every pending
     * event, network, coherence, cores, workloads, fault state,
     * registered clients — as an atomic, CRC-checked snapshot
     * (docs/CHECKPOINT.md). restore() loads one into an identically
     * built machine (same system, CPU count, seed, options, and
     * engine layout: serial snapshots restore at --threads 1,
     * parallel ones at any --threads > 1 of the same machine) and
     * re-attaches the given traffic sources; the continued run
     * produces exports byte-identical to the uninterrupted one.
     */
    /// @{

    /** Watchdog-triggered crash recovery (serial engine only). */
    struct RollbackPolicy
    {
        /** Snapshot to rewind to when the watchdog trips. */
        std::string snapshotPath;

        /** Rollbacks allowed before hard-failing with diagnostics. */
        int maxRetries = 3;

        /** Suppress still-scheduled fault events after rollback, so
         *  the restored run does not re-wedge on the same fault. */
        bool healFaults = true;
    };

    /** Snapshot the machine to @p path (atomic: tmp + rename). */
    bool save(const std::string &path, std::string *err = nullptr);

    /**
     * Restore from @p path. @p sources must be the same workload
     * set (same count, order and construction) the saved run used;
     * their stream positions are restored from the snapshot and the
     * cores re-attach without perturbation. The next run() call
     * continues the restored execution.
     */
    bool restore(const std::string &path,
                 const std::vector<cpu::TrafficSource *> &sources,
                 std::string *err = nullptr);

    /**
     * Register a bench-owned snapshot participant (e.g. a telemetry
     * Sampler). Registration order must match between the saving and
     * restoring run. @return the client id (EventDesc owner).
     */
    int registerCkptClient(ckpt::Client &client);

    /**
     * Checkpoint every @p everyTicks of simulated time during run(),
     * writing "<pathPrefix>.<n>.gsckpt" (n = 1, 2, ...). 0 disables.
     */
    void setCheckpointPolicy(Tick everyTicks, std::string pathPrefix);

    /** Enable watchdog-triggered rollback (arm a watchdog first). */
    void setRollbackPolicy(RollbackPolicy policy);

    /** Rebuild a pending event's callback from its descriptor. */
    std::function<void()> rehydrate(const ckpt::EventDesc &d);

    std::uint64_t checkpointSaves() const { return ckptSaves_; }
    std::uint64_t checkpointRollbacks() const { return ckptRollbacks_; }
    std::uint64_t checkpointRestores() const { return ckptRestores_; }
    /// @}

  private:
    Machine() = default;

    SystemKind kind_ = SystemKind::GS1280;
    int nCpus = 0;

    /** Wrap topo_ in the fault layer and build the network over it. */
    void buildFabric(net::NetworkParams params);

    /** Register every built component (end of each builder). */
    void registerTelemetry();

    /** @name Checkpoint internals (system/machine_ckpt.cc) */
    /// @{
    /** The event queues a snapshot covers, in section order. */
    std::vector<EventQueue *> ckptQueues();

    /** Bump nextCkptAt_ past now, save, die loudly on failure. */
    void checkpointNow();

    /** Consume a queued watchdog trip: roll back or hard-fail. */
    void handleRollback();
    /// @}

    std::unique_ptr<SimContext> context;
    std::unique_ptr<ParallelEngine> par_; ///< set by parallel builds
    std::unique_ptr<topo::Topology> topo_;
    std::unique_ptr<fault::DegradedTopology> fabric_;
    std::unique_ptr<mem::AddressMap> map;
    std::unique_ptr<net::Network> net;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<fault::Watchdog> watchdog_;
    std::vector<std::unique_ptr<coher::CoherentNode>> nodes;
    std::vector<std::unique_ptr<cpu::TimingCore>> cores;
    std::unique_ptr<trace::SpanCollector> spans_;
    telem::Registry telemetry_;

    int torusW = 0, torusH = 0; ///< GS1280 geometry
    int torusD = 1;             ///< torus planes (1 = classic 2-D)

    /** @name Build fingerprint (checked at snapshot restore) */
    /// @{
    std::uint64_t seed_ = 1;
    int mlp_ = 0;
    bool striped_ = false;
    bool shuffle_ = false;
    int shufflePolicy_ = 0;
    int tileR_ = 1, tileC_ = 1; ///< engine decomposition (1x1 = serial)
    int tileS_ = 1;      ///< Z cut of the tiling (1 on 2-D machines)
    int routerKind_ = 0; ///< net::RouterKind as built
    int topoKind_ = 0;   ///< 0 = 2-D torus/tree fabrics, 1 = 3-D torus
    /// @}

    int sharerGroup_ = 1; ///< directory sharer-bit granularity

    /** @name Run/restore state */
    /// @{
    std::vector<cpu::TrafficSource *> sources_; ///< attached by run()
    std::shared_ptr<std::atomic<int>> running_; ///< unfinished cores
    bool restored_ = false; ///< next run() continues a restore
    /// @}

    /** @name Checkpoint policy + crash recovery */
    /// @{
    Tick ckptEvery_ = 0;
    std::string ckptPrefix_;
    Tick nextCkptAt_ = 0;
    std::optional<RollbackPolicy> rollback_;
    int retriesUsed_ = 0;
    bool tripPending_ = false;
    std::string pendingTrip_;
    /// @}

    std::vector<ckpt::Client *> clients_;

    /** @name ckpt.* telemetry (restores is wall-clock-shaped: a
     *  restored process cannot distinguish itself in exports, so it
     *  is registered as a wall-clock gauge and skipped there). */
    /// @{
    std::uint64_t ckptSaves_ = 0;
    std::uint64_t ckptBytes_ = 0;
    std::uint64_t ckptRollbacks_ = 0;
    std::uint64_t ckptRestores_ = 0;
    /// @}
};

} // namespace gs::sys

#endif // GS_SYSTEM_MACHINE_HH

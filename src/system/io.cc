#include "system/io.hh"

#include "sim/logging.hh"

namespace gs::sys
{

IoDma::IoDma(net::Network &network, NodeId from_node, NodeId to_node,
             IoDmaParams params)
    : net(network), from(from_node), to(to_node), prm(params)
{
    gs_assert(from != to, "DMA stream needs distinct endpoints");
    gs_assert(prm.packetBytes > 0 && prm.rateGBs > 0);
    packets = (prm.totalBytes + prm.packetBytes - 1) /
              static_cast<std::uint64_t>(prm.packetBytes);
    gap = nsToTicks(static_cast<double>(prm.packetBytes) /
                    prm.rateGBs);
}

double
IoDma::deliveredGBs() const
{
    if (endTick <= startTick || received == 0)
        return 0.0;
    return static_cast<double>(received) * prm.packetBytes /
           ticksToNs(endTick - startTick);
}

void
IoDma::start(std::function<void()> on_done)
{
    gs_assert(injected == 0, "DMA stream already started");
    onDone = std::move(on_done);
    startTick = net.context().now();
    injectNext();
}

void
IoDma::injectNext()
{
    if (injected >= packets)
        return;
    injected += 1;

    net::Packet pkt;
    pkt.cls = net::MsgClass::IO;
    pkt.src = from;
    pkt.dst = to;
    pkt.flits = net::headerFlits +
                (prm.packetBytes + 3) / 4; // 4 B flits
    pkt.user[0] = injected; // sequence number
    net.inject(pkt);

    net.context().queue().schedule(gap, [this] { injectNext(); });
}

void
IoDma::deliver(const net::Packet &)
{
    received += 1;
    if (received == packets) {
        endTick = net.context().now();
        if (onDone) {
            auto done = std::move(onDone);
            onDone = nullptr;
            done();
        }
    }
}

void
IoDma::attachSink(coher::CoherentNode &node)
{
    node.setIoSink(
        [this](const net::Packet &pkt) { deliver(pkt); });
}

} // namespace gs::sys

#include "system/xmesh.hh"

#include <cstdio>
#include <ostream>

#include "sim/logging.hh"
#include "topology/torus.hh"

namespace gs::sys
{

Xmesh::Xmesh(Machine &machine, Tick interval_ticks)
    : m(machine), interval(interval_ticks)
{
    gs_assert(interval > 0);
    const auto &topo = m.topology();
    lastLinkFlits.resize(static_cast<std::size_t>(topo.numNodes()));
    lastZboxBusy.assign(static_cast<std::size_t>(topo.numNodes()), 0);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        lastLinkFlits[std::size_t(n)].assign(
            static_cast<std::size_t>(topo.numPorts(n)), 0);
    }
}

void
Xmesh::start()
{
    if (active)
        return;
    active = true;
    windowStart = m.ctx().now();

    // Prime the counter snapshots.
    const auto &topo = m.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        for (int p = 0; p < topo.numPorts(n); ++p)
            lastLinkFlits[std::size_t(n)][std::size_t(p)] =
                m.network().linkBusyFlits(n, p);
        Tick busy = 0;
        if (m.hasNode(n)) {
            auto &node = m.node(n);
            for (int z = 0; z < node.zboxCount(); ++z)
                busy += node.zbox(z).stats().busyTicks;
        }
        lastZboxBusy[std::size_t(n)] = busy;
    }
    m.ctx().queue().schedule(interval, [this] { tick(); });
}

void
Xmesh::stop()
{
    active = false;
}

void
Xmesh::tick()
{
    if (!active)
        return;
    log.push_back(sampleNow());
    m.ctx().queue().schedule(interval, [this] { tick(); });
}

XmeshSample
Xmesh::sampleNow()
{
    const auto &topo = m.topology();
    const Tick now = m.ctx().now();
    const Tick window = now > windowStart ? now - windowStart : 1;
    const Tick period = m.network().period();

    XmeshSample s;
    s.when = now;
    s.memUtil.assign(static_cast<std::size_t>(topo.numNodes()), 0.0);
    s.linkUtil.resize(static_cast<std::size_t>(topo.numNodes()));

    double memSum = 0;
    int memNodes = 0;
    double linkSum = 0;
    int linkCount = 0;
    double ewSum = 0, nsSum = 0;
    int ewCount = 0, nsCount = 0;

    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        // Memory controllers.
        Tick busy = 0;
        int channels = 0;
        if (m.hasNode(n)) {
            auto &node = m.node(n);
            for (int z = 0; z < node.zboxCount(); ++z) {
                busy += node.zbox(z).stats().busyTicks;
                channels += node.zbox(z).params().channels;
            }
        }
        if (channels > 0) {
            Tick delta = busy - lastZboxBusy[std::size_t(n)];
            double util = static_cast<double>(delta) /
                          (static_cast<double>(window) * channels);
            s.memUtil[std::size_t(n)] = std::min(util, 1.0);
            memSum += s.memUtil[std::size_t(n)];
            memNodes += 1;
        }
        lastZboxBusy[std::size_t(n)] = busy;

        // Links.
        auto &ports = s.linkUtil[std::size_t(n)];
        ports.assign(static_cast<std::size_t>(topo.numPorts(n)), 0.0);
        for (int p = 0; p < topo.numPorts(n); ++p) {
            if (!topo.port(n, p).connected())
                continue;
            std::uint64_t flits = m.network().linkBusyFlits(n, p);
            std::uint64_t delta =
                flits - lastLinkFlits[std::size_t(n)][std::size_t(p)];
            lastLinkFlits[std::size_t(n)][std::size_t(p)] = flits;
            double util = static_cast<double>(delta) *
                          static_cast<double>(period) /
                          static_cast<double>(window);
            util = std::min(util, 1.0);
            ports[std::size_t(p)] = util;
            linkSum += util;
            linkCount += 1;
            if (p == topo::portEast || p == topo::portWest) {
                ewSum += util;
                ewCount += 1;
            } else if (p == topo::portNorth || p == topo::portSouth) {
                nsSum += util;
                nsCount += 1;
            }
        }
    }

    s.avgMemUtil = memNodes ? memSum / memNodes : 0.0;
    s.avgLinkUtil = linkCount ? linkSum / linkCount : 0.0;
    s.avgEastWest = ewCount ? ewSum / ewCount : 0.0;
    s.avgNorthSouth = nsCount ? nsSum / nsCount : 0.0;

    windowStart = now;
    return s;
}

void
Xmesh::dumpCsv(std::ostream &os) const
{
    os << "timestamp_us,avg_mem,avg_link,avg_ew,avg_ns";
    const int nodes = m.topology().numNodes();
    for (int n = 0; n < nodes; ++n)
        os << ",mem" << n;
    os << '\n';
    for (const auto &s : log) {
        os << ticksToNs(s.when) / 1000.0 << ',' << s.avgMemUtil << ','
           << s.avgLinkUtil << ',' << s.avgEastWest << ','
           << s.avgNorthSouth;
        for (double u : s.memUtil)
            os << ',' << u;
        os << '\n';
    }
}

std::string
Xmesh::heatmap(const XmeshSample &s) const
{
    const auto *torus =
        dynamic_cast<const topo::Torus2D *>(&m.topology());
    gs_assert(torus, "heatmap requires a torus machine");

    std::string out;
    out += "Xmesh: memory controller utilization (%)\n";
    char buf[64];
    for (int y = 0; y < torus->height(); ++y) {
        for (int x = 0; x < torus->width(); ++x) {
            NodeId n = torus->nodeAt(x, y);
            double util = s.memUtil[std::size_t(n)] * 100.0;
            const char *mark = util >= 40.0 ? "*" : " ";
            std::snprintf(buf, sizeof buf, " [%5.1f%s]", util, mark);
            out += buf;
        }
        out += '\n';
    }
    out += "('*' marks nodes above 40% - hot-spot candidates)\n";
    return out;
}

} // namespace gs::sys

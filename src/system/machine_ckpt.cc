/**
 * @file
 * Machine checkpoint/restore orchestration (docs/CHECKPOINT.md).
 *
 * A snapshot walks the machine in a fixed section order:
 *
 *   META  build fingerprint (system, CPUs, seed, options, engine
 *         domain layout) — checked field-by-field at restore
 *   RNGS  every SimContext RNG (master + parallel domains)
 *   EVTQ  every event queue: clock/counters + each pending
 *         (when, seq, desc) triple, sorted by (when, seq)
 *   NETW  network shards, routers, packet pools, mailboxes
 *   COHR  per-node coherence state (caches, MAF, directory, Zboxes)
 *   CPUS  per-core issue-stage state + L1
 *   WLOD  traffic-source stream positions
 *   FALT  degraded-topology masks, injector stats, watchdog
 *   XTRA  registered ckpt::Client blobs (telemetry sampler, ...)
 *   CKPT  checkpoint accounting (saves/bytes/rollbacks), written
 *         last and two-phase so the serialized counters already
 *         include this save — a restored run's exports then match
 *         the uninterrupted run's byte-for-byte
 *
 * Event callbacks are never serialized: each pending event carries a
 * 32-byte EventDesc, and Machine::rehydrate routes it to the owning
 * component's recipe at restore.
 */

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "system/machine.hh"

namespace gs::sys
{

namespace
{

void
putRng(ckpt::Serializer &s, const Rng &rng)
{
    std::uint64_t w[4];
    rng.stateWords(w);
    for (std::uint64_t v : w)
        s.put64(v);
}

void
getRng(ckpt::Deserializer &d, Rng &rng)
{
    std::uint64_t w[4];
    for (std::uint64_t &v : w)
        v = d.get64();
    if (d.ok())
        rng.setStateWords(w);
}

/** One snapshotted pending event. */
struct PendingEv
{
    Tick when;
    std::uint64_t seq;
    ckpt::EventDesc desc;
};

} // namespace

std::vector<EventQueue *>
Machine::ckptQueues()
{
    std::vector<EventQueue *> qs;
    if (par_) {
        for (int dom = 0; dom < par_->domains(); ++dom)
            qs.push_back(&par_->domainCtx(dom).queue());
    } else {
        qs.push_back(&context->queue());
    }
    return qs;
}

int
Machine::registerCkptClient(ckpt::Client &client)
{
    int id = static_cast<int>(clients_.size());
    client.setCkptClientId(id);
    clients_.push_back(&client);
    return id;
}

void
Machine::setCheckpointPolicy(Tick everyTicks, std::string pathPrefix)
{
    ckptEvery_ = everyTicks;
    ckptPrefix_ = std::move(pathPrefix);
    if (ckptEvery_ > 0)
        nextCkptAt_ = (ctx().now() / ckptEvery_ + 1) * ckptEvery_;
}

void
Machine::setRollbackPolicy(RollbackPolicy policy)
{
    gs_assert(!par_, "watchdog rollback requires the serial engine");
    rollback_ = std::move(policy);
    retriesUsed_ = 0;
}

std::function<void()>
Machine::rehydrate(const ckpt::EventDesc &d)
{
    switch (d.kind) {
      case ckpt::Opaque:
        return {};
      case ckpt::NetInjStart:
      case ckpt::NetDeliverLocal:
      case ckpt::NetReceive:
      case ckpt::NetCredit:
      case ckpt::NetTick:
        return net->rehydrateEvent(d);
      case ckpt::CohSendMsg:
      case ckpt::CohFillBatch:
      case ckpt::CohHomeReadExcl:
      case ckpt::CohHomeApplyExcl:
      case ckpt::CohHomeReadShared:
      case ckpt::CohHomeApplyShared:
      case ckpt::CohHomeApplyVictim:
      case ckpt::CohHomeApplyDowngrade:
      case ckpt::CohHomeApplyTransfer:
        if (d.owner >= nodes.size() || !nodes[d.owner])
            return {};
        return nodes[d.owner]->rehydrateEvent(d);
      case ckpt::CoreThink:
      case ckpt::CoreL1Hit:
      case ckpt::CoreMemDone:
        if (d.owner >= cores.size())
            return {};
        return cores[d.owner]->rehydrateEvent(d);
      case ckpt::FaultApply:
        return injector_->rehydrateEvent(d);
      case ckpt::WatchdogPoll:
        return watchdog_ ? watchdog_->rehydrateEvent(d)
                         : std::function<void()>{};
      case ckpt::ClientEvent:
        if (d.owner >= clients_.size())
            return {};
        return clients_[d.owner]->rehydrateEvent(d);
      default:
        return {};
    }
}

bool
Machine::save(const std::string &path, std::string *err)
{
    auto fail = [err](std::string m) {
        if (err)
            *err = std::move(m);
        return false;
    };

    ckpt::Serializer s;

    // META ------------------------------------------------------------
    s.beginSection(ckpt::secMeta);
    s.put8(static_cast<std::uint8_t>(kind_));
    s.putI32(nCpus);
    s.putI32(torusW);
    s.putI32(torusH);
    s.put64(seed_);
    s.putI32(mlp_);
    s.putBool(striped_);
    s.putBool(shuffle_);
    s.putI32(shufflePolicy_);
    s.putI32(par_ ? par_->domains() : 1);
    s.putI32(topo_->numNodes());
    s.putI32(tileR_);
    s.putI32(tileC_);
    s.putI32(routerKind_);
    s.putI32(topoKind_);
    s.putI32(torusD);
    s.putI32(tileS_);
    s.endSection();

    // RNGS ------------------------------------------------------------
    s.beginSection(ckpt::secRng);
    putRng(s, context->rng());
    if (par_) {
        for (int dom = 0; dom < par_->domains(); ++dom)
            putRng(s, par_->domainCtx(dom).rng());
    }
    s.endSection();

    // EVTQ ------------------------------------------------------------
    if (par_ && !context->queue().empty()) {
        return fail("cannot checkpoint: events pending on the master "
                    "context under the parallel engine");
    }
    s.beginSection(ckpt::secEvtq);
    auto qs = ckptQueues();
    s.putI32(static_cast<std::int32_t>(qs.size()));
    for (EventQueue *q : qs) {
        auto st = q->ckptState();
        s.put64(static_cast<std::uint64_t>(st.now));
        s.put64(st.nextSeq);
        s.put64(st.nextMergedSeq);
        s.put64(st.fired);
        s.put64(st.peak);
        s.put64(st.migrated);

        std::vector<PendingEv> evs;
        q->visitPending([&evs](Tick when, std::uint64_t seq,
                               const ckpt::EventDesc &desc) {
            evs.push_back({when, seq, desc});
        });
        std::sort(evs.begin(), evs.end(),
                  [](const PendingEv &a, const PendingEv &b) {
            return a.when != b.when ? a.when < b.when : a.seq < b.seq;
        });
        for (const PendingEv &e : evs) {
            if (e.desc.kind == ckpt::Opaque) {
                return fail(
                    "cannot checkpoint: a pending event at tick " +
                    std::to_string(e.when) +
                    " has an opaque callback (its scheduling call "
                    "site does not pass an EventDesc)");
            }
        }
        s.put32(static_cast<std::uint32_t>(evs.size()));
        for (const PendingEv &e : evs) {
            s.put64(static_cast<std::uint64_t>(e.when));
            s.put64(e.seq);
            s.putDesc(e.desc);
        }
    }
    if (par_)
        s.put64(par_->epochs());
    s.endSection();

    // NETW ------------------------------------------------------------
    s.beginSection(ckpt::secNet);
    net->saveCkpt(s);
    s.endSection();

    // COHR ------------------------------------------------------------
    s.beginSection(ckpt::secCoh);
    s.putI32(static_cast<std::int32_t>(nodes.size()));
    for (const auto &node : nodes) {
        s.putBool(node != nullptr);
        if (node)
            node->saveCkpt(s);
    }
    s.endSection();

    // CPUS ------------------------------------------------------------
    s.beginSection(ckpt::secCpu);
    s.putI32(static_cast<std::int32_t>(cores.size()));
    for (const auto &core : cores)
        core->saveCkpt(s);
    s.endSection();

    // WLOD ------------------------------------------------------------
    s.beginSection(ckpt::secWld);
    s.putI32(static_cast<std::int32_t>(sources_.size()));
    for (const cpu::TrafficSource *src : sources_) {
        s.putBool(src != nullptr);
        if (src)
            src->saveCkpt(s);
    }
    s.endSection();

    // FALT ------------------------------------------------------------
    s.beginSection(ckpt::secFlt);
    fabric_->saveCkpt(s);
    injector_->saveCkpt(s);
    s.putBool(watchdog_ != nullptr);
    if (watchdog_)
        watchdog_->saveCkpt(s);
    s.endSection();

    // XTRA ------------------------------------------------------------
    s.beginSection(ckpt::secXtra);
    s.putI32(static_cast<std::int32_t>(clients_.size()));
    for (const ckpt::Client *client : clients_)
        client->saveCkpt(s);
    s.endSection();

    // CKPT ------------------------------------------------------------
    // Two-phase: every other section is serialized, so the final
    // file size is known up front; bump the live counters first and
    // write their post-save values. A restored run then carries the
    // same ckpt.* state as the run that kept going.
    constexpr std::uint64_t ckptSectionBytes = 16 + 4 * 8;
    const std::uint64_t total = 16 + s.size() + ckptSectionBytes;
    ckptSaves_ += 1;
    ckptBytes_ += total;
    s.beginSection(ckpt::secCkpt);
    s.put64(ckptSaves_);
    s.put64(ckptBytes_);
    s.put64(ckptRollbacks_);
    s.put64(static_cast<std::uint64_t>(nextCkptAt_));
    s.endSection();

    std::string werr;
    if (!ckpt::writeSnapshot(path, s, &werr)) {
        ckptSaves_ -= 1;
        ckptBytes_ -= total;
        return fail(std::move(werr));
    }
    return true;
}

bool
Machine::restore(const std::string &path,
                 const std::vector<cpu::TrafficSource *> &sources,
                 std::string *err)
{
    auto fail = [err](std::string m) {
        if (err)
            *err = std::move(m);
        return false;
    };
    gs_assert(static_cast<int>(sources.size()) <= nCpus,
              "more sources than CPUs");

    std::vector<std::uint8_t> buf;
    std::size_t bodyOff = 0;
    {
        std::string rerr;
        if (!ckpt::readSnapshot(path, &buf, &bodyOff, &rerr))
            return fail(std::move(rerr));
    }
    ckpt::Deserializer d(buf.data() + bodyOff, buf.size() - bodyOff);

    // META ------------------------------------------------------------
    if (!d.enterSection(ckpt::secMeta, "META"))
        return fail(d.error());
    auto check = [&d](std::int64_t got, std::int64_t want,
                      const char *what) {
        if (d.ok() && got != want) {
            d.fail("snapshot machine mismatch: " + std::string(what) +
                   " is " + std::to_string(got) +
                   ", this machine was built with " +
                   std::to_string(want));
        }
    };
    check(d.get8(), static_cast<int>(kind_), "the system kind");
    check(d.getI32(), nCpus, "the CPU count");
    check(d.getI32(), torusW, "the torus width");
    check(d.getI32(), torusH, "the torus height");
    check(static_cast<std::int64_t>(d.get64()),
          static_cast<std::int64_t>(seed_), "the seed");
    check(d.getI32(), mlp_, "the core MLP");
    check(d.getBool() ? 1 : 0, striped_ ? 1 : 0, "memory striping");
    check(d.getBool() ? 1 : 0, shuffle_ ? 1 : 0, "the shuffle option");
    check(d.getI32(), shufflePolicy_, "the shuffle policy");
    if (d.ok()) {
        std::int32_t doms = d.getI32();
        int have = par_ ? par_->domains() : 1;
        if (d.ok() && doms != have) {
            d.fail("snapshot engine layout mismatch: saved with " +
                   std::to_string(doms) +
                   " event domain(s), this machine has " +
                   std::to_string(have) +
                   " (serial snapshots restore at --threads 1, "
                   "parallel ones at any --threads > 1 of the same "
                   "machine and tile shape)");
        }
    }
    check(d.getI32(), topo_->numNodes(), "the node count");
    check(d.getI32(), tileR_, "the tile rows");
    check(d.getI32(), tileC_, "the tile cols");
    check(d.getI32(), routerKind_, "the router backend");
    check(d.getI32(), topoKind_, "the topology kind");
    check(d.getI32(), torusD, "the torus depth");
    check(d.getI32(), tileS_, "the tile slabs");
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("META");

    // RNGS ------------------------------------------------------------
    if (!d.enterSection(ckpt::secRng, "RNGS"))
        return fail(d.error());
    getRng(d, context->rng());
    if (par_) {
        for (int dom = 0; dom < par_->domains(); ++dom)
            getRng(d, par_->domainCtx(dom).rng());
    }
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("RNGS");

    // EVTQ ------------------------------------------------------------
    if (!d.enterSection(ckpt::secEvtq, "EVTQ"))
        return fail(d.error());
    auto qs = ckptQueues();
    if (d.getI32() != static_cast<std::int32_t>(qs.size()) && d.ok())
        d.fail("snapshot event-queue count differs from this "
               "machine's engine layout");
    for (EventQueue *q : qs) {
        if (!d.ok())
            break;
        EventQueue::CkptState st;
        st.now = static_cast<Tick>(d.get64());
        st.nextSeq = d.get64();
        st.nextMergedSeq = d.get64();
        st.fired = d.get64();
        st.peak = d.get64();
        st.migrated = d.get64();
        if (!d.ok())
            break;
        q->restoreBegin(st);
        std::uint32_t n = d.get32();
        for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
            Tick when = static_cast<Tick>(d.get64());
            std::uint64_t seq = d.get64();
            ckpt::EventDesc desc = d.getDesc();
            if (!d.ok())
                break;
            if (when < st.now) {
                d.fail("snapshot corrupt: a pending event predates "
                       "the snapshot clock");
                break;
            }
            auto fn = rehydrate(desc);
            if (!fn) {
                d.fail("snapshot corrupt: no rehydration recipe for "
                       "event kind " + std::to_string(desc.kind) +
                       " (owner " + std::to_string(desc.owner) + ")");
                break;
            }
            q->insertRestored(when, seq, desc, std::move(fn));
        }
    }
    if (par_ && d.ok())
        par_->restoreEpochs(d.get64());
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("EVTQ");

    // NETW ------------------------------------------------------------
    if (!d.enterSection(ckpt::secNet, "NETW"))
        return fail(d.error());
    net->restoreCkpt(d);
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("NETW");

    // COHR ------------------------------------------------------------
    if (!d.enterSection(ckpt::secCoh, "COHR"))
        return fail(d.error());
    if (d.getI32() != static_cast<std::int32_t>(nodes.size()) &&
        d.ok())
        d.fail("snapshot node count differs from this machine");
    ckpt::RehydrateFn rehydrateFn = [this](const ckpt::EventDesc &ed) {
        return rehydrate(ed);
    };
    for (auto &node : nodes) {
        if (!d.ok())
            break;
        if (d.getBool() != (node != nullptr) && d.ok()) {
            d.fail("snapshot node presence differs from this machine");
            break;
        }
        if (node)
            node->restoreCkpt(d, rehydrateFn);
    }
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("COHR");

    // CPUS ------------------------------------------------------------
    if (!d.enterSection(ckpt::secCpu, "CPUS"))
        return fail(d.error());
    if (d.getI32() != static_cast<std::int32_t>(cores.size()) &&
        d.ok())
        d.fail("snapshot core count differs from this machine");
    for (auto &core : cores) {
        if (!d.ok())
            break;
        core->restoreCkpt(d);
    }
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("CPUS");

    // WLOD ------------------------------------------------------------
    if (!d.enterSection(ckpt::secWld, "WLOD"))
        return fail(d.error());
    if (d.getI32() != static_cast<std::int32_t>(sources.size()) &&
        d.ok())
        d.fail("snapshot has a different number of traffic sources "
               "(pass the saved run's workload set to restore)");
    for (cpu::TrafficSource *src : sources) {
        if (!d.ok())
            break;
        if (d.getBool() != (src != nullptr) && d.ok()) {
            d.fail("snapshot traffic-source placement differs (pass "
                   "the saved run's workload set to restore)");
            break;
        }
        if (src)
            src->restoreCkpt(d);
    }
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("WLOD");

    // FALT ------------------------------------------------------------
    if (!d.enterSection(ckpt::secFlt, "FALT"))
        return fail(d.error());
    fabric_->restoreCkpt(d);
    injector_->restoreCkpt(d);
    if (d.ok()) {
        bool hadWatchdog = d.getBool();
        if (d.ok() && hadWatchdog != (watchdog_ != nullptr)) {
            d.fail(hadWatchdog
                       ? "snapshot was taken with a watchdog; call "
                         "armWatchdog() before restoring"
                       : "snapshot has no watchdog but this machine "
                         "created one");
        }
        if (d.ok() && watchdog_)
            watchdog_->restoreCkpt(d);
    }
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("FALT");

    // XTRA ------------------------------------------------------------
    if (!d.enterSection(ckpt::secXtra, "XTRA"))
        return fail(d.error());
    if (d.getI32() != static_cast<std::int32_t>(clients_.size()) &&
        d.ok())
        d.fail("snapshot checkpoint-client count differs (register "
               "the same clients, in order, before restoring)");
    for (ckpt::Client *client : clients_) {
        if (!d.ok())
            break;
        client->restoreCkpt(d);
    }
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("XTRA");

    // CKPT ------------------------------------------------------------
    if (!d.enterSection(ckpt::secCkpt, "CKPT"))
        return fail(d.error());
    ckptSaves_ = d.get64();
    ckptBytes_ = d.get64();
    ckptRollbacks_ = d.get64();
    nextCkptAt_ = static_cast<Tick>(d.get64());
    if (!d.ok())
        return fail(d.error());
    d.leaveSection("CKPT");
    if (!d.ok())
        return fail(d.error());

    // Re-attach the workload: cores keep their restored execution
    // state; resume() only rebinds the source and completion hook.
    sources_ = sources;
    running_ = std::make_shared<std::atomic<int>>(0);
    auto running = running_;
    for (std::size_t c = 0; c < sources.size(); ++c) {
        if (!sources[c])
            continue;
        cores[c]->resume(*sources[c], [running] {
            running->fetch_sub(1, std::memory_order_release);
        });
        if (!cores[c]->done())
            running->fetch_add(1, std::memory_order_relaxed);
    }
    restored_ = true;
    ckptRestores_ += 1;
    return true;
}

void
Machine::checkpointNow()
{
    // Advance the edge BEFORE saving so the snapshot carries the
    // post-save schedule: a run restored from it computes the same
    // next checkpoint time the saving run kept using.
    Tick now = ctx().now();
    do {
        nextCkptAt_ += ckptEvery_;
    } while (nextCkptAt_ <= now);

    std::string path = ckptPrefix_ + "." +
                       std::to_string(ckptSaves_ + 1) + ".gsckpt";
    std::string err;
    if (!save(path, &err))
        gs_fatal("periodic checkpoint failed: ", err);
}

void
Machine::handleRollback()
{
    const std::string why = pendingTrip_;
    tripPending_ = false;
    pendingTrip_.clear();
    gs_assert(rollback_.has_value(),
              "watchdog trip queued without a rollback policy");

    const std::string diag =
        watchdog_ ? watchdog_->diagnose() : std::string();
    if (retriesUsed_ >= rollback_->maxRetries) {
        gs_warn("watchdog tripped: ", why, "\n", diag);
        gs_fatal("watchdog rollback: retry budget exhausted (",
                 retriesUsed_, "/", rollback_->maxRetries,
                 ") — giving up on: ", why);
    }
    retriesUsed_ += 1;
    gs_warn("watchdog tripped: ", why, "\n", diag,
            "\nrolling back to ", rollback_->snapshotPath, " (retry ",
            retriesUsed_, "/", rollback_->maxRetries, ")");

    if (rollback_->healFaults)
        injector_->suppressFaults();

    std::string err;
    if (!restore(rollback_->snapshotPath, sources_, &err))
        gs_fatal("watchdog rollback: restore failed: ", err);
    restored_ = false; // consumed here: the run loop continues
    ckptRollbacks_ += 1;

    // The snapshot may predate arm(); make sure polling continues.
    if (watchdog_ && !watchdog_->armed())
        watchdog_->arm();
}

} // namespace gs::sys

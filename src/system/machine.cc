#include "system/machine.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "coherence/tracer.hh"
#include "sim/logging.hh"
#include "topology/torus.hh"
#include "topology/torus3d.hh"
#include "topology/tree.hh"

namespace gs::sys
{

std::pair<int, int>
torusShape(int cpus)
{
    // The shapes HP shipped: 2x1, 2x2, 4x2, 4x3 (12P), 4x4, 8x4,
    // 8x8; width is the longer dimension ("horizontal" links in the
    // paper's Figure 24 discussion of the 32P machine).
    switch (cpus) {
      case 1:
        return {1, 1};
      case 2:
        return {2, 1};
      case 4:
        return {2, 2};
      case 8:
        return {4, 2};
      case 12:
        return {4, 3};
      case 16:
        return {4, 4};
      case 32:
        return {8, 4};
      case 64:
        return {8, 8};
      default: {
        int w = 1;
        while (w * w < cpus)
            w *= 2;
        gs_assert(cpus % w == 0, "no standard torus shape for ", cpus,
                  " CPUs");
        return {w, cpus / w};
      }
    }
}

NodeId
Machine::moduleBuddy(NodeId n) const
{
    gs_assert(kind_ == SystemKind::GS1280,
              "module buddies exist only on the GS1280");
    if (torusD > 1) {
        // 3-D machines pair adjacent slabs: the buddy is the same
        // (x, y) position one plane over, so striping still spreads a
        // hot region across exactly one link, now a Z hop.
        const auto *t3 =
            static_cast<const topo::Torus3D *>(topo_.get());
        int z = t3->zOf(n);
        int buddyZ = (z % 2 == 0)
                         ? (z + 1 < t3->depth() ? z + 1 : z - 1)
                         : z - 1;
        if (buddyZ < 0)
            buddyZ = z; // degenerate single-plane case
        return t3->nodeAt(t3->xOf(n), t3->yOf(n), buddyZ);
    }
    const auto *torus = static_cast<const topo::Torus2D *>(topo_.get());
    int x = torus->xOf(n), y = torus->yOf(n);
    if (torus->height() == 1)
        return torus->nodeAt((x + 1) % torus->width(), y);
    int buddyY = (y % 2 == 0) ? (y + 1 < torus->height() ? y + 1 : y - 1)
                              : y - 1;
    if (buddyY < 0)
        buddyY = y; // degenerate single-row case
    return torus->nodeAt(x, buddyY);
}

std::unique_ptr<Machine>
Machine::buildGS1280(int cpus, Gs1280Options opt)
{
    gs_assert(opt.depth >= 1, "torus depth must be positive");
    if (opt.depth == 1)
        gs_assert(cpus >= 1 && cpus <= 64,
                  "GS1280 supports 1-64 CPUs");
    else
        gs_assert(cpus >= 1 && cpus <= 2048,
                  "3-D scale-out models up to 2048 nodes");

    auto m = std::unique_ptr<Machine>(new Machine);
    m->kind_ = SystemKind::GS1280;
    m->nCpus = cpus;
    m->context = std::make_unique<SimContext>(opt.seed);
    m->seed_ = opt.seed;
    m->mlp_ = opt.mlp;
    m->striped_ = opt.striped;
    m->shuffle_ = opt.shuffle;
    m->shufflePolicy_ = static_cast<int>(opt.shufflePolicy);
    m->routerKind_ = static_cast<int>(opt.routerKind);

    const int d = opt.depth;
    gs_assert(d == 1 || opt.width > 0,
              "3-D builds need an explicit shape (buildGS1280_3D)");
    auto [w, h] = opt.width > 0 ? std::pair{opt.width, opt.height}
                                : torusShape(cpus);
    gs_assert(w * h * d == cpus, "torus ", w, "x", h, "x", d,
              " != ", cpus, " CPUs");
    m->torusW = w;
    m->torusH = h;
    m->torusD = d;

    if (d > 1) {
        gs_assert(!opt.shuffle,
                  "shuffle rewiring is a 2-D torus feature");
        m->topo_ = std::make_unique<topo::Torus3D>(w, h, d);
        m->topoKind_ = 1;
    } else if (opt.shuffle) {
        m->topo_ = std::make_unique<topo::ShuffleTorus>(
            w, h, opt.shufflePolicy);
    } else {
        m->topo_ = std::make_unique<topo::Torus2D>(w, h);
    }

    if (opt.striped) {
        Machine *raw = m.get();
        m->map = std::make_unique<mem::StripedMap>(
            [raw](NodeId n) { return raw->moduleBuddy(n); });
    } else {
        m->map = std::make_unique<mem::NodeOwnedMap>();
    }

    net::NetworkParams np = net::NetworkParams::gs1280();
    np.routerKind = opt.routerKind;
    m->buildFabric(np);

    // Parallel decomposition: the torus is cut into R x C
    // rectangular tiles, one domain per tile. The shape comes from
    // --tile-shape when given, otherwise chooseTileShape derives it
    // from the thread count — so the *shape* fixes the event
    // schedule and every statistic, and opt.threads only picks how
    // many workers drive the tiles (the engine clamps it). Runs
    // compared across different thread counts must pin an explicit
    // shape. A 1x1 tiling (or a 1-CPU machine) stays serial.
    TileShape tiles = {1, 1};
    if (opt.threads > 1) {
        if (opt.tileRows > 0 || opt.tileCols > 0 ||
            opt.tileSlabs > 0) {
            // The shape is user input (--tile-shape), so an
            // ill-fitting one is a usage error, not a simulator bug.
            int slabs = opt.tileSlabs > 0 ? opt.tileSlabs : 1;
            if (opt.tileRows < 1 || opt.tileRows > h ||
                opt.tileCols < 1 || opt.tileCols > w || slabs > d)
                gs_fatal("tile shape ", opt.tileRows, "x",
                         opt.tileCols, "x", slabs,
                         " does not fit the ", w, "x", h, "x", d,
                         " torus (need rows <= ", h, ", cols <= ", w,
                         " and slabs <= ", d, ")");
            tiles = {opt.tileRows, opt.tileCols, slabs};
        } else if (d > 1) {
            tiles = chooseTileShape3(w, h, d, opt.threads);
        } else {
            tiles = chooseTileShape(w, h, opt.threads);
        }
    }
    if (opt.threads > 1 && tiles.count() > 1) {
        m->tileR_ = tiles.rows;
        m->tileC_ = tiles.cols;
        m->tileS_ = tiles.slabs;
        ParallelEngine::Config pcfg;
        pcfg.domains = tiles.count();
        pcfg.threads = opt.threads;
        pcfg.lookahead = m->net->conservativeLookahead();
        pcfg.seed = opt.seed;
        m->par_ = std::make_unique<ParallelEngine>(pcfg);

        std::vector<int> dom(static_cast<std::size_t>(cpus));
        if (d > 1) {
            const auto *t3 =
                static_cast<const topo::Torus3D *>(m->topo_.get());
            for (NodeId n = 0; n < cpus; ++n)
                dom[std::size_t(n)] =
                    tileDomainOf3(t3->xOf(n), t3->yOf(n), t3->zOf(n),
                                  w, h, d, tiles);
        } else {
            const auto *torus =
                static_cast<const topo::Torus2D *>(m->topo_.get());
            for (NodeId n = 0; n < cpus; ++n)
                dom[std::size_t(n)] = tileDomainOf(torus->xOf(n),
                                                   torus->yOf(n), w,
                                                   h, tiles);
        }
        std::vector<SimContext *> dctx;
        dctx.reserve(static_cast<std::size_t>(tiles.count()));
        for (int d = 0; d < tiles.count(); ++d)
            dctx.push_back(&m->par_->domainCtx(d));
        m->net->setPartition(std::move(dom), std::move(dctx));

        net::Network *netp = m->net.get();
        m->par_->setMergeHook(
            [netp](int d, Tick ws) { netp->mergeFor(d, ws); });
        m->par_->setPendingMinHook(
            [netp](int d) { return netp->pendingMinOf(d); });
        m->par_->setPublishHook(
            [netp](int d) { netp->publishFor(d); });
        m->par_->setWindowHook([netp](Tick ws, Tick base_end) {
            return netp->adaptiveWindow(ws, base_end);
        });
    }

    coher::NodeConfig ncfg;
    ncfg.hasCache = true;
    ncfg.hasMemory = true;
    ncfg.l2 = mem::CacheParams::ev7L2();
    ncfg.zbox = mem::ZboxParams::ev7();
    ncfg.zboxCount = 2;
    ncfg.mafEntries = std::max(16, opt.mlp);
    // Directory sharer vectors are one 64-bit word; past 64 nodes
    // each bit covers a group of ceil(N/64) nodes (coarse-vector
    // encoding, docs/SCALING.md). At <= 64 nodes the group is 1 and
    // the encoding is exact — bit-for-bit the shipped behaviour.
    ncfg.sharerGroupSize = (cpus + 63) / 64;
    m->sharerGroup_ = ncfg.sharerGroupSize;

    cpu::CoreParams ccfg;
    ccfg.mlp = opt.mlp;

    for (NodeId n = 0; n < cpus; ++n) {
        // Components schedule on their node's domain context; with
        // the serial engine that is the machine context, exactly as
        // before.
        SimContext &nctx =
            m->par_ ? m->par_->domainCtx(m->net->domainOf(n))
                    : *m->context;
        m->nodes.push_back(std::make_unique<coher::CoherentNode>(
            nctx, *m->net, n, *m->map, ncfg));
        m->cores.push_back(std::make_unique<cpu::TimingCore>(
            nctx, *m->nodes.back(), ccfg));
    }
    if (opt.spanSampleRate > 0.0) {
        // Latency x-ray collector: one per machine, registered as a
        // checkpoint client right here so the saving and restoring
        // builds agree on client order by construction.
        m->spans_ = std::make_unique<trace::SpanCollector>(
            opt.seed, opt.spanSampleRate, cpus);
        for (auto &node : m->nodes)
            node->setSpanCollector(m->spans_.get());
        m->registerCkptClient(*m->spans_);
    }
    m->registerTelemetry();
    return m;
}

std::unique_ptr<Machine>
Machine::buildGS1280_3D(int x, int y, int z, Gs1280Options opt)
{
    gs_assert(x >= 1 && y >= 1 && z >= 1, "bad 3-D torus shape ", x,
              "x", y, "x", z);
    opt.width = x;
    opt.height = y;
    opt.depth = z;
    return buildGS1280(x * y * z, opt);
}

std::size_t
Machine::memFootprintBytes() const
{
    std::size_t total = 0;
    for (const auto &node : nodes)
        if (node)
            total += node->footprintBytes();
    return total;
}

std::size_t
Machine::denseMemFootprintBytes() const
{
    std::size_t total = 0;
    for (const auto &node : nodes)
        if (node)
            total += node->denseFootprintBytes();
    return total;
}

std::unique_ptr<Machine>
Machine::buildGS320(int cpus, std::uint64_t seed, int mlp)
{
    gs_assert(cpus >= 1 && cpus <= 32 &&
                  (cpus % 4 == 0 || cpus < 4),
              "GS320 supports up to 8 QBBs of 4 CPUs");

    auto m = std::unique_ptr<Machine>(new Machine);
    m->kind_ = SystemKind::GS320;
    m->nCpus = cpus;
    m->context = std::make_unique<SimContext>(seed);
    m->seed_ = seed;
    m->mlp_ = mlp;

    int perQbb = std::min(cpus, 4);
    auto tree = std::make_unique<topo::QbbTree>(cpus, perQbb);
    const topo::QbbTree *treeRaw = tree.get();
    m->topo_ = std::move(tree);

    m->map = std::make_unique<mem::SharedHomeMap>(
        [treeRaw](NodeId region) {
        return treeRaw->qbbSwitchOf(region);
    });

    m->buildFabric(net::NetworkParams::gs320());

    // CPU nodes: 21264 core with the 16 MB off-chip direct-mapped L2.
    // Probing that cache for a forward means an off-chip SRAM read
    // through a busy bus interface — the slow Read-Dirty path the
    // paper contrasts with the EV7's on-chip forwarding (6.6x).
    coher::NodeConfig cpuCfg;
    cpuCfg.hasCache = true;
    cpuCfg.hasMemory = false;
    cpuCfg.l2 = mem::CacheParams::ev68L2();
    cpuCfg.fwdServiceNs = 300.0;

    // QBB switch nodes: the shared memory + directory. Calibrated so
    // one QBB sustains ~2 GB/s and local latency lands near 330 ns.
    coher::NodeConfig memCfg;
    memCfg.hasCache = false;
    memCfg.hasMemory = true;
    memCfg.zbox = mem::ZboxParams::qbbMemory(1.0, 70.0);
    memCfg.zboxCount = 2;
    memCfg.homeOverheadNs = 15.0;

    m->nodes.resize(static_cast<std::size_t>(m->topo_->numNodes()));
    for (NodeId n = 0; n < cpus; ++n) {
        m->nodes[std::size_t(n)] =
            std::make_unique<coher::CoherentNode>(*m->context, *m->net,
                                                  n, *m->map, cpuCfg);
        cpu::CoreParams ccfg;
        ccfg.mlp = mlp;
        m->cores.push_back(std::make_unique<cpu::TimingCore>(
            *m->context, *m->nodes[std::size_t(n)], ccfg));
    }
    for (int q = 0; q < treeRaw->qbbCount(); ++q) {
        NodeId sw = static_cast<NodeId>(cpus + q);
        m->nodes[std::size_t(sw)] =
            std::make_unique<coher::CoherentNode>(*m->context, *m->net,
                                                  sw, *m->map, memCfg);
    }
    // The global switch (if any) is a pure router: no CoherentNode.
    m->registerTelemetry();
    return m;
}

std::unique_ptr<Machine>
Machine::buildES45(int cpus, std::uint64_t seed, int mlp)
{
    gs_assert(cpus >= 1 && cpus <= 4, "ES45 is a 4-CPU SMP");

    auto m = std::unique_ptr<Machine>(new Machine);
    m->kind_ = SystemKind::ES45;
    m->nCpus = cpus;
    m->context = std::make_unique<SimContext>(seed);
    m->seed_ = seed;
    m->mlp_ = mlp;

    auto tree = std::make_unique<topo::QbbTree>(cpus, cpus);
    const topo::QbbTree *treeRaw = tree.get();
    m->topo_ = std::move(tree);

    m->map = std::make_unique<mem::SharedHomeMap>(
        [treeRaw](NodeId region) {
        return treeRaw->qbbSwitchOf(region);
    });

    // ES45 crossbar: faster than the GS320 QBB path (Figure 4:
    // ~195 ns flat memory latency; Figure 7: ~2x GS320 bandwidth).
    net::NetworkParams netP = net::NetworkParams::gs320();
    netP.clockMHz = 500.0;
    netP.pipelineCycles = 7;
    netP.injectionCycles = 3;
    netP.ejectionCycles = 3;
    m->buildFabric(netP);

    coher::NodeConfig cpuCfg;
    cpuCfg.hasCache = true;
    cpuCfg.hasMemory = false;
    cpuCfg.l2 = mem::CacheParams::ev68L2();
    cpuCfg.fwdServiceNs = 120.0; // off-chip cache probe

    coher::NodeConfig memCfg;
    memCfg.hasCache = false;
    memCfg.hasMemory = true;
    memCfg.zbox = mem::ZboxParams::qbbMemory(1.75, 45.0);
    memCfg.zboxCount = 2;
    memCfg.homeOverheadNs = 10.0;

    m->nodes.resize(static_cast<std::size_t>(m->topo_->numNodes()));
    for (NodeId n = 0; n < cpus; ++n) {
        m->nodes[std::size_t(n)] =
            std::make_unique<coher::CoherentNode>(*m->context, *m->net,
                                                  n, *m->map, cpuCfg);
        cpu::CoreParams ccfg;
        ccfg.mlp = mlp;
        m->cores.push_back(std::make_unique<cpu::TimingCore>(
            *m->context, *m->nodes[std::size_t(n)], ccfg));
    }
    NodeId hub = static_cast<NodeId>(cpus);
    m->nodes[std::size_t(hub)] =
        std::make_unique<coher::CoherentNode>(*m->context, *m->net, hub,
                                              *m->map, memCfg);
    m->registerTelemetry();
    return m;
}

void
Machine::buildFabric(net::NetworkParams params)
{
    fabric_ = std::make_unique<fault::DegradedTopology>(*topo_);
    net = std::make_unique<net::Network>(*context, *fabric_,
                                         std::move(params));
    injector_ =
        std::make_unique<fault::FaultInjector>(*context, *net, *fabric_);
}

void
Machine::registerTelemetry()
{
    net->registerTelemetry(telemetry_, "net");
    injector_->registerTelemetry(telemetry_, "fault");
    if (spans_)
        spans_->registerTelemetry(telemetry_, "xray");

    // Checkpoint accounting. saves/bytes/rollbacks are simulation
    // state (serialized in snapshots, so a restored run's exports
    // converge to the uninterrupted run's); restores counts how many
    // times THIS process loaded a snapshot — inherently wall-clock
    // shaped, so it is visible live but excluded from exports.
    telemetry_.addCounter("ckpt.saves", ckptSaves_);
    telemetry_.addCounter("ckpt.bytes", ckptBytes_);
    telemetry_.addCounter("ckpt.rollbacks", ckptRollbacks_);
    telemetry_.addWallClockGauge("ckpt.restores", [this] {
        return static_cast<double>(ckptRestores_);
    });

    // Model-memory accounting (docs/SCALING.md). Footprints track
    // live allocations — wall-clock shaped, so visible in the
    // registry and the mem.* benches but excluded from exports.
    telemetry_.addWallClockGauge("mem.model_bytes", [this] {
        return static_cast<double>(memFootprintBytes());
    });
    telemetry_.addWallClockGauge("mem.dense_model_bytes", [this] {
        return static_cast<double>(denseMemFootprintBytes());
    });
    telemetry_.addWallClockGauge("mem.bytes_per_node", [this] {
        return static_cast<double>(memFootprintBytes()) /
               static_cast<double>(topo_->numNodes());
    });
    telemetry_.addWallClockGauge("mem.dense_bytes_per_node", [this] {
        return static_cast<double>(denseMemFootprintBytes()) /
               static_cast<double>(topo_->numNodes());
    });
    telemetry_.addWallClockGauge("mem.reduction", [this] {
        auto used = static_cast<double>(memFootprintBytes());
        return used > 0.0
                   ? static_cast<double>(denseMemFootprintBytes()) /
                         used
                   : 0.0;
    });
    telemetry_.addWallClockGauge("mem.sharer_group", [this] {
        return static_cast<double>(sharerGroup_);
    });

    // Event-kernel self-metrics: how hard the calendar queue is
    // working (see docs/EVENT_KERNEL.md). `buckets` counts events
    // resident in the near-future ring, `overflow` those parked in
    // the far-future heap; a healthy steady state keeps overflow
    // near zero. Parallel machines sum the per-domain queues
    // (peak_pending sums per-domain peaks, an upper bound on the
    // instantaneous machine-wide peak).
    if (par_) {
        ParallelEngine *pe = par_.get();
        auto sumQ = [pe](auto probe) {
            double n = 0;
            for (int d = 0; d < pe->domains(); ++d)
                n += static_cast<double>(probe(pe->domainCtx(d).queue()));
            return n;
        };
        telemetry_.addGauge("eq.fired", [sumQ] {
            return sumQ([](const EventQueue &q) {
                return q.firedCount();
            });
        });
        telemetry_.addGauge("eq.pending", [sumQ] {
            return sumQ([](const EventQueue &q) { return q.pending(); });
        });
        telemetry_.addGauge("eq.peak_pending", [sumQ] {
            return sumQ([](const EventQueue &q) {
                return q.peakPending();
            });
        });
        telemetry_.addGauge("eq.buckets", [sumQ] {
            return sumQ([](const EventQueue &q) {
                return q.ringPending();
            });
        });
        telemetry_.addGauge("eq.overflow", [sumQ] {
            return sumQ([](const EventQueue &q) {
                return q.overflowPending();
            });
        });

        // Parallel-engine self-metrics. Everything here is a pure
        // function of simulation state — identical at any thread
        // count — except barrier_wait_frac, which is wall-clock
        // derived (see docs/PARALLEL.md).
        net::Network *netp = net.get();
        telemetry_.addGauge("par.domains", [pe] {
            return static_cast<double>(pe->domains());
        });
        telemetry_.addGauge("par.epochs", [pe] {
            return static_cast<double>(pe->epochs());
        });
        telemetry_.addGauge("par.lookahead_ticks", [pe] {
            return static_cast<double>(pe->lookahead());
        });
        telemetry_.addGauge("par.tile_rows", [this] {
            return static_cast<double>(tileR_);
        });
        telemetry_.addGauge("par.tile_cols", [this] {
            return static_cast<double>(tileC_);
        });
        telemetry_.addGauge("par.lookahead_widened", [netp] {
            return static_cast<double>(netp->widenedEpochs());
        });
        telemetry_.addWallClockGauge("par.barrier_wait_frac", [pe] {
            return pe->barrierWaitFrac();
        });
        telemetry_.addWallClockGauge("par.steal_count", [pe] {
            return static_cast<double>(pe->steals());
        });
        for (int d = 0; d < pe->domains(); ++d) {
            telemetry_.addWallClockGauge(
                telem::path("par.tile", d) + ".barrier_wait_frac",
                [pe, d] { return pe->tileWaitFrac(d); });
        }
        telemetry_.addGauge("par.mailbox.arrivals", [netp] {
            return static_cast<double>(netp->crossArrivalsPosted());
        });
        telemetry_.addGauge("par.mailbox.credits", [netp] {
            return static_cast<double>(netp->crossCreditsPosted());
        });
        telemetry_.addGauge("par.mailbox.flits", [netp] {
            return static_cast<double>(netp->crossFlitsPosted());
        });
    } else {
        SimContext *ctxp = context.get();
        telemetry_.addGauge("eq.fired", [ctxp] {
            return static_cast<double>(ctxp->queue().firedCount());
        });
        telemetry_.addGauge("eq.pending", [ctxp] {
            return static_cast<double>(ctxp->queue().pending());
        });
        telemetry_.addGauge("eq.peak_pending", [ctxp] {
            return static_cast<double>(ctxp->queue().peakPending());
        });
        telemetry_.addGauge("eq.buckets", [ctxp] {
            return static_cast<double>(ctxp->queue().ringPending());
        });
        telemetry_.addGauge("eq.overflow", [ctxp] {
            return static_cast<double>(ctxp->queue().overflowPending());
        });
    }

    // GS1280 routers keep the compass port names the paper uses in
    // its Figure 24 discussion (E/W/N/S); other fabrics number them.
    std::function<std::string(int)> portName;
    if (kind_ == SystemKind::GS1280) {
        portName = [](int p) -> std::string {
            switch (p) {
              case topo::portEast: return "E";
              case topo::portWest: return "W";
              case topo::portNorth: return "N";
              case topo::portSouth: return "S";
              case topo::portUp: return "U";
              case topo::portDown: return "D";
              default: return "p" + std::to_string(p);
            }
        };
    } else {
        portName = [](int p) { return "p" + std::to_string(p); };
    }

    // Per-node subtrees cost ~250 registry paths each; past 64
    // nodes (the scale-out machines) only the machine-wide
    // aggregates register, keeping registry size and export cost
    // flat in node count. Every shipped 2-D configuration is <= 64
    // nodes, so their exports are untouched.
    if (topo_->numNodes() > 64)
        return;
    for (NodeId n = 0; n < NodeId(topo_->numNodes()); ++n) {
        std::string base = telem::path("node", n);
        net->router(n).registerTelemetry(
            telemetry_, telem::path(base, "router"), portName);
        if (hasNode(n))
            nodes[std::size_t(n)]->registerTelemetry(telemetry_, base);
    }
}

void
Machine::attachTrace(telem::TraceWriter &trace)
{
    // The writer is a single shared sink stamped with one clock;
    // observers firing concurrently on worker threads would corrupt
    // it. Tracing is a serial-engine (--threads 1) feature.
    gs_assert(!par_, "attachTrace requires the serial engine");
    telem::TraceWriter *tw = &trace;
    SimContext *ctxp = context.get();
    for (auto &node : nodes) {
        if (!node)
            continue;
        int tid = static_cast<int>(node->id());
        node->setMsgObserver([tw, ctxp, tid](const net::Packet &pkt,
                                             bool incoming) {
            // Once per message, at its receiver — the transaction
            // flow a protocol diagram would show.
            if (!incoming)
                return;
            coher::Msg m = coher::decode(pkt);
            tw->instant(ctxp->now(), coher::msgTypeName(m.type), tid,
                        "protocol");
        });
    }
}

fault::Watchdog &
Machine::armWatchdog(fault::WatchdogConfig cfg, double coherenceTimeoutNs)
{
    // The watchdog self-schedules on the master context and probes
    // cross-node state mid-run; both are serial-engine assumptions.
    gs_assert(!par_, "the watchdog requires the serial engine");
    if (!watchdog_) {
        watchdog_ =
            std::make_unique<fault::Watchdog>(*context, *net, cfg);
        watchdog_->registerTelemetry(telemetry_,
                                     telem::path("fault", "watchdog"));
        if (coherenceTimeoutNs > 0) {
            Machine *self = this;
            watchdog_->addProbe([self, coherenceTimeoutNs] {
                Tick now = self->context->now();
                for (const auto &node : self->nodes) {
                    if (!node)
                        continue;
                    Tick issued = node->oldestMissIssued();
                    if (issued == maxTick)
                        continue;
                    double age = ticksToNs(now - issued);
                    if (age > coherenceTimeoutNs) {
                        std::ostringstream os;
                        os << "coherence transaction stuck: node "
                           << node->id() << " has a miss outstanding "
                           << age << " ns (limit " << coherenceTimeoutNs
                           << "), " << node->outstandingMisses()
                           << " misses pending";
                        return os.str();
                    }
                }
                return std::string();
            });
        }
    }
    watchdog_->arm();
    return *watchdog_;
}

bool
Machine::run(const std::vector<cpu::TrafficSource *> &sources,
             Tick limit)
{
    gs_assert(static_cast<int>(sources.size()) <= nCpus,
              "more sources than CPUs");
    sources_ = sources;

    if (restored_) {
        // restore() already re-attached the cores to these sources
        // and rebuilt running_; starting them again would reset the
        // execution state the snapshot just rebuilt.
        restored_ = false;
    } else {
        // Shared counter: completion callbacks may fire after an
        // early (limit-hit) return, so they must not reference the
        // stack; on the parallel engine they also fire on worker
        // threads, so the counter is atomic.
        running_ = std::make_shared<std::atomic<int>>(0);
        auto running = running_;
        for (std::size_t c = 0; c < sources.size(); ++c) {
            if (!sources[c])
                continue;
            running->fetch_add(1, std::memory_order_relaxed);
            cores[c]->run(*sources[c], [running] {
                running->fetch_sub(1, std::memory_order_release);
            });
        }
    }

    // With a rollback policy, a watchdog trip queues a rollback the
    // loop below consumes between events, instead of panicking from
    // inside the tripping poll event.
    if (watchdog_ && rollback_) {
        watchdog_->onTrip([this](const std::string &why) {
            tripPending_ = true;
            pendingTrip_ = why;
        });
    }

    if (par_) {
        gs_assert(!net->degraded(),
                  "fault injection requires the serial engine");
        // Completion is checked only at epoch barriers (every domain
        // quiescent there), so the final time may trail the serial
        // engine's by less than one lookahead window; every fired
        // event and every statistic is still identical. Periodic
        // checkpoints piggyback on the same barriers: the engine
        // runs in segments clamped at the next checkpoint edge, and
        // saves happen with every worker parked.
        Tick deadline = ctx().now() + limit;
        Machine *self = this;
        auto running = running_;
        auto complete = [self, running] {
            return running->load(std::memory_order_acquire) == 0 &&
                   self->drained();
        };
        for (;;) {
            Tick target = deadline;
            if (ckptEvery_ > 0 && nextCkptAt_ < target)
                target = nextCkptAt_;
            par_->run(target, complete);
            net->refreshMergedStats();
            if (running_->load(std::memory_order_relaxed) == 0 &&
                drained())
                break;
            if (target >= deadline)
                break;
            checkpointNow();
        }
        return running_->load(std::memory_order_relaxed) == 0 &&
               drained();
    }

    Tick deadline = context->now() + limit;
    while (context->now() < deadline) {
        if (running_->load(std::memory_order_relaxed) == 0 &&
            drained())
            return true;
        if (!context->queue().step())
            break;
        if (tripPending_) {
            handleRollback();
            continue;
        }
        if (ckptEvery_ > 0 && context->now() >= nextCkptAt_)
            checkpointNow();
    }
    return running_->load(std::memory_order_relaxed) == 0 && drained();
}

void
Machine::runFor(Tick duration)
{
    if (par_) {
        gs_assert(!net->degraded(),
                  "fault injection requires the serial engine");
        Tick target = ctx().now() + duration;
        par_->run(target);
        par_->syncAll(target);
        net->refreshMergedStats();
        return;
    }
    context->queue().runFor(duration);
}

bool
Machine::drained() const
{
    if (net->inFlight() != 0)
        return false;
    for (const auto &node : nodes)
        if (node && !node->quiesced())
            return false;
    return true;
}

void
Machine::clearStats()
{
    net->clearStats();
    for (auto &node : nodes)
        if (node)
            node->clearStats();
    if (spans_)
        spans_->clearStats();
}

cpu::MachineTiming
Machine::analyticTiming() const
{
    switch (kind_) {
      case SystemKind::GS1280:
        return cpu::MachineTiming::gs1280();
      case SystemKind::GS320:
        return cpu::MachineTiming::gs320();
      case SystemKind::ES45:
        return cpu::MachineTiming::es45();
    }
    return cpu::MachineTiming::gs1280();
}

} // namespace gs::sys

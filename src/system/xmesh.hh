/**
 * @file
 * Xmesh: the sampling monitor behind the paper's profiling figures.
 *
 * The real Xmesh tool [11] displays run-time utilization of CPUs,
 * memory controllers, inter-processor links and I/O ports from the
 * 21364's built-in performance counters. This model samples the
 * same quantities from the simulator's counters at a fixed interval,
 * producing the utilization-vs-time series of Figures 10/11/20/22/24
 * and the hot-spot display of Figure 27 (rendered as ASCII).
 */

#ifndef GS_SYSTEM_XMESH_HH
#define GS_SYSTEM_XMESH_HH

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "system/machine.hh"

namespace gs::sys
{

/** One Xmesh sampling interval's readings. */
struct XmeshSample
{
    Tick when = 0;

    /** Per-node memory-controller utilization [0,1]. */
    std::vector<double> memUtil;

    /** Per-node, per-port outbound link utilization [0,1]. */
    std::vector<std::vector<double>> linkUtil;

    double avgMemUtil = 0;
    double avgLinkUtil = 0;  ///< over connected network ports
    double avgEastWest = 0;  ///< torus horizontal links only
    double avgNorthSouth = 0;
};

/** Periodic sampler over a Machine's counters. */
class Xmesh
{
  public:
    /**
     * @param machine the machine to monitor
     * @param interval_ticks sampling period (simulated time)
     */
    Xmesh(Machine &machine, Tick interval_ticks);

    /** Begin sampling; the first sample lands one interval ahead. */
    void start();

    /** Stop sampling (pending tick becomes a no-op). */
    void stop();

    const std::vector<XmeshSample> &samples() const { return log; }

    /** Take a single sample immediately (without start()). */
    XmeshSample sampleNow();

    /**
     * ASCII heat map of a sample for a GS1280 torus: per-node
     * memory-controller utilization percent in grid layout, the
     * display that exposes hot spots (Figure 27).
     */
    std::string heatmap(const XmeshSample &s) const;

    /**
     * Dump every recorded sample as CSV (one row per sample:
     * timestamp, averages, then per-node memory utilization) for
     * offline plotting of the Figures 10/11/20/22/24 style series.
     */
    void dumpCsv(std::ostream &os) const;

  private:
    void tick();

    Machine &m;
    Tick interval;
    bool active = false;

    Tick windowStart = 0;
    std::vector<std::vector<std::uint64_t>> lastLinkFlits;
    std::vector<Tick> lastZboxBusy;

    std::vector<XmeshSample> log;
};

} // namespace gs::sys

#endif // GS_SYSTEM_XMESH_HH

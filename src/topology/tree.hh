/**
 * @file
 * Switch-tree topologies for the previous-generation systems.
 *
 * The AlphaServer GS320 connects four CPUs and four memory modules to
 * a Quad Building Block (QBB) switch, and QBBs to a hierarchical
 * global switch (Section 2 of the paper, citing Gharachorloo et al.,
 * ASPLOS 2000). The ES45 is a 4-CPU shared-bus SMP, modelled as the
 * degenerate single-switch case.
 *
 * Node layout: CPU nodes [0, C), then one switch node per QBB, then
 * (when more than one QBB exists) a global switch node. Routing is
 * up-then-down: up hops use escape VC0, down hops VC1, which is
 * trivially deadlock-free on a tree. There is no adaptive routing.
 */

#ifndef GS_TOPOLOGY_TREE_HH
#define GS_TOPOLOGY_TREE_HH

#include "topology/topology.hh"

namespace gs::topo
{

/** Two-level switch tree: CPUs -> QBB switches -> global switch. */
class QbbTree : public Topology
{
  public:
    /**
     * @param cpus total CPUs; must divide evenly into QBBs
     * @param cpus_per_qbb CPUs under one QBB switch (4 on the GS320)
     */
    QbbTree(int cpus, int cpus_per_qbb = 4);

    int numNodes() const override;
    int numCpuNodes() const override { return nCpus; }
    int numPorts(NodeId node) const override;
    Port port(NodeId node, int port) const override;
    std::string name() const override;

    PortSet
    adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const override;

    EscapeHop escapeRoute(NodeId at, NodeId dst, int curVc) const override;

    /** @name Structure helpers */
    /// @{
    int qbbCount() const { return nQbbs; }
    int cpusPerQbb() const { return perQbb; }
    bool hasGlobalSwitch() const { return nQbbs > 1; }
    NodeId qbbSwitchOf(NodeId cpu) const
    {
        return static_cast<NodeId>(nCpus + cpu / perQbb);
    }
    NodeId globalSwitch() const
    {
        return static_cast<NodeId>(nCpus + nQbbs);
    }
    bool isQbbSwitch(NodeId n) const
    {
        return n >= nCpus && n < nCpus + nQbbs;
    }
    /// @}

  private:
    int nCpus;
    int perQbb;
    int nQbbs;
};

/** Single shared-switch SMP (the ES45): a QbbTree with one QBB. */
inline QbbTree
makeBus(int cpus)
{
    return QbbTree(cpus, cpus);
}

} // namespace gs::topo

#endif // GS_TOPOLOGY_TREE_HH

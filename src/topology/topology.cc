#include "topology/topology.hh"

#include <deque>

#include "sim/logging.hh"

namespace gs::topo
{

std::vector<int>
Topology::distancesFrom(NodeId src) const
{
    const int n = numNodes();
    gs_assert(src >= 0 && src < n, "bad source node ", src);

    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::deque<NodeId> queue;
    dist[static_cast<std::size_t>(src)] = 0;
    queue.push_back(src);

    while (!queue.empty()) {
        NodeId at = queue.front();
        queue.pop_front();
        for (int p = 0; p < numPorts(at); ++p) {
            Port link = port(at, p);
            if (!link.connected())
                continue;
            auto &d = dist[static_cast<std::size_t>(link.peer)];
            if (d < 0) {
                d = dist[static_cast<std::size_t>(at)] + 1;
                queue.push_back(link.peer);
            }
        }
    }
    return dist;
}

int
Topology::hopDistance(NodeId a, NodeId b) const
{
    return distancesFrom(a)[static_cast<std::size_t>(b)];
}

double
Topology::averageDistance() const
{
    const int cpus = numCpuNodes();
    if (cpus < 2)
        return 0.0;

    double sum = 0;
    std::uint64_t pairs = 0;
    for (NodeId src = 0; src < cpus; ++src) {
        auto dist = distancesFrom(src);
        for (NodeId dst = 0; dst < cpus; ++dst) {
            if (dst == src)
                continue;
            gs_assert(dist[static_cast<std::size_t>(dst)] >= 0,
                      "disconnected topology: ", src, " -> ", dst);
            sum += dist[static_cast<std::size_t>(dst)];
            pairs += 1;
        }
    }
    return sum / static_cast<double>(pairs);
}

int
Topology::worstDistance() const
{
    const int cpus = numCpuNodes();
    int worst = 0;
    for (NodeId src = 0; src < cpus; ++src) {
        auto dist = distancesFrom(src);
        for (NodeId dst = 0; dst < cpus; ++dst)
            worst = std::max(worst, dist[static_cast<std::size_t>(dst)]);
    }
    return worst;
}

bool
Topology::connected() const
{
    const int cpus = numCpuNodes();
    if (cpus == 0)
        return true;
    auto dist = distancesFrom(0);
    for (NodeId dst = 0; dst < cpus; ++dst)
        if (dist[static_cast<std::size_t>(dst)] < 0)
            return false;
    return true;
}

} // namespace gs::topo

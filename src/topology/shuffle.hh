/**
 * @file
 * The "shuffle" rewiring of Section 4.1 (Figures 16/17, Table 1).
 *
 * Starting from a W x H torus, each column's Y-wraparound link is
 * re-pointed at the column W/2 away: (x, H-1).North now connects to
 * ((x + W/2) mod W, 0).South. In the 8-CPU (4x2) machine this is
 * exactly the paper's cable swap: the redundant North-South links
 * are used to connect the furthest nodes. The same rule reproduces
 * every row of the paper's Table 1 (average latency, worst-case
 * latency and bisection-width gains for 4x2 through 16x16).
 *
 * Route policies follow Section 4.1's two experiments plus an
 * unconstrained variant:
 *  - OneHop: a shuffle link may be used only as a packet's first hop;
 *  - TwoHop: shuffle links may be used within the first two hops;
 *  - Free:   shuffle links are ordinary links (upper bound).
 *
 * Escape routing stays deadlock-free: X dimension-order first, then
 * routing around the merged 2H-node Y ring that the rewiring creates
 * (columns x and x + W/2 share one Y ring), with a per-ring dateline.
 */

#ifndef GS_TOPOLOGY_SHUFFLE_HH
#define GS_TOPOLOGY_SHUFFLE_HH

#include <vector>

#include "topology/torus.hh"

namespace gs::topo
{

/** How adaptive routing may exploit the shuffle links. */
enum class ShufflePolicy
{
    OneHop, ///< shuffle link as the initial (and only) hop
    TwoHop, ///< shuffle links within the first two hops
    Free,   ///< unconstrained minimal routing on the shuffle graph
};

/** Torus with shuffled Y-wraparound links. */
class ShuffleTorus : public Torus2D
{
  public:
    /**
     * @param w columns; must be even and >= 4
     * @param h rows; must be >= 2
     * @param policy shuffle-link route policy
     */
    ShuffleTorus(int w, int h, ShufflePolicy policy = ShufflePolicy::OneHop);

    Port port(NodeId node, int port) const override;
    std::string name() const override;

    PortSet
    adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const override;

    EscapeHop escapeRoute(NodeId at, NodeId dst, int curVc) const override;

    /** True when @p port of @p node is a rewired (shuffle) link. */
    bool isShufflePort(NodeId node, int port) const;

    /** Column paired with @p x by the rewiring: (x + W/2) mod W. */
    int pairColumn(int x) const { return (x + wid / 2) % wid; }

    ShufflePolicy policy() const { return pol; }

  private:
    /** Distance using torus links only (no shuffle hops). */
    int dist0(NodeId a, NodeId b) const
    {
        return d0[static_cast<std::size_t>(a) *
                  static_cast<std::size_t>(numNodes()) +
               static_cast<std::size_t>(b)];
    }

    /** Distance allowing shuffle links in the first hop only. */
    int dist1(NodeId a, NodeId b) const
    {
        return d1[static_cast<std::size_t>(a) *
                  static_cast<std::size_t>(numNodes()) +
               static_cast<std::size_t>(b)];
    }

    /** Distance on the full shuffle graph. */
    int distFull(NodeId a, NodeId b) const
    {
        return df[static_cast<std::size_t>(a) *
                  static_cast<std::size_t>(numNodes()) +
               static_cast<std::size_t>(b)];
    }

    /** Position of @p node on its merged Y ring (length 2H). */
    int ringPosition(NodeId node) const;

    void buildDistanceTables();

    ShufflePolicy pol;
    std::vector<int> d0; ///< torus-links-only distances
    std::vector<int> d1; ///< shuffle allowed in first hop
    std::vector<int> df; ///< full-graph distances
};

} // namespace gs::topo

#endif // GS_TOPOLOGY_SHUFFLE_HH

/**
 * @file
 * Interconnect topology abstraction.
 *
 * A Topology is a directed multigraph of nodes and ports plus the
 * routing relations the EV7-style router needs:
 *
 *  - adaptivePorts(): the minimal next-hop candidates a packet in the
 *    Adaptive virtual channel may choose among (Section 2 of the
 *    paper: "a message can choose the less congested minimal path");
 *  - escapeRoute(): the deterministic deadlock-free route, including
 *    which of the two escape VCs (VC0/VC1) the next hop must use.
 *    Tori use dimension-order routing with a dateline VC switch;
 *    trees use up-then-down routing.
 *
 * Graph metrics (hop distance, average/worst distance, bisection
 * width) are provided for the analytic shuffle model (Table 1).
 */

#ifndef GS_TOPOLOGY_TOPOLOGY_HH
#define GS_TOPOLOGY_TOPOLOGY_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gs::topo
{

/**
 * Fixed-capacity candidate-port list returned by adaptivePorts().
 *
 * Route computation runs inside the router's per-cycle nomination
 * loop, so building the candidate set must not touch the heap (the
 * alloc-count tests pin the warm steady state at zero allocations,
 * including on parallel-engine workers). No concrete topology offers
 * more than a handful of minimal next hops — a 2D torus at most
 * four — so a small inline array holds all of them.
 */
class PortSet
{
  public:
    static constexpr int capacity = 8;

    void push_back(int p)
    {
        gs_assert(cnt < capacity, "PortSet overflow");
        slots[cnt++] = p;
    }

    std::size_t size() const { return static_cast<std::size_t>(cnt); }
    bool empty() const { return cnt == 0; }
    int operator[](std::size_t i) const { return slots[i]; }
    int back() const { return slots[cnt - 1]; }
    const int *begin() const { return slots; }
    const int *end() const { return slots + cnt; }

    friend bool operator==(const PortSet &a, const PortSet &b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }

  private:
    int slots[capacity] = {};
    int cnt = 0;
};

/**
 * Physical construction of a link, which determines its wire delay.
 * In the GS1280 the on-module hop is the cheapest and cabled hops the
 * most expensive (Figure 13: 139 ns vs 154 ns one-hop latency).
 */
enum class LinkKind
{
    OnModule,  ///< both routers on the same dual-CPU module
    Backplane, ///< adjacent modules through the backplane
    Cable,     ///< inter-drawer cable (incl. torus wraparound)
    Internal,  ///< switch-internal path (GS320 QBB / global switch)
};

/** What a port connects to. */
struct Port
{
    NodeId peer = invalidNode; ///< neighbouring node, or invalidNode
    int peerPort = -1;         ///< port index on the peer
    LinkKind kind = LinkKind::Cable;

    bool connected() const { return peer != invalidNode; }
};

/** Next hop plus the escape VC (0/1) to request on that hop. */
struct EscapeHop
{
    int port = -1; ///< output port, -1 when already at destination
    int vc = 0;    ///< escape sub-channel for the next link
};

/**
 * Abstract interconnect graph + routing relation.
 *
 * Node ids are dense [0, numNodes()). CPU (traffic-bearing) nodes
 * come first; pure switch nodes (GS320 QBB/global switches) follow.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Total nodes, including switch-only nodes. */
    virtual int numNodes() const = 0;

    /** Number of nodes that host a CPU / memory / traffic source. */
    virtual int numCpuNodes() const { return numNodes(); }

    /** Number of port slots on @p node (some may be unconnected). */
    virtual int numPorts(NodeId node) const = 0;

    /** Connection info for @p port of @p node. */
    virtual Port port(NodeId node, int port) const = 0;

    /** Human-readable name ("torus 4x4", "shuffle 4x2", ...). */
    virtual std::string name() const = 0;

    /**
     * Minimal next-hop output ports usable by the Adaptive VC for a
     * packet at @p at heading to @p dst.
     *
     * @param hopsTaken hops already travelled; shuffle route policies
     *        (Section 4.1) restrict shuffle-link use to the first one
     *        or two hops.
     * @return empty when at == dst or when the topology offers no
     *         adaptivity (trees).
     */
    virtual PortSet
    adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const = 0;

    /**
     * Deterministic deadlock-free next hop for a packet at @p at
     * heading to @p dst whose current escape VC is @p curVc.
     */
    virtual EscapeHop
    escapeRoute(NodeId at, NodeId dst, int curVc) const = 0;

    /** @name Graph metrics (BFS-based defaults) */
    /// @{

    /** Shortest hop count between two nodes (-1 if unreachable). */
    int hopDistance(NodeId a, NodeId b) const;

    /** Shortest-hop distances from @p src to every node. */
    std::vector<int> distancesFrom(NodeId src) const;

    /**
     * Mean shortest-hop distance over all ordered CPU-node pairs,
     * excluding self pairs (matches the paper's analytic model).
     */
    double averageDistance() const;

    /** Network diameter over CPU nodes. */
    int worstDistance() const;

    /** True when every CPU node can reach every other CPU node. */
    bool connected() const;

    /// @}

  protected:
    Topology() = default;
};

} // namespace gs::topo

#endif // GS_TOPOLOGY_TOPOLOGY_HH

#include "topology/shuffle.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "sim/logging.hh"

namespace gs::topo
{

namespace
{
constexpr int unreachable = std::numeric_limits<int>::max() / 4;
}

ShuffleTorus::ShuffleTorus(int w, int h, ShufflePolicy policy)
    : Torus2D(w, h), pol(policy)
{
    gs_assert(w >= 4 && w % 2 == 0,
              "shuffle needs an even column count >= 4, got ", w);
    gs_assert(h >= 2, "shuffle needs at least 2 rows, got ", h);
    buildDistanceTables();
}

bool
ShuffleTorus::isShufflePort(NodeId node, int port) const
{
    int y = yOf(node);
    return (port == portNorth && y == hgt - 1) ||
           (port == portSouth && y == 0);
}

Port
ShuffleTorus::port(NodeId node, int p) const
{
    if (!isShufflePort(node, p))
        return Torus2D::port(node, p);

    // Rewired Y-wraparound: column x's wrap link now lands in column
    // (x + W/2) mod W. North from the top row pairs with South on the
    // far column's bottom row, and vice versa.
    int x = xOf(node);
    Port out;
    out.kind = LinkKind::Cable;
    if (p == portNorth) {
        out.peer = nodeAt(pairColumn(x), 0);
        out.peerPort = portSouth;
    } else {
        out.peer = nodeAt(pairColumn(x), hgt - 1);
        out.peerPort = portNorth;
    }
    return out;
}

std::string
ShuffleTorus::name() const
{
    const char *p = pol == ShufflePolicy::OneHop   ? "1-hop"
                    : pol == ShufflePolicy::TwoHop ? "2-hop"
                                                   : "free";
    return "shuffle " + std::to_string(wid) + "x" + std::to_string(hgt) +
           " (" + p + ")";
}

void
ShuffleTorus::buildDistanceTables()
{
    const int n = numNodes();
    const auto sz = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    d0.assign(sz, unreachable);
    d1.assign(sz, unreachable);
    df.assign(sz, unreachable);

    auto bfs = [&](NodeId src, bool use_shuffle, std::vector<int> &table) {
        auto *row = &table[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(n)];
        row[src] = 0;
        std::deque<NodeId> queue{src};
        while (!queue.empty()) {
            NodeId at = queue.front();
            queue.pop_front();
            for (int p = 0; p < torusPorts; ++p) {
                if (!use_shuffle && isShufflePort(at, p))
                    continue;
                Port link = port(at, p);
                if (!link.connected())
                    continue;
                if (row[link.peer] > row[at] + 1) {
                    row[link.peer] = row[at] + 1;
                    queue.push_back(link.peer);
                }
            }
        }
    };

    for (NodeId src = 0; src < n; ++src) {
        bfs(src, false, d0);
        bfs(src, true, df);
    }

    // dist1: shuffle links permitted only as the very first hop.
    for (NodeId src = 0; src < n; ++src) {
        for (NodeId dst = 0; dst < n; ++dst) {
            int best = dist0(src, dst);
            for (int p = 0; p < torusPorts; ++p) {
                if (!isShufflePort(src, p))
                    continue;
                Port link = port(src, p);
                if (link.connected())
                    best = std::min(best, 1 + dist0(link.peer, dst));
            }
            d1[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(dst)] = best;
        }
    }
}

PortSet
ShuffleTorus::adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const
{
    PortSet out;
    if (at == dst)
        return out;

    // Metric seen after taking one more hop, under the route policy.
    auto metricAfter = [&](NodeId peer, bool via_shuffle) -> int {
        switch (pol) {
          case ShufflePolicy::Free:
            return distFull(peer, dst);
          case ShufflePolicy::OneHop:
            if (via_shuffle && hopsTaken > 0)
                return unreachable;
            return dist0(peer, dst);
          case ShufflePolicy::TwoHop:
            if (via_shuffle && hopsTaken > 1)
                return unreachable;
            if (hopsTaken == 0)
                return dist1(peer, dst);
            return dist0(peer, dst);
        }
        return unreachable;
    };

    int best = unreachable;
    int score[torusPorts];
    for (int p = 0; p < torusPorts; ++p) {
        Port link = port(at, p);
        score[p] = unreachable;
        if (!link.connected())
            continue;
        score[p] = metricAfter(link.peer, isShufflePort(at, p));
        best = std::min(best, score[p]);
    }
    for (int p = 0; p < torusPorts; ++p)
        if (score[p] == best)
            out.push_back(p);
    return out;
}

int
ShuffleTorus::ringPosition(NodeId node) const
{
    int x = xOf(node), y = yOf(node);
    int a = std::min(x, pairColumn(x));
    return x == a ? y : hgt + y;
}

EscapeHop
ShuffleTorus::escapeRoute(NodeId at, NodeId dst, int curVc) const
{
    if (at == dst)
        return EscapeHop{-1, 0};

    int ax = xOf(at);
    int dx_ = xOf(dst);

    if (ax != dx_ && ax != pairColumn(dx_)) {
        // X phase: identical to the torus (X links are untouched);
        // the torus rule only inspects columns, so delegate to it
        // with a same-row stand-in destination.
        return Torus2D::escapeRoute(at, nodeAt(dx_, yOf(at)), curVc);
    }

    // Y phase: route around the merged 2H ring that contains both the
    // destination column and its pair column.
    int ring = 2 * hgt;
    int p = ringPosition(at);
    int q = ringPosition(dst);
    gs_assert(p != q, "distinct nodes with equal ring position");
    int fwd = (q - p + ring) % ring;
    bool north = 2 * fwd <= ring;
    // Position-based dateline at the ring's pos 2H-1 -> 0 edge.
    int vc = north ? (q < p ? 1 : 0) : (q > p ? 1 : 0);
    return EscapeHop{north ? portNorth : portSouth, vc};
}

} // namespace gs::topo

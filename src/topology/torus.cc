#include "topology/torus.hh"

#include "sim/logging.hh"
#include "topology/ring.hh"

namespace gs::topo
{

Torus2D::Torus2D(int w, int h) : wid(w), hgt(h)
{
    gs_assert(w >= 1 && h >= 1, "bad torus dimensions ", w, "x", h);
}

NodeId
Torus2D::neighbour(NodeId node, int port) const
{
    int x = xOf(node), y = yOf(node);
    switch (port) {
      case portEast:
        return nodeAt((x + 1) % wid, y);
      case portWest:
        return nodeAt((x - 1 + wid) % wid, y);
      case portNorth:
        return nodeAt(x, (y + 1) % hgt);
      case portSouth:
        return nodeAt(x, (y - 1 + hgt) % hgt);
      default:
        gs_panic("bad torus port ", port);
    }
}

LinkKind
Torus2D::kindOf(NodeId node, int port) const
{
    // GS1280 packaging model: each dual-CPU module holds the
    // vertically adjacent pair (rows 2k, 2k+1); that hop is the
    // cheapest (139 ns in Figure 13). Direct X hops ride the
    // backplane (145 ns); wraparound hops and the remaining Y hops
    // are cabled (154 ns).
    int x = xOf(node), y = yOf(node);
    switch (port) {
      case portEast:
        return x == wid - 1 && wid > 2 ? LinkKind::Cable
                                       : LinkKind::Backplane;
      case portWest:
        return x == 0 && wid > 2 ? LinkKind::Cable : LinkKind::Backplane;
      case portNorth:
        if (y % 2 == 0 && y + 1 < hgt)
            return LinkKind::OnModule;
        return LinkKind::Cable;
      case portSouth:
        if (y % 2 == 1)
            return LinkKind::OnModule;
        return LinkKind::Cable;
      default:
        gs_panic("bad torus port ", port);
    }
}

Port
Torus2D::port(NodeId node, int p) const
{
    gs_assert(node >= 0 && node < numNodes());
    bool exists = (p == portEast || p == portWest) ? ring::hasLinks(wid)
                                                   : ring::hasLinks(hgt);
    if (!exists)
        return Port{};

    static constexpr int reverse[torusPorts] = {portWest, portEast,
                                                portSouth, portNorth};
    Port out;
    out.peer = neighbour(node, p);
    out.peerPort = reverse[p];
    out.kind = kindOf(node, p);
    return out;
}

std::string
Torus2D::name() const
{
    return "torus " + std::to_string(wid) + "x" + std::to_string(hgt);
}

PortSet
Torus2D::adaptivePorts(NodeId at, NodeId dst, int) const
{
    PortSet out;
    int dx = ring::fwdOffset(xOf(at), xOf(dst), wid);
    int dy = ring::fwdOffset(yOf(at), yOf(dst), hgt);

    if (ring::nominateFwd(dx, wid))
        out.push_back(portEast);
    if (ring::nominateBwd(dx, wid))
        out.push_back(portWest);
    if (ring::nominateFwd(dy, hgt))
        out.push_back(portNorth);
    if (ring::nominateBwd(dy, hgt))
        out.push_back(portSouth);
    return out;
}

EscapeHop
Torus2D::escapeRoute(NodeId at, NodeId dst, int) const
{
    int ax = xOf(at), ay = yOf(at);
    int dx_ = xOf(dst), dy_ = yOf(dst);

    if (ax != dx_) {
        // X phase; the positional dateline rule lives in
        // ring::escapeHop (a +X hop requests VC1 iff the remaining
        // path crosses the wrap edge W-1 -> 0).
        auto h = ring::escapeHop(ax, dx_, wid);
        return EscapeHop{h.forward ? portEast : portWest, h.vc};
    }
    if (ay != dy_) {
        auto h = ring::escapeHop(ay, dy_, hgt);
        return EscapeHop{h.forward ? portNorth : portSouth, h.vc};
    }
    return EscapeHop{-1, 0};
}

int
Torus2D::torusDistance(NodeId a, NodeId b) const
{
    return ring::distance(xOf(a), xOf(b), wid) +
           ring::distance(yOf(a), yOf(b), hgt);
}

} // namespace gs::topo

/**
 * @file
 * Per-dimension ring helpers shared by the torus topologies.
 *
 * A torus routes each dimension as an independent ring, and every
 * ring-size special case lives here exactly once:
 *
 *  - size 1: the dimension contributes no links and no hops;
 *  - size 2: forward and backward reach the same neighbour over two
 *    physically distinct links, so minimal-path nomination offers
 *    BOTH directions (2*off <= size and 2*off >= size both hold at
 *    off == 1, size == 2);
 *  - general: forward wins ties (2*off == size nominates both for the
 *    adaptive VC but the escape route takes forward).
 *
 * The escape dateline rule is positional, per ring: a hop requests
 * VC1 iff the remaining path in the current dimension crosses that
 * ring's wraparound edge — travelling forward that means the
 * destination coordinate is *behind* the current one; backward, that
 * it is *ahead*. Torus2D and Torus3D both route through these
 * helpers, so the rule (and its size-2/size-1 handling) cannot drift
 * between them.
 */

#ifndef GS_TOPOLOGY_RING_HH
#define GS_TOPOLOGY_RING_HH

#include <algorithm>
#include <cstdlib>

namespace gs::topo::ring
{

/** True when a dimension of @p size contributes links at all. */
constexpr bool
hasLinks(int size)
{
    return size > 1;
}

/** Forward (positive-direction) offset from @p a to @p d on a ring. */
constexpr int
fwdOffset(int a, int d, int size)
{
    return (d - a + size) % size;
}

/**
 * Should the positive direction be nominated as a minimal next hop?
 * @p fwd is fwdOffset(a, d, size). Nominates both directions on a
 * tie, which includes every non-self pair of a size-2 ring.
 */
constexpr bool
nominateFwd(int fwd, int size)
{
    return fwd != 0 && 2 * fwd <= size;
}

/** Negative-direction counterpart of nominateFwd(). */
constexpr bool
nominateBwd(int fwd, int size)
{
    return fwd != 0 && 2 * fwd >= size;
}

/** Deterministic escape hop within one ring. */
struct Hop
{
    bool forward; ///< take the positive-direction port
    int vc;       ///< escape sub-channel (dateline rule)
};

/**
 * Escape next hop from coordinate @p a toward @p d (a != d) on a
 * ring of @p size. Forward wins distance ties; the VC encodes the
 * positional dateline rule described in the file comment.
 */
constexpr Hop
escapeHop(int a, int d, int size)
{
    const int fwd = fwdOffset(a, d, size);
    const bool forward = 2 * fwd <= size;
    const int vc = forward ? (d < a ? 1 : 0) : (d > a ? 1 : 0);
    return Hop{forward, vc};
}

/** Minimal hop count between two coordinates on a ring. */
inline int
distance(int a, int d, int size)
{
    const int off = std::abs(a - d);
    return std::min(off, size - off);
}

} // namespace gs::topo::ring

#endif // GS_TOPOLOGY_RING_HH

#include "topology/tree.hh"

#include "sim/logging.hh"

namespace gs::topo
{

QbbTree::QbbTree(int cpus, int cpus_per_qbb)
    : nCpus(cpus), perQbb(cpus_per_qbb), nQbbs(cpus / cpus_per_qbb)
{
    gs_assert(cpus >= 1 && cpus_per_qbb >= 1);
    gs_assert(cpus % cpus_per_qbb == 0,
              "CPU count ", cpus, " not a multiple of QBB size ",
              cpus_per_qbb);
}

int
QbbTree::numNodes() const
{
    return nCpus + nQbbs + (hasGlobalSwitch() ? 1 : 0);
}

int
QbbTree::numPorts(NodeId node) const
{
    if (node < nCpus)
        return 1; // up to the QBB switch
    if (isQbbSwitch(node))
        return perQbb + (hasGlobalSwitch() ? 1 : 0);
    return nQbbs; // global switch: one port per QBB
}

Port
QbbTree::port(NodeId node, int p) const
{
    gs_assert(node >= 0 && node < numNodes());
    gs_assert(p >= 0 && p < numPorts(node));

    Port out;
    if (node < nCpus) {
        out.peer = qbbSwitchOf(node);
        out.peerPort = static_cast<int>(node) % perQbb;
        out.kind = LinkKind::Internal;
    } else if (isQbbSwitch(node)) {
        int qbb = static_cast<int>(node) - nCpus;
        if (p < perQbb) {
            out.peer = static_cast<NodeId>(qbb * perQbb + p);
            out.peerPort = 0;
            out.kind = LinkKind::Internal;
        } else {
            out.peer = globalSwitch();
            out.peerPort = qbb;
            out.kind = LinkKind::Cable;
        }
    } else {
        out.peer = static_cast<NodeId>(nCpus + p);
        out.peerPort = perQbb;
        out.kind = LinkKind::Cable;
    }
    return out;
}

std::string
QbbTree::name() const
{
    if (nQbbs == 1)
        return "bus " + std::to_string(nCpus) + "P";
    return "qbb-tree " + std::to_string(nCpus) + "P (" +
           std::to_string(nQbbs) + " QBBs)";
}

PortSet
QbbTree::adaptivePorts(NodeId, NodeId, int) const
{
    return {}; // switch trees offer a unique path
}

EscapeHop
QbbTree::escapeRoute(NodeId at, NodeId dst, int) const
{
    // Destinations may be CPUs or QBB switch nodes (memory homes
    // live at the switches on the GS320). Up-then-down routing: up
    // hops use escape VC0, down hops VC1.
    gs_assert(dst >= 0 && dst < numNodes() && dst != globalSwitch(),
              "bad tree destination ", dst);
    if (at == dst)
        return EscapeHop{-1, 0};

    int dstQbb = dst < nCpus ? static_cast<int>(dst) / perQbb
                             : static_cast<int>(dst) - nCpus;

    if (at < nCpus)
        return EscapeHop{0, 0}; // up to our QBB switch

    if (isQbbSwitch(at)) {
        int qbb = static_cast<int>(at) - nCpus;
        if (dstQbb == qbb) {
            // dst must be one of our CPUs (we are not it).
            return EscapeHop{static_cast<int>(dst) % perQbb, 1};
        }
        return EscapeHop{perQbb, 0}; // up to the global switch
    }

    return EscapeHop{dstQbb, 1}; // global switch: down to dst's QBB
}

} // namespace gs::topo

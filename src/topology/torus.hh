/**
 * @file
 * Two-dimensional torus, the GS1280 interconnect (Figure 3).
 *
 * Node (x, y) maps to id y*W + x. Ports are East(+x)=0, West(-x)=1,
 * North(+y)=2, South(-y)=3. When a dimension has size 2 the two
 * directions reach the same neighbour over two physically distinct
 * links (the "redundant" links Section 4.1 re-purposes for shuffle);
 * when it has size 1 its ports are unconnected. Both cases, and the
 * dateline rule, are handled by the per-ring helpers in
 * topology/ring.hh shared with the 3-D torus (topology/torus3d.hh).
 *
 * Routing follows the 21364 scheme described in Section 2:
 *  - Adaptive VC: any minimal direction (both, on a tie);
 *  - Escape VCs: dimension-order X-then-Y, with the VC0/VC1 dateline
 *    rule per ring (a hop requests VC1 iff its remaining path in the
 *    current dimension crosses that ring's wraparound edge).
 */

#ifndef GS_TOPOLOGY_TORUS_HH
#define GS_TOPOLOGY_TORUS_HH

#include "topology/topology.hh"

namespace gs::topo
{

/** Port indices on torus-family nodes. */
enum TorusPort : int
{
    portEast = 0,
    portWest = 1,
    portNorth = 2,
    portSouth = 3,
    torusPorts = 4,
};

/** 2-D torus of W x H nodes. */
class Torus2D : public Topology
{
  public:
    /**
     * @param w columns (size of the X dimension), >= 1
     * @param h rows (size of the Y dimension), >= 1
     */
    Torus2D(int w, int h);

    int numNodes() const override { return wid * hgt; }
    int numPorts(NodeId) const override { return torusPorts; }
    Port port(NodeId node, int port) const override;
    std::string name() const override;

    PortSet
    adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const override;

    EscapeHop escapeRoute(NodeId at, NodeId dst, int curVc) const override;

    /** @name Geometry helpers */
    /// @{
    int width() const { return wid; }
    int height() const { return hgt; }
    int xOf(NodeId n) const { return static_cast<int>(n) % wid; }
    int yOf(NodeId n) const { return static_cast<int>(n) / wid; }
    NodeId nodeAt(int x, int y) const
    {
        return static_cast<NodeId>(y * wid + x);
    }
    /// @}

    /**
     * Torus hop distance in closed form (faster than BFS and used to
     * cross-check it in tests).
     */
    int torusDistance(NodeId a, NodeId b) const;

  protected:
    /** Neighbour coordinates through @p port (wrapping). */
    NodeId neighbour(NodeId node, int port) const;

    /** Wire class of the link leaving @p node through @p port. */
    LinkKind kindOf(NodeId node, int port) const;

    int wid;
    int hgt;
};

} // namespace gs::topo

#endif // GS_TOPOLOGY_TORUS_HH

/**
 * @file
 * Three-dimensional torus: the scale-out extension of the GS1280
 * interconnect beyond the paper's 128P projection.
 *
 * Node (x, y, z) maps to id (z*H + y)*W + x. Ports extend the 2-D
 * numbering with the Z dimension: East(+x)=0, West(-x)=1,
 * North(+y)=2, South(-y)=3, Up(+z)=4, Down(-z)=5. Size-2 and size-1
 * dimensions behave exactly as in Torus2D because both tori route
 * through the shared per-ring helpers (topology/ring.hh): a size-2
 * dimension nominates both directions over two physically distinct
 * links, a size-1 dimension contributes no links.
 *
 * Routing generalises the 21364 scheme dimension by dimension:
 *  - Adaptive VC: any minimal direction across X/Y/Z (both on a tie);
 *  - Escape VCs: dimension-order X-then-Y-then-Z with the per-ring
 *    positional dateline rule (a hop requests VC1 iff its remaining
 *    path in the current dimension crosses that ring's wraparound
 *    edge). Dimension-order + a dateline per ring keeps the escape
 *    network cycle-free for the same reason as in 2-D: the extended
 *    channel dependence graph orders channels by (dimension, VC) and
 *    every intra-ring dependence chain passes the dateline at most
 *    once.
 */

#ifndef GS_TOPOLOGY_TORUS3D_HH
#define GS_TOPOLOGY_TORUS3D_HH

#include "topology/topology.hh"

namespace gs::topo
{

/** Z-dimension port indices, extending TorusPort. */
enum Torus3DPort : int
{
    portUp = 4,   ///< +z
    portDown = 5, ///< -z
    torus3dPorts = 6,
};

/** 3-D torus of W x H x D nodes. */
class Torus3D : public Topology
{
  public:
    /**
     * @param w size of the X dimension, >= 1
     * @param h size of the Y dimension, >= 1
     * @param d size of the Z dimension, >= 1
     */
    Torus3D(int w, int h, int d);

    int numNodes() const override { return wid * hgt * dep; }
    int numPorts(NodeId) const override { return torus3dPorts; }
    Port port(NodeId node, int port) const override;
    std::string name() const override;

    PortSet
    adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const override;

    EscapeHop escapeRoute(NodeId at, NodeId dst, int curVc) const override;

    /** @name Geometry helpers */
    /// @{
    int width() const { return wid; }
    int height() const { return hgt; }
    int depth() const { return dep; }
    int xOf(NodeId n) const { return static_cast<int>(n) % wid; }
    int yOf(NodeId n) const { return static_cast<int>(n) / wid % hgt; }
    int zOf(NodeId n) const
    {
        return static_cast<int>(n) / (wid * hgt);
    }
    NodeId nodeAt(int x, int y, int z) const
    {
        return static_cast<NodeId>((z * hgt + y) * wid + x);
    }
    /// @}

    /** Torus hop distance in closed form (cross-checks BFS). */
    int torusDistance(NodeId a, NodeId b) const;

  private:
    /** Neighbour coordinates through @p port (wrapping). */
    NodeId neighbour(NodeId node, int port) const;

    /** Wire class of the link leaving @p node through @p port. */
    LinkKind kindOf(NodeId node, int port) const;

    int wid;
    int hgt;
    int dep;
};

} // namespace gs::topo

#endif // GS_TOPOLOGY_TORUS3D_HH

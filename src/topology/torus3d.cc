#include "topology/torus3d.hh"

#include "sim/logging.hh"
#include "topology/ring.hh"
#include "topology/torus.hh"

namespace gs::topo
{

Torus3D::Torus3D(int w, int h, int d) : wid(w), hgt(h), dep(d)
{
    gs_assert(w >= 1 && h >= 1 && d >= 1, "bad torus dimensions ", w,
              "x", h, "x", d);
}

NodeId
Torus3D::neighbour(NodeId node, int port) const
{
    int x = xOf(node), y = yOf(node), z = zOf(node);
    switch (port) {
      case portEast:
        return nodeAt((x + 1) % wid, y, z);
      case portWest:
        return nodeAt((x - 1 + wid) % wid, y, z);
      case portNorth:
        return nodeAt(x, (y + 1) % hgt, z);
      case portSouth:
        return nodeAt(x, (y - 1 + hgt) % hgt, z);
      case portUp:
        return nodeAt(x, y, (z + 1) % dep);
      case portDown:
        return nodeAt(x, y, (z - 1 + dep) % dep);
      default:
        gs_panic("bad torus port ", port);
    }
}

LinkKind
Torus3D::kindOf(NodeId node, int port) const
{
    // Packaging model extended from the GS1280's: each slab (fixed z)
    // is packaged like a 2-D machine — on-module vertical pairs,
    // backplane X hops, cabled wraparounds — and slabs are stacked
    // with inter-drawer cables in Z.
    int x = xOf(node), y = yOf(node);
    switch (port) {
      case portEast:
        return x == wid - 1 && wid > 2 ? LinkKind::Cable
                                       : LinkKind::Backplane;
      case portWest:
        return x == 0 && wid > 2 ? LinkKind::Cable : LinkKind::Backplane;
      case portNorth:
        if (y % 2 == 0 && y + 1 < hgt)
            return LinkKind::OnModule;
        return LinkKind::Cable;
      case portSouth:
        if (y % 2 == 1)
            return LinkKind::OnModule;
        return LinkKind::Cable;
      case portUp:
      case portDown:
        return LinkKind::Cable;
      default:
        gs_panic("bad torus port ", port);
    }
}

Port
Torus3D::port(NodeId node, int p) const
{
    gs_assert(node >= 0 && node < numNodes());
    int size;
    switch (p) {
      case portEast:
      case portWest:
        size = wid;
        break;
      case portNorth:
      case portSouth:
        size = hgt;
        break;
      default:
        size = dep;
        break;
    }
    if (!ring::hasLinks(size))
        return Port{};

    static constexpr int reverse[torus3dPorts] = {
        portWest, portEast, portSouth, portNorth, portDown, portUp};
    Port out;
    out.peer = neighbour(node, p);
    out.peerPort = reverse[p];
    out.kind = kindOf(node, p);
    return out;
}

std::string
Torus3D::name() const
{
    return "torus " + std::to_string(wid) + "x" + std::to_string(hgt) +
           "x" + std::to_string(dep);
}

PortSet
Torus3D::adaptivePorts(NodeId at, NodeId dst, int) const
{
    PortSet out;
    int dx = ring::fwdOffset(xOf(at), xOf(dst), wid);
    int dy = ring::fwdOffset(yOf(at), yOf(dst), hgt);
    int dz = ring::fwdOffset(zOf(at), zOf(dst), dep);

    if (ring::nominateFwd(dx, wid))
        out.push_back(portEast);
    if (ring::nominateBwd(dx, wid))
        out.push_back(portWest);
    if (ring::nominateFwd(dy, hgt))
        out.push_back(portNorth);
    if (ring::nominateBwd(dy, hgt))
        out.push_back(portSouth);
    if (ring::nominateFwd(dz, dep))
        out.push_back(portUp);
    if (ring::nominateBwd(dz, dep))
        out.push_back(portDown);
    return out;
}

EscapeHop
Torus3D::escapeRoute(NodeId at, NodeId dst, int) const
{
    int ax = xOf(at), ay = yOf(at), az = zOf(at);
    int dx_ = xOf(dst), dy_ = yOf(dst), dz_ = zOf(dst);

    if (ax != dx_) {
        auto h = ring::escapeHop(ax, dx_, wid);
        return EscapeHop{h.forward ? portEast : portWest, h.vc};
    }
    if (ay != dy_) {
        auto h = ring::escapeHop(ay, dy_, hgt);
        return EscapeHop{h.forward ? portNorth : portSouth, h.vc};
    }
    if (az != dz_) {
        auto h = ring::escapeHop(az, dz_, dep);
        return EscapeHop{h.forward ? portUp : portDown, h.vc};
    }
    return EscapeHop{-1, 0};
}

int
Torus3D::torusDistance(NodeId a, NodeId b) const
{
    return ring::distance(xOf(a), xOf(b), wid) +
           ring::distance(yOf(a), yOf(b), hgt) +
           ring::distance(zOf(a), zOf(b), dep);
}

} // namespace gs::topo

#include "workload/nas_ft.hh"

#include "sim/logging.hh"

namespace gs::wl
{

NasFT::NasFT(NodeId self_id, int rank_count, NasFtParams p)
    : self(self_id), ranks(rank_count), prm(p)
{
    gs_assert(ranks >= 1);
}

std::optional<cpu::MemOp>
NasFT::next()
{
    if (iter >= prm.iterations)
        return std::nullopt;

    cpu::MemOp op;
    const std::uint64_t slabLines = prm.slabBytes / mem::lineBytes;

    if (phase == Phase::Fft) {
        // Local butterfly passes: streaming read/write over the slab
        // with real FP work.
        std::uint64_t line = slabCursor % slabLines;
        op.addr = mem::regionBase(self) + line * mem::lineBytes;
        op.write = phaseOp % 3 == 2;
        if (phaseOp % 3 == 0) {
            op.thinkNs = prm.thinkNsPerLine;
            points += 1;
        }
        slabCursor += 1;
        phaseOp += 1;
        if (phaseOp >= prm.fftLines * 3) {
            phaseOp = 0;
            peerIdx = 0;
            phase = ranks > 1 ? Phase::Transpose : Phase::Fft;
            if (ranks == 1)
                iter += 1;
        }
        return op;
    }

    // Global transpose: read a block from every peer in turn,
    // starting from a rank-dependent offset so the all-to-all does
    // not proceed in lockstep.
    int peer = (static_cast<int>(self) + 1 + peerIdx) % ranks;
    std::uint64_t line =
        (static_cast<std::uint64_t>(iter) *
             prm.exchangeLinesPerPeer * static_cast<unsigned>(ranks) +
         static_cast<std::uint64_t>(self) * prm.exchangeLinesPerPeer +
         phaseOp) %
        slabLines;
    op.addr = mem::regionBase(static_cast<NodeId>(peer)) +
              line * mem::lineBytes;
    op.write = false;

    phaseOp += 1;
    if (phaseOp >= prm.exchangeLinesPerPeer) {
        phaseOp = 0;
        peerIdx += 1;
        if (peerIdx >= ranks - 1) {
            peerIdx = 0;
            phase = Phase::Fft;
            iter += 1;
        }
    }
    return op;
}

} // namespace gs::wl

/**
 * @file
 * HPTC ISV application profiles for the remaining rows of the
 * paper's Figure 28: Nastran (structures), StarCD (CFD), LS-Dyna
 * (crash), MM5 (weather), NWChem and Gaussian98 (chemistry).
 *
 * Substitution note: these are licensed applications the paper ran
 * internally; their 1.2-2.1x GS1280/GS320 ratios follow from each
 * code's memory character, which is well documented in the HPC
 * literature and encoded here: direct solvers block for cache
 * (Nastran, Gaussian — low ratios), unstructured/stencil codes
 * stream irregularly (StarCD, MM5 — higher), crash codes sit in
 * between, NWChem mixes integral compute with big I/O-ish sweeps.
 */

#ifndef GS_WORKLOAD_HPTC_APPS_HH
#define GS_WORKLOAD_HPTC_APPS_HH

#include <vector>

#include "cpu/analytic_core.hh"

namespace gs::wl
{

/** One Figure 28 application row. */
struct HptcApp
{
    cpu::BenchProfile profile;
    double paperRatio = 0; ///< the figure's GS1280/GS320 reading
    int paperCpus = 32;    ///< CPU count of the paper's row
};

/** The six ISV rows of Figure 28, in the chart's order. */
const std::vector<HptcApp> &hptcApplications();

/** Modelled GS1280/GS320 throughput ratio for one app row. */
double hptcAdvantage(const HptcApp &app);

} // namespace gs::wl

#endif // GS_WORKLOAD_HPTC_APPS_HH

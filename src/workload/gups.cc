#include "workload/gups.hh"

#include "sim/logging.hh"

namespace gs::wl
{

Gups::Gups(int node_count, std::uint64_t bytes_per_node,
           std::uint64_t updates, std::uint64_t seed)
    : nodes(node_count), bytesPerNode(bytes_per_node),
      remaining(updates), rng(seed)
{
    gs_assert(nodes >= 1 && bytesPerNode >= mem::lineBytes);
}

std::optional<cpu::MemOp>
Gups::next()
{
    if (remaining == 0)
        return std::nullopt;
    remaining -= 1;
    count += 1;

    auto node = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    std::uint64_t line =
        rng.below(bytesPerNode / mem::lineBytes);

    cpu::MemOp op;
    op.addr = mem::regionBase(node) + line * mem::lineBytes;
    op.write = true; // a GUPS update is a read-modify-write line op
    return op;
}

} // namespace gs::wl

#include "workload/spec_profiles.hh"

#include "sim/logging.hh"

namespace gs::wl
{

namespace
{

using cpu::BenchProfile;

BenchProfile
make(const char *name, bool fp, double cpi_base, double mlp,
     std::vector<cpu::WorkingSetComponent> ws,
     std::vector<double> phases)
{
    BenchProfile p;
    p.name = name;
    p.fp = fp;
    p.cpiBase = cpi_base;
    p.mlp = mlp;
    p.workingSet = std::move(ws);
    p.phases = std::move(phases);
    return p;
}

/**
 * SPECfp2000. Working-set components: {sizeMB, L1 misses/1k instr}.
 * A component spills to memory on a machine whose L2 is smaller
 * than its size; swim/applu/lucas/equake stream far past 16 MB,
 * facerec/ammp sit between 1.75 MB and 16 MB (the paper's explicit
 * examples of GS320/ES45 wins), mesa/sixtrack are cache-resident.
 */
std::vector<BenchProfile>
buildFp()
{
    std::vector<BenchProfile> v;
    v.push_back(make("wupwise", true, 0.55, 5.0,
                     {{1.0, 2.0}, {170.0, 4.5}},
                     {1.0, 1.3, 0.8, 1.2, 0.9}));
    v.push_back(make("swim", true, 0.60, 7.0,
                     {{0.5, 1.0}, {190.0, 40.0}},
                     {1.0, 1.0, 1.0, 1.0}));
    v.push_back(make("mgrid", true, 0.60, 6.0,
                     {{1.0, 2.0}, {56.0, 9.5}},
                     {0.6, 1.2, 1.4, 0.9, 1.1, 0.7}));
    v.push_back(make("applu", true, 0.62, 6.0,
                     {{1.2, 2.0}, {180.0, 11.5}},
                     {1.2, 0.8, 1.2, 0.8, 1.2}));
    v.push_back(make("mesa", true, 0.52, 3.0, {{0.6, 1.2}},
                     {1.0, 0.9, 1.1}));
    v.push_back(make("galgel", true, 0.58, 4.5,
                     {{0.7, 3.0}, {30.0, 4.8}},
                     {0.4, 1.5, 0.5, 1.4, 0.6}));
    v.push_back(make("art", true, 0.85, 4.0,
                     {{0.2, 4.0}, {3.7, 14.0}},
                     {1.0, 1.1, 0.9, 1.0}));
    v.push_back(make("equake", true, 0.70, 5.0,
                     {{0.8, 2.5}, {45.0, 10.5}},
                     {1.6, 0.9, 0.9, 0.9, 0.9}));
    v.push_back(make("facerec", true, 0.60, 4.0,
                     {{1.0, 2.0}, {8.0, 4.2}},
                     {0.9, 1.2, 0.8, 1.1}));
    v.push_back(make("ammp", true, 0.75, 2.5,
                     {{0.9, 2.5}, {10.0, 3.5}},
                     {1.0, 0.8, 1.2, 1.0}));
    v.push_back(make("lucas", true, 0.58, 6.0,
                     {{1.0, 1.5}, {120.0, 10.0}},
                     {0.7, 1.3, 0.7, 1.3, 0.9}));
    v.push_back(make("fma3d", true, 0.68, 4.5,
                     {{1.2, 2.5}, {100.0, 5.5}},
                     {1.1, 0.9, 1.1, 0.9}));
    v.push_back(make("sixtrack", true, 0.55, 3.0, {{0.9, 1.0}},
                     {1.0, 1.0, 1.0}));
    v.push_back(make("apsi", true, 0.60, 3.5,
                     {{1.3, 2.0}, {190.0, 2.8}},
                     {0.9, 1.1, 1.0, 1.0}));
    return v;
}

/** SPECint2000: cache-resident except mcf (latency-bound pointer
 *  chasing) and moderate spills in vpr/gcc/gap/twolf. */
std::vector<BenchProfile>
buildInt()
{
    std::vector<BenchProfile> v;
    v.push_back(make("gzip", false, 0.72, 2.0,
                     {{0.8, 1.5}, {180.0, 0.35}},
                     {1.0, 1.3, 0.7, 1.2, 0.8}));
    v.push_back(make("vpr", false, 0.85, 1.8,
                     {{0.9, 2.0}, {2.5, 2.5}}, {1.0, 1.0, 1.0}));
    v.push_back(make("cc1", false, 0.88, 2.2,
                     {{1.0, 2.5}, {22.0, 1.4}},
                     {1.5, 0.6, 1.4, 0.7, 1.3}));
    v.push_back(make("mcf", false, 1.05, 1.6,
                     {{0.5, 4.0}, {100.0, 13.5}},
                     {0.8, 1.1, 1.1, 1.0}));
    v.push_back(make("crafty", false, 0.68, 2.0, {{1.1, 1.2}},
                     {1.0, 1.0}));
    v.push_back(make("parser", false, 0.82, 1.8,
                     {{0.8, 2.0}, {30.0, 1.1}}, {1.0, 0.9, 1.1}));
    v.push_back(make("eon", false, 0.62, 2.0, {{0.5, 0.8}},
                     {1.0, 1.0}));
    v.push_back(make("gap", false, 0.75, 2.5,
                     {{0.9, 1.5}, {190.0, 1.5}},
                     {0.9, 1.2, 0.8, 1.1}));
    v.push_back(make("perlbmk", false, 0.70, 2.2,
                     {{1.0, 1.5}, {30.0, 0.5}}, {1.0, 1.1, 0.9}));
    v.push_back(make("vortex", false, 0.72, 2.5,
                     {{1.2, 2.0}, {60.0, 0.8}}, {1.1, 0.9, 1.0}));
    v.push_back(make("bzip2", false, 0.74, 2.2,
                     {{1.0, 1.5}, {180.0, 0.8}},
                     {0.7, 1.3, 0.7, 1.3}));
    v.push_back(make("twolf", false, 0.88, 1.8,
                     {{0.8, 2.5}, {2.2, 2.0}}, {1.0, 1.0, 1.0}));
    return v;
}

} // namespace

const std::vector<cpu::BenchProfile> &
specFp2000()
{
    static const std::vector<cpu::BenchProfile> table = buildFp();
    return table;
}

const std::vector<cpu::BenchProfile> &
specInt2000()
{
    static const std::vector<cpu::BenchProfile> table = buildInt();
    return table;
}

const cpu::BenchProfile &
specProfile(const std::string &name)
{
    for (const auto &p : specFp2000())
        if (p.name == name)
            return p;
    for (const auto &p : specInt2000())
        if (p.name == name)
            return p;
    gs_fatal("unknown SPEC profile: ", name);
}

} // namespace gs::wl

/**
 * @file
 * NAS Parallel FT model: 3-D FFT with a global transpose.
 *
 * The paper (Section 5.2) names FFT among the NPB kernels that
 * stress the memory subsystem; unlike SP's nearest-neighbour
 * pencils, FT's transpose is an all-to-all — every rank exchanges a
 * block with every other rank each iteration — so it additionally
 * loads the bisection, sitting between SP and GUPS in interconnect
 * stress. Included as NPB-suite coverage beyond the paper's SP plot.
 */

#ifndef GS_WORKLOAD_NAS_FT_HH
#define GS_WORKLOAD_NAS_FT_HH

#include "cpu/traffic.hh"

namespace gs::wl
{

/** Shape parameters for one FT rank. */
struct NasFtParams
{
    int iterations = 2;
    std::uint64_t fftLines = 4096;        ///< local FFT pass lines
    std::uint64_t exchangeLinesPerPeer = 64; ///< transpose block
    std::uint64_t slabBytes = 48ULL << 20;
    double thinkNsPerLine = 40.0; ///< butterflies per line
};

/** One MPI rank of the FT kernel. */
class NasFT : public cpu::TrafficSource
{
  public:
    NasFT(NodeId self, int ranks, NasFtParams p = {});

    std::optional<cpu::MemOp> next() override;

    std::uint64_t pointsDone() const { return points; }

  private:
    NodeId self;
    int ranks;
    NasFtParams prm;

    enum class Phase { Fft, Transpose } phase = Phase::Fft;
    int iter = 0;
    std::uint64_t phaseOp = 0;
    int peerIdx = 0; ///< transpose progress (skips self)
    std::uint64_t slabCursor = 0;
    std::uint64_t points = 0;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_NAS_FT_HH

/**
 * @file
 * Fluent CFD model (Section 5.1, Figures 19/20).
 *
 * Fluent's fl5l1 case is the paper's CPU-intensive representative:
 * "this application does not put significant stress on either
 * memory controller or IP-links bandwidth" (Figure 20 shows a few
 * percent on both), because the solver is blocked for cache reuse.
 * The model iterates over cache-resident blocks with heavy reuse
 * and real compute per access, fetching the next block from memory
 * only when the working block changes, plus a small neighbour
 * exchange per iteration.
 */

#ifndef GS_WORKLOAD_FLUENT_HH
#define GS_WORKLOAD_FLUENT_HH

#include "cpu/traffic.hh"

namespace gs::wl
{

/** Shape parameters of the blocked solver. */
struct FluentParams
{
    int iterations = 2;
    std::uint64_t blockBytes = 768ULL << 10; ///< fits every L2 here
    int blocksPerIter = 4;
    int reusePasses = 6;      ///< sweeps over a block while loaded
    double thinkNsPerLine = 55.0; ///< per-access FP work (CPU-bound)
    std::uint64_t exchangeLines = 64;
};

/** One Fluent rank. */
class FluentCfd : public cpu::TrafficSource
{
  public:
    FluentCfd(NodeId self, int ranks, FluentParams p = {});

    std::optional<cpu::MemOp> next() override;

    std::uint64_t cellsDone() const { return cells; }

  private:
    NodeId self;
    int ranks;
    FluentParams prm;

    int iter = 0;
    int block = 0;
    int pass = 0;
    std::uint64_t line = 0;
    bool exchanging = false;
    std::uint64_t exchangeOp = 0;
    std::uint64_t cells = 0;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_FLUENT_HH

#include "workload/load_test.hh"

#include "sim/logging.hh"

namespace gs::wl
{

RandomRemoteReads::RandomRemoteReads(NodeId self_id, int node_count,
                                     std::uint64_t range_bytes,
                                     std::uint64_t reads,
                                     std::uint64_t seed)
    : self(self_id), nodes(node_count), rangeBytes(range_bytes),
      remaining(reads), rng(seed)
{
    gs_assert(nodes >= 2, "remote reads need at least two nodes");
    gs_assert(rangeBytes >= mem::lineBytes);
}

std::optional<cpu::MemOp>
RandomRemoteReads::next()
{
    if (remaining == 0)
        return std::nullopt;
    remaining -= 1;

    auto pick = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(nodes - 1)));
    if (pick >= self)
        pick += 1; // skip ourselves

    cpu::MemOp op;
    op.addr = mem::regionBase(pick) +
              rng.below(rangeBytes / mem::lineBytes) * mem::lineBytes;
    op.write = false;
    return op;
}

HotSpotReads::HotSpotReads(NodeId victim_node,
                           std::uint64_t range_bytes,
                           std::uint64_t reads, std::uint64_t seed)
    : victim(victim_node), rangeBytes(range_bytes), remaining(reads),
      rng(seed)
{
    gs_assert(rangeBytes >= mem::lineBytes);
}

std::optional<cpu::MemOp>
HotSpotReads::next()
{
    if (remaining == 0)
        return std::nullopt;
    remaining -= 1;

    cpu::MemOp op;
    op.addr = mem::regionBase(victim) +
              rng.below(rangeBytes / mem::lineBytes) * mem::lineBytes;
    op.write = false;
    return op;
}

} // namespace gs::wl

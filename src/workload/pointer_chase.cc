#include "workload/pointer_chase.hh"

#include "sim/logging.hh"

namespace gs::wl
{

PointerChase::PointerChase(mem::Addr base_addr,
                           std::uint64_t dataset_bytes,
                           std::uint64_t stride_bytes,
                           std::uint64_t loads)
    : base(base_addr), dataset(dataset_bytes), stride(stride_bytes),
      remaining(loads)
{
    gs_assert(dataset >= stride && stride >= 1,
              "degenerate chase geometry");
}

std::optional<cpu::MemOp>
PointerChase::next()
{
    if (remaining == 0)
        return std::nullopt;
    remaining -= 1;
    count += 1;

    cpu::MemOp op;
    op.addr = base + offset;
    op.write = false;
    op.dependent = true; // the defining property of the pattern
    offset += stride;
    if (offset + stride > dataset)
        offset = 0;
    return op;
}

} // namespace gs::wl

/**
 * @file
 * NAS Parallel SP model (Section 5.2, Figures 21/22).
 *
 * SP is an MPI pentadiagonal solver: per iteration every rank
 * sweeps its local slab of the grid (memory-bandwidth-heavy
 * streaming with real FP work between lines — the paper measures
 * ~26% memory-controller utilization and low IP-link utilization)
 * and then exchanges pencil boundaries with its neighbours (small
 * messages -> low IP traffic).
 *
 * The per-CPU slab of a class C problem is far larger than either
 * machine's cache at every CPU count evaluated, so the sweep always
 * streams from memory; the model sweeps a rotating window of a
 * large local region to reproduce that with a bounded op count.
 */

#ifndef GS_WORKLOAD_NAS_SP_HH
#define GS_WORKLOAD_NAS_SP_HH

#include "cpu/traffic.hh"

namespace gs::wl
{

/** Shape parameters for one SP rank. */
struct NasSpParams
{
    int iterations = 2;
    std::uint64_t sweepLines = 8192;    ///< lines streamed per sweep
    std::uint64_t exchangeLines = 256;  ///< boundary lines per side
    std::uint64_t slabBytes = 48ULL << 20; ///< local slab (no reuse)

    /**
     * FP work per grid line. Calibrated so one GS1280 CPU demands
     * ~2.3 GB/s (the paper's ~26% controller utilization, Figure
     * 22) — high enough to saturate the shared-memory machines but
     * not the GS1280, which is what produces Figure 21's ratios.
     */
    double thinkNsPerLine = 95.0;
};

/** One MPI rank of the SP solver. */
class NasSP : public cpu::TrafficSource
{
  public:
    /**
     * @param self this rank's CPU id
     * @param ranks total ranks (1-D pencil ring decomposition)
     */
    NasSP(NodeId self, int ranks, NasSpParams p = {});

    std::optional<cpu::MemOp> next() override;

    /** Grid points processed (for the MOPS rating). */
    std::uint64_t pointsDone() const { return points; }

  private:
    NodeId self;
    int ranks;
    NasSpParams prm;

    enum class Phase { Sweep, ExchangeLeft, ExchangeRight } phase =
        Phase::Sweep;
    int iter = 0;
    std::uint64_t phaseOp = 0;
    std::uint64_t slabCursor = 0;
    std::uint64_t points = 0;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_NAS_SP_HH

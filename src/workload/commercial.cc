#include "workload/commercial.hh"

#include "workload/spec_rate.hh"

namespace gs::wl
{

const cpu::BenchProfile &
sapSd()
{
    static const cpu::BenchProfile profile = [] {
        cpu::BenchProfile p;
        p.name = "SAP SD";
        p.fp = false;
        // OLTP: high base CPI (branchy, serialized), little memory
        // parallelism, a working set whose hot part fits a 16 MB
        // cache but not 1.75 MB.
        p.cpiBase = 1.10;
        p.mlp = 1.8;
        p.workingSet = {{1.0, 3.0}, {30.0, 1.8}};
        p.phases = {1.0, 1.1, 0.9, 1.0};
        return p;
    }();
    return profile;
}

const cpu::BenchProfile &
decisionSupport()
{
    static const cpu::BenchProfile profile = [] {
        cpu::BenchProfile p;
        p.name = "Decision Support";
        p.fp = false;
        // DSS: table scans stream far past any cache with moderate
        // overlap; throughput follows memory bandwidth.
        p.cpiBase = 0.85;
        p.mlp = 4.0;
        p.workingSet = {{1.2, 2.5}, {80.0, 3.5}};
        p.phases = {1.4, 0.7, 1.2, 0.7};
        return p;
    }();
    return profile;
}

double
commercialAdvantage(const cpu::BenchProfile &profile, int cpus)
{
    auto gs1280 =
        cpu::evaluateIpc(profile, rateTiming(RateSystem::GS1280, cpus));
    auto gs320 =
        cpu::evaluateIpc(profile, rateTiming(RateSystem::GS320, cpus));
    return gs1280.ipc / gs320.ipc;
}

} // namespace gs::wl

#include "workload/nas_sp.hh"

#include "sim/logging.hh"

namespace gs::wl
{

NasSP::NasSP(NodeId self_id, int rank_count, NasSpParams p)
    : self(self_id), ranks(rank_count), prm(p)
{
    gs_assert(ranks >= 1);
}

std::optional<cpu::MemOp>
NasSP::next()
{
    if (iter >= prm.iterations)
        return std::nullopt;

    cpu::MemOp op;
    switch (phase) {
      case Phase::Sweep: {
        // Streaming solver sweep: two reads and a write per three
        // ops, marching through the slab with no reuse.
        std::uint64_t line = slabCursor % (prm.slabBytes /
                                           mem::lineBytes);
        op.addr = mem::regionBase(self) + line * mem::lineBytes;
        std::uint64_t k = phaseOp % 3;
        op.write = k == 2;
        if (k == 0) {
            op.thinkNs = prm.thinkNsPerLine;
            points += 1;
        }
        slabCursor += 1;
        phaseOp += 1;
        if (phaseOp >= prm.sweepLines * 3) {
            phaseOp = 0;
            phase = ranks > 1 ? Phase::ExchangeLeft : Phase::Sweep;
            if (ranks == 1)
                iter += 1;
        }
        break;
      }
      case Phase::ExchangeLeft:
      case Phase::ExchangeRight: {
        bool left = phase == Phase::ExchangeLeft;
        NodeId peer = left
                          ? static_cast<NodeId>((self + ranks - 1) %
                                                ranks)
                          : static_cast<NodeId>((self + 1) % ranks);
        // Boundary pencils live near the start of the peer's slab;
        // offset by iteration so each exchange misses.
        std::uint64_t line =
            (static_cast<std::uint64_t>(iter) * prm.exchangeLines +
             phaseOp) %
            (prm.slabBytes / mem::lineBytes);
        op.addr = mem::regionBase(peer) + line * mem::lineBytes;
        op.write = false;
        phaseOp += 1;
        if (phaseOp >= prm.exchangeLines) {
            phaseOp = 0;
            if (left) {
                phase = Phase::ExchangeRight;
            } else {
                phase = Phase::Sweep;
                iter += 1;
            }
        }
        break;
      }
    }
    return op;
}

} // namespace gs::wl

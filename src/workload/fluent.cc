#include "workload/fluent.hh"

#include "sim/logging.hh"

namespace gs::wl
{

FluentCfd::FluentCfd(NodeId self_id, int rank_count, FluentParams p)
    : self(self_id), ranks(rank_count), prm(p)
{
    gs_assert(ranks >= 1);
    gs_assert(prm.blockBytes >= mem::lineBytes);
}

std::optional<cpu::MemOp>
FluentCfd::next()
{
    if (iter >= prm.iterations)
        return std::nullopt;

    const std::uint64_t blockLines = prm.blockBytes / mem::lineBytes;
    cpu::MemOp op;

    if (exchanging) {
        NodeId peer = static_cast<NodeId>(
            (self + 1 + static_cast<NodeId>(iter)) % ranks);
        op.addr = mem::regionBase(peer) +
                  (exchangeOp + static_cast<std::uint64_t>(iter) *
                                    prm.exchangeLines) *
                      mem::lineBytes;
        op.write = false;
        exchangeOp += 1;
        if (exchangeOp >= prm.exchangeLines || ranks == 1) {
            exchanging = false;
            exchangeOp = 0;
            iter += 1;
        }
        return op;
    }

    // Blocked sweep: the current block stays cache-resident across
    // reuse passes; each access carries solver FP work.
    std::uint64_t blockBase =
        static_cast<std::uint64_t>(block) * prm.blockBytes;
    op.addr = mem::regionBase(self) + blockBase +
              line * mem::lineBytes;
    op.write = (line % 4) == 3;
    op.thinkNs = prm.thinkNsPerLine;
    cells += 1;

    line += 1;
    if (line >= blockLines) {
        line = 0;
        pass += 1;
        if (pass >= prm.reusePasses) {
            pass = 0;
            block += 1;
            if (block >= prm.blocksPerIter) {
                block = 0;
                exchanging = true;
            }
        }
    }
    return op;
}

} // namespace gs::wl

#include "workload/stream.hh"

#include "sim/logging.hh"

namespace gs::wl
{

StreamKernel::StreamKernel(StreamOp op, mem::Addr base,
                           std::uint64_t array_bytes, int iterations,
                           double think_ns_per_line)
    : kind(op), aBase(base), bBase(base + array_bytes),
      cBase(base + 2 * array_bytes), arrayBytes(array_bytes),
      sweepsLeft(iterations), thinkNs(think_ns_per_line)
{
    gs_assert(array_bytes >= mem::lineBytes);
    gs_assert(iterations >= 1);
}

std::optional<cpu::MemOp>
StreamKernel::next()
{
    if (sweepsLeft == 0)
        return std::nullopt;

    const int reads = readsPerLine();
    cpu::MemOp op;
    if (phase < reads) {
        op.addr = (phase == 0 ? bBase : cBase) + offset;
        op.write = false;
        if (phase == 0)
            op.thinkNs = thinkNs; // the FP work for this line
        phase += 1;
    } else {
        op.addr = aBase + offset;
        op.write = true;
        phase = 0;
        lines += 1;
        offset += mem::lineBytes;
        if (offset + mem::lineBytes > arrayBytes) {
            offset = 0;
            sweepsLeft -= 1;
        }
    }
    return op;
}

} // namespace gs::wl

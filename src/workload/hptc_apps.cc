#include "workload/hptc_apps.hh"

#include "workload/spec_rate.hh"

namespace gs::wl
{

namespace
{

HptcApp
make(const char *name, double cpi, double mlp,
     std::vector<cpu::WorkingSetComponent> ws, double paper_ratio,
     int paper_cpus)
{
    HptcApp app;
    app.profile.name = name;
    app.profile.fp = true;
    app.profile.cpiBase = cpi;
    app.profile.mlp = mlp;
    app.profile.workingSet = std::move(ws);
    app.paperRatio = paper_ratio;
    app.paperCpus = paper_cpus;
    return app;
}

std::vector<HptcApp>
build()
{
    std::vector<HptcApp> v;
    // Nastran xlem (4P): blocked direct solver, mostly cache-bound;
    // its out-of-core sweeps add a modest memory term.
    v.push_back(make("Nastran xlem", 0.75, 3.0,
                     {{1.0, 2.0}, {12.0, 1.2}, {200.0, 0.8}}, 1.2,
                     4));
    // Fluent (32P): covered in simulation by bench/fig19; modelled
    // here for the chart row (blocked, CPU-bound).
    v.push_back(make("Fluent (CFD)", 0.80, 3.0,
                     {{1.2, 2.2}, {26.0, 1.8}}, 1.4, 32));
    // StarCD (32P): unstructured CFD, irregular streaming.
    v.push_back(make("StarCD (CFD)", 0.78, 3.5,
                     {{1.0, 2.0}, {60.0, 2.6}}, 1.6, 32));
    // LS-Dyna / Neon crash (16P): element-bound with contact-search
    // sweeps.
    v.push_back(make("Dyna/Neon (crash)", 0.72, 3.0,
                     {{1.0, 2.0}, {40.0, 2.4}}, 1.6, 16));
    // MM5 (32P): weather stencil, bandwidth-leaning.
    v.push_back(make("MM5 (weather)", 0.68, 4.5,
                     {{1.0, 2.0}, {90.0, 4.2}}, 2.0, 32));
    // NWChem SiOSi3 (32P): integral compute + large data motion.
    v.push_back(make("Nwchem (SiOSi3)", 0.70, 3.5,
                     {{1.0, 2.0}, {70.0, 3.2}}, 1.8, 32));
    // Gaussian98 (32P): blocked chemistry, moderate memory term.
    v.push_back(make("Gaussian98 (chem)", 0.74, 3.0,
                     {{1.0, 2.0}, {30.0, 2.3}}, 1.6, 32));
    return v;
}

} // namespace

const std::vector<HptcApp> &
hptcApplications()
{
    static const std::vector<HptcApp> apps = build();
    return apps;
}

double
hptcAdvantage(const HptcApp &app)
{
    auto gs1280 = cpu::evaluateIpc(
        app.profile, rateTiming(RateSystem::GS1280, app.paperCpus));
    auto gs320 = cpu::evaluateIpc(
        app.profile, rateTiming(RateSystem::GS320, app.paperCpus));
    return gs1280.ipc / gs320.ipc;
}

} // namespace gs::wl

/**
 * @file
 * Synthetic profiles of the 26 SPEC CPU2000 benchmarks (Figures
 * 8-11, 25 and the rate curves of Figure 1).
 *
 * Substitution note (see DESIGN.md): SPEC binaries cannot run here.
 * Each profile encodes the properties the paper itself uses to
 * explain its IPC results — base CPI, memory-level parallelism and
 * a lumped working-set/miss-density decomposition — calibrated so
 * that, through the analytic CPI model, the per-benchmark ordering
 * and machine-vs-machine ratios of Figures 8/9 and the
 * memory-controller utilization levels of Figures 10/11 are
 * reproduced (swim ~53% utilization; applu/lucas/equake/mgrid
 * 20-30%; fma3d/art/wupwise/galgel 10-20%; facerec ~8% with a
 * working set that fits a 16 MB cache but not 1.75 MB; integer
 * benchmarks cache-resident except mcf).
 */

#ifndef GS_WORKLOAD_SPEC_PROFILES_HH
#define GS_WORKLOAD_SPEC_PROFILES_HH

#include <vector>

#include "cpu/analytic_core.hh"

namespace gs::wl
{

/** The 14 SPECfp2000 benchmarks, in the paper's figure order. */
const std::vector<cpu::BenchProfile> &specFp2000();

/** The 12 SPECint2000 benchmarks, in the paper's figure order. */
const std::vector<cpu::BenchProfile> &specInt2000();

/** Look up one profile by name across both suites. */
const cpu::BenchProfile &specProfile(const std::string &name);

} // namespace gs::wl

#endif // GS_WORKLOAD_SPEC_PROFILES_HH

#include "workload/spec_rate.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gs::wl
{

cpu::MachineTiming
rateTiming(RateSystem sys, int cpus)
{
    gs_assert(cpus >= 1);
    switch (sys) {
      case RateSystem::GS1280:
        // Private memory per CPU: per-copy timing is load-invariant.
        return cpu::MachineTiming::gs1280();

      case RateSystem::GS1280Striped: {
        // Section 6: four-line groups rotate across the module pair.
        // Half of every copy's misses travel one hop (83 -> ~145 ns
        // under load, including module-link queueing), and the pair
        // link's occupancy plus buddy Zbox sharing cut the sustained
        // per-copy bandwidth — the "increased inter-processor
        // traffic" the paper blames for the 10-30% degradation.
        cpu::MachineTiming m = cpu::MachineTiming::gs1280();
        m.name = "GS1280 striped";
        m.memLatencyNs = 125.0;
        m.memBandwidthGBs *= 0.72;
        return m;
      }

      case RateSystem::SC45: {
        // Boxes of 4 CPUs: within a box the crossbar is shared;
        // boxes are independent for throughput work.
        cpu::MachineTiming m = cpu::MachineTiming::es45();
        m.name = "SC45";
        int perBox = std::min(cpus, 4);
        // One copy sees the full crossbar; four share it.
        m.memBandwidthGBs = 3.0 / perBox;
        return m;
      }

      case RateSystem::GS320: {
        cpu::MachineTiming m = cpu::MachineTiming::gs320();
        int perQbb = std::min(cpus, 4);
        m.memBandwidthGBs = 1.7 / perQbb;
        return m;
      }
    }
    return cpu::MachineTiming::gs1280();
}

namespace
{

/** Geometric-mean per-copy speed (instructions per ns). */
double
geomeanSpeed(const std::vector<cpu::BenchProfile> &suite,
             const cpu::MachineTiming &timing)
{
    gs_assert(!suite.empty());
    double logSum = 0;
    for (const auto &profile : suite) {
        auto r = cpu::evaluateIpc(profile, timing);
        logSum += std::log(1.0 / r.nsPerInstr);
    }
    return std::exp(logSum / static_cast<double>(suite.size()));
}

} // namespace

double
specRate(const std::vector<cpu::BenchProfile> &suite, RateSystem sys,
         int cpus)
{
    // Normalize so one GS1280 copy of the suite scores ~19, the
    // published SPECfp_rate2000 (peak) neighbourhood for a 1P
    // GS1280/1.15 GHz; only ratios and shapes are meaningful.
    double base =
        geomeanSpeed(suite, cpu::MachineTiming::gs1280());
    double speed = geomeanSpeed(suite, rateTiming(sys, cpus));
    return 19.0 * static_cast<double>(cpus) * speed / base;
}

double
stripingDegradationPct(const cpu::BenchProfile &profile, int cpus)
{
    auto plain =
        cpu::evaluateIpc(profile, rateTiming(RateSystem::GS1280, cpus));
    auto striped = cpu::evaluateIpc(
        profile, rateTiming(RateSystem::GS1280Striped, cpus));
    return (plain.ipc / striped.ipc - 1.0) * 100.0;
}

} // namespace gs::wl

/**
 * @file
 * Profile-driven traffic: turn an analytic BenchProfile (the SPEC
 * models of Figures 8-11) into an executable address stream for the
 * timing simulator.
 *
 * Per 1000-instruction block the source emits each working-set
 * component's L1 misses as line-granular accesses marching through
 * a region of the component's footprint, preceded by the block's
 * core compute time (cpiBase). Replaying the same profile through
 * the full machine cross-checks the analytic CPI model — and lets
 * experiments the model can only approximate (e.g. Figure 25's
 * striping run) be *simulated* instead.
 */

#ifndef GS_WORKLOAD_PROFILE_TRAFFIC_HH
#define GS_WORKLOAD_PROFILE_TRAFFIC_HH

#include <vector>

#include "cpu/analytic_core.hh"
#include "cpu/traffic.hh"

namespace gs::wl
{

/** Executable form of a BenchProfile. */
class ProfileTraffic : public cpu::TrafficSource
{
  public:
    /**
     * @param profile the benchmark model to replay
     * @param base start of this CPU's data region
     * @param clock_ghz core clock (scales cpiBase into think time)
     * @param blocks how many 1000-instruction blocks to run
     */
    ProfileTraffic(const cpu::BenchProfile &profile, mem::Addr base,
                   double clock_ghz, std::uint64_t blocks);

    std::optional<cpu::MemOp> next() override;

    /** Instructions represented by the stream so far. */
    double
    instructionsIssued() const
    {
        return static_cast<double>(blocksDone) * 1000.0;
    }

    /**
     * Simulated IPC given the elapsed time of the run that consumed
     * this stream.
     */
    double
    ipc(double elapsed_ns) const
    {
        return instructionsIssued() / (elapsed_ns * clockGHz);
    }

  private:
    struct Component
    {
        mem::Addr base = 0;      ///< region start
        std::uint64_t lines = 0; ///< region size in lines
        int opsPerBlock = 0;     ///< accesses per 1000 instrs
        std::uint64_t cursor = 0;
    };

    double clockGHz;
    double thinkNsPerBlock;
    std::uint64_t blocksLeft;
    std::uint64_t blocksDone = 0;

    std::vector<Component> comps;
    std::size_t compIdx = 0;
    int opInComp = 0;
    bool blockStarted = false;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_PROFILE_TRAFFIC_HH

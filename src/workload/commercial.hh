/**
 * @file
 * Commercial workload profiles for the paper's Figure 28 rows:
 * SAP SD two-tier transaction processing (~1.3x GS1280 vs GS320)
 * and an internal decision-support workload (~1.6x).
 *
 * Substitution (see DESIGN.md): these are proprietary benchmark
 * runs; what the ratios reflect is the workloads' memory character —
 * OLTP: big, latency-bound, low-MLP footprints that partially fit a
 * 16 MB cache; DSS: scan-dominated, bandwidth-sensitive streams.
 * The profiles encode exactly that and run through the same analytic
 * CPI model as the SPEC suites.
 */

#ifndef GS_WORKLOAD_COMMERCIAL_HH
#define GS_WORKLOAD_COMMERCIAL_HH

#include "cpu/analytic_core.hh"

namespace gs::wl
{

/** SAP SD two-tier dialog step mix (OLTP character). */
const cpu::BenchProfile &sapSd();

/** Scan-heavy decision-support query mix (DSS character). */
const cpu::BenchProfile &decisionSupport();

/**
 * Throughput ratio GS1280/GS320 for a commercial profile at
 * @p cpus concurrent users' worth of load (rate semantics).
 */
double commercialAdvantage(const cpu::BenchProfile &profile,
                           int cpus);

} // namespace gs::wl

#endif // GS_WORKLOAD_COMMERCIAL_HH

/**
 * @file
 * SPEC rate (throughput) model: Figure 1's SPECfp_rate2000 scaling
 * comparison and Figure 25's striping degradation.
 *
 * A rate run executes N independent copies; what differs between
 * machines is how per-copy memory bandwidth and latency degrade as
 * copies multiply:
 *  - GS1280: each CPU owns its local RDRAM -> per-copy resources are
 *    constant and throughput scales linearly (the paper's Figure 7
 *    argument);
 *  - GS1280 striped: half of every copy's lines live on the module
 *    buddy -> higher average latency and inter-processor traffic;
 *  - GS320: four copies share one QBB memory port;
 *  - SC45: clusters of 4-CPU ES45 boxes; copies share the box
 *    crossbar, boxes add linearly.
 */

#ifndef GS_WORKLOAD_SPEC_RATE_HH
#define GS_WORKLOAD_SPEC_RATE_HH

#include <vector>

#include "cpu/analytic_core.hh"

namespace gs::wl
{

/** Rate-run system variants. */
enum class RateSystem
{
    GS1280,
    GS1280Striped,
    SC45,
    GS320,
};

/** Per-copy machine timing when @p cpus copies run on @p sys. */
cpu::MachineTiming rateTiming(RateSystem sys, int cpus);

/**
 * SPEC-style rate: N x geometric mean of per-copy speeds over
 * @p suite, scaled so the 1-copy GS1280 SPECfp number lands near
 * its published ~19 (only ratios and shapes are meaningful).
 */
double specRate(const std::vector<cpu::BenchProfile> &suite,
                RateSystem sys, int cpus);

/**
 * Figure 25: per-benchmark throughput degradation (percent) of the
 * striped GS1280 versus the default, at @p cpus copies.
 */
double stripingDegradationPct(const cpu::BenchProfile &profile,
                              int cpus);

} // namespace gs::wl

#endif // GS_WORKLOAD_SPEC_RATE_HH

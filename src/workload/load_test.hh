/**
 * @file
 * The interconnect load test of Figure 15 and the hot-spot pattern
 * of Figures 26/27.
 *
 * Load test: "Each CPU randomly selects another CPU to send a Read
 * request to. The test is started with a single outstanding load
 * [...] For each additional point, one outstanding load is added
 * (up to 30 outstanding requests)." Outstanding-ness is set by the
 * core's MLP; this source supplies the random remote read stream.
 *
 * Hot spot: every CPU reads random lines homed on one victim node
 * (CPU0 in the paper's Figure 27 display).
 */

#ifndef GS_WORKLOAD_LOAD_TEST_HH
#define GS_WORKLOAD_LOAD_TEST_HH

#include "cpu/traffic.hh"
#include "sim/random.hh"

namespace gs::wl
{

/** Uniform-random remote reads (the Figure 15 generator). */
class RandomRemoteReads : public cpu::TrafficSource
{
  public:
    /**
     * @param self this CPU's id (never chosen as a destination)
     * @param nodes CPUs to choose among
     * @param range_bytes address range per node (>> cache size so
     *        reads keep missing)
     * @param reads how many reads to issue
     * @param seed per-CPU RNG seed
     */
    RandomRemoteReads(NodeId self, int nodes,
                      std::uint64_t range_bytes, std::uint64_t reads,
                      std::uint64_t seed);

    std::optional<cpu::MemOp> next() override;

    /** @name Checkpoint/restore: remaining reads + RNG position. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const override
    {
        s.put64(remaining);
        std::uint64_t words[4];
        rng.stateWords(words);
        for (std::uint64_t w : words)
            s.put64(w);
    }

    void
    restoreCkpt(ckpt::Deserializer &d) override
    {
        remaining = d.get64();
        std::uint64_t words[4];
        for (std::uint64_t &w : words)
            w = d.get64();
        if (d.ok())
            rng.setStateWords(words);
    }
    /// @}

  private:
    NodeId self;
    int nodes;
    std::uint64_t rangeBytes;
    std::uint64_t remaining;
    Rng rng;
};

/** Reads concentrated on one node's memory (Figures 26/27). */
class HotSpotReads : public cpu::TrafficSource
{
  public:
    /**
     * @param victim node whose memory everyone reads
     * @param range_bytes range within the victim's region
     * @param reads reads to issue
     * @param seed per-CPU RNG seed
     */
    HotSpotReads(NodeId victim, std::uint64_t range_bytes,
                 std::uint64_t reads, std::uint64_t seed);

    std::optional<cpu::MemOp> next() override;

    /** @name Checkpoint/restore: remaining reads + RNG position. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const override
    {
        s.put64(remaining);
        std::uint64_t words[4];
        rng.stateWords(words);
        for (std::uint64_t w : words)
            s.put64(w);
    }

    void
    restoreCkpt(ckpt::Deserializer &d) override
    {
        remaining = d.get64();
        std::uint64_t words[4];
        for (std::uint64_t &w : words)
            w = d.get64();
        if (d.ok())
            rng.setStateWords(words);
    }
    /// @}

  private:
    NodeId victim;
    std::uint64_t rangeBytes;
    std::uint64_t remaining;
    Rng rng;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_LOAD_TEST_HH

/**
 * @file
 * McCalpin STREAM kernels: the sustainable memory-bandwidth
 * benchmark of the paper's Figures 6 and 7 and the "memory copy
 * bandwidth" rows of Figure 28.
 *
 * The four kernels and their traffic per 64-byte line of progress:
 *  - Copy  (a[i] = b[i]):          1 read stream, 1 write stream
 *  - Scale (a[i] = q*b[i]):        1 read stream, 1 write stream
 *  - Add   (a[i] = b[i] + c[i]):   2 read streams, 1 write stream
 *  - Triad (a[i] = b[i] + q*c[i]): 2 read streams, 1 write stream
 *
 * On this protocol a write is a read-for-ownership plus a later
 * victim write-back, exactly the extra traffic a real STREAM write
 * stream induces. The paper plots Triad ("the other kernels have
 * similar characteristics").
 */

#ifndef GS_WORKLOAD_STREAM_HH
#define GS_WORKLOAD_STREAM_HH

#include "cpu/traffic.hh"

namespace gs::wl
{

/** Which STREAM kernel to run. */
enum class StreamOp
{
    Copy,
    Scale,
    Add,
    Triad,
};

/** Bytes of arithmetic progress per element line, by kernel. */
constexpr double
streamBytesPerLine(StreamOp op)
{
    switch (op) {
      case StreamOp::Copy:
      case StreamOp::Scale:
        return 2.0 * 64.0;
      case StreamOp::Add:
      case StreamOp::Triad:
        return 3.0 * 64.0;
    }
    return 3.0 * 64.0;
}

/** One CPU's share of a STREAM sweep over local arrays. */
class StreamKernel : public cpu::TrafficSource
{
  public:
    /**
     * @param op which kernel
     * @param base start of this CPU's array region; up to three
     *        disjoint arrays of @p array_bytes each are placed here
     * @param array_bytes size of each array
     * @param iterations full sweeps to run
     * @param think_ns_per_line FP work per line
     */
    StreamKernel(StreamOp op, mem::Addr base,
                 std::uint64_t array_bytes, int iterations = 1,
                 double think_ns_per_line = 1.5);

    std::optional<cpu::MemOp> next() override;

    StreamOp op() const { return kind; }
    std::uint64_t linesProcessed() const { return lines; }

    /** Bytes of kernel progress per processed line. */
    double bytesPerLine() const { return streamBytesPerLine(kind); }

    /** @name Checkpoint/restore: sweep position. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const override
    {
        s.putI32(sweepsLeft);
        s.put64(offset);
        s.putI32(phase);
        s.put64(lines);
    }

    void
    restoreCkpt(ckpt::Deserializer &d) override
    {
        sweepsLeft = d.getI32();
        offset = d.get64();
        phase = d.getI32();
        lines = d.get64();
    }
    /// @}

  private:
    int readsPerLine() const
    {
        return kind == StreamOp::Add || kind == StreamOp::Triad ? 2
                                                                : 1;
    }

    StreamOp kind;
    mem::Addr aBase, bBase, cBase;
    std::uint64_t arrayBytes;
    int sweepsLeft;
    double thinkNs;

    std::uint64_t offset = 0;
    int phase = 0; ///< 0..reads-1: loads; reads: the store
    std::uint64_t lines = 0;
};

/** The Triad kernel (the one the paper plots). */
class StreamTriad : public StreamKernel
{
  public:
    StreamTriad(mem::Addr base, std::uint64_t array_bytes,
                int iterations = 1, double think_ns_per_line = 1.5)
        : StreamKernel(StreamOp::Triad, base, array_bytes, iterations,
                       think_ns_per_line)
    {
    }

    /** Triad moves 24 B of data per 64 B line step (3 streams). */
    static constexpr double bytesPerLine = 3.0 * 64.0;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_STREAM_HH

/**
 * @file
 * GUPS: random updates to a table spanning the whole machine's
 * memory (Section 5.3 of the paper, Figures 23/24).
 *
 * "GUPS is a multithreaded application where each thread updates an
 * item randomly picked from the large table. Since the table is so
 * large that it spans the entire memory in the system, this
 * application puts substantial stress on the IP-link bandwidth."
 *
 * Each update is a write to a uniformly random line anywhere in the
 * table, i.e. a read-for-ownership across the network with a dirty
 * fill; updates overlap up to the core's MLP.
 */

#ifndef GS_WORKLOAD_GUPS_HH
#define GS_WORKLOAD_GUPS_HH

#include "cpu/traffic.hh"
#include "sim/random.hh"

namespace gs::wl
{

/** One CPU's stream of random table updates. */
class Gups : public cpu::TrafficSource
{
  public:
    /**
     * @param nodes table spans the regions of CPUs [0, nodes)
     * @param bytes_per_node table bytes resident on each node
     * @param updates updates this CPU performs
     * @param seed per-CPU RNG seed
     */
    Gups(int nodes, std::uint64_t bytes_per_node,
         std::uint64_t updates, std::uint64_t seed);

    std::optional<cpu::MemOp> next() override;

    std::uint64_t updatesIssued() const { return count; }

    /** @name Checkpoint/restore: remaining updates + RNG position. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const override
    {
        s.put64(remaining);
        s.put64(count);
        std::uint64_t words[4];
        rng.stateWords(words);
        for (std::uint64_t w : words)
            s.put64(w);
    }

    void
    restoreCkpt(ckpt::Deserializer &d) override
    {
        remaining = d.get64();
        count = d.get64();
        std::uint64_t words[4];
        for (std::uint64_t &w : words)
            w = d.get64();
        if (d.ok())
            rng.setStateWords(words);
    }
    /// @}

  private:
    int nodes;
    std::uint64_t bytesPerNode;
    std::uint64_t remaining;
    std::uint64_t count = 0;
    Rng rng;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_GUPS_HH

/**
 * @file
 * Dependent-load chain: the lmbench lat_mem_rd pattern behind the
 * paper's Figures 4, 5, 12, 13 and 14.
 *
 * Every load depends on the previous one (load-to-use latency), the
 * dataset size selects the level of the hierarchy being measured,
 * and the stride selects open-page vs closed-page DRAM behaviour
 * (Figure 5). Remote variants chase a chain homed on another node
 * (Figures 12-14).
 */

#ifndef GS_WORKLOAD_POINTER_CHASE_HH
#define GS_WORKLOAD_POINTER_CHASE_HH

#include "cpu/traffic.hh"

namespace gs::wl
{

/** Serialized loads over [base, base+dataset) at a fixed stride. */
class PointerChase : public cpu::TrafficSource
{
  public:
    /**
     * @param base first byte of the region to chase
     * @param dataset_bytes region size; the chase wraps inside it
     * @param stride_bytes distance between consecutive loads
     * @param loads how many dependent loads to issue
     */
    PointerChase(mem::Addr base, std::uint64_t dataset_bytes,
                 std::uint64_t stride_bytes, std::uint64_t loads);

    std::optional<cpu::MemOp> next() override;

    /** Loads issued so far. */
    std::uint64_t issued() const { return count; }

    /** @name Checkpoint/restore: chase position. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const override
    {
        s.put64(remaining);
        s.put64(count);
        s.put64(offset);
    }

    void
    restoreCkpt(ckpt::Deserializer &d) override
    {
        remaining = d.get64();
        count = d.get64();
        offset = d.get64();
    }
    /// @}

  private:
    mem::Addr base;
    std::uint64_t dataset;
    std::uint64_t stride;
    std::uint64_t remaining;
    std::uint64_t count = 0;
    std::uint64_t offset = 0;
};

} // namespace gs::wl

#endif // GS_WORKLOAD_POINTER_CHASE_HH

#include "workload/profile_traffic.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gs::wl
{

ProfileTraffic::ProfileTraffic(const cpu::BenchProfile &profile,
                               mem::Addr base, double clock_ghz,
                               std::uint64_t blocks)
    : clockGHz(clock_ghz),
      thinkNsPerBlock(1000.0 * profile.cpiBase / clock_ghz),
      blocksLeft(blocks)
{
    gs_assert(clock_ghz > 0 && blocks > 0);

    mem::Addr cursor = base;
    for (const auto &ws : profile.workingSet) {
        Component c;
        c.base = cursor;
        c.lines = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(ws.sizeMB * 1024 * 1024) /
                   mem::lineBytes);
        // Fractional miss densities accumulate across blocks via
        // rounding: quantize to at least one access per block when
        // the density is >= 0.5/1k, else thin by skipping blocks.
        c.opsPerBlock =
            std::max(1, static_cast<int>(std::lround(ws.missPer1k)));
        comps.push_back(c);
        cursor += c.lines * mem::lineBytes;
    }
    gs_assert(!comps.empty(), "profile has no working set");
}

std::optional<cpu::MemOp>
ProfileTraffic::next()
{
    if (blocksLeft == 0)
        return std::nullopt;

    Component &c = comps[compIdx];
    cpu::MemOp op;
    op.addr = c.base + (c.cursor % c.lines) * mem::lineBytes;
    op.write = (c.cursor & 3) == 3; // ~1/4 of misses dirty lines
    c.cursor += 1;

    if (!blockStarted) {
        // The block's core compute rides in front of its first miss.
        op.thinkNs = thinkNsPerBlock;
        blockStarted = true;
    }

    opInComp += 1;
    if (opInComp >= c.opsPerBlock) {
        opInComp = 0;
        compIdx += 1;
        if (compIdx >= comps.size()) {
            compIdx = 0;
            blockStarted = false;
            blocksDone += 1;
            blocksLeft -= 1;
        }
    }
    return op;
}

} // namespace gs::wl

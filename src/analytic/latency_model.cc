#include "analytic/latency_model.hh"

#include <limits>

#include "sim/logging.hh"
#include "topology/topology.hh"

namespace gs::analytic
{

double
meanHopsWithSelf(const topo::Topology &topo)
{
    const int cpus = topo.numCpuNodes();
    gs_assert(cpus > 0);
    double sum = 0;
    for (NodeId src = 0; src < cpus; ++src) {
        auto dist = topo.distancesFrom(src);
        for (NodeId dst = 0; dst < cpus; ++dst)
            sum += dist[static_cast<std::size_t>(dst)];
    }
    return sum / (static_cast<double>(cpus) * static_cast<double>(cpus));
}

double
avgIdleLatencyNs(const topo::Topology &topo, double local_ns,
                 double per_hop_ns)
{
    return local_ns + per_hop_ns * meanHopsWithSelf(topo);
}

double
gs320AvgLatencyNs(int cpus, int per_qbb, double local_ns,
                  double remote_ns)
{
    gs_assert(cpus >= 1 && per_qbb >= 1);
    if (cpus <= per_qbb)
        return local_ns;
    double local_frac = static_cast<double>(per_qbb) / cpus;
    return local_frac * local_ns + (1.0 - local_frac) * remote_ns;
}

double
mm1LatencyNs(double service_ns, double rho)
{
    if (rho >= 1.0)
        return std::numeric_limits<double>::infinity();
    return service_ns / (1.0 - rho);
}

} // namespace gs::analytic

#include "analytic/shuffle_model.hh"

#include "sim/logging.hh"
#include "topology/shuffle.hh"
#include "topology/torus.hh"

namespace gs::analytic
{

int
torusBisection(int w, int h)
{
    // Cutting the larger dimension in half severs two links per ring
    // (the direct edge at the cut and the wraparound), i.e. 2 links
    // per row/column. A dimension of size 2 contributes its two
    // parallel links, so the formula holds there as well.
    int xCut = 2 * h; // cut through the X dimension
    int yCut = 2 * w;
    return std::min(xCut, yCut);
}

int
shuffleBisection(int w, int h)
{
    // The X cut gains every shuffle link: endpoints sit exactly W/2
    // columns apart, so each of the W rewired links crosses any
    // balanced column cut. The Y cut is unchanged: per column, one
    // direct link at the cut plus one (now shuffled) top-to-bottom
    // link still cross.
    int xCut = 2 * h + w;
    int yCut = 2 * w;
    return std::min(xCut, yCut);
}

ShuffleGains
evaluateShuffle(int w, int h)
{
    topo::Torus2D torus(w, h);
    topo::ShuffleTorus shuffle(w, h, topo::ShufflePolicy::Free);

    ShuffleGains g;
    g.width = w;
    g.height = h;
    g.torusAvg = torus.averageDistance();
    g.shuffleAvg = shuffle.averageDistance();
    g.torusWorst = torus.worstDistance();
    g.shuffleWorst = shuffle.worstDistance();
    g.torusBisection = torusBisection(w, h);
    g.shuffleBisection = shuffleBisection(w, h);

    gs_assert(g.shuffleAvg > 0 && g.shuffleWorst > 0);
    g.avgLatencyGain = g.torusAvg / g.shuffleAvg;
    g.worstLatencyGain =
        static_cast<double>(g.torusWorst) / g.shuffleWorst;
    g.bisectionGain =
        static_cast<double>(g.shuffleBisection) / g.torusBisection;
    return g;
}

std::vector<ShuffleGains>
table1()
{
    std::vector<ShuffleGains> rows;
    for (auto [w, h] : {std::pair{4, 2}, {4, 4}, {8, 4}, {8, 8},
                        {16, 8}, {16, 16}}) {
        rows.push_back(evaluateShuffle(w, h));
    }
    return rows;
}

} // namespace gs::analytic

/**
 * @file
 * Closed-form cross-check for the Figure 15 load test: a
 * closed-network (machine-repairman style) model of N CPUs, each
 * keeping up to W reads outstanding against a fabric whose
 * saturation bandwidth is B bytes/ns with unloaded latency L ns.
 *
 * With total outstanding K = N*W, Little's law bounds throughput by
 * both the latency path and the saturation bandwidth:
 *
 *     X = min(K * bytes / (L + q), B)
 *
 * where q is the queueing delay that builds once X approaches B.
 * The fixed point (asymptotic bounds analysis) gives the familiar
 * two-regime curve: linear in K below saturation, flat at B above
 * it, with latency = K * bytes / X once saturated.
 *
 * The simulator's Figure 15 curves should straddle this model below
 * saturation and approach its asymptotes above it.
 */

#ifndef GS_ANALYTIC_LOADTEST_MODEL_HH
#define GS_ANALYTIC_LOADTEST_MODEL_HH

namespace gs::analytic
{

/** Model inputs. */
struct LoadModelParams
{
    int cpus = 16;
    double unloadedLatencyNs = 200; ///< Figure 14's idle average
    double bytesPerRequest = 64;
    double saturationGBs = 50; ///< fabric + memory ceiling
};

/** Model outputs for one outstanding-count point. */
struct LoadModelPoint
{
    double outstanding = 0;  ///< per CPU
    double bandwidthGBs = 0; ///< delivered
    double latencyNs = 0;    ///< observed per request
};

/**
 * Evaluate the asymptotic-bounds point at @p per_cpu_outstanding.
 */
LoadModelPoint evaluateLoadPoint(const LoadModelParams &p,
                                 double per_cpu_outstanding);

/** The saturation knee: outstanding per CPU where the bounds meet. */
double saturationOutstanding(const LoadModelParams &p);

} // namespace gs::analytic

#endif // GS_ANALYTIC_LOADTEST_MODEL_HH

/**
 * @file
 * Closed-form latency models used to sanity-check the simulator and
 * to extend Figure 14 (average load-to-use latency vs CPU count)
 * beyond the sizes we simulate flit-by-flit.
 *
 * GS1280: latency(src, dst) = local + perHop * hops(src, dst); the
 * average is taken over all ordered (src, dst) pairs including the
 * local case, matching the "average" row of Figure 12.
 *
 * GS320: two-level model — a fixed local (within-QBB) latency for
 * the requester's own QBB and a fixed remote latency elsewhere.
 *
 * The module also provides an M/M/1-style latency-under-offered-load
 * curve used as a qualitative cross-check of the Figure 15 load test.
 */

#ifndef GS_ANALYTIC_LATENCY_MODEL_HH
#define GS_ANALYTIC_LATENCY_MODEL_HH

namespace gs::topo
{
class Topology;
}

namespace gs::analytic
{

/** Mean hop count over all ordered CPU pairs, self pairs included. */
double meanHopsWithSelf(const topo::Topology &topo);

/**
 * Average load-to-use latency (ns) on an idle hop-based machine.
 *
 * @param topo the interconnect
 * @param local_ns latency of a local access (83 ns on the GS1280)
 * @param per_hop_ns added round-trip cost of one extra hop
 */
double avgIdleLatencyNs(const topo::Topology &topo, double local_ns,
                        double per_hop_ns);

/**
 * Average load-to-use latency (ns) of the two-level GS320 model.
 *
 * @param cpus total CPUs
 * @param per_qbb CPUs per QBB (4)
 * @param local_ns within-QBB latency
 * @param remote_ns cross-QBB latency
 */
double gs320AvgLatencyNs(int cpus, int per_qbb, double local_ns,
                         double remote_ns);

/**
 * Open-queue (M/M/1) response time at offered utilization @p rho of
 * a server with service time @p service_ns: service / (1 - rho).
 * Returns +inf at or past saturation.
 */
double mm1LatencyNs(double service_ns, double rho);

} // namespace gs::analytic

#endif // GS_ANALYTIC_LATENCY_MODEL_HH

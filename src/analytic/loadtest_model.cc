#include "analytic/loadtest_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gs::analytic
{

LoadModelPoint
evaluateLoadPoint(const LoadModelParams &p, double per_cpu_outstanding)
{
    gs_assert(p.cpus > 0 && p.unloadedLatencyNs > 0 &&
              p.saturationGBs > 0 && per_cpu_outstanding > 0);

    const double k = p.cpus * per_cpu_outstanding; // population
    // Asymptotic bounds: latency-limited below the knee,
    // bandwidth-limited above it.
    const double latencyLimited =
        k * p.bytesPerRequest / p.unloadedLatencyNs; // GB/s
    LoadModelPoint out;
    out.outstanding = per_cpu_outstanding;
    out.bandwidthGBs = std::min(latencyLimited, p.saturationGBs);
    // Little's law gives the observed latency at the achieved rate.
    out.latencyNs = k * p.bytesPerRequest / out.bandwidthGBs;
    return out;
}

double
saturationOutstanding(const LoadModelParams &p)
{
    // k* where latency-limited throughput meets the ceiling.
    double kStar = p.saturationGBs * p.unloadedLatencyNs /
                   p.bytesPerRequest;
    return kStar / p.cpus;
}

} // namespace gs::analytic

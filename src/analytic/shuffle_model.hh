/**
 * @file
 * The "simple analytical model" behind Table 1 of the paper:
 * performance gains of the shuffle rewiring over the plain torus in
 * average latency, worst-case latency and bisection width, for
 * interconnects from 4x2 up to 16x16.
 *
 * Latency gains are hop-count ratios over all source/destination
 * pairs (computed from the topology graphs); bisection width is the
 * minimum of the two balanced dimension cuts, counting every
 * bidirectional link crossing the cut.
 */

#ifndef GS_ANALYTIC_SHUFFLE_MODEL_HH
#define GS_ANALYTIC_SHUFFLE_MODEL_HH

#include <vector>

namespace gs::analytic
{

/** One row of Table 1. */
struct ShuffleGains
{
    int width = 0;
    int height = 0;
    double avgLatencyGain = 0;   ///< torus avg hops / shuffle avg hops
    double worstLatencyGain = 0; ///< torus diameter / shuffle diameter
    double bisectionGain = 0;    ///< shuffle bisection / torus bisection

    // Underlying absolute values, for inspection.
    double torusAvg = 0, shuffleAvg = 0;
    int torusWorst = 0, shuffleWorst = 0;
    int torusBisection = 0, shuffleBisection = 0;
};

/** Bisection width (links crossing the best balanced cut) of a
 *  W x H torus. */
int torusBisection(int w, int h);

/** Bisection width of the shuffled W x H torus. */
int shuffleBisection(int w, int h);

/** Evaluate the model for one interconnect size. */
ShuffleGains evaluateShuffle(int w, int h);

/** The six sizes of Table 1: 4x2, 4x4, 8x4, 8x8, 16x8, 16x16. */
std::vector<ShuffleGains> table1();

} // namespace gs::analytic

#endif // GS_ANALYTIC_SHUFFLE_MODEL_HH

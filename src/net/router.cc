#include "net/router.hh"

#include <algorithm>

#include "net/network.hh"
#include "sim/logging.hh"

namespace gs::net
{

Router::Router(Network &network, NodeId node) : net(network), id(node)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    const int ports = topo.numPorts(id);

    vcQ.resize(static_cast<std::size_t>(ports) * numVcs);
    vcState.resize(static_cast<std::size_t>(ports) * numVcs);
    rrVc.assign(static_cast<std::size_t>(ports), 0);
    outputs.resize(static_cast<std::size_t>(ports));

    for (int p = 0; p < ports; ++p) {
        auto &out = outputs[static_cast<std::size_t>(p)];
        topo::Port link = topo.port(id, p);
        out.connected = link.connected();
        if (!out.connected)
            continue;
        out.wireCycles = prm.wireCycles(link.kind);
        for (int vc = 0; vc < numVcs; ++vc) {
            out.credits[static_cast<std::size_t>(vc)] =
                vc % vcSubCount == vcAdaptive ? prm.adaptiveVcFlits
                                              : prm.escapeVcFlits;
        }
    }

    gs_assert(prm.escapeVcFlits >= dataFlits &&
                  prm.adaptiveVcFlits >= dataFlits,
              "VC buffers must hold a whole data packet (cut-through)");
}

void
Router::receive(int in_port, int vc, PacketHandle h)
{
    Packet &pkt = net.poolOf(id).get(h);
    auto &st = vcState[slot(in_port, vc)];
    pkt.hops += 1;
    // Latency x-ray: link transit ends here; buffered time counts as
    // VC-arbitration wait. At the destination the packet keeps
    // accumulating Link until the node takes delivery (ejection and
    // the local hop fold into Link). Reply-path spans (phase 1)
    // attribute their whole return to Reply, so only phase 0 hooks.
    if (pkt.span.id != 0 && pkt.span.phase == 0 && pkt.dst != id)
        pkt.span.advance(net.ctxOf(id).now(), trace::VcWait);
    st.flitsUsed += pkt.flits;
    st.recvFlits += static_cast<std::uint64_t>(pkt.flits);
    vcQ[slot(in_port, vc)].push(h);
    buffered += 1;
    net.activate(id);
}

void
Router::creditReturn(int out_port, int vc, int flits)
{
    auto &out = outputs[static_cast<std::size_t>(out_port)];
    auto &credits = out.credits[static_cast<std::size_t>(vc)];
    credits += flits;
    // A credit that was on the wire across a link repair arrives on
    // top of the resynced count; clamp rather than overflow the
    // downstream buffer. Healthy fabrics never hit this.
    if (net.degraded() && credits > vcCapacity(vc))
        credits = vcCapacity(vc);
    net.activate(id);
}

int
Router::vcCapacity(int vc) const
{
    const auto &prm = net.params();
    return vc % vcSubCount == vcAdaptive ? prm.adaptiveVcFlits
                                         : prm.escapeVcFlits;
}

void
Router::syncPorts()
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    for (std::size_t p = 0; p < outputs.size(); ++p) {
        auto &out = outputs[p];
        topo::Port link = topo.port(id, static_cast<int>(p));
        if (out.connected == link.connected())
            continue;
        out.connected = link.connected();
        if (!out.connected)
            continue;
        // Reconnected (repair, or the peer router came back): the
        // peer's input buffers kept their contents, so our credit
        // view restarts at capacity minus what is still buffered
        // there. busyUntil is stale by at most one transfer.
        out.wireCycles = prm.wireCycles(link.kind);
        out.busyUntil = 0;
        const Router &peer = net.router(link.peer);
        for (int vc = 0; vc < numVcs; ++vc) {
            out.credits[static_cast<std::size_t>(vc)] =
                vcCapacity(vc) - peer.vcOccupancy(link.peerPort, vc);
        }
    }
}

void
Router::flushAll()
{
    const int ports = static_cast<int>(outputs.size());
    for (int p = 0; p < ports; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            auto &q = vcQ[slot(p, vc)];
            while (!q.empty()) {
                PacketHandle h = popHead(p, vc);
                net.dropPacket(id, h, "node-failure");
            }
        }
    }
    for (auto &q : injQs) {
        while (!q.empty()) {
            net.dropPacket(id, q.front(), "node-failure");
            q.pop();
            injWaiting -= 1;
        }
    }
}

void
Router::registerTelemetry(telem::Registry &reg,
                          const std::string &prefix,
                          const std::function<std::string(int)>
                              &port_name)
{
    for (std::size_t p = 0; p < outputs.size(); ++p) {
        if (!outputs[p].connected)
            continue;
        const std::string pp =
            telem::path(prefix, "port", port_name(static_cast<int>(p)));
        reg.addCounter(pp + ".flits", outputs[p].sentFlits);
        reg.addCounter(pp + ".packets", outputs[p].sentPackets);
        reg.addGauge(pp + ".busy_frac", [this, p] {
            Tick now = net.ctxOf(id).now();
            if (now <= statsWindowStart)
                return 0.0;
            double f = static_cast<double>(outputs[p].sentFlits) *
                       static_cast<double>(net.period()) /
                       static_cast<double>(now - statsWindowStart);
            return std::min(f, 1.0);
        });
        // Input-side VC stats of the same port (the buffers facing
        // the neighbour this port points at).
        for (int vc = 0; vc < numVcs; ++vc) {
            const auto &st = vcState[slot(static_cast<int>(p), vc)];
            const std::string vp = telem::path(pp, "vc", vc);
            reg.addCounter(vp + ".flits", st.recvFlits);
            reg.addCounter(vp + ".stalls", st.creditStalls);
        }
    }
    for (int cls = 0; cls < numClasses; ++cls) {
        const std::string cp = telem::path(
            prefix, "inj", msgClassName(static_cast<MsgClass>(cls)));
        reg.addCounter(cp + ".stalls",
                       injStalls[static_cast<std::size_t>(cls)]);
        reg.addGauge(cp + ".depth", [this, cls] {
            return static_cast<double>(
                injQs[static_cast<std::size_t>(cls)].size());
        });
    }
}

void
Router::clearStats(Tick now)
{
    for (auto &st : vcState) {
        st.recvFlits = 0;
        st.creditStalls = 0;
    }
    for (auto &out : outputs) {
        out.sentFlits = 0;
        out.sentPackets = 0;
    }
    injStalls.fill(0);
    statsWindowStart = now;
}

bool
Router::oldestBuffered(Packet &out) const
{
    const PacketPool &pool = net.poolOf(id);
    bool found = false;
    auto consider = [&](PacketHandle h) {
        const Packet &pkt = pool.get(h);
        if (!found || pkt.injected < out.injected) {
            out = pkt;
            found = true;
        }
    };
    for (const auto &q : vcQ)
        for (PacketHandle h : q)
            consider(h);
    for (const auto &q : injQs)
        for (PacketHandle h : q)
            consider(h);
    return found;
}

void
Router::inject(PacketHandle h)
{
    const Packet &pkt = net.poolOf(id).get(h);
    injQs[static_cast<std::size_t>(pkt.cls)].push(h);
    injWaiting += 1;
    net.activate(id);
}

bool
Router::chooseRoute(const Packet &pkt, Route &route,
                    bool &unroutable) const
{
    const auto &topo = net.topology();

    // Adaptive first: pick the minimal direction with the most free
    // downstream credits ("a message can choose the less congested
    // minimal path").
    if (net.params().adaptiveEnabled && mayAdapt(pkt.cls)) {
        int vc = vcIndex(pkt.cls, vcAdaptive);
        int bestPort = -1, bestCredits = -1;
        for (int p : topo.adaptivePorts(id, pkt.dst, pkt.hops)) {
            const auto &out = outputs[static_cast<std::size_t>(p)];
            int credits = out.credits[static_cast<std::size_t>(vc)];
            if (credits >= pkt.flits && credits > bestCredits) {
                bestCredits = credits;
                bestPort = p;
            }
        }
        if (bestPort >= 0) {
            route = Route{bestPort, vc};
            return true;
        }
    }

    // Escape: the deadlock-free channel is always routable; it may
    // just lack credits right now, in which case the packet waits.
    topo::EscapeHop esc = topo.escapeRoute(id, pkt.dst, 0);
    if (esc.port < 0) {
        // Only a degraded fabric may legitimately lose every route
        // to a destination; anywhere else it is a simulator bug.
        gs_assert(net.degraded(), "escape route missing at node ", id,
                  " for dst ", pkt.dst);
        unroutable = true;
        return false;
    }
    int vc = vcIndex(pkt.cls, esc.vc == 0 ? vcEscape0 : vcEscape1);
    const auto &out = outputs[static_cast<std::size_t>(esc.port)];
    if (out.credits[static_cast<std::size_t>(vc)] >= pkt.flits) {
        route = Route{esc.port, vc};
        return true;
    }
    return false;
}

PacketHandle
Router::popHead(int in_port, int vc)
{
    auto &q = vcQ[slot(in_port, vc)];
    gs_assert(!q.empty());
    PacketHandle h = q.front();
    q.pop();
    int flits = net.poolOf(id).get(h).flits;
    vcState[slot(in_port, vc)].flitsUsed -= flits;
    buffered -= 1;
    // Freed buffer space becomes a credit at our upstream neighbour.
    net.scheduleCredit(id, in_port, vc, flits);
    return h;
}

void
Router::ejectPass(Tick now)
{
    (void)now;
    const PacketPool &pool = net.poolOf(id);
    const int ports = static_cast<int>(outputs.size());
    for (int p = 0; p < ports; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            auto &q = vcQ[slot(p, vc)];
            while (!q.empty() && pool.get(q.front()).dst == id) {
                PacketHandle h = popHead(p, vc);
                net.deliverLocal(id, h);
            }
        }
    }
}

void
Router::nominate(Tick now)
{
    noms.clear();
    PacketPool &pool = net.poolOf(id);

    // Network input ports: one nominee each, round-robin over VCs.
    // Heads whose destination lost every route (degraded fabric) are
    // dropped on the spot: waiting cannot bring the route back.
    const int ports = static_cast<int>(outputs.size());
    for (int p = 0; p < ports; ++p) {
        for (int k = 0; k < numVcs; ++k) {
            int vc = (rrVc[static_cast<std::size_t>(p)] + k) % numVcs;
            auto &q = vcQ[slot(p, vc)];
            Route route;
            bool nominated = false;
            while (!q.empty()) {
                bool unroutable = false;
                if (chooseRoute(pool.get(q.front()), route,
                                unroutable)) {
                    nominated = true;
                    break;
                }
                if (!unroutable) {
                    vcState[slot(p, vc)].creditStalls += 1;
                    break;
                }
                PacketHandle h = popHead(p, vc);
                net.dropPacket(id, h, "unroutable");
            }
            if (!nominated)
                continue;
            if (outputs[static_cast<std::size_t>(route.outPort)].busyUntil
                > now)
                continue;
            noms.push_back(Nominee{p, vc, route});
            rrVc[static_cast<std::size_t>(p)] = (vc + 1) % numVcs;
            break;
        }
    }

    // Injection: one nominee, round-robin over message classes.
    for (int k = 0; k < numClasses; ++k) {
        int cls = (injRrClass + k) % numClasses;
        auto &q = injQs[static_cast<std::size_t>(cls)];
        Route route;
        bool nominated = false;
        while (!q.empty()) {
            bool unroutable = false;
            if (chooseRoute(pool.get(q.front()), route, unroutable)) {
                nominated = true;
                break;
            }
            if (!unroutable) {
                injStalls[static_cast<std::size_t>(cls)] += 1;
                break;
            }
            net.dropPacket(id, q.front(), "unroutable");
            q.pop();
            injWaiting -= 1;
        }
        if (!nominated)
            continue;
        if (outputs[static_cast<std::size_t>(route.outPort)].busyUntil
            > now)
            continue;
        noms.push_back(Nominee{-1, cls, route});
        injRrClass = (cls + 1) % numClasses;
        break;
    }
}

void
Router::grant(Tick now)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    PacketPool &pool = net.poolOf(id);
    const int srcSlots = static_cast<int>(outputs.size()) + 1;

    for (std::size_t o = 0; o < outputs.size(); ++o) {
        auto &out = outputs[o];
        if (!out.connected || out.busyUntil > now)
            continue;

        // Global arbiter: round-robin over nominating sources
        // (network inputs 0..P-1, injection as slot P).
        const Nominee *winner = nullptr;
        int bestRank = srcSlots;
        for (const auto &nom : noms) {
            if (nom.route.outPort != static_cast<int>(o))
                continue;
            int src = nom.inPort < 0 ? srcSlots - 1 : nom.inPort;
            int rank = (src - out.rrSrc + srcSlots) % srcSlots;
            if (rank < bestRank) {
                bestRank = rank;
                winner = &nom;
            }
        }
        if (!winner)
            continue;

        PacketHandle h;
        if (winner->inPort < 0) {
            auto &q = injQs[static_cast<std::size_t>(winner->vc)];
            h = q.front();
            q.pop();
            injWaiting -= 1;
        } else {
            h = popHead(winner->inPort, winner->vc);
        }
        Packet &pkt = pool.get(h);

        // Latency x-ray: the grant closes the injection wait (source
        // router) or the VC wait (intermediate hop); the packet is on
        // the link from here.
        if (pkt.span.id != 0 && pkt.span.phase == 0)
            pkt.span.advance(now, trace::Link);

        int vc = winner->route.outVc;
        out.credits[static_cast<std::size_t>(vc)] -= pkt.flits;
        gs_assert(out.credits[static_cast<std::size_t>(vc)] >= 0,
                  "credit underflow at node ", id, " port ", o);
        out.busyUntil = now + static_cast<Tick>(pkt.flits) * net.period();
        out.sentFlits += static_cast<std::uint64_t>(pkt.flits);
        out.sentPackets += 1;
        out.rrSrc = ((winner->inPort < 0 ? srcSlots - 1 : winner->inPort)
                     + 1) % srcSlots;

        net.countLinkFlits(id, static_cast<int>(o), pkt.flits);

        topo::Port link = topo.port(id, static_cast<int>(o));
        // Cut-through: the header is routable downstream after the
        // pipeline + wire + header cycles; the body streams behind
        // it at link rate (the link stays busy for the full length,
        // and ejection waits for the tail). Store-and-forward (the
        // ablation) waits for the whole packet at every hop.
        int delay = prm.pipelineCycles + out.wireCycles +
                    (prm.cutThrough ? std::min(pkt.flits, headerFlits)
                                    : pkt.flits);
        net.scheduleArrival(id, link.peer, link.peerPort, vc, h, delay);
    }
}

void
Router::tick(Tick now)
{
    if (idle())
        return;
    ejectPass(now);
    if (buffered == 0 && injWaiting == 0)
        return;
    nominate(now);
    if (!noms.empty())
        grant(now);
}

} // namespace gs::net

#include "net/router.hh"

#include <algorithm>

#include "net/network.hh"
#include "sim/logging.hh"

namespace gs::net
{

Router::Router(Network &network, NodeId node)
    : net(network), id(node), core(&network.routerCore())
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    const RouterCore::NodeRef &ref = core->ref(id);
    pb = ref.portBase;
    sb = ref.slotBase;
    nPorts = static_cast<int>(ref.ports);
    kind_ = prm.routerKind;

    vcQ.resize(static_cast<std::size_t>(nPorts) * numVcs);

    for (int p = 0; p < nPorts; ++p) {
        topo::Port link = topo.port(id, p);
        core->connected[pidx(p)] = link.connected() ? 1 : 0;
        if (!link.connected())
            continue;
        core->wireCycles[pidx(p)] = prm.wireCycles(link.kind);
        for (int vc = 0; vc < numVcs; ++vc)
            core->credits[sidx(p, vc)] = vcCapacity(vc);
    }

    if (kind_ == RouterKind::Buffered) {
        gs_assert(prm.escapeVcFlits >= dataFlits &&
                      prm.adaptiveVcFlits >= dataFlits,
                  "VC buffers must hold a whole data packet "
                  "(cut-through)");
    }
}

void
Router::receive(int in_port, int vc, PacketHandle h)
{
    Packet &pkt = net.poolOf(id).get(h);
    pkt.hops += 1;
    // Latency x-ray: link transit ends here; buffered time counts as
    // VC-arbitration wait. At the destination the packet keeps
    // accumulating Link until the node takes delivery (ejection and
    // the local hop fold into Link). Reply-path spans (phase 1)
    // attribute their whole return to Reply, so only phase 0 hooks.
    if (pkt.span.id != 0 && pkt.span.phase == 0 && pkt.dst != id)
        pkt.span.advance(net.ctxOf(id).now(), trace::VcWait);
    if (kind_ == RouterKind::Bufferless) {
        // Credit flow control guarantees the latch was free: the
        // upstream only grants with a latch credit in hand.
        gs_assert(vc == 0 && vcQ[slot(in_port, vc)].empty(),
                  "bufferless latch overrun at node ", id, " port ",
                  in_port);
    }
    core->flitsUsed[sidx(in_port, vc)] += pkt.flits;
    core->recvFlits[sidx(in_port, vc)] +=
        static_cast<std::uint64_t>(pkt.flits);
    vcQ[slot(in_port, vc)].push(h);
    buffered += 1;
    net.activate(id);
}

void
Router::creditReturn(int out_port, int vc, int flits)
{
    auto &credits = core->credits[sidx(out_port, vc)];
    credits += flits;
    // A credit that was on the wire across a link repair arrives on
    // top of the resynced count; clamp rather than overflow the
    // downstream buffer. Healthy fabrics never hit this.
    if (net.degraded() && credits > vcCapacity(vc))
        credits = vcCapacity(vc);
    net.activate(id);
}

int
Router::vcCapacity(int vc) const
{
    if (kind_ == RouterKind::Bufferless)
        return vc == 0 ? 1 : 0;
    const auto &prm = net.params();
    return vc % vcSubCount == vcAdaptive ? prm.adaptiveVcFlits
                                         : prm.escapeVcFlits;
}

void
Router::syncPorts()
{
    gs_assert(kind_ == RouterKind::Buffered,
              "fault injection requires the buffered router backend");
    const auto &topo = net.topology();
    const auto &prm = net.params();
    for (int p = 0; p < nPorts; ++p) {
        topo::Port link = topo.port(id, p);
        const bool wasConnected = core->connected[pidx(p)] != 0;
        if (wasConnected == link.connected())
            continue;
        core->connected[pidx(p)] = link.connected() ? 1 : 0;
        if (!link.connected())
            continue;
        // Reconnected (repair, or the peer router came back): the
        // peer's input buffers kept their contents, so our credit
        // view restarts at capacity minus what is still buffered
        // there. busyUntil is stale by at most one transfer.
        core->wireCycles[pidx(p)] = prm.wireCycles(link.kind);
        core->busyUntil[pidx(p)] = 0;
        const Router &peer = net.router(link.peer);
        for (int vc = 0; vc < numVcs; ++vc) {
            core->credits[sidx(p, vc)] =
                vcCapacity(vc) - peer.vcOccupancy(link.peerPort, vc);
        }
    }
}

void
Router::flushAll()
{
    for (int p = 0; p < nPorts; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            auto &q = vcQ[slot(p, vc)];
            while (!q.empty()) {
                PacketHandle h = popHead(p, vc);
                net.dropPacket(id, h, "node-failure");
            }
        }
    }
    for (PacketHandle h : sideQ_) {
        net.dropPacket(id, h, "node-failure");
        buffered -= 1;
    }
    sideQ_.clear();
    for (auto &q : injQs) {
        while (!q.empty()) {
            net.dropPacket(id, q.front(), "node-failure");
            q.pop();
            injWaiting -= 1;
        }
    }
}

void
Router::registerTelemetry(telem::Registry &reg,
                          const std::string &prefix,
                          const std::function<std::string(int)>
                              &port_name)
{
    for (int p = 0; p < nPorts; ++p) {
        if (!core->connected[pidx(p)])
            continue;
        const std::string pp =
            telem::path(prefix, "port", port_name(p));
        reg.addCounter(pp + ".flits", core->sentFlits[pidx(p)]);
        reg.addCounter(pp + ".packets", core->sentPackets[pidx(p)]);
        reg.addGauge(pp + ".busy_frac", [this, p] {
            Tick now = net.ctxOf(id).now();
            if (now <= statsWindowStart)
                return 0.0;
            double f = static_cast<double>(core->sentFlits[pidx(p)]) *
                       static_cast<double>(net.period()) /
                       static_cast<double>(now - statsWindowStart);
            return std::min(f, 1.0);
        });
        // Input-side VC stats of the same port (the buffers facing
        // the neighbour this port points at).
        for (int vc = 0; vc < numVcs; ++vc) {
            const std::string vp = telem::path(pp, "vc", vc);
            reg.addCounter(vp + ".flits", core->recvFlits[sidx(p, vc)]);
            reg.addCounter(vp + ".stalls",
                           core->creditStalls[sidx(p, vc)]);
        }
    }
    for (int cls = 0; cls < numClasses; ++cls) {
        const std::string cp = telem::path(
            prefix, "inj", msgClassName(static_cast<MsgClass>(cls)));
        reg.addCounter(cp + ".stalls",
                       injStalls[static_cast<std::size_t>(cls)]);
        reg.addGauge(cp + ".depth", [this, cls] {
            return static_cast<double>(
                injQs[static_cast<std::size_t>(cls)].size());
        });
    }
}

void
Router::clearStats(Tick now)
{
    for (int p = 0; p < nPorts; ++p) {
        core->sentFlits[pidx(p)] = 0;
        core->sentPackets[pidx(p)] = 0;
        for (int vc = 0; vc < numVcs; ++vc) {
            core->recvFlits[sidx(p, vc)] = 0;
            core->creditStalls[sidx(p, vc)] = 0;
        }
    }
    injStalls.fill(0);
    deflections_ = 0;
    latchStalls_ = 0;
    retreats_ = 0;
    statsWindowStart = now;
}

bool
Router::oldestBuffered(Packet &out) const
{
    const PacketPool &pool = net.poolOf(id);
    bool found = false;
    auto consider = [&](PacketHandle h) {
        const Packet &pkt = pool.get(h);
        if (!found || pkt.injected < out.injected) {
            out = pkt;
            found = true;
        }
    };
    for (const auto &q : vcQ)
        for (PacketHandle h : q)
            consider(h);
    for (PacketHandle h : sideQ_)
        consider(h);
    for (const auto &q : injQs)
        for (PacketHandle h : q)
            consider(h);
    return found;
}

void
Router::inject(PacketHandle h)
{
    const Packet &pkt = net.poolOf(id).get(h);
    injQs[static_cast<std::size_t>(pkt.cls)].push(h);
    injWaiting += 1;
    net.activate(id);
}

bool
Router::chooseRoute(const Packet &pkt, Route &route,
                    bool &unroutable) const
{
    const auto &topo = net.topology();

    // Adaptive first: pick the minimal direction with the most free
    // downstream credits ("a message can choose the less congested
    // minimal path").
    if (net.params().adaptiveEnabled && mayAdapt(pkt.cls)) {
        int vc = vcIndex(pkt.cls, vcAdaptive);
        int bestPort = -1, bestCredits = -1;
        for (int p : topo.adaptivePorts(id, pkt.dst, pkt.hops)) {
            int credits = core->credits[sidx(p, vc)];
            if (credits >= pkt.flits && credits > bestCredits) {
                bestCredits = credits;
                bestPort = p;
            }
        }
        if (bestPort >= 0) {
            route = Route{bestPort, vc};
            return true;
        }
    }

    // Escape: the deadlock-free channel is always routable; it may
    // just lack credits right now, in which case the packet waits.
    topo::EscapeHop esc = topo.escapeRoute(id, pkt.dst, 0);
    if (esc.port < 0) {
        // Only a degraded fabric may legitimately lose every route
        // to a destination; anywhere else it is a simulator bug.
        gs_assert(net.degraded(), "escape route missing at node ", id,
                  " for dst ", pkt.dst);
        unroutable = true;
        return false;
    }
    int vc = vcIndex(pkt.cls, esc.vc == 0 ? vcEscape0 : vcEscape1);
    if (core->credits[sidx(esc.port, vc)] >= pkt.flits) {
        route = Route{esc.port, vc};
        return true;
    }
    return false;
}

PacketHandle
Router::popHead(int in_port, int vc)
{
    auto &q = vcQ[slot(in_port, vc)];
    gs_assert(!q.empty());
    PacketHandle h = q.front();
    q.pop();
    int flits = net.poolOf(id).get(h).flits;
    core->flitsUsed[sidx(in_port, vc)] -= flits;
    buffered -= 1;
    // Freed buffer space becomes a credit at our upstream neighbour:
    // flits under buffered flow control, one latch slot under
    // bufferless.
    net.scheduleCredit(id, in_port, vc,
                       kind_ == RouterKind::Bufferless ? 1 : flits);
    return h;
}

void
Router::ejectPass(Tick now)
{
    (void)now;
    const PacketPool &pool = net.poolOf(id);
    for (int p = 0; p < nPorts; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            auto &q = vcQ[slot(p, vc)];
            while (!q.empty() && pool.get(q.front()).dst == id) {
                PacketHandle h = popHead(p, vc);
                net.deliverLocal(id, h);
            }
        }
    }
}

void
Router::nominate(Tick now)
{
    noms.clear();
    PacketPool &pool = net.poolOf(id);

    // Network input ports: one nominee each, round-robin over VCs.
    // Heads whose destination lost every route (degraded fabric) are
    // dropped on the spot: waiting cannot bring the route back.
    for (int p = 0; p < nPorts; ++p) {
        for (int k = 0; k < numVcs; ++k) {
            int vc = (core->rrVc[pidx(p)] + k) % numVcs;
            auto &q = vcQ[slot(p, vc)];
            Route route;
            bool nominated = false;
            while (!q.empty()) {
                bool unroutable = false;
                if (chooseRoute(pool.get(q.front()), route,
                                unroutable)) {
                    nominated = true;
                    break;
                }
                if (!unroutable) {
                    core->creditStalls[sidx(p, vc)] += 1;
                    break;
                }
                PacketHandle h = popHead(p, vc);
                net.dropPacket(id, h, "unroutable");
            }
            if (!nominated)
                continue;
            if (core->busyUntil[pidx(route.outPort)] > now)
                continue;
            noms.push_back(Nominee{p, vc, route});
            core->rrVc[pidx(p)] = (vc + 1) % numVcs;
            break;
        }
    }

    // Injection: one nominee, round-robin over message classes.
    for (int k = 0; k < numClasses; ++k) {
        int cls = (injRrClass + k) % numClasses;
        auto &q = injQs[static_cast<std::size_t>(cls)];
        Route route;
        bool nominated = false;
        while (!q.empty()) {
            bool unroutable = false;
            if (chooseRoute(pool.get(q.front()), route, unroutable)) {
                nominated = true;
                break;
            }
            if (!unroutable) {
                injStalls[static_cast<std::size_t>(cls)] += 1;
                break;
            }
            net.dropPacket(id, q.front(), "unroutable");
            q.pop();
            injWaiting -= 1;
        }
        if (!nominated)
            continue;
        if (core->busyUntil[pidx(route.outPort)] > now)
            continue;
        noms.push_back(Nominee{-1, cls, route});
        injRrClass = (cls + 1) % numClasses;
        break;
    }
}

void
Router::grant(Tick now)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    PacketPool &pool = net.poolOf(id);
    const int srcSlots = nPorts + 1;

    for (int o = 0; o < nPorts; ++o) {
        if (!core->connected[pidx(o)] || core->busyUntil[pidx(o)] > now)
            continue;

        // Global arbiter: round-robin over nominating sources
        // (network inputs 0..P-1, injection as slot P).
        const Nominee *winner = nullptr;
        int bestRank = srcSlots;
        for (const auto &nom : noms) {
            if (nom.route.outPort != o)
                continue;
            int src = nom.inPort < 0 ? srcSlots - 1 : nom.inPort;
            int rank =
                (src - core->rrSrc[pidx(o)] + srcSlots) % srcSlots;
            if (rank < bestRank) {
                bestRank = rank;
                winner = &nom;
            }
        }
        if (!winner)
            continue;

        PacketHandle h;
        if (winner->inPort < 0) {
            auto &q = injQs[static_cast<std::size_t>(winner->vc)];
            h = q.front();
            q.pop();
            injWaiting -= 1;
        } else {
            h = popHead(winner->inPort, winner->vc);
        }
        Packet &pkt = pool.get(h);

        // Latency x-ray: the grant closes the injection wait (source
        // router) or the VC wait (intermediate hop); the packet is on
        // the link from here.
        if (pkt.span.id != 0 && pkt.span.phase == 0)
            pkt.span.advance(now, trace::Link);

        int vc = winner->route.outVc;
        core->credits[sidx(o, vc)] -= pkt.flits;
        gs_assert(core->credits[sidx(o, vc)] >= 0,
                  "credit underflow at node ", id, " port ", o);
        core->busyUntil[pidx(o)] =
            now + static_cast<Tick>(pkt.flits) * net.period();
        core->sentFlits[pidx(o)] +=
            static_cast<std::uint64_t>(pkt.flits);
        core->sentPackets[pidx(o)] += 1;
        core->rrSrc[pidx(o)] =
            ((winner->inPort < 0 ? srcSlots - 1 : winner->inPort) + 1) %
            srcSlots;

        net.countLinkFlits(id, o, pkt.flits);

        topo::Port link = topo.port(id, o);
        // Cut-through: the header is routable downstream after the
        // pipeline + wire + header cycles; the body streams behind
        // it at link rate (the link stays busy for the full length,
        // and ejection waits for the tail). Store-and-forward (the
        // ablation) waits for the whole packet at every hop.
        int delay = prm.pipelineCycles + core->wireCycles[pidx(o)] +
                    (prm.cutThrough ? std::min(pkt.flits, headerFlits)
                                    : pkt.flits);
        net.scheduleArrival(id, link.peer, link.peerPort, vc, h, delay);
    }
}

bool
Router::portFree(int port, Tick now) const
{
    return core->connected[pidx(port)] != 0 &&
           core->busyUntil[pidx(port)] <= now &&
           core->credits[sidx(port, 0)] >= 1;
}

bool
Router::creditBlocked(Tick now) const
{
    for (int p = 0; p < nPorts; ++p) {
        if (core->connected[pidx(p)] != 0 &&
            core->busyUntil[pidx(p)] <= now &&
            core->credits[sidx(p, 0)] == 0)
            return true;
    }
    return false;
}

int
Router::pickBufferlessPort(const Packet &pkt, bool allow_deflect,
                           Tick now, bool &deflected) const
{
    deflected = false;
    const auto &topo = net.topology();
    // Productive first: the lowest-indexed free minimal port. No
    // credit-count tiebreak — latch credits are 0/1, so "free" is
    // binary and the fixed index order keeps arbitration cheap and
    // deterministic.
    topo::PortSet minimal = topo.adaptivePorts(id, pkt.dst, pkt.hops);
    for (int p : minimal)
        if (portFree(p, now))
            return p;
    if (!allow_deflect)
        return -1;
    // Deflect: any free port will do; the packet pays the extra hops
    // instead of waiting for a buffer it does not have.
    for (int p = 0; p < nPorts; ++p) {
        bool isMinimal = false;
        for (int m : minimal)
            isMinimal = isMinimal || m == p;
        if (!isMinimal && portFree(p, now)) {
            deflected = true;
            return p;
        }
    }
    return -1;
}

void
Router::sendBufferless(PacketHandle h, int out_port, Tick now)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    Packet &pkt = net.poolOf(id).get(h);

    // Latency x-ray: same attribution as a buffered grant — the
    // packet leaves arbitration and goes on the link here.
    if (pkt.span.id != 0 && pkt.span.phase == 0)
        pkt.span.advance(now, trace::Link);

    auto &credit = core->credits[sidx(out_port, 0)];
    credit -= 1;
    gs_assert(credit >= 0, "latch credit underflow at node ", id,
              " port ", out_port);
    core->busyUntil[pidx(out_port)] =
        now + static_cast<Tick>(pkt.flits) * net.period();
    core->sentFlits[pidx(out_port)] +=
        static_cast<std::uint64_t>(pkt.flits);
    core->sentPackets[pidx(out_port)] += 1;

    net.countLinkFlits(id, out_port, pkt.flits);

    topo::Port link = topo.port(id, out_port);
    int delay = prm.pipelineCycles + core->wireCycles[pidx(out_port)] +
                (prm.cutThrough ? std::min(pkt.flits, headerFlits)
                                : pkt.flits);
    net.scheduleArrival(id, link.peer, link.peerPort, 0, h, delay);
}

void
Router::tickBufferless(Tick now)
{
    PacketPool &pool = net.poolOf(id);

    // Rank every resident packet — latch heads and side-buffered
    // retreats together — oldest-first: (injection tick, packet id)
    // plus a structural tie-break is a total order, identical no
    // matter which engine or thread count runs this tick. Age
    // priority is the livelock argument — the globally oldest packet
    // outranks every rival at any router it shares a tick with, so
    // it claims a minimal port whenever one is free and is never
    // displaced by younger traffic.
    ranks_.clear();
    for (int p = 0; p < nPorts; ++p) {
        auto &q = vcQ[slot(p, 0)];
        if (q.empty())
            continue;
        const Packet &pkt = pool.get(q.front());
        ranks_.push_back(LatchRank{pkt.injected, pkt.id, p, false, 0});
    }
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(sideQ_.size()); ++i) {
        const Packet &pkt = pool.get(sideQ_[i]);
        ranks_.push_back(LatchRank{pkt.injected, pkt.id, -1, true, i});
    }
    std::sort(ranks_.begin(), ranks_.end(),
              [](const LatchRank &a, const LatchRank &b) {
                  if (a.injected != b.injected)
                      return a.injected < b.injected;
                  if (a.pktId != b.pktId)
                      return a.pktId < b.pktId;
                  // Packet ids are caller-assigned and may tie (raw
                  // Network tests leave them 0); latches before side
                  // slots, then the unique port / slot index, keeps
                  // the order total.
                  if (a.side != b.side)
                      return !a.side;
                  return a.side ? a.sideIdx < b.sideIdx
                                : a.port < b.port;
              });

    bool sideSent = false;
    for (const LatchRank &lr : ranks_) {
        PacketHandle h = lr.side ? sideQ_[lr.sideIdx]
                                 : vcQ[slot(lr.port, 0)].front();
        Packet &pkt = pool.get(h);
        bool deflected = false;
        // Escalated packets (misroute budget spent) wait for a
        // productive port instead of deflecting again; this caps
        // per-packet deflections and breaks deterministic
        // deflection orbits (file header).
        int out = pickBufferlessPort(
            pkt, pkt.deflections < kDeflectionEscalation, now,
            deflected);
        if (out < 0) {
            if (lr.side)
                continue; // already out of the way; wait in place
            if (creditBlocked(now)) {
                // An idle output with a full downstream latch can be
                // one edge of a cycle of latches all waiting on each
                // other — the one deadlock this design can reach.
                // Vacate: the packet parks in the side buffer and
                // the freed latch credit goes upstream, so the cycle
                // cannot close. popHead hands back the credit;
                // residency here is unchanged.
                popHead(lr.port, 0);
                buffered += 1;
                sideQ_.push_back(h);
                retreats_ += 1;
            } else {
                // Every output mid-transfer: resolves by itself
                // within one packet length; hold the latch.
                latchStalls_ += 1;
            }
            continue;
        }
        if (deflected) {
            deflections_ += 1;
            pkt.deflections += 1;
        }
        if (lr.side) {
            sideQ_[lr.sideIdx] = invalidHandle;
            sideSent = true;
            buffered -= 1;
        } else {
            popHead(lr.port, 0);
        }
        sendBufferless(h, out, now);
    }
    if (sideSent)
        sideQ_.erase(std::remove(sideQ_.begin(), sideQ_.end(),
                                 invalidHandle),
                     sideQ_.end());

    // Injection joins last and never deflects: a new packet enters
    // the mesh only through a productive port, which bounds the work
    // in flight and keeps sources from flooding a congested
    // neighbourhood with guaranteed-misrouted traffic.
    for (int k = 0; k < numClasses; ++k) {
        int cls = (injRrClass + k) % numClasses;
        auto &q = injQs[static_cast<std::size_t>(cls)];
        if (q.empty())
            continue;
        PacketHandle h = q.front();
        const Packet &pkt = pool.get(h);
        bool deflected = false;
        int out = pickBufferlessPort(pkt, /*allow_deflect=*/false, now,
                                     deflected);
        if (out < 0) {
            injStalls[static_cast<std::size_t>(cls)] += 1;
            continue;
        }
        q.pop();
        injWaiting -= 1;
        sendBufferless(h, out, now);
        injRrClass = (cls + 1) % numClasses;
        break;
    }
}

void
Router::tick(Tick now)
{
    if (idle())
        return;
    ejectPass(now);
    if (buffered == 0 && injWaiting == 0)
        return;
    if (kind_ == RouterKind::Bufferless) {
        tickBufferless(now);
        return;
    }
    nominate(now);
    if (!noms.empty())
        grant(now);
}

void
Router::saveCkpt(ckpt::Serializer &s) const
{
    s.put32(static_cast<std::uint32_t>(vcQ.size()));
    for (const HandleQueue &q : vcQ)
        q.saveCkpt(s);
    for (int p = 0; p < nPorts; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            s.putI32(core->flitsUsed[sidx(p, vc)]);
            s.put64(core->recvFlits[sidx(p, vc)]);
            s.put64(core->creditStalls[sidx(p, vc)]);
        }
    }
    s.put32(static_cast<std::uint32_t>(nPorts));
    for (int p = 0; p < nPorts; ++p)
        s.putI32(core->rrVc[pidx(p)]);
    s.put32(static_cast<std::uint32_t>(nPorts));
    for (int p = 0; p < nPorts; ++p) {
        s.putBool(core->connected[pidx(p)] != 0);
        for (int vc = 0; vc < numVcs; ++vc)
            s.putI32(core->credits[sidx(p, vc)]);
        s.put64(core->busyUntil[pidx(p)]);
        s.putI32(core->wireCycles[pidx(p)]);
        s.putI32(core->rrSrc[pidx(p)]);
        s.put64(core->sentFlits[pidx(p)]);
        s.put64(core->sentPackets[pidx(p)]);
    }
    for (const HandleQueue &q : injQs)
        q.saveCkpt(s);
    for (std::uint64_t v : injStalls)
        s.put64(v);
    s.putI32(injRrClass);
    s.put64(statsWindowStart);
    s.putI32(buffered);
    s.putI32(injWaiting);
    s.put64(deflections_);
    s.put64(latchStalls_);
    s.put64(retreats_);
    s.put32(static_cast<std::uint32_t>(sideQ_.size()));
    for (PacketHandle h : sideQ_)
        s.put32(h);
}

void
Router::restoreCkpt(ckpt::Deserializer &d)
{
    if (d.get32() != vcQ.size() && d.ok()) {
        d.fail("router VC queue count mismatch");
        return;
    }
    for (HandleQueue &q : vcQ)
        q.restoreCkpt(d);
    for (int p = 0; p < nPorts; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            core->flitsUsed[sidx(p, vc)] = d.getI32();
            core->recvFlits[sidx(p, vc)] = d.get64();
            core->creditStalls[sidx(p, vc)] = d.get64();
        }
    }
    if (d.get32() != static_cast<std::uint32_t>(nPorts) && d.ok()) {
        d.fail("router port count mismatch");
        return;
    }
    for (int p = 0; p < nPorts; ++p)
        core->rrVc[pidx(p)] = d.getI32();
    if (d.get32() != static_cast<std::uint32_t>(nPorts) && d.ok()) {
        d.fail("router output count mismatch");
        return;
    }
    for (int p = 0; p < nPorts; ++p) {
        core->connected[pidx(p)] = d.getBool() ? 1 : 0;
        for (int vc = 0; vc < numVcs; ++vc)
            core->credits[sidx(p, vc)] = d.getI32();
        core->busyUntil[pidx(p)] = d.get64();
        core->wireCycles[pidx(p)] = d.getI32();
        core->rrSrc[pidx(p)] = d.getI32();
        core->sentFlits[pidx(p)] = d.get64();
        core->sentPackets[pidx(p)] = d.get64();
    }
    for (HandleQueue &q : injQs)
        q.restoreCkpt(d);
    for (std::uint64_t &v : injStalls)
        v = d.get64();
    injRrClass = d.getI32();
    statsWindowStart = d.get64();
    buffered = d.getI32();
    injWaiting = d.getI32();
    deflections_ = d.get64();
    latchStalls_ = d.get64();
    retreats_ = d.get64();
    sideQ_.clear();
    const std::uint32_t nSide = d.get32();
    for (std::uint32_t i = 0; i < nSide && d.ok(); ++i)
        sideQ_.push_back(d.get32());
}

} // namespace gs::net

#include "net/synthetic.hh"

#include <cmath>
#include <functional>
#include <memory>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "topology/torus.hh"

namespace gs::net
{

namespace
{

/** Destination chooser for one source node under a pattern. */
class Chooser
{
  public:
    Chooser(const topo::Topology &topo, const SyntheticConfig &cfg,
            Rng &rng)
        : topo(topo), cfg(cfg), rng(rng),
          torus(dynamic_cast<const topo::Torus2D *>(&topo))
    {
        if (cfg.pattern == TrafficPattern::Transpose) {
            gs_assert(torus && torus->width() == torus->height(),
                      "transpose traffic needs a square torus");
        }
        if (cfg.pattern == TrafficPattern::NearestNeighbor)
            gs_assert(torus, "nearest-neighbour traffic needs a torus");
    }

    NodeId
    pick(NodeId src)
    {
        const int n = topo.numCpuNodes();
        switch (cfg.pattern) {
          case TrafficPattern::UniformRandom:
            return uniformOther(src);
          case TrafficPattern::BitComplement:
            return static_cast<NodeId>(n - 1 - src);
          case TrafficPattern::Transpose:
            return torus->nodeAt(torus->yOf(src), torus->xOf(src));
          case TrafficPattern::NearestNeighbor:
            return torus->nodeAt(
                (torus->xOf(src) + 1) % torus->width(),
                torus->yOf(src));
          case TrafficPattern::HotSpot:
            if (src != cfg.hotspotNode &&
                rng.chance(cfg.hotspotFraction))
                return cfg.hotspotNode;
            return uniformOther(src);
        }
        return uniformOther(src);
    }

  private:
    NodeId
    uniformOther(NodeId src)
    {
        const int n = topo.numCpuNodes();
        auto pick = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(n - 1)));
        if (pick >= src)
            pick += 1;
        return pick;
    }

    const topo::Topology &topo;
    const SyntheticConfig &cfg;
    Rng &rng;
    const topo::Torus2D *torus;
};

/**
 * Run state shared with scheduled events, which may still be queued
 * (harmlessly) after runSynthetic() returns.
 */
struct RunState
{
    RunState(const topo::Topology &topo, const SyntheticConfig &c)
        : cfg(c), rng(c.seed), chooser(topo, cfg, rng)
    {
    }

    SyntheticConfig cfg;
    Rng rng;
    Chooser chooser;

    Tick measureFrom = 0;
    Tick measureTo = 0;
    bool stopped = false;

    stats::Average latency;
    stats::Average hops;
    std::uint64_t inWindow = 0;          ///< injected during window
    std::uint64_t deliveredInWindow = 0; ///< of those, delivered
    std::uint64_t throughputCount = 0;   ///< delivered DURING window
};

} // namespace

SyntheticResult
runSynthetic(SimContext &ctx, Network &net, const SyntheticConfig &cfg)
{
    gs_assert(cfg.injectionRate > 0 && cfg.injectionRate <= 1.0,
              "injection rate must be in (0, 1]");

    const auto &topo = net.topology();
    const int n = topo.numCpuNodes();
    const Tick period = net.period();

    auto state = std::make_shared<RunState>(topo, cfg);
    state->measureFrom =
        ctx.now() + static_cast<Tick>(cfg.warmupCycles) * period;
    state->measureTo = state->measureFrom +
                       static_cast<Tick>(cfg.measureCycles) * period;

    for (NodeId node = 0; node < topo.numNodes(); ++node) {
        net.setHandler(node, [state, &ctx](const Packet &pkt) {
            // Throughput: deliveries inside the window (regardless
            // of injection time) — the drain phase must not count.
            if (ctx.now() >= state->measureFrom &&
                ctx.now() < state->measureTo)
                state->throughputCount += 1;
            // Latency: packets injected inside the window.
            if (pkt.injected >= state->measureFrom &&
                pkt.injected < state->measureTo) {
                state->deliveredInWindow += 1;
                state->latency.sample(
                    ticksToNs(ctx.now() - pkt.injected));
                state->hops.sample(static_cast<double>(pkt.hops));
            }
        });
    }

    // One geometric-gap injection process per source node. The
    // chained events capture the shared state by value, so stragglers
    // left in the queue after we return are no-ops.
    auto arm = std::make_shared<std::function<void(NodeId)>>();
    *arm = [state, arm, &ctx, &net, period](NodeId src) {
        double u = state->rng.uniform();
        auto gapCycles = static_cast<Tick>(
            1 + std::log(1.0 - u) /
                    std::log(1.0 - state->cfg.injectionRate));
        ctx.queue().schedule(gapCycles * period,
                             [state, arm, &ctx, &net, src] {
            if (state->stopped || ctx.now() >= state->measureTo)
                return;
            Packet pkt;
            pkt.cls = state->cfg.cls;
            pkt.src = src;
            pkt.dst = state->chooser.pick(src);
            pkt.flits = state->cfg.packetFlits;
            if (ctx.now() >= state->measureFrom)
                state->inWindow += 1;
            net.inject(pkt);
            (*arm)(src);
        });
    };
    for (NodeId src = 0; src < n; ++src)
        (*arm)(src);

    // Run through the window, then drain.
    ctx.queue().runUntil(state->measureTo);
    Tick drainLimit = state->measureTo + 1000 * tickUs;
    while (ctx.now() < drainLimit && net.inFlight() > 0) {
        if (!ctx.queue().step())
            break;
    }
    state->stopped = true;
    // *arm's lambda captures arm itself; break the cycle or the
    // whole RunState leaks. Stragglers still queued hold their own
    // arm copy but bail on `stopped` before invoking it.
    *arm = nullptr;

    SyntheticResult out;
    out.offeredFlitsPerNodeCycle =
        cfg.injectionRate * cfg.packetFlits;
    double windowCycles = static_cast<double>(cfg.measureCycles);
    out.acceptedFlitsPerNodeCycle =
        static_cast<double>(state->throughputCount) *
        cfg.packetFlits / (windowCycles * n);
    out.avgLatencyNs = state->latency.mean();
    out.avgHops = state->hops.mean();
    out.measuredPackets = state->deliveredInWindow;
    out.drained = state->deliveredInWindow == state->inWindow;

    // Leave no dangling handlers for the caller.
    for (NodeId node = 0; node < topo.numNodes(); ++node)
        net.setHandler(node, nullptr);
    return out;
}

} // namespace gs::net

/**
 * @file
 * The 21364-style router model, plus a bufferless deflection
 * (hot-potato) ablation backend.
 *
 * Each router serves one node of the topology. Per network input
 * port it keeps one buffer per virtual channel (per message class:
 * two escape VCs and one adaptive VC, Section 2 of the paper), and
 * moves packets virtual-cut-through: a packet is transferred whole
 * and occupies the link for its length in flits.
 *
 * Arbitration follows the paper's two-level scheme: "Each input
 * port has two first-level arbiters, called the local arbiters,
 * [which select] a candidate packet among those waiting at the
 * input port. Each output port has a second-level arbiter, called
 * the global arbiter, which selects a packet from those nominated
 * for it by the local arbiters." Both levels are round-robin here.
 *
 * Route selection: packets prefer the adaptive VC of the minimal
 * output with the most free downstream credits; when every adaptive
 * candidate is full they fall into the deadlock-free escape channel
 * (dimension-order with a dateline VC switch, computed by the
 * topology). Ejection always sinks, so responses drain and the
 * class separation keeps the coherence protocol deadlock-free.
 *
 * The bufferless backend (NetworkParams::routerKind ==
 * RouterKind::Bufferless) replaces the VC buffers with a one-packet
 * latch per input port: every tick, latched packets are ranked
 * oldest-first by (injection tick, packet id) and each claims a free
 * minimal output; losers are *deflected* onto any free non-minimal
 * port instead of waiting. Age-based priority makes the scheme
 * livelock-free — the globally oldest packet never loses a claim to
 * a younger one, so it makes monotonic progress and every packet
 * eventually becomes oldest. Credits still flow, but count latches
 * (packets), not flits.
 *
 * Single-cycle BLESS never blocks because every packet is reassigned
 * to some output every cycle. Multi-flit links break that guarantee
 * — an output stays busy for a packet's whole length — so latches
 * can form a cycle of full-waits-on-full. The escape hatch is a
 * *side-buffer retreat* (in the spirit of minimally-buffered
 * deflection routing): a latched head that finds an idle output with
 * no latch credit — the deadlock signature, as opposed to the
 * transient all-outputs-mid-transfer case — vacates its latch into a
 * local side buffer, returning the upstream credit and dissolving
 * the cycle. Side-buffered packets keep their age and re-enter the
 * port ranking on every tick ahead of fresh injections. See
 * docs/ROUTER.md.
 *
 * Age priority alone is also not enough for livelock freedom here:
 * in BLESS the oldest packet always finds every output assignable,
 * but with multi-flit occupancy and credit round-trips a pair of
 * packets can chase each other through a deterministic orbit, each
 * finding its productive port mid-transfer at exactly the tick it
 * arbitrates, deflecting forever. The bound is restored by
 * *escalation*: once a packet has been deflected
 * kDeflectionEscalation times it refuses further misroutes and waits
 * (in its latch or the side buffer) for a productive port. The wait
 * is finite — the only holder of that port's latch credit is a
 * packet this router itself sent, which the peer either forwards or
 * retreats within bounded ticks — so every packet's deflection count
 * is capped at the escalation threshold.
 *
 * Data layout: packets live in the Network's PacketPool for their
 * whole flight; the router buffers 4-byte handles, and every
 * per-port / per-VC scalar (credits, occupancy, busy horizons, RR
 * pointers, telemetry counters) lives in the Network-wide RouterCore
 * structure-of-arrays (router_core.hh) — this object holds only its
 * base offsets into those flat arrays, its handle queues, and the
 * arbitration logic.
 */

#ifndef GS_NET_ROUTER_HH
#define GS_NET_ROUTER_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "net/params.hh"
#include "net/router_core.hh"
#include "sim/telemetry.hh"
#include "sim/types.hh"

namespace gs::net
{

class Network;

/** One node's router: buffers, arbiters and the crossbar. */
class Router
{
  public:
    Router(Network &net, NodeId id);

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;
    Router(Router &&) = default;

    /** Advance one network cycle (called by the Network). */
    void tick(Tick now);

    /** True when no packet is buffered or awaiting injection. */
    bool idle() const { return buffered == 0 && injWaiting == 0; }

    /** The topology node this router serves. */
    NodeId node() const { return id; }

    /** Packet arrival from an upstream link (scheduled event). */
    void receive(int in_port, int vc, PacketHandle h);

    /** Downstream freed buffer space (scheduled event). */
    void creditReturn(int out_port, int vc, int flits);

    /** Local agent hands a pooled packet to this router. */
    void inject(PacketHandle h);

    /** Occupancy (flits) of input VC @p vc on port @p in_port. */
    int vcOccupancy(int in_port, int vc) const
    {
        return core->flitsUsed[sidx(in_port, vc)];
    }

    /** Pending packets in the injection queue of class @p cls. */
    std::size_t injQueueDepth(MsgClass cls) const
    {
        return injQs[static_cast<std::size_t>(cls)].size();
    }

    /**
     * Credits currently held for (out_port, vc): flits under the
     * buffered backend, latch slots (0 or 1) under bufferless.
     */
    int creditsAvailable(int out_port, int vc) const
    {
        return core->credits[sidx(out_port, vc)];
    }

    /** @name Bufferless deflection accounting (RouterKind::Bufferless) */
    /// @{

    /**
     * Misroute budget per packet: at this many deflections a packet
     * escalates to minimal-only routing (see the file header). The
     * cap on Packet::deflections every delivery obeys.
     */
    static constexpr std::uint32_t kDeflectionEscalation = 64;

    /** Packets this router sent off a minimal path. */
    std::uint64_t deflectionsSent() const { return deflections_; }

    /** Ticks a latched packet found no free output at all. */
    std::uint64_t latchStalls() const { return latchStalls_; }

    /** Latched packets that vacated into the side buffer. */
    std::uint64_t retreats() const { return retreats_; }

    /** Packets currently parked in the side buffer. */
    std::size_t sideBufferDepth() const { return sideQ_.size(); }
    /// @}

    /**
     * Register this router's per-port / per-VC stats under
     * @p prefix (e.g. "node.12.router"): outbound flit/packet
     * counts and busy fraction per port, received-flit and
     * credit-stall counts per input VC, and injection-queue stats
     * per message class. @p port_name maps a port index to its
     * display name ("E"/"W"/"N"/"S" on the torus).
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix,
                           const std::function<std::string(int)>
                               &port_name);

    /** Zero the telemetry counters; @p now starts the busy window. */
    void clearStats(Tick now);

    /** @name Fault-layer hooks (see Network's fault section) */
    /// @{

    /**
     * Re-read link liveness from the topology. A newly reconnected
     * output gets fresh credits computed from the peer's current
     * buffer occupancy (credits in flight across a failure are lost).
     * Buffered backend only.
     */
    void syncPorts();

    /** Drop every buffered and injection-queued packet (node died). */
    void flushAll();

    /**
     * Oldest buffered packet by injection time, for diagnostics.
     * @retval false when nothing is buffered here.
     */
    bool oldestBuffered(Packet &out) const;
    /// @}

    /** @name Checkpoint/restore.
     *
     * Serializes every queue of handles plus all per-VC/per-output
     * scalars (read from / written into this router's RouterCore
     * slice). Handles stay valid because the owning PacketPool is
     * restored verbatim first.
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d);
    /// @}

  private:
    /** Chosen output for a head packet. */
    struct Route
    {
        int outPort = -1;
        int outVc = -1;
    };

    /** A local-arbiter nomination. */
    struct Nominee
    {
        int inPort;  ///< network input port, or -1 for injection
        int vc;      ///< source VC (or class index when injecting)
        Route route; ///< chosen output
    };

    /**
     * One port-ranking contender under bufferless: an occupied latch
     * (side == false, port = latch port) or a side-buffered packet
     * (side == true, sideIdx = its slot). The (injected, pktId,
     * side, port-or-slot) tuple is a total order even when packet
     * ids tie at 0.
     */
    struct LatchRank
    {
        Tick injected;
        std::uint64_t pktId;
        int port;
        bool side;
        std::uint32_t sideIdx;
    };

    /** Local queue index of (in_port, vc). */
    std::size_t
    slot(int in_port, int vc) const
    {
        return static_cast<std::size_t>(in_port) *
                   static_cast<std::size_t>(numVcs) +
               static_cast<std::size_t>(vc);
    }

    /** RouterCore per-port index of @p port. */
    std::size_t
    pidx(int port) const
    {
        return static_cast<std::size_t>(pb) +
               static_cast<std::size_t>(port);
    }

    /** RouterCore per-(port, VC) index of (port, vc). */
    std::size_t
    sidx(int port, int vc) const
    {
        return static_cast<std::size_t>(sb) + slot(port, vc);
    }

    /**
     * Pick the best feasible output for @p pkt: adaptive candidate
     * with most free credits, else escape.
     * @retval false when no output currently has room. @p unroutable
     * is additionally set when the destination has no escape route
     * at all (degraded fabric) — the packet must be dropped, since
     * no amount of waiting brings the route back.
     */
    bool chooseRoute(const Packet &pkt, Route &out,
                     bool &unroutable) const;

    /**
     * Buffer capacity of output VC @p vc: flits (buffered) or latch
     * slots (bufferless, 1 for VC 0 and 0 otherwise).
     */
    int vcCapacity(int vc) const;

    /** Eject every deliverable head packet on every input VC. */
    void ejectPass(Tick now);

    /** Run the local arbiters, filling the nominee list. */
    void nominate(Tick now);

    /** Run the global arbiters and perform the granted transfers. */
    void grant(Tick now);

    /** One bufferless cycle: age-rank, claim/deflect, inject. */
    void tickBufferless(Tick now);

    /**
     * Free output for @p pkt under deflection routing: the
     * lowest-indexed free minimal port, else (when @p allow_deflect)
     * the lowest-indexed free port in any direction, setting
     * @p deflected. -1 when every output is claimed or busy.
     */
    int pickBufferlessPort(const Packet &pkt, bool allow_deflect,
                           Tick now, bool &deflected) const;

    /** Output @p port can accept one packet right now. */
    bool portFree(int port, Tick now) const;

    /**
     * Some connected output is idle yet holds no latch credit — the
     * downstream latch is full while the link sits silent. This is
     * the deadlock-cycle signature a blocked latch head retreats on;
     * all-outputs-mid-transfer resolves by itself and is not it.
     */
    bool creditBlocked(Tick now) const;

    /** Put @p h on output @p out_port (bufferless transfer tail). */
    void sendBufferless(PacketHandle h, int out_port, Tick now);

    /** Pop the head of an input VC, returning upstream credits. */
    PacketHandle popHead(int in_port, int vc);

    Network &net;
    NodeId id;
    RouterCore *core;  ///< the owning Network's flat state
    std::uint32_t pb = 0; ///< per-port base (core->ref(id).portBase)
    std::uint32_t sb = 0; ///< per-slot base (core->ref(id).slotBase)
    int nPorts = 0;
    RouterKind kind_ = RouterKind::Buffered;

    std::vector<HandleQueue> vcQ; ///< buffered packets, slot()-indexed
    std::array<HandleQueue, numClasses> injQs;
    std::array<std::uint64_t, numClasses> injStalls{}; ///< telemetry
    int injRrClass = 0;
    Tick statsWindowStart = 0; ///< busy-fraction window origin

    int buffered = 0;   ///< packets resident here (latches + side)
    int injWaiting = 0; ///< packets waiting in injection queues

    std::uint64_t deflections_ = 0; ///< bufferless: misroutes sent
    std::uint64_t latchStalls_ = 0; ///< bufferless: all-ports-busy ticks
    std::uint64_t retreats_ = 0;    ///< bufferless: latch -> side moves

    /** Bufferless side buffer: retreated packets awaiting a port. */
    std::vector<PacketHandle> sideQ_;

    std::vector<Nominee> noms;     ///< per-tick scratch (buffered)
    std::vector<LatchRank> ranks_; ///< per-tick scratch (bufferless)
};

} // namespace gs::net

#endif // GS_NET_ROUTER_HH

/**
 * @file
 * The 21364-style router model.
 *
 * Each router serves one node of the topology. Per network input
 * port it keeps one buffer per virtual channel (per message class:
 * two escape VCs and one adaptive VC, Section 2 of the paper), and
 * moves packets virtual-cut-through: a packet is transferred whole
 * and occupies the link for its length in flits.
 *
 * Arbitration follows the paper's two-level scheme: "Each input
 * port has two first-level arbiters, called the local arbiters,
 * [which select] a candidate packet among those waiting at the
 * input port. Each output port has a second-level arbiter, called
 * the global arbiter, which selects a packet from those nominated
 * for it by the local arbiters." Both levels are round-robin here.
 *
 * Route selection: packets prefer the adaptive VC of the minimal
 * output with the most free downstream credits; when every adaptive
 * candidate is full they fall into the deadlock-free escape channel
 * (dimension-order with a dateline VC switch, computed by the
 * topology). Ejection always sinks, so responses drain and the
 * class separation keeps the coherence protocol deadlock-free.
 *
 * Data layout: packets live in the Network's PacketPool for their
 * whole flight; the router buffers 4-byte handles, and all per-VC
 * scalar state (occupancy, telemetry counters) sits in one
 * contiguous array indexed [port * numVcs + vc] so the arbitration
 * sweep walks flat memory.
 */

#ifndef GS_NET_ROUTER_HH
#define GS_NET_ROUTER_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "sim/telemetry.hh"
#include "sim/types.hh"

namespace gs::net
{

class Network;

/** One node's router: buffers, arbiters and the crossbar. */
class Router
{
  public:
    Router(Network &net, NodeId id);

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;
    Router(Router &&) = default;

    /** Advance one network cycle (called by the Network). */
    void tick(Tick now);

    /** True when no packet is buffered or awaiting injection. */
    bool idle() const { return buffered == 0 && injWaiting == 0; }

    /** The topology node this router serves. */
    NodeId node() const { return id; }

    /** Packet arrival from an upstream link (scheduled event). */
    void receive(int in_port, int vc, PacketHandle h);

    /** Downstream freed buffer space (scheduled event). */
    void creditReturn(int out_port, int vc, int flits);

    /** Local agent hands a pooled packet to this router. */
    void inject(PacketHandle h);

    /** Occupancy (flits) of input VC @p vc on port @p in_port. */
    int vcOccupancy(int in_port, int vc) const
    {
        return vcState[slot(in_port, vc)].flitsUsed;
    }

    /** Pending packets in the injection queue of class @p cls. */
    std::size_t injQueueDepth(MsgClass cls) const
    {
        return injQs[static_cast<std::size_t>(cls)].size();
    }

    /** Credits currently held for (out_port, vc). */
    int creditsAvailable(int out_port, int vc) const
    {
        return outputs[static_cast<std::size_t>(out_port)]
            .credits[static_cast<std::size_t>(vc)];
    }

    /**
     * Register this router's per-port / per-VC stats under
     * @p prefix (e.g. "node.12.router"): outbound flit/packet
     * counts and busy fraction per port, received-flit and
     * credit-stall counts per input VC, and injection-queue stats
     * per message class. @p port_name maps a port index to its
     * display name ("E"/"W"/"N"/"S" on the torus).
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix,
                           const std::function<std::string(int)>
                               &port_name);

    /** Zero the telemetry counters; @p now starts the busy window. */
    void clearStats(Tick now);

    /** @name Fault-layer hooks (see Network's fault section) */
    /// @{

    /**
     * Re-read link liveness from the topology. A newly reconnected
     * output gets fresh credits computed from the peer's current
     * buffer occupancy (credits in flight across a failure are lost).
     */
    void syncPorts();

    /** Drop every buffered and injection-queued packet (node died). */
    void flushAll();

    /**
     * Oldest buffered packet by injection time, for diagnostics.
     * @retval false when nothing is buffered here.
     */
    bool oldestBuffered(Packet &out) const;
    /// @}

    /** @name Checkpoint/restore.
     *
     * Serializes every queue of handles plus all per-VC/per-output
     * scalars. Handles stay valid because the owning PacketPool is
     * restored verbatim first.
     */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put32(static_cast<std::uint32_t>(vcQ.size()));
        for (const HandleQueue &q : vcQ)
            q.saveCkpt(s);
        for (const VcState &v : vcState) {
            s.putI32(v.flitsUsed);
            s.put64(v.recvFlits);
            s.put64(v.creditStalls);
        }
        s.put32(static_cast<std::uint32_t>(rrVc.size()));
        for (int r : rrVc)
            s.putI32(r);
        s.put32(static_cast<std::uint32_t>(outputs.size()));
        for (const Output &o : outputs) {
            s.putBool(o.connected);
            for (int c : o.credits)
                s.putI32(c);
            s.put64(o.busyUntil);
            s.putI32(o.wireCycles);
            s.putI32(o.rrSrc);
            s.put64(o.sentFlits);
            s.put64(o.sentPackets);
        }
        for (const HandleQueue &q : injQs)
            q.saveCkpt(s);
        for (std::uint64_t v : injStalls)
            s.put64(v);
        s.putI32(injRrClass);
        s.put64(statsWindowStart);
        s.putI32(buffered);
        s.putI32(injWaiting);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        if (d.get32() != vcQ.size() && d.ok()) {
            d.fail("router VC queue count mismatch");
            return;
        }
        for (HandleQueue &q : vcQ)
            q.restoreCkpt(d);
        for (VcState &v : vcState) {
            v.flitsUsed = d.getI32();
            v.recvFlits = d.get64();
            v.creditStalls = d.get64();
        }
        if (d.get32() != rrVc.size() && d.ok()) {
            d.fail("router port count mismatch");
            return;
        }
        for (int &r : rrVc)
            r = d.getI32();
        if (d.get32() != outputs.size() && d.ok()) {
            d.fail("router output count mismatch");
            return;
        }
        for (Output &o : outputs) {
            o.connected = d.getBool();
            for (int &c : o.credits)
                c = d.getI32();
            o.busyUntil = d.get64();
            o.wireCycles = d.getI32();
            o.rrSrc = d.getI32();
            o.sentFlits = d.get64();
            o.sentPackets = d.get64();
        }
        for (HandleQueue &q : injQs)
            q.restoreCkpt(d);
        for (std::uint64_t &v : injStalls)
            v = d.get64();
        injRrClass = d.getI32();
        statsWindowStart = d.get64();
        buffered = d.getI32();
        injWaiting = d.getI32();
    }
    /// @}

  private:
    /** Chosen output for a head packet. */
    struct Route
    {
        int outPort = -1;
        int outVc = -1;
    };

    /** A local-arbiter nomination. */
    struct Nominee
    {
        int inPort;  ///< network input port, or -1 for injection
        int vc;      ///< source VC (or class index when injecting)
        Route route; ///< chosen output
    };

    /** Per-(input port, VC) scalar state, flat-indexed by slot(). */
    struct VcState
    {
        int flitsUsed = 0;

        // Telemetry counters (plain adds on the hot path; the
        // registry reads them pull-based, so they cost nothing more
        // even with every sink attached).
        std::uint64_t recvFlits = 0;
        std::uint64_t creditStalls = 0; ///< head blocked, no credits
    };

    struct Output
    {
        bool connected = false;
        std::array<int, numVcs> credits{};
        Tick busyUntil = 0;
        int wireCycles = 0;
        int rrSrc = 0; ///< global-arbiter round-robin pointer

        std::uint64_t sentFlits = 0;   ///< telemetry
        std::uint64_t sentPackets = 0; ///< telemetry
    };

    std::size_t
    slot(int in_port, int vc) const
    {
        return static_cast<std::size_t>(in_port) *
                   static_cast<std::size_t>(numVcs) +
               static_cast<std::size_t>(vc);
    }

    /**
     * Pick the best feasible output for @p pkt: adaptive candidate
     * with most free credits, else escape.
     * @retval false when no output currently has room. @p unroutable
     * is additionally set when the destination has no escape route
     * at all (degraded fabric) — the packet must be dropped, since
     * no amount of waiting brings the route back.
     */
    bool chooseRoute(const Packet &pkt, Route &out,
                     bool &unroutable) const;

    /** Buffer capacity of output VC @p vc in flits. */
    int vcCapacity(int vc) const;

    /** Eject every deliverable head packet on every input VC. */
    void ejectPass(Tick now);

    /** Run the local arbiters, filling the nominee list. */
    void nominate(Tick now);

    /** Run the global arbiters and perform the granted transfers. */
    void grant(Tick now);

    /** Pop the head of an input VC, returning upstream credits. */
    PacketHandle popHead(int in_port, int vc);

    Network &net;
    NodeId id;

    std::vector<HandleQueue> vcQ; ///< buffered packets, slot()-indexed
    std::vector<VcState> vcState; ///< per-VC scalars, slot()-indexed
    std::vector<int> rrVc;        ///< per-port local-arbiter pointer
    std::vector<Output> outputs;
    std::array<HandleQueue, numClasses> injQs;
    std::array<std::uint64_t, numClasses> injStalls{}; ///< telemetry
    int injRrClass = 0;
    Tick statsWindowStart = 0; ///< busy-fraction window origin

    int buffered = 0;   ///< packets held in input VC buffers
    int injWaiting = 0; ///< packets waiting in injection queues

    std::vector<Nominee> noms; ///< per-tick scratch
};

} // namespace gs::net

#endif // GS_NET_ROUTER_HH

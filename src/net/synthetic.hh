/**
 * @file
 * Synthetic-traffic harness for standalone network studies
 * (Garnet-style): drive every node with a stochastic packet stream
 * under a chosen spatial pattern, measure accepted throughput and
 * latency over a warmed window, then drain.
 *
 * Used by the ablation benches (adaptive vs deterministic routing,
 * VC buffer sizing) and by the network tests; the paper's Figure 15
 * load test is the protocol-level cousin of the uniform pattern.
 */

#ifndef GS_NET_SYNTHETIC_HH
#define GS_NET_SYNTHETIC_HH

#include "net/network.hh"
#include "sim/random.hh"

namespace gs::net
{

/** Spatial traffic patterns. */
enum class TrafficPattern
{
    UniformRandom,   ///< every other node equally likely
    BitComplement,   ///< node i -> node (N-1-i)
    Transpose,       ///< (x,y) -> (y,x); square tori only
    NearestNeighbor, ///< (x,y) -> (x+1,y)
    HotSpot,         ///< a fraction of traffic targets one node
};

/** Harness configuration. */
struct SyntheticConfig
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;

    /** Offered load in packets per node per network cycle. */
    double injectionRate = 0.05;

    int packetFlits = dataFlits;
    MsgClass cls = MsgClass::BlockResponse;

    /** Cycles of warmup (not measured) and of measurement. */
    int warmupCycles = 2000;
    int measureCycles = 8000;

    std::uint64_t seed = 1;

    NodeId hotspotNode = 0;
    double hotspotFraction = 0.5; ///< HotSpot: share aimed at it
};

/** Measured outcome of one run. */
struct SyntheticResult
{
    double offeredFlitsPerNodeCycle = 0;
    double acceptedFlitsPerNodeCycle = 0;
    double avgLatencyNs = 0;
    double avgHops = 0;
    std::uint64_t measuredPackets = 0;

    /** True when every measured packet was delivered (no loss). */
    bool drained = false;
};

/**
 * Drive @p net with @p cfg and report. The network must be idle and
 * have no conflicting handlers; the harness owns all handlers for
 * the duration.
 */
SyntheticResult runSynthetic(SimContext &ctx, Network &net,
                             const SyntheticConfig &cfg);

} // namespace gs::net

#endif // GS_NET_SYNTHETIC_HH

/**
 * @file
 * The interconnect fabric: routers wired per a Topology, a cycle
 * ticker, the injection/delivery API used by the layers above, and
 * the per-link utilization counters behind the Xmesh profiles.
 */

#ifndef GS_NET_NETWORK_HH
#define GS_NET_NETWORK_HH

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "net/params.hh"
#include "net/router.hh"
#include "sim/context.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "topology/topology.hh"

namespace gs::net
{

/** Cumulative per-network traffic statistics. */
struct NetworkStats
{
    std::uint64_t injectedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t deliveredFlits = 0;
    std::uint64_t droppedPackets = 0; ///< lost to faults (degraded mode)
    stats::Average latencyNs;      ///< inject-to-deliver, all classes
    stats::Average hopsPerPacket;
};

/**
 * A complete interconnect instance.
 *
 * The Network owns one Router per topology node and a self-scheduling
 * cycle tick that runs only while packets are in flight. Agents
 * (coherence controllers, traffic generators) attach one delivery
 * handler per node and inject packets; loopback (src == dst) packets
 * bypass the fabric with just the injection/ejection latency.
 */
class Network
{
  public:
    using Handler = std::function<void(const Packet &)>;

    Network(SimContext &ctx, const topo::Topology &topo,
            NetworkParams params);

    /** Register the delivery callback for @p node. */
    void setHandler(NodeId node, Handler handler);

    /**
     * Hand a packet to @p pkt.src's router. Rejects malformed
     * packets (out-of-range endpoints, non-positive length) with
     * gs_fatal; in degraded mode, packets from or to a failed node
     * are dropped and counted instead.
     */
    void inject(Packet pkt);

    /** @name Component access */
    /// @{
    const topo::Topology &topology() const { return topo_; }
    const NetworkParams &params() const { return prm; }
    SimContext &context() { return ctx; }
    Tick period() const { return tickPeriod; }
    Router &router(NodeId node) { return *routers[std::size_t(node)]; }
    const Router &router(NodeId node) const
    {
        return *routers[std::size_t(node)];
    }

    /** The slab every in-flight packet of this network lives in. */
    PacketPool &pool() { return pool_; }
    const PacketPool &pool() const { return pool_; }
    /// @}

    /** @name Statistics */
    /// @{
    const NetworkStats &stats() const { return st; }

    /** Cumulative busy flits on the link out of (node, port). */
    std::uint64_t linkBusyFlits(NodeId node, int port) const
    {
        return linkFlits[std::size_t(node)][std::size_t(port)];
    }

    /** Packets currently in flight (injected, not yet delivered). */
    int inFlight() const { return flying; }

    /** Reset cumulative statistics (not the fabric state). */
    void clearStats();

    /**
     * Register the network-wide counters under @p prefix
     * (injected/delivered/dropped packets, latency, hops,
     * in-flight). Per-router stats register separately via
     * Router::registerTelemetry.
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);
    /// @}

    /** @name Fault-layer hooks (used by fault::FaultInjector)
     *
     * Until the first fault is applied none of this costs anything
     * on the packet path: degraded() stays false and every check
     * short-circuits, keeping healthy runs bit-identical.
     */
    /// @{

    /**
     * The topology's link liveness changed: resync every router's
     * output ports and switch the fabric to degraded (lossy)
     * semantics.
     */
    void onTopologyChange();

    /** Mark a router dead (flushes its buffers) or repaired. */
    void setNodeFailed(NodeId node, bool failed);

    bool nodeFailed(NodeId node) const
    {
        return degraded_ && deadNode[std::size_t(node)] != 0;
    }

    /** True once any fault has ever been applied to this network. */
    bool degraded() const { return degraded_; }

    /** Observer for dropped packets (per-failure accounting). */
    using DropHook =
        std::function<void(NodeId at, const Packet &, const char *why)>;
    void setDropHook(DropHook hook) { dropHook = std::move(hook); }

    /** Account, report and release an undeliverable pooled packet. */
    void dropPacket(NodeId at, PacketHandle h, const char *why);
    /// @}

    /** @name Router-internal plumbing (used by Router) */
    /// @{
    void scheduleArrival(NodeId to, int in_port, int vc, PacketHandle h,
                         int delay_cycles);
    void scheduleCredit(NodeId at_node, int in_port, int vc, int flits);
    void deliverLocal(NodeId node, PacketHandle h);
    void countLinkFlits(NodeId node, int port, int flits)
    {
        linkFlits[std::size_t(node)][std::size_t(port)] +=
            static_cast<std::uint64_t>(flits);
    }
    void activate();
    /// @}

  private:
    void tick();
    void deliverNow(NodeId node, PacketHandle h);

    SimContext &ctx;
    const topo::Topology &topo_;
    NetworkParams prm;
    Tick tickPeriod;

    PacketPool pool_;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<Handler> handlers;
    std::vector<std::vector<std::uint64_t>> linkFlits;

    NetworkStats st;
    int flying = 0;
    bool ticking = false;

    bool degraded_ = false;        ///< any fault ever applied
    std::vector<char> deadNode;    ///< failed routers (degraded mode)
    DropHook dropHook;
};

} // namespace gs::net

#endif // GS_NET_NETWORK_HH

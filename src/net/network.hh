/**
 * @file
 * The interconnect fabric: routers wired per a Topology, a cycle
 * ticker, the injection/delivery API used by the layers above, and
 * the per-link utilization counters behind the Xmesh profiles.
 *
 * Domain partitioning: by default the whole fabric lives in one
 * domain driven by one SimContext, exactly as before. Under the
 * parallel engine (sim/parallel.hh) setPartition() assigns every
 * node to a spatial domain with its own SimContext; per-domain
 * shards (packet pool, stats, tick chain) keep the hot path
 * thread-private, and cross-domain arrivals/credits are buffered
 * into per-(src,dst) mailboxes that the engine merges at each epoch
 * barrier in canonical order. See docs/PARALLEL.md.
 */

#ifndef GS_NET_NETWORK_HH
#define GS_NET_NETWORK_HH

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "net/params.hh"
#include "net/router.hh"
#include "net/router_core.hh"
#include "sim/context.hh"
#include "sim/parallel.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "topology/topology.hh"

namespace gs::net
{

/** Cumulative per-network traffic statistics. */
struct NetworkStats
{
    std::uint64_t injectedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t deliveredFlits = 0;
    std::uint64_t droppedPackets = 0; ///< lost to faults (degraded mode)
    /**
     * Highest per-packet deflection count seen at delivery
     * (bufferless backend only; stays 0 under buffered routing).
     * The observable behind the golden livelock bound.
     */
    std::uint64_t maxDeflections = 0;
    stats::Average latencyNs;      ///< inject-to-deliver, all classes
    stats::Average hopsPerPacket;
};

/**
 * A complete interconnect instance.
 *
 * The Network owns one Router per topology node and a self-scheduling
 * cycle tick that runs only while packets are in flight. Agents
 * (coherence controllers, traffic generators) attach one delivery
 * handler per node and inject packets; loopback (src == dst) packets
 * bypass the fabric with just the injection/ejection latency.
 */
class Network
{
  public:
    using Handler = std::function<void(const Packet &)>;

    Network(SimContext &ctx, const topo::Topology &topo,
            NetworkParams params);

    /** Register the delivery callback for @p node. */
    void setHandler(NodeId node, Handler handler);

    /**
     * Hand a packet to @p pkt.src's router. Rejects malformed
     * packets (out-of-range endpoints, non-positive length) with
     * gs_fatal; in degraded mode, packets from or to a failed node
     * are dropped and counted instead.
     */
    void inject(Packet pkt);

    /** @name Domain partitioning (parallel engine) */
    /// @{

    /**
     * Split the fabric into domains. @p node_domain maps every node
     * to a domain index in [0, domain_ctx.size()); @p domain_ctx[d]
     * is the SimContext domain d's events run on. Must be called
     * before any traffic and before registerTelemetry. The node
     * partition fixes the result (it is part of the machine's
     * deterministic identity); the worker-thread count never does.
     */
    void setPartition(std::vector<int> node_domain,
                      std::vector<SimContext *> domain_ctx);

    int domains() const { return nDomains; }
    int domainOf(NodeId node) const
    {
        return nDomains == 1 ? 0 : nodeDom[std::size_t(node)];
    }
    SimContext &ctxOf(NodeId node)
    {
        return *domCtx[std::size_t(domainOf(node))];
    }
    PacketPool &poolOf(NodeId node)
    {
        return shards[std::size_t(domainOf(node))]->pool;
    }
    const PacketPool &poolOf(NodeId node) const
    {
        return shards[std::size_t(domainOf(node))]->pool;
    }

    /**
     * Conservative lookahead in ticks: the minimum delay between an
     * event executing in one domain and the earliest event it can
     * cause in another. Any cross-domain effect is an arrival
     * (pipeline + wire + >=1 header cycle) or a credit return
     * (creditCycles); the credit dominates on every modeled machine.
     */
    Tick conservativeLookahead() const;

    /**
     * Widest epoch window provably safe from fabric quiescence: an
     * injection at tick u produces its first router event
     * (NetInjStart) at u + injectionCycles * period, and from there
     * the conservative lookahead bounds any cross-domain effect —
     * so every quiet domain may drain up to
     * windowStart + idleLookahead() before the effect's due time.
     */
    Tick idleLookahead() const;

    /**
     * Whether no cross-domain effect can arise without a fresh
     * injection: nothing in flight, every tick chain dead, no
     * injection queued, and no posted-but-unmerged mailbox entry
     * (cross credits posted late in a window sit there even after
     * the last packet delivers). A pure function of simulation
     * state. Pending *local* credits are allowed: with an idle
     * fabric they only adjust upstream counts inside their own
     * domain (and any chain wake they trigger is the same no-op
     * tick the serial engine executes).
     */
    bool fabricQuiet() const;

    /**
     * ParallelEngine window hook: one adaptive-lookahead step per
     * epoch. Widens the window while fabricQuiet() holds (geometric,
     * capped at idleLookahead()) and snaps back to @p base_end on
     * traffic. Runs at the barrier with all workers parked; the
     * `widened` flag it leaves behind tells inject() to truncate the
     * injecting domain's drain so no router event fires inside a
     * widened window (see docs/PARALLEL.md).
     */
    Tick adaptiveWindow(Tick window_start, Tick base_end);

    /** Epochs whose window was widened past the conservative base. */
    std::uint64_t widenedEpochs() const { return widenedEpochs_; }

    /**
     * Merge every mailbox entry addressed to domain @p d into its
     * queue (ParallelEngine merge hook). Entries are scheduled via
     * EventQueue::scheduleMergedAt in canonical (due, src-domain,
     * post-order) order, so the result is independent of worker
     * interleaving. Called only at epoch barriers, when all posting
     * domains are quiescent; @p window_start <= every entry's due.
     */
    void mergeFor(int d, Tick window_start);

    /**
     * Earliest due time among entries domain @p d has posted this
     * epoch that no consumer has merged yet (ParallelEngine
     * pending-min hook; maxTick when none). Reads only domain d's
     * own writes, so it is safe from d's worker at any time.
     */
    Tick pendingMinOf(int d) const;

    /**
     * Publish domain @p d's tick-chain state for the next window's
     * merges (ParallelEngine publish hook). Must run after domain d
     * has drained the current window and before the epoch barrier;
     * mergeFor then reduces all domains' published state to decide
     * whether the serial engine's one global tick chain — alive
     * while ANY router in the machine is busy — would tick at the
     * coming window's clock edge. Without this, an arrival into an
     * idle domain would wake its routers one cycle later than the
     * serial schedule.
     */
    void publishFor(int d);

    /** @name Cross-domain mailbox traffic (par.* telemetry) */
    /// @{
    std::uint64_t crossArrivalsPosted() const;
    std::uint64_t crossCreditsPosted() const;
    std::uint64_t crossFlitsPosted() const;
    /// @}

    /**
     * Re-fold per-shard stats into the merged view returned by
     * stats() / exported by telemetry. Cheap; called by the Machine
     * at the end of every parallel run. No-op with one domain.
     */
    void refreshMergedStats() const;
    /// @}

    /** @name Component access */
    /// @{
    const topo::Topology &topology() const { return topo_; }
    const NetworkParams &params() const { return prm; }
    SimContext &context() { return ctx; }
    Tick period() const { return tickPeriod; }
    Router &router(NodeId node) { return *routers[std::size_t(node)]; }
    const Router &router(NodeId node) const
    {
        return *routers[std::size_t(node)];
    }

    /** The flat per-port/per-VC state every Router indexes into. */
    RouterCore &routerCore() { return core_; }
    const RouterCore &routerCore() const { return core_; }

    /**
     * Domain 0's packet slab — with the default single-domain
     * partition, the slab every in-flight packet lives in. Partitioned
     * fabrics have one pool per domain; use poolOf(node).
     */
    PacketPool &pool() { return shards[0]->pool; }
    const PacketPool &pool() const { return shards[0]->pool; }
    /// @}

    /** @name Statistics */
    /// @{

    /**
     * Cumulative traffic stats. Single-domain: the live counters.
     * Partitioned: the per-domain shards folded together (refreshed
     * here on every call; do not cache the reference across runs).
     */
    const NetworkStats &stats() const;

    /** Cumulative busy flits on the link out of (node, port). */
    std::uint64_t linkBusyFlits(NodeId node, int port) const
    {
        return linkFlits[std::size_t(node)][std::size_t(port)];
    }

    /** Packets currently in flight (injected, not yet delivered). */
    int inFlight() const;

    /** Reset cumulative statistics (not the fabric state). */
    void clearStats();

    /**
     * Register the network-wide counters under @p prefix
     * (injected/delivered/dropped packets, latency, hops,
     * in-flight). Per-router stats register separately via
     * Router::registerTelemetry. With a partitioned fabric the
     * registered references point at the merged view (see
     * refreshMergedStats); paths and ordering are identical either
     * way.
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);
    /// @}

    /** @name Fault-layer hooks (used by fault::FaultInjector)
     *
     * Until the first fault is applied none of this costs anything
     * on the packet path: degraded() stays false and every check
     * short-circuits, keeping healthy runs bit-identical. Faults
     * require the serial engine: Router::syncPorts reads peer-router
     * state directly, which a partitioned fabric cannot allow.
     */
    /// @{

    /**
     * The topology's link liveness changed: resync every router's
     * output ports and switch the fabric to degraded (lossy)
     * semantics.
     */
    void onTopologyChange();

    /** Mark a router dead (flushes its buffers) or repaired. */
    void setNodeFailed(NodeId node, bool failed);

    bool nodeFailed(NodeId node) const
    {
        return degraded_ && deadNode[std::size_t(node)] != 0;
    }

    /** True once any fault has ever been applied to this network. */
    bool degraded() const { return degraded_; }

    /** Observer for dropped packets (per-failure accounting). */
    using DropHook =
        std::function<void(NodeId at, const Packet &, const char *why)>;
    void setDropHook(DropHook hook) { dropHook = std::move(hook); }

    /** Account, report and release an undeliverable pooled packet. */
    void dropPacket(NodeId at, PacketHandle h, const char *why);
    /// @}

    /** @name Checkpoint/restore
     *
     * Serializes the fabric wholesale: every shard (pool, stats,
     * tick-chain state, inject dues, cross-traffic counters), both
     * parities of every mailbox, per-link flit counters, fault
     * flags and every router. Restore requires the same partition
     * layout the snapshot was taken with (domain count is checked).
     * Pending events are re-entered separately by the Machine via
     * rehydrateEvent, which rebuilds the callback a NET-owned
     * EventDesc describes.
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d);
    std::function<void()> rehydrateEvent(const ckpt::EventDesc &d);
    /// @}

    /** @name Router-internal plumbing (used by Router) */
    /// @{
    void scheduleArrival(NodeId from, NodeId to, int in_port, int vc,
                         PacketHandle h, int delay_cycles);
    void scheduleCredit(NodeId at_node, int in_port, int vc, int flits);
    void deliverLocal(NodeId node, PacketHandle h);
    void countLinkFlits(NodeId node, int port, int flits)
    {
        linkFlits[std::size_t(node)][std::size_t(port)] +=
            static_cast<std::uint64_t>(flits);
    }
    void activate(NodeId at);
    /// @}

  private:
    /**
     * One buffered cross-domain effect. Arrivals carry the packet BY
     * VALUE: the source domain's pool slot is released at post time
     * and the destination pool acquires a fresh slot at merge, so
     * neither pool is ever touched by a foreign thread.
     */
    struct XEntry
    {
        Tick due = 0;
        NodeId node = 0;        ///< receiving router (or credit target)
        std::int32_t port = 0;
        std::int32_t vc = 0;
        std::int32_t flits = 0; ///< credit payload (credit entries)
        std::int32_t credit = 0; ///< 1 = credit return, 0 = arrival
        Packet pkt;             ///< valid for arrivals only
    };

    /**
     * Double-buffered (src,dst) mailbox. Posts during epoch k land in
     * parity k%2; the consumer merges parity (k-1)%2 at the start of
     * epoch k, while the producer is parked at the barrier or writing
     * the other half. Buffers keep their capacity across epochs
     * (zero steady-state allocation).
     */
    struct Mailbox
    {
        std::vector<XEntry> buf[2];
        Tick minDue[2] = {maxTick, maxTick};
    };

    /** Sort key for canonical merge order. */
    struct MergeRef
    {
        Tick due;
        std::int32_t src; ///< posting domain
        std::uint32_t idx; ///< post order within that mailbox
    };

    /** Per-domain mutable state, padded to its own cache lines. */
    struct alignas(64) Shard
    {
        PacketPool pool;
        NetworkStats st;
        int flying = 0;
        bool ticking = false;
        /**
         * Merges completed on this domain; its parity selects the
         * mailbox half current posts go to. Advanced only in
         * mergeFor, i.e. only by the owning worker.
         */
        std::uint64_t epoch = 0;
        /**
         * Tick-chain state published at the end of each window for
         * the next window's merges (see publishFor / mergeFor). The
         * serial engine keeps one global tick chain alive while ANY
         * router in the machine is busy, so an arrival into an idle
         * region is still processed at its own edge; per-domain
         * chains must consult this global view to match it. Double-
         * buffered by consumer-epoch parity: a fast worker may
         * republish for window k+1 while a slow peer still merges
         * window k.
         */
        bool tickingPub[2] = {false, false};
        Tick revivalPub[2] = {maxTick, maxTick};
        /** The one tick-chain edge inside the current window. */
        Tick windowEdge = 0;
        /** Serial global chain would tick at windowEdge. */
        bool aliveAtEdge = false;
        /**
         * Dues of pending router-inject events (FIFO; dues are
         * non-decreasing because injects schedule now + const).
         * Injects are the only off-edge activation source, so they
         * alone can revive the serial chain mid-window.
         */
        std::vector<Tick> injDues;
        std::size_t injHead = 0;
        std::uint64_t xArrivals = 0; ///< cross arrivals posted
        std::uint64_t xCredits = 0;  ///< cross credits posted
        std::uint64_t xFlits = 0;    ///< flits in cross arrivals
        std::vector<MergeRef> scratch; ///< mergeFor ordering scratch
    };

    /** Merged (all-shards) stats view for telemetry/stats(). */
    struct MergedStats
    {
        NetworkStats net;
        PacketPool::Stats pool;
    };

    std::size_t mbox(int src, int dst) const
    {
        return std::size_t(src) * std::size_t(nDomains) +
               std::size_t(dst);
    }
    Shard &shard(NodeId node)
    {
        return *shards[std::size_t(domainOf(node))];
    }
    void postCross(int src_dom, int dst_dom, const XEntry &e);
    void consumeInj(NodeId node);

    void tickDomain(int d);
    void deliverNow(NodeId node, PacketHandle h);

    SimContext &ctx; ///< the build-time (domain-0 when partitioned) context
    const topo::Topology &topo_;
    NetworkParams prm;
    Tick tickPeriod;

    RouterCore core_; ///< built before the routers, which index it
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<Handler> handlers;
    std::vector<std::vector<std::uint64_t>> linkFlits;

    int nDomains = 1;
    std::vector<int> nodeDom;            ///< empty when nDomains == 1
    std::vector<SimContext *> domCtx;    ///< [nDomains]
    std::vector<std::vector<NodeId>> domNodes; ///< tick order per domain
    std::vector<std::unique_ptr<Shard>> shards; ///< [nDomains]
    std::vector<Mailbox> mail;           ///< [src * nDomains + dst]
    mutable MergedStats agg;             ///< stats() view, nDomains > 1

    // Adaptive lookahead (nDomains > 1 only; see adaptiveWindow).
    // `widened_` is written at the barrier by the window hook and
    // read by workers during the following window — the barrier
    // release orders it. adapt_.factor and widenedEpochs_ are
    // deterministic engine state and ride in the checkpoint.
    AdaptiveLookahead adapt_;
    bool widened_ = false;
    std::uint64_t widenedEpochs_ = 0;

    bool degraded_ = false;        ///< any fault ever applied
    std::vector<char> deadNode;    ///< failed routers (degraded mode)
    DropHook dropHook;
};

} // namespace gs::net

#endif // GS_NET_NETWORK_HH

/**
 * @file
 * Freelist pool for in-flight packets, plus the flat FIFO the router
 * queues handles in.
 *
 * A packet used to be copied by value into every buffer, lambda and
 * deque node between injection and delivery — a 64-byte memcpy per
 * hop and a steady drizzle of deque-chunk allocations. The pool gives
 * each injected packet one stable slot for its whole flight; the
 * fabric moves 4-byte handles instead. Slots recycle LIFO through a
 * freelist, so a warmed-up network allocates nothing per packet
 * (telemetry: `net.packet_pool.reuse` vs `.allocated`).
 */

#ifndef GS_NET_PACKET_POOL_HH
#define GS_NET_PACKET_POOL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace gs::net
{

/** Index of a pooled packet slot (stable for the packet's flight). */
using PacketHandle = std::uint32_t;

/** Sentinel for "no packet". */
constexpr PacketHandle invalidHandle = 0xffffffffu;

/** @name Field-wise Packet serialization (layout-stable format). */
/// @{
inline void
savePacket(ckpt::Serializer &s, const Packet &p)
{
    s.put64(p.id);
    s.put8(static_cast<std::uint8_t>(p.cls));
    s.putI32(p.src);
    s.putI32(p.dst);
    s.putI32(p.flits);
    s.put64(p.injected);
    s.putI32(p.hops);
    s.putI32(p.deflections);
    for (std::uint64_t w : p.user)
        s.put64(w);
    trace::saveSpan(s, p.span);
}

inline void
restorePacket(ckpt::Deserializer &d, Packet &p)
{
    p.id = d.get64();
    p.cls = static_cast<MsgClass>(d.get8());
    p.src = d.getI32();
    p.dst = d.getI32();
    p.flits = d.getI32();
    p.injected = d.get64();
    p.hops = d.getI32();
    p.deflections = d.getI32();
    for (std::uint64_t &w : p.user)
        w = d.get64();
    trace::restoreSpan(d, p.span);
}
/// @}

/**
 * The per-network packet slab. Slots live in a deque so references
 * from get() stay valid across acquire() growth; the freelist is
 * LIFO, which keeps recycling deterministic and cache-warm.
 */
class PacketPool
{
  public:
    /** Cumulative pool statistics (registered under net.packet_pool). */
    struct Stats
    {
        std::uint64_t allocated = 0; ///< slots ever created
        std::uint64_t reused = 0;    ///< acquires served by the freelist
        std::uint64_t peakInUse = 0; ///< high-water mark of live slots
    };

    PacketPool() = default;
    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Copy @p pkt into a slot and return its handle. */
    PacketHandle
    acquire(const Packet &pkt)
    {
        PacketHandle h;
        if (!freeList.empty()) {
            h = freeList.back();
            freeList.pop_back();
            st.reused += 1;
        } else {
            h = static_cast<PacketHandle>(slots.size());
            slots.emplace_back();
            live.push_back(0);
            st.allocated += 1;
        }
        gs_assert(!live[h], "pool slot acquired twice");
        live[h] = 1;
        slots[h] = pkt;
        inUse_ += 1;
        if (inUse_ > st.peakInUse)
            st.peakInUse = inUse_;
        return h;
    }

    /** The packet in slot @p h (stable until release). */
    Packet &get(PacketHandle h) { return slots[h]; }
    const Packet &get(PacketHandle h) const { return slots[h]; }

    /** Return slot @p h to the freelist. */
    void
    release(PacketHandle h)
    {
        gs_assert(live[h], "pool slot released twice");
        live[h] = 0;
        freeList.push_back(h);
        inUse_ -= 1;
    }

    /** Live (acquired, not yet released) slots. */
    std::uint64_t inUse() const { return inUse_; }

    /** Total slots backing the pool. */
    std::size_t capacity() const { return slots.size(); }

    const Stats &stats() const { return st; }

    /** @name Checkpoint/restore.
     *
     * The pool is restored *verbatim* — slot contents, freelist order
     * and live flags — so every PacketHandle serialized elsewhere in
     * the snapshot (router queues, event descriptors) indexes the
     * same packet after restore.
     */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put32(static_cast<std::uint32_t>(slots.size()));
        for (const Packet &p : slots)
            savePacket(s, p);
        s.put32(static_cast<std::uint32_t>(freeList.size()));
        for (PacketHandle h : freeList)
            s.put32(h);
        for (char f : live)
            s.put8(static_cast<std::uint8_t>(f));
        s.put64(inUse_);
        s.put64(st.allocated);
        s.put64(st.reused);
        s.put64(st.peakInUse);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        std::uint32_t n = d.get32();
        slots.clear();
        live.clear();
        for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
            slots.emplace_back();
            restorePacket(d, slots.back());
        }
        std::uint32_t nf = d.get32();
        freeList.clear();
        for (std::uint32_t i = 0; i < nf && d.ok(); ++i)
            freeList.push_back(d.get32());
        live.resize(n, 0);
        for (std::uint32_t i = 0; i < n && d.ok(); ++i)
            live[i] = static_cast<char>(d.get8());
        inUse_ = d.get64();
        st.allocated = d.get64();
        st.reused = d.get64();
        st.peakInUse = d.get64();
    }
    /// @}

  private:
    std::deque<Packet> slots;
    std::vector<PacketHandle> freeList;
    std::vector<char> live;
    std::uint64_t inUse_ = 0;
    Stats st;
};

/**
 * FIFO of packet handles with contiguous storage: pushes append,
 * pops advance a head cursor, and the consumed prefix is recycled
 * (cheap u32 memmove) instead of freeing chunks the way a deque
 * does. Steady state allocates nothing.
 */
class HandleQueue
{
  public:
    bool empty() const { return head_ == q.size(); }
    std::size_t size() const { return q.size() - head_; }

    void push(PacketHandle h) { q.push_back(h); }

    PacketHandle front() const { return q[head_]; }

    void
    pop()
    {
        head_ += 1;
        if (head_ == q.size()) {
            q.clear();
            head_ = 0;
        } else if (head_ >= compactAt && head_ * 2 >= q.size()) {
            q.erase(q.begin(),
                    q.begin() + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    void
    clear()
    {
        q.clear();
        head_ = 0;
    }

    /** @name Iteration over the unconsumed handles (diagnostics) */
    /// @{
    auto begin() const
    {
        return q.begin() + static_cast<std::ptrdiff_t>(head_);
    }
    auto end() const { return q.end(); }
    /// @}

    /** @name Checkpoint/restore: the unconsumed handle sequence. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put32(static_cast<std::uint32_t>(size()));
        for (PacketHandle h : *this)
            s.put32(h);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        clear();
        std::uint32_t n = d.get32();
        for (std::uint32_t i = 0; i < n && d.ok(); ++i)
            push(d.get32());
    }
    /// @}

  private:
    static constexpr std::size_t compactAt = 64;

    std::vector<PacketHandle> q;
    std::size_t head_ = 0;
};

} // namespace gs::net

#endif // GS_NET_PACKET_POOL_HH

/**
 * @file
 * Network packets and the EV7 message classes.
 *
 * Section 2 of the paper: the global directory protocol exchanges
 * Requests, Forwards and Responses; the router additionally carries
 * I/O traffic. Each class owns its virtual channels so that "a
 * Response packet can never block behind a Request packet". Block
 * responses carry a 64-byte cache line and are long packets; all
 * other messages are short header-only packets.
 */

#ifndef GS_NET_PACKET_HH
#define GS_NET_PACKET_HH

#include <array>
#include <cstdint>

#include "sim/trace_span.hh"
#include "sim/types.hh"

namespace gs::net
{

/** EV7 packet classes (each with its own virtual channels). */
enum class MsgClass : std::uint8_t
{
    Request,       ///< coherence requests toward a directory
    Forward,       ///< directory-to-owner forwards / invalidates
    BlockResponse, ///< data-carrying responses (64 B line)
    Ack,           ///< non-block responses (completion/inval acks)
    IO,            ///< I/O traffic (no adaptive channel)
};

/** Number of message classes. */
constexpr int numClasses = 5;

/** Sub-channels within a class. */
enum VcSub : int
{
    vcEscape0 = 0, ///< deadlock-free channel, pre-dateline
    vcEscape1 = 1, ///< deadlock-free channel, post-dateline
    vcAdaptive = 2, ///< minimal-adaptive channel (not for IO)
    vcSubCount = 3,
};

/** Total virtual channels per input port. */
constexpr int numVcs = numClasses * vcSubCount;

/** Virtual-channel index for (class, sub-channel). */
constexpr int
vcIndex(MsgClass cls, int sub)
{
    return static_cast<int>(cls) * vcSubCount + sub;
}

/** Class owning VC @p vc. */
constexpr MsgClass
vcClass(int vc)
{
    return static_cast<MsgClass>(vc / vcSubCount);
}

/** True when @p cls may use the adaptive channel (everything but IO). */
constexpr bool
mayAdapt(MsgClass cls)
{
    return cls != MsgClass::IO;
}

/** Short class name for telemetry paths ("req", "fwd", ...). */
constexpr const char *
msgClassName(MsgClass cls)
{
    switch (cls) {
      case MsgClass::Request:
        return "req";
      case MsgClass::Forward:
        return "fwd";
      case MsgClass::BlockResponse:
        return "blk";
      case MsgClass::Ack:
        return "ack";
      case MsgClass::IO:
        return "io";
    }
    return "?";
}

/**
 * A packet in flight. Packets move whole (virtual cut-through);
 * their length in flits determines link occupancy.
 */
struct Packet
{
    std::uint64_t id = 0; ///< unique per network, for tracing
    MsgClass cls = MsgClass::Request;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    int flits = 2; ///< length; headers 2 flits, +16 for a 64 B line

    Tick injected = 0; ///< when handed to the source router
    int hops = 0;      ///< network links traversed so far

    /**
     * Times this packet was deflected off a minimal path (bufferless
     * backend only; always 0 under buffered routing). The maximum
     * across delivered packets is the livelock-bound observable.
     */
    int deflections = 0;

    /**
     * Opaque payload for the layer above the network (the coherence
     * protocol encodes its message here). The network never
     * interprets it.
     */
    std::array<std::uint64_t, 3> user{};

    /**
     * Latency x-ray span state (docs/TRACING.md). Inert (id == 0)
     * unless the transaction was sampled; rides packet copies across
     * parallel-domain boundaries and checkpoints by value, which is
     * what keeps span exports byte-identical at any --threads.
     */
    trace::SpanState span;
};

/** Header-only packet length in flits (4 B flits: 8 B header). */
constexpr int headerFlits = 2;

/** Data packet length: header + 64-byte cache line. */
constexpr int dataFlits = headerFlits + 16;

} // namespace gs::net

#endif // GS_NET_PACKET_HH

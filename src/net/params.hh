/**
 * @file
 * Network timing/sizing parameters.
 *
 * Defaults model the GS1280 interconnect from the paper's Section 2:
 * inter-processor links run at 767 MHz (data rate) and deliver
 * 3.1 GB/s per direction, i.e. ~4 bytes per cycle — one 4-byte flit
 * per cycle per link. A 64-byte block response therefore occupies a
 * link for 18 cycles. Wire delays differ by link construction
 * (on-module vs backplane vs cable), which is what spreads the
 * one-hop latencies in Figure 13 (139 ns vs 145 ns vs 154 ns).
 */

#ifndef GS_NET_PARAMS_HH
#define GS_NET_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"
#include "topology/topology.hh"

namespace gs::net
{

/**
 * Router backend selector.
 *
 * Buffered is the 21364 design point: per-VC input buffers, credit
 * flow control, two-level round-robin arbitration with minimal
 * adaptive routing and a deadlock-free escape channel.
 *
 * Bufferless is the deflection (hot-potato) ablation: one packet
 * latch per input port, no VC buffering, age-ranked port arbitration
 * that misroutes ("deflects") losers to any free port instead of
 * blocking them. See docs/ROUTER.md.
 */
enum class RouterKind : std::uint8_t
{
    Buffered,
    Bufferless,
};

/** Short backend name for META/telemetry ("buffered"/"bufferless"). */
constexpr const char *
routerKindName(RouterKind kind)
{
    return kind == RouterKind::Bufferless ? "bufferless" : "buffered";
}

/** Timing and buffering parameters for one network. */
struct NetworkParams
{
    /** Router/link clock in MHz (767 MHz data rate on the 21364). */
    double clockMHz = 767.0;

    /** Router pipeline depth in cycles (route/VC/switch stages);
     *  calibrated against the per-hop increments of Figure 13. */
    int pipelineCycles = 8;

    /** Extra cycles to cross a wire, by construction. */
    int onModuleWireCycles = 1;
    int backplaneWireCycles = 3;
    int cableWireCycles = 6;
    int internalWireCycles = 1; ///< switch-internal (GS320)

    /** Cycles to move a packet from a source agent into the router. */
    int injectionCycles = 2;

    /** Cycles from ejection port to the destination agent. */
    int ejectionCycles = 2;

    /** Buffer capacity of each escape VC, in flits. */
    int escapeVcFlits = 2 * 18;

    /** Buffer capacity of each adaptive VC, in flits. */
    int adaptiveVcFlits = 4 * 18;

    /** Cycles for a freed buffer's credit to reach the upstream. */
    int creditCycles = 1;

    /** @name Ablation knobs (default: the 21364 design point) */
    /// @{

    /** Minimal-adaptive routing; false = dimension-order only. */
    bool adaptiveEnabled = true;

    /** Cut-through forwarding; false = store-and-forward per hop. */
    bool cutThrough = true;

    /** Router backend (buffered EV7 vs bufferless deflection). */
    RouterKind routerKind = RouterKind::Buffered;

    /// @}

    Tick period() const { return Clock::fromMHz(clockMHz).periodTicks(); }

    int
    wireCycles(topo::LinkKind kind) const
    {
        switch (kind) {
          case topo::LinkKind::OnModule:
            return onModuleWireCycles;
          case topo::LinkKind::Backplane:
            return backplaneWireCycles;
          case topo::LinkKind::Cable:
            return cableWireCycles;
          case topo::LinkKind::Internal:
            return internalWireCycles;
        }
        return cableWireCycles;
    }

    /** GS1280 defaults (see file comment). */
    static NetworkParams gs1280() { return NetworkParams{}; }

    /**
     * GS320-style switch fabric: a slower, deeper, switch-based
     * network. The GS320 global port delivers ~1.6 GB/s per link and
     * remote accesses cost ~860 ns (Figure 12), dominated by switch
     * traversals; modelled as a slow clock and deep pipelines.
     */
    static NetworkParams
    gs320()
    {
        NetworkParams p;
        p.clockMHz = 400.0;
        p.pipelineCycles = 16;     // QBB switch serialization
        p.internalWireCycles = 3;
        p.cableWireCycles = 30;    // QBB <-> global switch cables
        p.injectionCycles = 8;     // bus request/grant on the CPU port
        p.ejectionCycles = 4;
        p.escapeVcFlits = 2 * 18;
        p.adaptiveVcFlits = 2 * 18; // unused (no adaptivity), kept small
        return p;
    }
};

} // namespace gs::net

#endif // GS_NET_PARAMS_HH

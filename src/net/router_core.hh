/**
 * @file
 * Structure-of-arrays state for every router in a fabric.
 *
 * The routers used to keep their per-port and per-VC scalars in
 * per-object arrays of structs (Output{credits[15], busyUntil, ...},
 * VcState{flitsUsed, ...}), so a domain tick walked N objects and,
 * inside each, hopped across 100+-byte structs to read one int. The
 * RouterCore flattens that state into network-wide parallel arrays:
 *
 *   per (node, port):      busyUntil, wireCycles, connected, rrSrc,
 *                          rrVc, sentFlits, sentPackets
 *   per (node, port, VC):  credits, flitsUsed, recvFlits,
 *                          creditStalls
 *
 * A router addresses its slice through two base offsets handed out
 * at build() time; the arbitration sweeps then walk contiguous
 * memory (all credits of one node's ports sit in one run), and one
 * epoch advancing a whole domain streams the arrays front to back.
 *
 * Each node's slices are padded to a 16-entry (one cache line of
 * 4-byte scalars) boundary so routers ticked from different parallel
 * domains never share a line (the tile engine tick-sweeps node
 * ranges concurrently). The arrays are sized once at build() and
 * never reallocate, so telemetry may hold references to elements.
 *
 * Queue *contents* (the HandleQueues of buffered packets) stay in
 * the Router: they are pointer-chased FIFOs either way, and keeping
 * them per-object preserves the checkpoint layout.
 */

#ifndef GS_NET_ROUTER_CORE_HH
#define GS_NET_ROUTER_CORE_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"
#include "topology/topology.hh"

namespace gs::net
{

/** Flat per-port / per-VC router state for one Network. */
class RouterCore
{
  public:
    /** One node's slice: base offsets into the flat arrays. */
    struct NodeRef
    {
        std::uint32_t portBase = 0; ///< into the per-port arrays
        std::uint32_t slotBase = 0; ///< into the per-(port,VC) arrays
        std::uint32_t ports = 0;
    };

    /** Size and zero every array for @p topo's nodes. */
    void
    build(const topo::Topology &topo)
    {
        const int n = topo.numNodes();
        nodes.resize(static_cast<std::size_t>(n));
        std::uint32_t pb = 0, sb = 0;
        for (NodeId node = 0; node < n; ++node) {
            auto ports =
                static_cast<std::uint32_t>(topo.numPorts(node));
            nodes[static_cast<std::size_t>(node)] =
                NodeRef{pb, sb, ports};
            pb += pad(ports);
            sb += pad(ports * static_cast<std::uint32_t>(numVcs));
        }
        busyUntil.assign(pb, 0);
        wireCycles.assign(pb, 0);
        connected.assign(pb, 0);
        rrSrc.assign(pb, 0);
        rrVc.assign(pb, 0);
        sentFlits.assign(pb, 0);
        sentPackets.assign(pb, 0);
        credits.assign(sb, 0);
        flitsUsed.assign(sb, 0);
        recvFlits.assign(sb, 0);
        creditStalls.assign(sb, 0);
    }

    const NodeRef &ref(NodeId node) const
    {
        return nodes[static_cast<std::size_t>(node)];
    }

    /** @name Per-(node, port) state, indexed ref().portBase + port */
    /// @{
    std::vector<Tick> busyUntil;         ///< output link busy horizon
    std::vector<std::int32_t> wireCycles;
    std::vector<std::uint8_t> connected;
    std::vector<std::int32_t> rrSrc; ///< global-arbiter RR pointer
    std::vector<std::int32_t> rrVc;  ///< local-arbiter RR pointer
    std::vector<std::uint64_t> sentFlits;   ///< telemetry
    std::vector<std::uint64_t> sentPackets; ///< telemetry
    /// @}

    /** @name Per-(node, port, VC) state,
     *  indexed ref().slotBase + port * numVcs + vc */
    /// @{
    std::vector<std::int32_t> credits;   ///< for the output direction
    std::vector<std::int32_t> flitsUsed; ///< input-buffer occupancy
    std::vector<std::uint64_t> recvFlits;    ///< telemetry
    std::vector<std::uint64_t> creditStalls; ///< telemetry
    /// @}

  private:
    /** Round a slice length up to a 16-entry line boundary. */
    static std::uint32_t pad(std::uint32_t len)
    {
        return (len + 15u) & ~15u;
    }

    std::vector<NodeRef> nodes;
};

} // namespace gs::net

#endif // GS_NET_ROUTER_CORE_HH

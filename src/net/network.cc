#include "net/network.hh"

#include "sim/logging.hh"

namespace gs::net
{

Network::Network(SimContext &context, const topo::Topology &topo,
                 NetworkParams params)
    : ctx(context), topo_(topo), prm(params),
      tickPeriod(params.period())
{
    const int n = topo.numNodes();
    routers.reserve(static_cast<std::size_t>(n));
    handlers.resize(static_cast<std::size_t>(n));
    linkFlits.resize(static_cast<std::size_t>(n));
    for (NodeId node = 0; node < n; ++node) {
        routers.push_back(std::make_unique<Router>(*this, node));
        linkFlits[static_cast<std::size_t>(node)].assign(
            static_cast<std::size_t>(topo.numPorts(node)), 0);
    }
}

void
Network::setHandler(NodeId node, Handler handler)
{
    handlers[static_cast<std::size_t>(node)] = std::move(handler);
}

void
Network::inject(Packet pkt)
{
    gs_assert(pkt.src >= 0 && pkt.src < topo_.numNodes());
    gs_assert(pkt.dst >= 0 && pkt.dst < topo_.numNodes());

    pkt.injected = ctx.now();
    st.injectedPackets += 1;
    flying += 1;

    if (pkt.src == pkt.dst) {
        // Local traffic does not enter the fabric; it still pays the
        // agent-to-router-to-agent handoff.
        Tick delay = static_cast<Tick>(prm.injectionCycles +
                                       prm.ejectionCycles) * tickPeriod;
        NodeId node = pkt.dst;
        ctx.queue().schedule(delay, [this, node, pkt] {
            deliverNow(node, pkt);
        });
        return;
    }

    Tick delay = static_cast<Tick>(prm.injectionCycles) * tickPeriod;
    NodeId node = pkt.src;
    ctx.queue().schedule(delay, [this, node, pkt] {
        routers[static_cast<std::size_t>(node)]->inject(pkt);
    });
}

void
Network::scheduleArrival(NodeId to, int in_port, int vc, Packet pkt,
                         int delay_cycles)
{
    ctx.queue().schedule(static_cast<Tick>(delay_cycles) * tickPeriod,
                         [this, to, in_port, vc, pkt] {
        routers[static_cast<std::size_t>(to)]->receive(in_port, vc, pkt);
    });
}

void
Network::scheduleCredit(NodeId at_node, int in_port, int vc, int flits)
{
    topo::Port link = topo_.port(at_node, in_port);
    gs_assert(link.connected(), "credit for unconnected port");
    NodeId peer = link.peer;
    int peerPort = link.peerPort;
    ctx.queue().schedule(static_cast<Tick>(prm.creditCycles) * tickPeriod,
                         [this, peer, peerPort, vc, flits] {
        routers[static_cast<std::size_t>(peer)]->creditReturn(peerPort, vc,
                                                              flits);
    });
}

void
Network::deliverLocal(NodeId node, Packet pkt)
{
    // Ejection waits for the packet tail (cut-through streamed the
    // header ahead; the body pays its serialization exactly once,
    // here at the sink). Store-and-forward packets arrive whole.
    int tail = prm.cutThrough && pkt.flits > headerFlits
                   ? pkt.flits - headerFlits
                   : 0;
    Tick delay =
        static_cast<Tick>(prm.ejectionCycles + tail) * tickPeriod;
    ctx.queue().schedule(delay,
                         [this, node, pkt] { deliverNow(node, pkt); });
}

void
Network::deliverNow(NodeId node, const Packet &pkt)
{
    st.deliveredPackets += 1;
    st.deliveredFlits += static_cast<std::uint64_t>(pkt.flits);
    st.latencyNs.sample(ticksToNs(ctx.now() - pkt.injected));
    st.hopsPerPacket.sample(static_cast<double>(pkt.hops));
    flying -= 1;
    auto &handler = handlers[static_cast<std::size_t>(node)];
    if (handler)
        handler(pkt);
}

void
Network::clearStats()
{
    st = NetworkStats{};
    for (auto &ports : linkFlits)
        for (auto &flits : ports)
            flits = 0;
}

void
Network::activate()
{
    if (ticking)
        return;
    ticking = true;
    Tick edge = Clock(tickPeriod).nextEdge(ctx.now() + 1);
    ctx.queue().scheduleAt(edge, [this] { tick(); });
}

void
Network::tick()
{
    bool any = false;
    for (auto &router : routers) {
        router->tick(ctx.now());
        any = any || !router->idle();
    }
    if (any) {
        ctx.queue().schedule(tickPeriod, [this] { tick(); });
    } else {
        ticking = false;
    }
}

} // namespace gs::net

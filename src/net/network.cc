#include "net/network.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gs::net
{

namespace
{

/** Build the checkpoint descriptor for a fabric-owned event. */
ckpt::EventDesc
netDesc(ckpt::EvKind kind, int owner, int a = 0, int b = 0, int c = 0,
        std::uint64_t u = 0)
{
    ckpt::EventDesc d;
    d.kind = kind;
    d.owner = static_cast<std::uint16_t>(owner);
    d.a = a;
    d.b = b;
    d.c = c;
    d.u = u;
    return d;
}

} // namespace

Network::Network(SimContext &context, const topo::Topology &topo,
                 NetworkParams params)
    : ctx(context), topo_(topo), prm(params),
      tickPeriod(params.period())
{
    const int n = topo.numNodes();
    core_.build(topo);
    routers.reserve(static_cast<std::size_t>(n));
    handlers.resize(static_cast<std::size_t>(n));
    linkFlits.resize(static_cast<std::size_t>(n));
    deadNode.assign(static_cast<std::size_t>(n), 0);
    for (NodeId node = 0; node < n; ++node) {
        routers.push_back(std::make_unique<Router>(*this, node));
        linkFlits[static_cast<std::size_t>(node)].assign(
            static_cast<std::size_t>(topo.numPorts(node)), 0);
    }

    // Default partition: one domain on the build context. A later
    // setPartition replaces this wholesale.
    domCtx.assign(1, &ctx);
    shards.push_back(std::make_unique<Shard>());
    domNodes.resize(1);
    domNodes[0].reserve(static_cast<std::size_t>(n));
    for (NodeId node = 0; node < n; ++node)
        domNodes[0].push_back(node);
}

void
Network::setPartition(std::vector<int> node_domain,
                      std::vector<SimContext *> domain_ctx)
{
    const int n = topo_.numNodes();
    const int d = static_cast<int>(domain_ctx.size());
    gs_assert(static_cast<int>(node_domain.size()) == n,
              "partition must map every node");
    gs_assert(d >= 1, "need at least one domain");
    gs_assert(shards[0]->st.injectedPackets == 0 &&
                  shards[0]->flying == 0 &&
                  shards[0]->pool.capacity() == 0,
              "setPartition must run before any traffic");
    gs_assert(!degraded_,
              "fault injection requires the serial (single-domain) "
              "engine");

    nDomains = d;
    nodeDom = std::move(node_domain);
    domCtx = std::move(domain_ctx);

    shards.clear();
    domNodes.assign(static_cast<std::size_t>(d), {});
    for (int i = 0; i < d; ++i)
        shards.push_back(std::make_unique<Shard>());
    for (NodeId node = 0; node < n; ++node) {
        int dom = nodeDom[std::size_t(node)];
        gs_assert(dom >= 0 && dom < d, "domain index out of range");
        domNodes[std::size_t(dom)].push_back(node);
    }
    mail.assign(static_cast<std::size_t>(d) * static_cast<std::size_t>(d),
                Mailbox{});

    adapt_.base = conservativeLookahead();
    adapt_.bound = idleLookahead();
    adapt_.factor = 1;
    widened_ = false;
    widenedEpochs_ = 0;
}

Tick
Network::conservativeLookahead() const
{
    // A cross-domain arrival costs at least pipeline + 1 wire cycle +
    // 1 header cycle; a credit return costs creditCycles. Both are
    // scheduled relative to the causing event's time, so the minimum
    // of the two bounds how far ahead of its neighbours a domain may
    // safely run.
    int cycles = std::min(prm.creditCycles,
                          prm.pipelineCycles + 1 + 1);
    gs_assert(cycles >= 1, "zero-latency cross-domain link");
    return static_cast<Tick>(cycles) * tickPeriod;
}

Tick
Network::idleLookahead() const
{
    // From quiescence the only way traffic can appear is inject():
    // its first router event (NetInjStart) lands injectionCycles
    // later, and from that event the conservative lookahead bounds
    // every cross-domain effect. An injection at u >= windowStart
    // therefore cannot affect a peer before
    // windowStart + idleLookahead(), so a quiet domain may drain
    // that far ahead without waiting for a barrier.
    return static_cast<Tick>(prm.injectionCycles) * tickPeriod +
           conservativeLookahead();
}

bool
Network::fabricQuiet() const
{
    if (inFlight() != 0)
        return false;
    for (const auto &shp : shards) {
        if (shp->ticking || shp->injHead < shp->injDues.size())
            return false;
    }
    // Cross entries posted late in a window sit unmerged in the
    // posting parity even after every packet has delivered; widening
    // over them would let a peer drain past their due times.
    for (int d = 0; d < nDomains; ++d) {
        if (pendingMinOf(d) != maxTick)
            return false;
    }
    return true;
}

Tick
Network::adaptiveWindow(Tick window_start, Tick base_end)
{
    const Tick len = adapt_.step(fabricQuiet());
    widened_ = adapt_.widened();
    if (!widened_)
        return base_end;
    widenedEpochs_ += 1;
    return window_start + len;
}

void
Network::postCross(int src_dom, int dst_dom, const XEntry &e)
{
    Shard &sh = *shards[std::size_t(src_dom)];
    // Posts made while sh.epoch == k+1 belong to consumer epoch k
    // (mergeFor has already run k+1 times when epoch k executes), so
    // the posting parity is (epoch + 1) & 1 == k & 1.
    const std::size_t par = (sh.epoch + 1) & 1;
    Mailbox &mb = mail[mbox(src_dom, dst_dom)];
    if (e.due < mb.minDue[par])
        mb.minDue[par] = e.due;
    mb.buf[par].push_back(e);
}

void
Network::mergeFor(int d, Tick window_start)
{
    Shard &sh = *shards[std::size_t(d)];
    // Read the half producers filled during the previous epoch; the
    // parity flip also redirects our *peers'* view of where domain
    // d's own posts go (every shard's epoch advances in lockstep, so
    // the arithmetic in postCross/pendingMinOf stays consistent).
    const std::size_t par = (sh.epoch + 1) & 1;

    // Reduce every domain's published chain state to the serial
    // question "does the one global tick chain tick at this window's
    // edge?": yes if any domain's chain survived the previous edge,
    // or any pending inject revives it at an off-edge instant before
    // this window's edge. activate() consults the answer so that a
    // wake-up in an idle domain lands on the same edge the serial
    // engine's still-alive global chain would have used.
    const std::size_t pubPar = sh.epoch & 1;
    sh.windowEdge = Clock(tickPeriod).nextEdge(window_start);
    bool alive = false;
    for (int s = 0; s < nDomains && !alive; ++s) {
        const Shard &o = *shards[std::size_t(s)];
        alive = o.tickingPub[pubPar] ||
                o.revivalPub[pubPar] <= sh.windowEdge;
    }
    sh.aliveAtEdge = alive;
    sh.epoch += 1;

    auto &scratch = sh.scratch;
    scratch.clear();
    for (int s = 0; s < nDomains; ++s) {
        if (s == d)
            continue;
        const auto &buf = mail[mbox(s, d)].buf[par];
        for (std::uint32_t i = 0; i < buf.size(); ++i)
            scratch.push_back(MergeRef{buf[i].due, s, i});
    }
    if (scratch.empty())
        return;

    // Canonical order: (due, posting domain, post order). Post order
    // within a domain is deterministic (single-threaded epoch body),
    // so the merged schedule is identical at any worker count.
    std::sort(scratch.begin(), scratch.end(),
              [](const MergeRef &a, const MergeRef &b) {
                  if (a.due != b.due)
                      return a.due < b.due;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.idx < b.idx;
              });

    EventQueue &q = domCtx[std::size_t(d)]->queue();
    for (const MergeRef &r : scratch) {
        const XEntry &e = mail[mbox(r.src, d)].buf[par][r.idx];
        gs_assert(e.due >= window_start,
                  "mailbox entry due before the merge window");
        Router *rt = routers[std::size_t(e.node)].get();
        if (e.credit) {
            const int port = e.port, vc = e.vc, flits = e.flits;
            q.scheduleMergedAt(
                e.due, netDesc(ckpt::NetCredit, e.node, port, vc, flits),
                [rt, port, vc, flits] {
                    rt->creditReturn(port, vc, flits);
                });
        } else {
            PacketHandle h = sh.pool.acquire(e.pkt);
            const int port = e.port, vc = e.vc;
            q.scheduleMergedAt(
                e.due, netDesc(ckpt::NetReceive, e.node, port, vc, 0, h),
                [rt, port, vc, h] { rt->receive(port, vc, h); });
        }
    }
    for (int s = 0; s < nDomains; ++s) {
        if (s == d)
            continue;
        Mailbox &mb = mail[mbox(s, d)];
        mb.buf[par].clear();
        mb.minDue[par] = maxTick;
    }
}

Tick
Network::pendingMinOf(int d) const
{
    const Shard &sh = *shards[std::size_t(d)];
    const std::size_t par = (sh.epoch + 1) & 1;
    Tick m = maxTick;
    // Only the current posting parity: the other half was merged by
    // its consumers this epoch (their queues' peekNext covers it),
    // and reading it here would race with that merge.
    for (int t = 0; t < nDomains; ++t) {
        if (t == d)
            continue;
        m = std::min(m, mail[mbox(d, t)].minDue[par]);
    }
    return m;
}

void
Network::publishFor(int d)
{
    Shard &sh = *shards[std::size_t(d)];
    // sh.epoch counts completed merges, so after draining window k it
    // reads k + 1; the consumer of this snapshot is window k + 1's
    // mergeFor, which indexes by its own entry epoch — the same
    // value. The other parity still holds window k's snapshot for
    // any straggler peer mid-merge.
    const std::size_t p = sh.epoch & 1;
    sh.tickingPub[p] = sh.ticking;
    sh.revivalPub[p] =
        sh.injHead < sh.injDues.size()
            ? Clock(tickPeriod).nextEdge(sh.injDues[sh.injHead] + 1)
            : maxTick;
}

std::uint64_t
Network::crossArrivalsPosted() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards)
        n += sh->xArrivals;
    return n;
}

std::uint64_t
Network::crossCreditsPosted() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards)
        n += sh->xCredits;
    return n;
}

std::uint64_t
Network::crossFlitsPosted() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards)
        n += sh->xFlits;
    return n;
}

void
Network::refreshMergedStats() const
{
    if (nDomains == 1)
        return;
    agg = MergedStats{};
    for (const auto &sh : shards) {
        agg.net.injectedPackets += sh->st.injectedPackets;
        agg.net.deliveredPackets += sh->st.deliveredPackets;
        agg.net.deliveredFlits += sh->st.deliveredFlits;
        agg.net.droppedPackets += sh->st.droppedPackets;
        agg.net.maxDeflections =
            std::max(agg.net.maxDeflections, sh->st.maxDeflections);
        agg.net.latencyNs.merge(sh->st.latencyNs);
        agg.net.hopsPerPacket.merge(sh->st.hopsPerPacket);
        agg.pool.allocated += sh->pool.stats().allocated;
        agg.pool.reused += sh->pool.stats().reused;
        agg.pool.peakInUse += sh->pool.stats().peakInUse;
    }
}

const NetworkStats &
Network::stats() const
{
    if (nDomains == 1)
        return shards[0]->st;
    refreshMergedStats();
    return agg.net;
}

int
Network::inFlight() const
{
    int n = 0;
    for (const auto &sh : shards)
        n += sh->flying;
    return n;
}

void
Network::setHandler(NodeId node, Handler handler)
{
    handlers[static_cast<std::size_t>(node)] = std::move(handler);
}

void
Network::inject(Packet pkt)
{
    // Malformed packets are a user error (bad agent/bench wiring),
    // not a simulator bug: refuse them loudly instead of indexing
    // out of range. Destinations may be switch nodes (GS320 memory
    // homes live at the QBB switches), so the bound is numNodes().
    if (pkt.src < 0 || pkt.src >= topo_.numNodes() || pkt.dst < 0 ||
        pkt.dst >= topo_.numNodes()) {
        gs_fatal("inject: endpoint out of range: src=", pkt.src,
                 " dst=", pkt.dst, " valid=[0,", topo_.numNodes(), ")");
    }
    if (pkt.flits <= 0)
        gs_fatal("inject: non-positive packet length ", pkt.flits,
                 " flits");

    // Injection is always a source-domain affair: the caller runs on
    // pkt.src's context (agents live with their node).
    SimContext &c = ctxOf(pkt.src);
    Shard &sh = shard(pkt.src);

    // Inject is the only quiescence-breaking entry point, so inside
    // a widened (adaptive-lookahead) window it must not let this
    // domain run ahead into router activity the barrier has not
    // cleared: cut the drain at now()+1 — same-tick events still
    // fire, NetInjStart (and anything after it) waits for the next
    // epoch's conservative window. Peers that drain to the widened
    // end stay safe because the window is capped at idleLookahead().
    if (nDomains > 1 && widened_)
        c.queue().truncateDrain(c.now() + 1);

    pkt.injected = c.now();
    sh.st.injectedPackets += 1;
    sh.flying += 1;

    // The packet lives in the pool for its whole flight; the fabric
    // (buffers, lambdas, wire events) moves 4-byte handles.
    PacketHandle h = sh.pool.acquire(pkt);

    if (degraded_ && (deadNode[std::size_t(pkt.src)] ||
                      deadNode[std::size_t(pkt.dst)])) {
        dropPacket(pkt.src, h,
                   deadNode[std::size_t(pkt.src)] ? "dead-src"
                                                  : "dead-dst");
        return;
    }

    if (pkt.src == pkt.dst) {
        // Local traffic does not enter the fabric; it still pays the
        // agent-to-router-to-agent handoff.
        Tick delay = static_cast<Tick>(prm.injectionCycles +
                                       prm.ejectionCycles) * tickPeriod;
        NodeId node = pkt.dst;
        c.queue().schedule(delay,
                           netDesc(ckpt::NetDeliverLocal, node, 0, 0, 0, h),
                           [this, node, h] { deliverNow(node, h); });
        return;
    }

    Tick delay = static_cast<Tick>(prm.injectionCycles) * tickPeriod;
    NodeId node = pkt.src;
    if (nDomains > 1) {
        // Record the pending router-inject due for publishFor's
        // revival-edge view (injects are the only activation source
        // not aligned to the router clock).
        sh.injDues.push_back(c.now() + delay);
    }
    c.queue().schedule(delay,
                       netDesc(ckpt::NetInjStart, node, 0, 0, 0, h),
                       [this, node, h] {
                           consumeInj(node);
                           routers[static_cast<std::size_t>(node)]
                               ->inject(h);
                       });
}

void
Network::consumeInj(NodeId node)
{
    if (nDomains == 1)
        return;
    Shard &sh = shard(node);
    sh.injHead += 1;
    if (sh.injHead == sh.injDues.size()) {
        sh.injDues.clear();
        sh.injHead = 0;
    }
}

void
Network::scheduleArrival(NodeId from, NodeId to, int in_port, int vc,
                         PacketHandle h, int delay_cycles)
{
    const int sd = domainOf(from);
    const int dd = domainOf(to);
    SimContext &c = *domCtx[std::size_t(sd)];
    const Tick delay = static_cast<Tick>(delay_cycles) * tickPeriod;

    if (sd == dd) {
        c.queue().schedule(
            delay, netDesc(ckpt::NetReceive, to, in_port, vc, 0, h),
            [this, to, in_port, vc, h] {
                // The packet was on the wire when the downstream
                // router died: its flits arrive at a dead receiver
                // and are lost.
                if (degraded_ && deadNode[std::size_t(to)]) {
                    dropPacket(to, h, "dead-receiver");
                    return;
                }
                routers[static_cast<std::size_t>(to)]->receive(in_port,
                                                               vc, h);
            });
        return;
    }

    // Crossing a domain boundary: copy the packet out of the source
    // pool into the mailbox and free the slot. The destination pool
    // re-homes it at the barrier merge. `flying` is untouched: each
    // shard's counter is a signed partial sum written only by its own
    // worker (+1 at inject, -1 at delivery/drop, wherever those run),
    // so the total — the only meaningful value, read at barriers —
    // keeps counting mailbox-resident packets as in flight.
    Shard &src = *shards[std::size_t(sd)];
    XEntry e;
    e.due = c.now() + delay;
    e.node = to;
    e.port = in_port;
    e.vc = vc;
    e.credit = 0;
    e.pkt = src.pool.get(h);
    src.pool.release(h);
    src.xArrivals += 1;
    src.xFlits += static_cast<std::uint64_t>(e.pkt.flits);
    postCross(sd, dd, e);
}

void
Network::scheduleCredit(NodeId at_node, int in_port, int vc, int flits)
{
    topo::Port link = topo_.port(at_node, in_port);
    if (!link.connected()) {
        // Credits die with their link; Router::syncPorts rebuilds
        // the upstream credit count from buffer occupancy on repair.
        gs_assert(degraded_, "credit for unconnected port");
        return;
    }
    NodeId peer = link.peer;
    int peerPort = link.peerPort;
    const int sd = domainOf(at_node);
    const int dd = domainOf(peer);
    SimContext &c = *domCtx[std::size_t(sd)];
    const Tick delay =
        static_cast<Tick>(prm.creditCycles) * tickPeriod;

    if (sd == dd) {
        c.queue().schedule(
            delay, netDesc(ckpt::NetCredit, peer, peerPort, vc, flits),
            [this, peer, peerPort, vc, flits] {
                routers[static_cast<std::size_t>(peer)]->creditReturn(
                    peerPort, vc, flits);
            });
        return;
    }

    XEntry e;
    e.due = c.now() + delay;
    e.node = peer;
    e.port = peerPort;
    e.vc = vc;
    e.flits = flits;
    e.credit = 1;
    shards[std::size_t(sd)]->xCredits += 1;
    postCross(sd, dd, e);
}

void
Network::deliverLocal(NodeId node, PacketHandle h)
{
    // Ejection waits for the packet tail (cut-through streamed the
    // header ahead; the body pays its serialization exactly once,
    // here at the sink). Store-and-forward packets arrive whole.
    int flits = poolOf(node).get(h).flits;
    int tail = prm.cutThrough && flits > headerFlits
                   ? flits - headerFlits
                   : 0;
    Tick delay =
        static_cast<Tick>(prm.ejectionCycles + tail) * tickPeriod;
    ctxOf(node).queue().schedule(
        delay, netDesc(ckpt::NetDeliverLocal, node, 0, 0, 0, h),
        [this, node, h] { deliverNow(node, h); });
}

void
Network::deliverNow(NodeId node, PacketHandle h)
{
    if (degraded_ && deadNode[std::size_t(node)]) {
        dropPacket(node, h, "dead-receiver");
        return;
    }
    Shard &sh = shard(node);
    const Packet &pkt = sh.pool.get(h);
    sh.st.deliveredPackets += 1;
    sh.st.deliveredFlits += static_cast<std::uint64_t>(pkt.flits);
    if (prm.routerKind == RouterKind::Bufferless) {
        sh.st.maxDeflections =
            std::max(sh.st.maxDeflections,
                     static_cast<std::uint64_t>(pkt.deflections));
    }
    sh.st.latencyNs.sample(
        ticksToNs(ctxOf(node).now() - pkt.injected));
    sh.st.hopsPerPacket.sample(static_cast<double>(pkt.hops));
    sh.flying -= 1;
    auto &handler = handlers[static_cast<std::size_t>(node)];
    if (handler)
        handler(pkt);
    // The handler may have injected follow-on packets (growing the
    // pool); the deque keeps `pkt` valid until this release.
    sh.pool.release(h);
}

void
Network::dropPacket(NodeId at, PacketHandle h, const char *why)
{
    Shard &sh = shard(at);
    sh.st.droppedPackets += 1;
    sh.flying -= 1;
    if (dropHook)
        dropHook(at, sh.pool.get(h), why);
    sh.pool.release(h);
}

void
Network::onTopologyChange()
{
    gs_assert(nDomains == 1,
              "fault injection requires the serial engine");
    degraded_ = true;
    for (auto &router : routers)
        router->syncPorts();
    activate(0);
}

void
Network::setNodeFailed(NodeId node, bool failed)
{
    gs_assert(nDomains == 1,
              "fault injection requires the serial engine");
    degraded_ = true;
    auto &flag = deadNode[std::size_t(node)];
    if (failed && !flag)
        routers[std::size_t(node)]->flushAll();
    flag = failed ? 1 : 0;
}

void
Network::clearStats()
{
    for (auto &sh : shards)
        sh->st = NetworkStats{};
    for (auto &ports : linkFlits)
        for (auto &flits : ports)
            flits = 0;
    for (auto &router : routers)
        router->clearStats(ctxOf(router->node()).now());
}

void
Network::registerTelemetry(telem::Registry &reg,
                           const std::string &prefix)
{
    // Single domain: register the live counters directly (the
    // historical behaviour, byte-identical exports). Partitioned:
    // register the merged view, refreshed by the Machine at the end
    // of each parallel run — same paths, same order.
    const bool merged = nDomains > 1;
    if (merged)
        refreshMergedStats();
    NetworkStats &nst = merged ? agg.net : shards[0]->st;
    reg.addCounter(telem::path(prefix, "injected_packets"),
                   nst.injectedPackets);
    reg.addCounter(telem::path(prefix, "delivered_packets"),
                   nst.deliveredPackets);
    reg.addCounter(telem::path(prefix, "delivered_flits"),
                   nst.deliveredFlits);
    reg.addCounter(telem::path(prefix, "dropped_packets"),
                   nst.droppedPackets);
    reg.addAverage(telem::path(prefix, "latency_ns"), nst.latencyNs);
    reg.addAverage(telem::path(prefix, "hops_per_packet"),
                   nst.hopsPerPacket);
    reg.addGauge(telem::path(prefix, "in_flight"),
                 [this] { return static_cast<double>(inFlight()); });

    // Deflection accounting exists only under the bufferless backend;
    // gating the paths keeps buffered exports byte-identical to every
    // pre-bufferless release.
    if (prm.routerKind == RouterKind::Bufferless) {
        const std::string dp = telem::path(prefix, "deflect");
        reg.addGauge(telem::path(dp, "count"), [this] {
            std::uint64_t n = 0;
            for (const auto &router : routers)
                n += router->deflectionsSent();
            return static_cast<double>(n);
        });
        reg.addGauge(telem::path(dp, "latch_stalls"), [this] {
            std::uint64_t n = 0;
            for (const auto &router : routers)
                n += router->latchStalls();
            return static_cast<double>(n);
        });
        reg.addGauge(telem::path(dp, "retreats"), [this] {
            std::uint64_t n = 0;
            for (const auto &router : routers)
                n += router->retreats();
            return static_cast<double>(n);
        });
        reg.addGauge(telem::path(dp, "max_per_packet"), [this] {
            return static_cast<double>(stats().maxDeflections);
        });
    }

    // Packet-pool health: reuse should dwarf allocated once warm.
    const std::string pp = telem::path(prefix, "packet_pool");
    if (merged) {
        reg.addCounter(telem::path(pp, "allocated"), agg.pool.allocated);
        reg.addCounter(telem::path(pp, "reuse"), agg.pool.reused);
        reg.addCounter(telem::path(pp, "peak_in_use"),
                       agg.pool.peakInUse);
    } else {
        reg.addCounter(telem::path(pp, "allocated"),
                       shards[0]->pool.stats().allocated);
        reg.addCounter(telem::path(pp, "reuse"),
                       shards[0]->pool.stats().reused);
        reg.addCounter(telem::path(pp, "peak_in_use"),
                       shards[0]->pool.stats().peakInUse);
    }
    reg.addGauge(telem::path(pp, "in_use"), [this] {
        std::uint64_t n = 0;
        for (const auto &sh : shards)
            n += sh->pool.inUse();
        return static_cast<double>(n);
    });
}

void
Network::activate(NodeId at)
{
    const int d = domainOf(at);
    Shard &sh = *shards[std::size_t(d)];
    if (sh.ticking)
        return;
    sh.ticking = true;
    SimContext &c = *domCtx[std::size_t(d)];
    const Clock clk(tickPeriod);
    Tick edge = clk.nextEdge(c.now() + 1);
    if (nDomains > 1 && sh.aliveAtEdge &&
        clk.nextEdge(c.now()) == sh.windowEdge) {
        // The serial engine's global chain is still ticking at this
        // window's edge (some other domain is busy, or an in-window
        // inject revives it), so a wake-up exactly on the edge is
        // processed at that edge — not one period later, the way a
        // truly dead fabric restarts.
        edge = sh.windowEdge;
    }
    c.queue().scheduleAt(edge, netDesc(ckpt::NetTick, d),
                         [this, d] { tickDomain(d); });
}

void
Network::tickDomain(int d)
{
    SimContext &c = *domCtx[std::size_t(d)];
    const Tick now = c.now();
    bool any = false;
    for (NodeId node : domNodes[std::size_t(d)]) {
        Router &router = *routers[std::size_t(node)];
        router.tick(now);
        any = any || !router.idle();
    }
    if (any) {
        c.queue().schedule(tickPeriod, netDesc(ckpt::NetTick, d),
                           [this, d] { tickDomain(d); });
    } else {
        shards[std::size_t(d)]->ticking = false;
    }
}

void
Network::saveCkpt(ckpt::Serializer &s) const
{
    s.putI32(nDomains);
    s.put32(static_cast<std::uint32_t>(routers.size()));
    for (const auto &shp : shards) {
        const Shard &sh = *shp;
        sh.pool.saveCkpt(s);
        s.put64(sh.st.injectedPackets);
        s.put64(sh.st.deliveredPackets);
        s.put64(sh.st.deliveredFlits);
        s.put64(sh.st.droppedPackets);
        s.put64(sh.st.maxDeflections);
        sh.st.latencyNs.saveCkpt(s);
        sh.st.hopsPerPacket.saveCkpt(s);
        s.putI32(sh.flying);
        s.putBool(sh.ticking);
        s.put64(sh.epoch);
        for (bool t : sh.tickingPub)
            s.putBool(t);
        for (Tick t : sh.revivalPub)
            s.put64(t);
        s.put64(sh.windowEdge);
        s.putBool(sh.aliveAtEdge);
        // Only the unconsumed inject dues matter after restore.
        s.put32(static_cast<std::uint32_t>(sh.injDues.size() -
                                           sh.injHead));
        for (std::size_t i = sh.injHead; i < sh.injDues.size(); ++i)
            s.put64(sh.injDues[i]);
        s.put64(sh.xArrivals);
        s.put64(sh.xCredits);
        s.put64(sh.xFlits);
    }
    for (const Mailbox &mb : mail) {
        for (int par = 0; par < 2; ++par) {
            s.put32(static_cast<std::uint32_t>(mb.buf[par].size()));
            for (const XEntry &e : mb.buf[par]) {
                s.put64(e.due);
                s.putI32(e.node);
                s.putI32(e.port);
                s.putI32(e.vc);
                s.putI32(e.flits);
                s.putI32(e.credit);
                savePacket(s, e.pkt);
            }
            s.put64(mb.minDue[par]);
        }
    }
    for (const auto &ports : linkFlits)
        for (std::uint64_t flits : ports)
            s.put64(flits);
    s.putBool(degraded_);
    for (char dead : deadNode)
        s.put8(static_cast<std::uint8_t>(dead));
    for (const auto &router : routers)
        router->saveCkpt(s);
    // Adaptive-lookahead state: the widening factor is part of the
    // deterministic window sequence, so a restored run replays the
    // saved run's epochs exactly.
    s.putI32(adapt_.factor);
    s.put64(widenedEpochs_);
}

void
Network::restoreCkpt(ckpt::Deserializer &d)
{
    if (d.getI32() != nDomains && d.ok()) {
        d.fail("snapshot domain count differs from this machine's "
               "partition (restore with the same engine layout)");
        return;
    }
    if (d.get32() != routers.size() && d.ok()) {
        d.fail("snapshot node count differs from this machine");
        return;
    }
    for (auto &shp : shards) {
        Shard &sh = *shp;
        sh.pool.restoreCkpt(d);
        sh.st.injectedPackets = d.get64();
        sh.st.deliveredPackets = d.get64();
        sh.st.deliveredFlits = d.get64();
        sh.st.droppedPackets = d.get64();
        sh.st.maxDeflections = d.get64();
        sh.st.latencyNs.restoreCkpt(d);
        sh.st.hopsPerPacket.restoreCkpt(d);
        sh.flying = d.getI32();
        sh.ticking = d.getBool();
        sh.epoch = d.get64();
        for (bool &t : sh.tickingPub)
            t = d.getBool();
        for (Tick &t : sh.revivalPub)
            t = d.get64();
        sh.windowEdge = d.get64();
        sh.aliveAtEdge = d.getBool();
        std::uint32_t nInj = d.get32();
        sh.injDues.clear();
        sh.injHead = 0;
        for (std::uint32_t i = 0; i < nInj && d.ok(); ++i)
            sh.injDues.push_back(d.get64());
        sh.xArrivals = d.get64();
        sh.xCredits = d.get64();
        sh.xFlits = d.get64();
    }
    for (Mailbox &mb : mail) {
        for (int par = 0; par < 2; ++par) {
            std::uint32_t n = d.get32();
            mb.buf[par].clear();
            for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
                XEntry e;
                e.due = d.get64();
                e.node = d.getI32();
                e.port = d.getI32();
                e.vc = d.getI32();
                e.flits = d.getI32();
                e.credit = d.getI32();
                restorePacket(d, e.pkt);
                mb.buf[par].push_back(e);
            }
            mb.minDue[par] = d.get64();
        }
    }
    for (auto &ports : linkFlits)
        for (std::uint64_t &flits : ports)
            flits = d.get64();
    degraded_ = d.getBool();
    for (char &dead : deadNode)
        dead = static_cast<char>(d.get8());
    for (auto &router : routers)
        router->restoreCkpt(d);
    adapt_.factor = d.getI32();
    widenedEpochs_ = d.get64();
    if (d.ok() &&
        (adapt_.factor < 1 || adapt_.factor > adapt_.maxFactor))
        d.fail("snapshot adaptive-lookahead factor out of range");
    widened_ = false; // recomputed by the next window's hook
}

std::function<void()>
Network::rehydrateEvent(const ckpt::EventDesc &d)
{
    switch (d.kind) {
      case ckpt::NetInjStart: {
        const NodeId node = d.owner;
        const auto h = static_cast<PacketHandle>(d.u);
        return [this, node, h] {
            consumeInj(node);
            routers[static_cast<std::size_t>(node)]->inject(h);
        };
      }
      case ckpt::NetDeliverLocal: {
        const NodeId node = d.owner;
        const auto h = static_cast<PacketHandle>(d.u);
        return [this, node, h] { deliverNow(node, h); };
      }
      case ckpt::NetReceive: {
        const NodeId to = d.owner;
        const int port = d.a, vc = d.b;
        const auto h = static_cast<PacketHandle>(d.u);
        return [this, to, port, vc, h] {
            if (degraded_ && deadNode[std::size_t(to)]) {
                dropPacket(to, h, "dead-receiver");
                return;
            }
            routers[static_cast<std::size_t>(to)]->receive(port, vc, h);
        };
      }
      case ckpt::NetCredit: {
        const NodeId peer = d.owner;
        const int port = d.a, vc = d.b, flits = d.c;
        return [this, peer, port, vc, flits] {
            routers[static_cast<std::size_t>(peer)]->creditReturn(
                port, vc, flits);
        };
      }
      case ckpt::NetTick: {
        const int dom = d.owner;
        return [this, dom] { tickDomain(dom); };
      }
      default:
        return {};
    }
}

} // namespace gs::net

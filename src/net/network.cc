#include "net/network.hh"

#include "sim/logging.hh"

namespace gs::net
{

Network::Network(SimContext &context, const topo::Topology &topo,
                 NetworkParams params)
    : ctx(context), topo_(topo), prm(params),
      tickPeriod(params.period())
{
    const int n = topo.numNodes();
    routers.reserve(static_cast<std::size_t>(n));
    handlers.resize(static_cast<std::size_t>(n));
    linkFlits.resize(static_cast<std::size_t>(n));
    deadNode.assign(static_cast<std::size_t>(n), 0);
    for (NodeId node = 0; node < n; ++node) {
        routers.push_back(std::make_unique<Router>(*this, node));
        linkFlits[static_cast<std::size_t>(node)].assign(
            static_cast<std::size_t>(topo.numPorts(node)), 0);
    }
}

void
Network::setHandler(NodeId node, Handler handler)
{
    handlers[static_cast<std::size_t>(node)] = std::move(handler);
}

void
Network::inject(Packet pkt)
{
    // Malformed packets are a user error (bad agent/bench wiring),
    // not a simulator bug: refuse them loudly instead of indexing
    // out of range. Destinations may be switch nodes (GS320 memory
    // homes live at the QBB switches), so the bound is numNodes().
    if (pkt.src < 0 || pkt.src >= topo_.numNodes() || pkt.dst < 0 ||
        pkt.dst >= topo_.numNodes()) {
        gs_fatal("inject: endpoint out of range: src=", pkt.src,
                 " dst=", pkt.dst, " valid=[0,", topo_.numNodes(), ")");
    }
    if (pkt.flits <= 0)
        gs_fatal("inject: non-positive packet length ", pkt.flits,
                 " flits");

    pkt.injected = ctx.now();
    st.injectedPackets += 1;
    flying += 1;

    // The packet lives in the pool for its whole flight; the fabric
    // (buffers, lambdas, wire events) moves 4-byte handles.
    PacketHandle h = pool_.acquire(pkt);

    if (degraded_ && (deadNode[std::size_t(pkt.src)] ||
                      deadNode[std::size_t(pkt.dst)])) {
        dropPacket(pkt.src, h,
                   deadNode[std::size_t(pkt.src)] ? "dead-src"
                                                  : "dead-dst");
        return;
    }

    if (pkt.src == pkt.dst) {
        // Local traffic does not enter the fabric; it still pays the
        // agent-to-router-to-agent handoff.
        Tick delay = static_cast<Tick>(prm.injectionCycles +
                                       prm.ejectionCycles) * tickPeriod;
        NodeId node = pkt.dst;
        ctx.queue().schedule(delay, [this, node, h] {
            deliverNow(node, h);
        });
        return;
    }

    Tick delay = static_cast<Tick>(prm.injectionCycles) * tickPeriod;
    NodeId node = pkt.src;
    ctx.queue().schedule(delay, [this, node, h] {
        routers[static_cast<std::size_t>(node)]->inject(h);
    });
}

void
Network::scheduleArrival(NodeId to, int in_port, int vc, PacketHandle h,
                         int delay_cycles)
{
    ctx.queue().schedule(static_cast<Tick>(delay_cycles) * tickPeriod,
                         [this, to, in_port, vc, h] {
        // The packet was on the wire when the downstream router
        // died: its flits arrive at a dead receiver and are lost.
        if (degraded_ && deadNode[std::size_t(to)]) {
            dropPacket(to, h, "dead-receiver");
            return;
        }
        routers[static_cast<std::size_t>(to)]->receive(in_port, vc, h);
    });
}

void
Network::scheduleCredit(NodeId at_node, int in_port, int vc, int flits)
{
    topo::Port link = topo_.port(at_node, in_port);
    if (!link.connected()) {
        // Credits die with their link; Router::syncPorts rebuilds
        // the upstream credit count from buffer occupancy on repair.
        gs_assert(degraded_, "credit for unconnected port");
        return;
    }
    NodeId peer = link.peer;
    int peerPort = link.peerPort;
    ctx.queue().schedule(static_cast<Tick>(prm.creditCycles) * tickPeriod,
                         [this, peer, peerPort, vc, flits] {
        routers[static_cast<std::size_t>(peer)]->creditReturn(peerPort, vc,
                                                              flits);
    });
}

void
Network::deliverLocal(NodeId node, PacketHandle h)
{
    // Ejection waits for the packet tail (cut-through streamed the
    // header ahead; the body pays its serialization exactly once,
    // here at the sink). Store-and-forward packets arrive whole.
    int flits = pool_.get(h).flits;
    int tail = prm.cutThrough && flits > headerFlits
                   ? flits - headerFlits
                   : 0;
    Tick delay =
        static_cast<Tick>(prm.ejectionCycles + tail) * tickPeriod;
    ctx.queue().schedule(delay,
                         [this, node, h] { deliverNow(node, h); });
}

void
Network::deliverNow(NodeId node, PacketHandle h)
{
    if (degraded_ && deadNode[std::size_t(node)]) {
        dropPacket(node, h, "dead-receiver");
        return;
    }
    const Packet &pkt = pool_.get(h);
    st.deliveredPackets += 1;
    st.deliveredFlits += static_cast<std::uint64_t>(pkt.flits);
    st.latencyNs.sample(ticksToNs(ctx.now() - pkt.injected));
    st.hopsPerPacket.sample(static_cast<double>(pkt.hops));
    flying -= 1;
    auto &handler = handlers[static_cast<std::size_t>(node)];
    if (handler)
        handler(pkt);
    // The handler may have injected follow-on packets (growing the
    // pool); the deque keeps `pkt` valid until this release.
    pool_.release(h);
}

void
Network::dropPacket(NodeId at, PacketHandle h, const char *why)
{
    st.droppedPackets += 1;
    flying -= 1;
    if (dropHook)
        dropHook(at, pool_.get(h), why);
    pool_.release(h);
}

void
Network::onTopologyChange()
{
    degraded_ = true;
    for (auto &router : routers)
        router->syncPorts();
    activate();
}

void
Network::setNodeFailed(NodeId node, bool failed)
{
    degraded_ = true;
    auto &flag = deadNode[std::size_t(node)];
    if (failed && !flag)
        routers[std::size_t(node)]->flushAll();
    flag = failed ? 1 : 0;
}

void
Network::clearStats()
{
    st = NetworkStats{};
    for (auto &ports : linkFlits)
        for (auto &flits : ports)
            flits = 0;
    for (auto &router : routers)
        router->clearStats(ctx.now());
}

void
Network::registerTelemetry(telem::Registry &reg,
                           const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "injected_packets"),
                   st.injectedPackets);
    reg.addCounter(telem::path(prefix, "delivered_packets"),
                   st.deliveredPackets);
    reg.addCounter(telem::path(prefix, "delivered_flits"),
                   st.deliveredFlits);
    reg.addCounter(telem::path(prefix, "dropped_packets"),
                   st.droppedPackets);
    reg.addAverage(telem::path(prefix, "latency_ns"), st.latencyNs);
    reg.addAverage(telem::path(prefix, "hops_per_packet"),
                   st.hopsPerPacket);
    reg.addGauge(telem::path(prefix, "in_flight"),
                 [this] { return static_cast<double>(flying); });

    // Packet-pool health: reuse should dwarf allocated once warm.
    const std::string pp = telem::path(prefix, "packet_pool");
    reg.addCounter(telem::path(pp, "allocated"), pool_.stats().allocated);
    reg.addCounter(telem::path(pp, "reuse"), pool_.stats().reused);
    reg.addCounter(telem::path(pp, "peak_in_use"),
                   pool_.stats().peakInUse);
    reg.addGauge(telem::path(pp, "in_use"), [this] {
        return static_cast<double>(pool_.inUse());
    });
}

void
Network::activate()
{
    if (ticking)
        return;
    ticking = true;
    Tick edge = Clock(tickPeriod).nextEdge(ctx.now() + 1);
    ctx.queue().scheduleAt(edge, [this] { tick(); });
}

void
Network::tick()
{
    bool any = false;
    for (auto &router : routers) {
        router->tick(ctx.now());
        any = any || !router->idle();
    }
    if (any) {
        ctx.queue().schedule(tickPeriod, [this] { tick(); });
    } else {
        ticking = false;
    }
}

} // namespace gs::net

/**
 * @file
 * Zbox: the 21364's integrated Direct Rambus (RDRAM) memory
 * controller (Section 2 of the paper).
 *
 * Each EV7 node carries two Zboxes; together they drive 8 RDRAM
 * channels of 2 bytes each at 767 MHz for 12.3 GB/s of peak local
 * bandwidth. The model tracks per-channel occupancy (FCFS) and
 * per-bank open pages, so dependent-load latency rises from the
 * ~80 ns open-page case to ~130 ns for large-stride, closed-page
 * access exactly as in the paper's Figure 5.
 *
 * The home directory lives in DRAM (ECC bits) on the real machine,
 * so a directory lookup is simply part of the data access here.
 */

#ifndef GS_MEM_ZBOX_HH
#define GS_MEM_ZBOX_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address.hh"
#include "sim/checkpoint.hh"
#include "sim/context.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"

namespace gs::mem
{

/** Timing/geometry of one Zbox (half a node's memory system). */
struct ZboxParams
{
    int channels = 4;        ///< RDRAM channels on this controller
    int banksPerChannel = 32;
    Addr pageBytes = 2048;

    /**
     * log2 of the number of controllers interleaving on line index
     * (2 Zboxes per node -> shift of 1): the controller drops the
     * interleave bits before decomposing channel/bank/row, so
     * sequential lines cycle its channels and stay in open rows.
     */
    int interleaveShift = 1;

    double rowHitNs = 38.0;      ///< open page, column access only
    double rowEmptyNs = 58.0;    ///< bank idle: activate + access
    double rowConflictNs = 83.0; ///< precharge + activate + access

    /** Channel occupancy of one 64 B transfer (41.7 ns/channel at
     *  1.534 GB/s per channel = 12.3 GB/s over 8 channels). */
    double burstNs = 41.7;

    /** GS1280 RDRAM defaults (see file comment). */
    static ZboxParams ev7() { return ZboxParams{}; }

    /**
     * GS320/ES45 shared SDRAM behind the QBB switch: fewer effective
     * channels per memory port and slower array access. Calibrated
     * against Figures 4 (local latency) and 7 (Triad bandwidth).
     */
    static ZboxParams
    qbbMemory(double port_gbps, double access_ns)
    {
        ZboxParams p;
        p.channels = 2;
        p.rowHitNs = access_ns;
        p.rowEmptyNs = access_ns + 15.0;
        p.rowConflictNs = access_ns + 35.0;
        p.burstNs = 2.0 * lineBytes / port_gbps; // per-channel share
        return p;
    }
};

/** Cumulative Zbox statistics. */
struct ZboxStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowEmpties = 0;
    std::uint64_t rowConflicts = 0;
    Tick busyTicks = 0; ///< summed channel occupancy
};

/**
 * Timing decomposition of one access, for callers that attribute
 * latency (the span tracer's Dram stage splits into queue wait vs.
 * array/burst service).
 */
struct AccessBreakdown
{
    Tick queueWait = 0; ///< time the request sat behind its channel
    Tick service = 0;   ///< row access time once the channel was free
};

/** One memory controller instance. */
class Zbox
{
  public:
    Zbox(SimContext &ctx, ZboxParams params);

    /**
     * Issue a 64 B read. @p done fires when the line (and its
     * directory word) is available. The continuation's desc rides
     * into the scheduled completion event so snapshots can rebuild
     * it (ckpt::Cont is implicitly constructible from a callable,
     * which yields a non-checkpointable Opaque continuation).
     * The overload fills @p bd with the access's timing split.
     */
    void read(Addr a, ckpt::Cont done);
    void read(Addr a, ckpt::Cont done, AccessBreakdown &bd);

    /** Issue a 64 B write (victim/dirty data). @p done optional. */
    void write(Addr a, ckpt::Cont done = {});

    const ZboxParams &params() const { return prm; }
    const ZboxStats &stats() const { return st; }

    /**
     * Mean channel utilization in [0,1] accumulated since the last
     * clearStats(), over a window ending at @p now.
     */
    double utilization(Tick window_start, Tick now) const;

    /** Channels still busy (occupied past @p now): queue depth. */
    int busyChannels(Tick now) const;

    /**
     * Register access counters, the open-page hit rate, queue depth
     * and geometry under @p prefix (e.g. "node.3.mem.0").
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);

    void clearStats() { st = ZboxStats{}; }

    /** Peak bandwidth of this controller in GB/s. */
    double
    peakGBs() const
    {
        return static_cast<double>(prm.channels) * lineBytes /
               prm.burstNs;
    }

    /** @name Memory accounting (docs/SCALING.md) */
    /// @{

    /**
     * Bytes this controller holds right now. The bank table is
     * allocated on the first access, so a node whose memory is never
     * touched (common in sparse workloads on big machines) costs a
     * few channel clocks, not channels x banks of page state.
     */
    std::size_t
    footprintBytes() const
    {
        return sizeof(*this) + channelFree.capacity() * sizeof(Tick) +
               banks.capacity() * sizeof(Bank);
    }

    /** Bytes the pre-lazy layout would hold (eager bank table). */
    std::size_t
    denseFootprintBytes() const
    {
        return sizeof(*this) +
               static_cast<std::size_t>(prm.channels) * sizeof(Tick) +
               static_cast<std::size_t>(prm.channels) *
                   static_cast<std::size_t>(prm.banksPerChannel) *
                   sizeof(Bank);
    }
    /// @}

    /** @name Checkpoint/restore: channel clocks, bank pages, stats. */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d);
    /// @}

  private:
    /** Schedule one access; returns its completion tick. */
    Tick access(Addr a, bool is_write,
                AccessBreakdown *bd = nullptr);

    struct Bank
    {
        bool open = false;
        Addr page = 0;
    };

    /** Bank table, sized channels x banksPerChannel on first use. */
    Bank &bankAt(std::size_t idx);

    SimContext &ctx;
    ZboxParams prm;
    ZboxStats st;

    std::vector<Tick> channelFree;
    /** channels x banksPerChannel once touched; empty until then. */
    std::vector<Bank> banks;
};

} // namespace gs::mem

#endif // GS_MEM_ZBOX_HH

#include "mem/cache.hh"

#include "sim/logging.hh"

namespace gs::mem
{

Cache::Cache(CacheParams params) : prm(params)
{
    gs_assert(prm.ways >= 1);
    gs_assert(prm.sizeBytes % (lineBytes * static_cast<Addr>(prm.ways))
                  == 0,
              "cache size not divisible into ways of whole lines");
    nSets = static_cast<int>(prm.sizeBytes /
                             (lineBytes * static_cast<Addr>(prm.ways)));
    gs_assert(nSets >= 1);
    sets_.resize(static_cast<std::size_t>(nSets));
}

Cache::Line *
Cache::ensureSet(std::size_t i)
{
    if (!sets_[i]) {
        sets_[i] = std::make_unique<Line[]>(
            static_cast<std::size_t>(prm.ways));
        allocatedSets_ += 1;
    }
    return sets_[i].get();
}

Cache::Line *
Cache::find(Addr a)
{
    Addr line = lineOf(a);
    Line *set = sets_[setOf(a)].get();
    if (!set)
        return nullptr;
    for (int w = 0; w < prm.ways; ++w) {
        if (set[w].state != LineState::Invalid && set[w].tag == line)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr a) const
{
    return const_cast<Cache *>(this)->find(a);
}

CacheAccess
Cache::lookup(Addr a, bool)
{
    if (Line *line = find(a)) {
        line->lastUse = ++useClock;
        nHits += 1;
        return CacheAccess{true, line->state};
    }
    nMisses += 1;
    return CacheAccess{false, LineState::Invalid};
}

LineState
Cache::state(Addr a) const
{
    const Line *line = find(a);
    return line ? line->state : LineState::Invalid;
}

void
Cache::setState(Addr a, LineState s)
{
    Line *line = find(a);
    gs_assert(line, "setState on non-resident line");
    line->state = s;
    if (s == LineState::Invalid)
        line->tag = 0;
}

Victim
Cache::fill(Addr a, LineState s)
{
    gs_assert(s != LineState::Invalid, "filling an Invalid line");
    gs_assert(!find(a), "fill of already-resident line");

    Line *set = ensureSet(setOf(a));
    Line *slot = &set[0];
    for (int w = 0; w < prm.ways; ++w) {
        if (set[w].state == LineState::Invalid) {
            slot = &set[w];
            break;
        }
        if (set[w].lastUse < slot->lastUse)
            slot = &set[w];
    }

    Victim victim;
    if (slot->state != LineState::Invalid) {
        victim.line = slot->tag;
        victim.state = slot->state;
    }
    slot->tag = lineOf(a);
    slot->state = s;
    slot->lastUse = ++useClock;
    return victim;
}

void
Cache::invalidate(Addr a)
{
    if (Line *line = find(a)) {
        line->state = LineState::Invalid;
        line->tag = 0;
    }
}

void
Cache::reset()
{
    for (auto &set : sets_)
        set.reset();
    allocatedSets_ = 0;
    useClock = 0;
}

} // namespace gs::mem

/**
 * @file
 * Set-associative cache model with coherence states and LRU
 * replacement.
 *
 * Models the two cache organizations the paper compares:
 *  - GS1280 (21364): 1.75 MB, 7-way, on-chip, 12-cycle load-to-use;
 *  - GS320/ES45 (21264): 16 MB, direct-mapped, off-chip, slower.
 *
 * The model is address-only (no data payload); the coherence layer
 * keeps per-line MESI-style state in the tag array.
 */

#ifndef GS_MEM_CACHE_HH
#define GS_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mem/address.hh"
#include "sim/checkpoint.hh"
#include "sim/types.hh"

namespace gs::mem
{

/** Per-line coherence state (MESI without the data). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive, ///< sole owner, clean
    Modified,  ///< sole owner, dirty
};

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 1792 * 1024; ///< 1.75 MB (21364 L2)
    int ways = 7;
    double loadToUseNs = 10.4; ///< 12 cycles at 1.15 GHz

    /** 21364 on-chip L2. */
    static CacheParams
    ev7L2()
    {
        return CacheParams{};
    }

    /** 21264 off-chip 16 MB direct-mapped L2 (GS320/ES45). */
    static CacheParams
    ev68L2()
    {
        CacheParams p;
        p.sizeBytes = 16ULL * 1024 * 1024;
        p.ways = 1;
        p.loadToUseNs = 25.0; // ~30 CPU cycles off-chip
        return p;
    }

    /** 21264/21364 64 KB 2-way L1 data cache. */
    static CacheParams
    l1d()
    {
        CacheParams p;
        p.sizeBytes = 64 * 1024;
        p.ways = 2;
        p.loadToUseNs = 2.6; // 3 cycles at 1.15 GHz
        return p;
    }
};

/** Result of a cache lookup. */
struct CacheAccess
{
    bool hit = false;
    LineState state = LineState::Invalid;
};

/** What a fill displaced. */
struct Victim
{
    Addr line = 0;
    LineState state = LineState::Invalid;

    bool valid() const { return state != LineState::Invalid; }
    bool dirty() const { return state == LineState::Modified; }
};

/**
 * A single cache level. All addresses are rounded to lines
 * internally; callers may pass byte addresses.
 */
class Cache
{
  public:
    explicit Cache(CacheParams params);

    /**
     * Look up @p a. A write hit on Shared does NOT upgrade the line
     * (that is a coherence transaction); it reports the hit and the
     * current state so the controller can decide.
     * Updates LRU on hit.
     */
    CacheAccess lookup(Addr a, bool write);

    /** State of the line holding @p a (Invalid when absent). */
    LineState state(Addr a) const;

    /** Change the state of a resident line. */
    void setState(Addr a, LineState s);

    /**
     * Insert the line of @p a with state @p s, evicting the LRU way.
     * @return the victim (invalid when the set had a free way).
     */
    Victim fill(Addr a, LineState s);

    /** Drop the line of @p a if present (invalidation). */
    void invalidate(Addr a);

    /** True if the line of @p a is resident in any valid state. */
    bool contains(Addr a) const { return state(a) != LineState::Invalid; }

    /** @name Geometry */
    /// @{
    const CacheParams &params() const { return prm; }
    int sets() const { return nSets; }
    std::uint64_t lines() const
    {
        return static_cast<std::uint64_t>(nSets) *
               static_cast<std::uint64_t>(prm.ways);
    }
    /// @}

    /** @name Statistics */
    /// @{
    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    double
    missRatio() const
    {
        auto total = nHits + nMisses;
        return total ? static_cast<double>(nMisses) /
                           static_cast<double>(total)
                     : 0.0;
    }
    void clearStats() { nHits = nMisses = 0; }
    /// @}

    /** Drop every line (between experiment phases). */
    void reset();

    /** @name Memory accounting (docs/SCALING.md) */
    /// @{

    /**
     * Bytes of heap + object this cache actually holds right now.
     * Tag storage is allocated per set on first fill, so an idle or
     * lightly-touched cache costs a pointer per set, not the full
     * nSets x ways tag array.
     */
    std::size_t
    footprintBytes() const
    {
        return sizeof(*this) +
               sets_.capacity() * sizeof(std::unique_ptr<Line[]>) +
               allocatedSets_ * static_cast<std::size_t>(prm.ways) *
                   sizeof(Line);
    }

    /** Bytes the pre-lazy layout would hold: the full tag array. */
    std::size_t
    denseFootprintBytes() const
    {
        return sizeof(*this) +
               static_cast<std::size_t>(lines()) * sizeof(Line);
    }
    /// @}

    /** @name Checkpoint/restore: tag array, LRU clock, hit stats. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put64(useClock);
        s.put64(nHits);
        s.put64(nMisses);
        s.put32(static_cast<std::uint32_t>(lines()));
        // Sets are lazily allocated; an unallocated set serialises as
        // a single absent flag instead of `ways` invalid lines.
        for (const auto &set : sets_) {
            s.put8(set ? 1 : 0);
            if (!set)
                continue;
            for (int w = 0; w < prm.ways; ++w) {
                s.put64(set[w].tag);
                s.put8(static_cast<std::uint8_t>(set[w].state));
                s.put64(set[w].lastUse);
            }
        }
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        useClock = d.get64();
        nHits = d.get64();
        nMisses = d.get64();
        if (d.get32() != lines() && d.ok()) {
            d.fail("cache geometry mismatch");
            return;
        }
        for (std::size_t i = 0; i < sets_.size(); ++i) {
            if (d.get8() == 0) {
                if (sets_[i]) {
                    sets_[i].reset();
                    allocatedSets_ -= 1;
                }
                continue;
            }
            Line *set = ensureSet(i);
            for (int w = 0; w < prm.ways; ++w) {
                set[w].tag = d.get64();
                set[w].state = static_cast<LineState>(d.get8());
                set[w].lastUse = d.get64();
            }
        }
    }
    /// @}

  private:
    struct Line
    {
        Addr tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    Line *find(Addr a);
    const Line *find(Addr a) const;

    /** Tag storage for set @p i, allocating it on first use. */
    Line *ensureSet(std::size_t i);

    std::size_t setOf(Addr a) const
    {
        return static_cast<std::size_t>(lineIndex(a) %
                                        static_cast<std::uint64_t>(nSets));
    }

    CacheParams prm;
    int nSets;
    /** Per-set tag storage (`ways` lines), allocated on first fill. */
    std::vector<std::unique_ptr<Line[]>> sets_;
    std::size_t allocatedSets_ = 0;
    std::uint64_t useClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace gs::mem

#endif // GS_MEM_CACHE_HH

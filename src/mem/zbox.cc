#include "mem/zbox.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gs::mem
{

Zbox::Zbox(SimContext &context, ZboxParams params)
    : ctx(context), prm(params)
{
    gs_assert(prm.channels >= 1 && prm.banksPerChannel >= 1);
    channelFree.assign(static_cast<std::size_t>(prm.channels), 0);
}

Zbox::Bank &
Zbox::bankAt(std::size_t idx)
{
    if (banks.empty())
        banks.assign(static_cast<std::size_t>(prm.channels) *
                         static_cast<std::size_t>(prm.banksPerChannel),
                     Bank{});
    return banks[idx];
}

Tick
Zbox::access(Addr a, bool is_write, AccessBreakdown *bd)
{
    // Drop the controller-interleave bits, then interleave lines
    // across channels (bandwidth) and pages across banks (RDRAM
    // pages are contiguous 2 KB per bank): sequential lines walk an
    // open row; page-sized strides hop banks and, once the banks
    // wrap, conflict on every access (the closed-page regime of the
    // paper's Figure 5).
    const std::uint64_t eff = lineIndex(a) >> prm.interleaveShift;
    const auto channel =
        static_cast<std::size_t>(eff % static_cast<std::uint64_t>(
                                           prm.channels));
    const std::uint64_t perChannel =
        eff / static_cast<std::uint64_t>(prm.channels);
    const std::uint64_t rowLines = prm.pageBytes / lineBytes;
    const std::uint64_t localPage = perChannel / rowLines;
    const auto bankIdx =
        channel * static_cast<std::size_t>(prm.banksPerChannel) +
        static_cast<std::size_t>(localPage %
                                 static_cast<std::uint64_t>(
                                     prm.banksPerChannel));
    const Addr page = static_cast<Addr>(
        localPage / static_cast<std::uint64_t>(prm.banksPerChannel));

    Bank &bank = bankAt(bankIdx);
    double accessNs;
    if (bank.open && bank.page == page) {
        accessNs = prm.rowHitNs;
        st.rowHits += 1;
    } else if (!bank.open) {
        accessNs = prm.rowEmptyNs;
        st.rowEmpties += 1;
    } else {
        accessNs = prm.rowConflictNs;
        st.rowConflicts += 1;
    }
    bank.open = true;
    bank.page = page;

    Tick start = std::max(ctx.now(), channelFree[channel]);
    Tick burst = nsToTicks(prm.burstNs);
    channelFree[channel] = start + burst;
    st.busyTicks += burst;
    (is_write ? st.writes : st.reads) += 1;

    if (bd) {
        bd->queueWait = start - ctx.now();
        bd->service = nsToTicks(accessNs);
    }
    return start + nsToTicks(accessNs);
}

void
Zbox::read(Addr a, ckpt::Cont done)
{
    Tick when = access(a, false);
    gs_assert(static_cast<bool>(done));
    ctx.queue().scheduleAt(when, done.desc, std::move(done.fn));
}

void
Zbox::read(Addr a, ckpt::Cont done, AccessBreakdown &bd)
{
    Tick when = access(a, false, &bd);
    gs_assert(static_cast<bool>(done));
    ctx.queue().scheduleAt(when, done.desc, std::move(done.fn));
}

void
Zbox::write(Addr a, ckpt::Cont done)
{
    Tick when = access(a, true);
    if (done)
        ctx.queue().scheduleAt(when, done.desc, std::move(done.fn));
}

int
Zbox::busyChannels(Tick now) const
{
    int n = 0;
    for (Tick free_at : channelFree)
        n += free_at > now ? 1 : 0;
    return n;
}

void
Zbox::registerTelemetry(telem::Registry &reg, const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "reads"), st.reads);
    reg.addCounter(telem::path(prefix, "writes"), st.writes);
    reg.addCounter(telem::path(prefix, "row_hits"), st.rowHits);
    reg.addCounter(telem::path(prefix, "row_empties"), st.rowEmpties);
    reg.addCounter(telem::path(prefix, "row_conflicts"),
                   st.rowConflicts);
    reg.addCounter(telem::path(prefix, "busy_ticks"), st.busyTicks);
    reg.addGauge(telem::path(prefix, "channels"), [this] {
        return static_cast<double>(prm.channels);
    });
    reg.addGauge(telem::path(prefix, "queue_depth"), [this] {
        return static_cast<double>(busyChannels(ctx.now()));
    });
    reg.addGauge(telem::path(prefix, "open_page_hit_rate"), [this] {
        std::uint64_t n = st.reads + st.writes;
        return n ? static_cast<double>(st.rowHits) /
                       static_cast<double>(n)
                 : 0.0;
    });
}

void
Zbox::saveCkpt(ckpt::Serializer &s) const
{
    s.put64(st.reads);
    s.put64(st.writes);
    s.put64(st.rowHits);
    s.put64(st.rowEmpties);
    s.put64(st.rowConflicts);
    s.put64(st.busyTicks);
    s.put32(static_cast<std::uint32_t>(channelFree.size()));
    for (Tick t : channelFree)
        s.put64(t);
    // The bank table is lazily sized; an untouched controller
    // serialises as zero banks and restores back to the lazy state.
    s.put32(static_cast<std::uint32_t>(banks.size()));
    for (const Bank &b : banks) {
        s.putBool(b.open);
        s.put64(b.page);
    }
}

void
Zbox::restoreCkpt(ckpt::Deserializer &d)
{
    st.reads = d.get64();
    st.writes = d.get64();
    st.rowHits = d.get64();
    st.rowEmpties = d.get64();
    st.rowConflicts = d.get64();
    st.busyTicks = d.get64();
    if (d.get32() != channelFree.size() && d.ok()) {
        d.fail("zbox channel count mismatch");
        return;
    }
    for (Tick &t : channelFree)
        t = d.get64();
    const std::uint32_t nBanks = d.get32();
    const auto fullBanks =
        static_cast<std::size_t>(prm.channels) *
        static_cast<std::size_t>(prm.banksPerChannel);
    if (nBanks == 0) {
        banks.clear();
        banks.shrink_to_fit();
        return;
    }
    if (nBanks != fullBanks && d.ok()) {
        d.fail("zbox bank count mismatch");
        return;
    }
    banks.assign(fullBanks, Bank{});
    for (Bank &b : banks) {
        b.open = d.getBool();
        b.page = d.get64();
    }
}

double
Zbox::utilization(Tick window_start, Tick now) const
{
    if (now <= window_start)
        return 0.0;
    double denom = static_cast<double>(now - window_start) *
                   static_cast<double>(prm.channels);
    return std::min(static_cast<double>(st.busyTicks) / denom, 1.0);
}

} // namespace gs::mem

#include "mem/zbox.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gs::mem
{

Zbox::Zbox(SimContext &context, ZboxParams params)
    : ctx(context), prm(params)
{
    gs_assert(prm.channels >= 1 && prm.banksPerChannel >= 1);
    channelFree.assign(static_cast<std::size_t>(prm.channels), 0);
    banks.assign(static_cast<std::size_t>(prm.channels) *
                     static_cast<std::size_t>(prm.banksPerChannel),
                 Bank{});
}

Tick
Zbox::access(Addr a, bool is_write)
{
    // Drop the controller-interleave bits, then interleave lines
    // across channels (bandwidth) and pages across banks (RDRAM
    // pages are contiguous 2 KB per bank): sequential lines walk an
    // open row; page-sized strides hop banks and, once the banks
    // wrap, conflict on every access (the closed-page regime of the
    // paper's Figure 5).
    const std::uint64_t eff = lineIndex(a) >> prm.interleaveShift;
    const auto channel =
        static_cast<std::size_t>(eff % static_cast<std::uint64_t>(
                                           prm.channels));
    const std::uint64_t perChannel =
        eff / static_cast<std::uint64_t>(prm.channels);
    const std::uint64_t rowLines = prm.pageBytes / lineBytes;
    const std::uint64_t localPage = perChannel / rowLines;
    const auto bankIdx =
        channel * static_cast<std::size_t>(prm.banksPerChannel) +
        static_cast<std::size_t>(localPage %
                                 static_cast<std::uint64_t>(
                                     prm.banksPerChannel));
    const Addr page = static_cast<Addr>(
        localPage / static_cast<std::uint64_t>(prm.banksPerChannel));

    Bank &bank = banks[bankIdx];
    double accessNs;
    if (bank.open && bank.page == page) {
        accessNs = prm.rowHitNs;
        st.rowHits += 1;
    } else if (!bank.open) {
        accessNs = prm.rowEmptyNs;
        st.rowEmpties += 1;
    } else {
        accessNs = prm.rowConflictNs;
        st.rowConflicts += 1;
    }
    bank.open = true;
    bank.page = page;

    Tick start = std::max(ctx.now(), channelFree[channel]);
    Tick burst = nsToTicks(prm.burstNs);
    channelFree[channel] = start + burst;
    st.busyTicks += burst;
    (is_write ? st.writes : st.reads) += 1;

    return start + nsToTicks(accessNs);
}

void
Zbox::read(Addr a, std::function<void()> done)
{
    Tick when = access(a, false);
    gs_assert(done != nullptr);
    ctx.queue().scheduleAt(when, std::move(done));
}

void
Zbox::write(Addr a, std::function<void()> done)
{
    Tick when = access(a, true);
    if (done)
        ctx.queue().scheduleAt(when, std::move(done));
}

double
Zbox::utilization(Tick window_start, Tick now) const
{
    if (now <= window_start)
        return 0.0;
    double denom = static_cast<double>(now - window_start) *
                   static_cast<double>(prm.channels);
    return std::min(static_cast<double>(st.busyTicks) / denom, 1.0);
}

} // namespace gs::mem

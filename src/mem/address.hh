/**
 * @file
 * Physical addresses, home-node mapping and memory striping.
 *
 * The machine's global physical address space is partitioned by
 * home node: bits [36..] select the owning node, giving every node
 * a 64 GB region — far more than any workload here touches, so the
 * partition never constrains placement.
 *
 * Memory striping (Section 6 of the paper) interleaves groups of
 * four cache lines across a *pair* of neighbouring CPUs, rotating
 * CPU0/controller0, CPU0/controller1, CPU1/controller0,
 * CPU1/controller1. Striping spreads hot-spot traffic over two
 * nodes at the cost of extra nearest-neighbour link traffic.
 */

#ifndef GS_MEM_ADDRESS_HH
#define GS_MEM_ADDRESS_HH

#include <cstdint>
#include <functional>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gs::mem
{

/** Physical address. */
using Addr = std::uint64_t;

/** Cache line size used throughout (64 B on all systems modelled). */
constexpr Addr lineBytes = 64;

/** Bits per node region (64 GB). */
constexpr int nodeShift = 36;

/** Align an address down to its cache line. */
constexpr Addr
lineOf(Addr a)
{
    return a & ~(lineBytes - 1);
}

/** Line index of an address. */
constexpr std::uint64_t
lineIndex(Addr a)
{
    return a / lineBytes;
}

/** First address of @p node's local region. */
constexpr Addr
regionBase(NodeId node)
{
    return static_cast<Addr>(node) << nodeShift;
}

/** Node whose region contains @p a (before striping). */
constexpr NodeId
regionNode(Addr a)
{
    return static_cast<NodeId>(a >> nodeShift);
}

/** Where a line lives: owning node and memory controller. */
struct MemTarget
{
    NodeId node = invalidNode;
    int mc = 0; ///< Zbox index within the node (0 or 1)

    bool operator==(const MemTarget &) const = default;
};

/**
 * Maps a physical address to its home node and memory controller.
 */
class AddressMap
{
  public:
    virtual ~AddressMap() = default;

    /** Home of the line containing @p a. */
    virtual MemTarget home(Addr a) const = 0;

    /** Number of memory controllers per node. */
    virtual int controllersPerNode() const { return 2; }
};

/**
 * Default GS1280 map: every line is local to its region's node;
 * consecutive lines alternate between the node's two Zboxes.
 */
class NodeOwnedMap : public AddressMap
{
  public:
    MemTarget
    home(Addr a) const override
    {
        return MemTarget{regionNode(a),
                         static_cast<int>(lineIndex(a) & 1)};
    }
};

/**
 * Striped map (Section 6): lines rotate across the region node and
 * its module buddy — line k goes to
 * {buddy? k%4 >= 2 : k%4 < 2, controller (k%4) & 1}.
 */
class StripedMap : public AddressMap
{
  public:
    /** @param buddy maps a node to its on-module neighbour. */
    explicit StripedMap(std::function<NodeId(NodeId)> buddy)
        : buddyOf(std::move(buddy))
    {
        gs_assert(buddyOf != nullptr);
    }

    MemTarget
    home(Addr a) const override
    {
        NodeId base = regionNode(a);
        auto sel = static_cast<int>(lineIndex(a) & 3);
        NodeId node = sel < 2 ? base : buddyOf(base);
        return MemTarget{node, sel & 1};
    }

  private:
    std::function<NodeId(NodeId)> buddyOf;
};

/**
 * Single-home map for bus/QBB machines: everything in a QBB's
 * region homes on that QBB's switch node (shared memory).
 */
class SharedHomeMap : public AddressMap
{
  public:
    /** @param home_of maps the region node to the memory node. */
    explicit SharedHomeMap(std::function<NodeId(NodeId)> home_of)
        : homeOf(std::move(home_of))
    {
        gs_assert(homeOf != nullptr);
    }

    MemTarget
    home(Addr a) const override
    {
        return MemTarget{homeOf(regionNode(a)),
                         static_cast<int>(lineIndex(a) & 1)};
    }

  private:
    std::function<NodeId(NodeId)> homeOf;
};

} // namespace gs::mem

#endif // GS_MEM_ADDRESS_HH

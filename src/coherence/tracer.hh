/**
 * @file
 * Protocol event tracing: observe every coherence message a node
 * sends or receives, with a recorder that reconstructs per-line
 * transaction flows.
 *
 * This is the debugging story for the protocol layer — the tests
 * assert whole message sequences (e.g. a read-dirty is
 * RdReq -> FwdRd -> BlkDirty + WBShared -> ...) and users get the
 * same visibility when extending the protocol.
 */

#ifndef GS_COHERENCE_TRACER_HH
#define GS_COHERENCE_TRACER_HH

#include <string>
#include <vector>

#include "coherence/node.hh"

namespace gs::coher
{

/** One traced protocol message. */
struct ProtocolEvent
{
    Tick when = 0;
    NodeId at = invalidNode; ///< node observing the event
    bool incoming = false;   ///< received (vs sent)
    MsgType type = MsgType::RdReq;
    mem::Addr line = 0;
    NodeId requester = invalidNode;
    NodeId peer = invalidNode; ///< sender (incoming) / dest (outgoing)
};

/** Short name of a message type ("RdReq", "BlkDirty", ...). */
const char *msgTypeName(MsgType type);

/**
 * Collects events from any number of nodes. Attach with observe();
 * interrogate by line.
 */
class ProtocolTracer
{
  public:
    /** Subscribe to @p node's message stream. */
    void observe(CoherentNode &node);

    const std::vector<ProtocolEvent> &events() const { return log; }

    /** Events touching @p line, in time order. */
    std::vector<ProtocolEvent> forLine(mem::Addr line) const;

    /**
     * The message-type sequence for @p line, counting each message
     * once (at its receiver) — the transaction flow a protocol
     * diagram would show.
     */
    std::vector<MsgType> flowOf(mem::Addr line) const;

    /** Human-readable rendering of a line's flow. */
    std::string describe(mem::Addr line) const;

    void clear() { log.clear(); }
    std::size_t size() const { return log.size(); }

  private:
    std::vector<ProtocolEvent> log;
};

} // namespace gs::coher

#endif // GS_COHERENCE_TRACER_HH

/**
 * @file
 * Whole-machine coherence invariant checker for tests.
 *
 * At quiescence (no outstanding misses, victims or busy directory
 * lines) the protocol must satisfy, for every line any directory has
 * seen:
 *   - Exclusive: exactly the recorded owner caches the line, in
 *     state Exclusive or Modified; nobody else holds any copy.
 *   - Shared: every cached copy is in state Shared and belongs to a
 *     node in the sharer vector (sharers may be stale supersets
 *     because of silent evictions).
 *   - Invalid: no node caches the line in an owned state.
 * Additionally at most one node system-wide may own any line.
 */

#ifndef GS_COHERENCE_CHECKER_HH
#define GS_COHERENCE_CHECKER_HH

#include <string>
#include <vector>

#include "coherence/node.hh"

namespace gs::coher
{

/** Result of a coherence audit. */
struct CheckResult
{
    bool ok = true;
    std::string firstViolation; ///< empty when ok

    explicit operator bool() const { return ok; }
};

/**
 * Audit every directory line across @p nodes. All nodes must be
 * quiesced first; violations report the earliest offending line.
 */
CheckResult verifyCoherence(const std::vector<CoherentNode *> &nodes);

} // namespace gs::coher

#endif // GS_COHERENCE_CHECKER_HH

#include "coherence/checker.hh"

#include <sstream>

namespace gs::coher
{

namespace
{

std::string
describe(mem::Addr line, const std::string &what)
{
    std::ostringstream os;
    os << "line 0x" << std::hex << line << ": " << what;
    return os.str();
}

} // namespace

CheckResult
verifyCoherence(const std::vector<CoherentNode *> &nodes)
{
    CheckResult result;
    auto fail = [&](const std::string &msg) {
        if (result.ok) {
            result.ok = false;
            result.firstViolation = msg;
        }
    };

    for (const CoherentNode *node : nodes) {
        if (!node->quiesced()) {
            fail("node " + std::to_string(node->id()) +
                 " is not quiesced");
            return result;
        }
    }

    for (const CoherentNode *home : nodes) {
        for (mem::Addr line : home->dirLines()) {
            DirState state = home->dirState(line);
            NodeId owner = home->dirOwner(line);
            std::uint64_t sharers = home->dirSharers(line);

            int ownersFound = 0;
            for (CoherentNode *peer : nodes) {
                // Memory-only nodes (GS320 switches) have no cache.
                mem::LineState ls = peer->hasCache()
                                        ? peer->l2().state(line)
                                        : mem::LineState::Invalid;

                bool owned = ls == mem::LineState::Exclusive ||
                             ls == mem::LineState::Modified;
                if (owned)
                    ownersFound += 1;

                switch (state) {
                  case DirState::Exclusive:
                    if (peer->id() == owner) {
                        if (!owned)
                            fail(describe(line,
                                          "directory owner does not "
                                          "own its copy"));
                    } else if (ls != mem::LineState::Invalid) {
                        fail(describe(line,
                                      "non-owner holds a copy of an "
                                      "Exclusive line"));
                    }
                    break;
                  case DirState::Shared:
                    if (owned)
                        fail(describe(line,
                                      "owned copy of a Shared line"));
                    if (ls == mem::LineState::Shared &&
                        !(sharers & home->sharerBitOf(peer->id())))
                        fail(describe(line,
                                      "sharer missing from the "
                                      "directory vector"));
                    break;
                  case DirState::Invalid:
                    if (owned)
                        fail(describe(line,
                                      "owned copy of an Invalid "
                                      "line"));
                    break;
                  case DirState::Busy:
                    fail(describe(line, "directory busy at "
                                        "quiescence"));
                    break;
                }
            }
            if (ownersFound > 1)
                fail(describe(line, "multiple owners system-wide"));
        }
    }
    return result;
}

} // namespace gs::coher

#include "coherence/tracer.hh"

#include <sstream>

namespace gs::coher
{

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::RdReq:
        return "RdReq";
      case MsgType::RdModReq:
        return "RdModReq";
      case MsgType::VictimWB:
        return "VictimWB";
      case MsgType::VictimClean:
        return "VictimClean";
      case MsgType::FwdRd:
        return "FwdRd";
      case MsgType::FwdRdMod:
        return "FwdRdMod";
      case MsgType::Inval:
        return "Inval";
      case MsgType::BlkShared:
        return "BlkShared";
      case MsgType::BlkExclusive:
        return "BlkExclusive";
      case MsgType::BlkDirty:
        return "BlkDirty";
      case MsgType::WBShared:
        return "WBShared";
      case MsgType::FwdAckClean:
        return "FwdAckClean";
      case MsgType::FwdAckTransfer:
        return "FwdAckTransfer";
      case MsgType::InvalAck:
        return "InvalAck";
      case MsgType::VictimAck:
        return "VictimAck";
    }
    return "?";
}

void
ProtocolTracer::observe(CoherentNode &node)
{
    NodeId at = node.id();
    node.setMsgObserver([this, at, &node](const net::Packet &pkt,
                                          bool incoming) {
        Msg m = decode(pkt);
        ProtocolEvent ev;
        ev.when = pkt.injected; // filled for incoming; 0 when sent
        ev.at = at;
        ev.incoming = incoming;
        ev.type = m.type;
        ev.line = m.line;
        ev.requester = m.requester;
        ev.peer = incoming ? senderOf(pkt) : pkt.dst;
        log.push_back(ev);
        (void)node;
    });
}

std::vector<ProtocolEvent>
ProtocolTracer::forLine(mem::Addr line) const
{
    std::vector<ProtocolEvent> out;
    for (const auto &ev : log)
        if (ev.line == mem::lineOf(line))
            out.push_back(ev);
    return out;
}

std::vector<MsgType>
ProtocolTracer::flowOf(mem::Addr line) const
{
    std::vector<MsgType> out;
    for (const auto &ev : forLine(line))
        if (ev.incoming)
            out.push_back(ev.type);
    return out;
}

std::string
ProtocolTracer::describe(mem::Addr line) const
{
    std::ostringstream os;
    for (const auto &ev : forLine(line)) {
        if (!ev.incoming)
            continue;
        os << msgTypeName(ev.type) << "@" << ev.at << " (from "
           << ev.peer << ")\n";
    }
    return os.str();
}

} // namespace gs::coher

/**
 * @file
 * Coherence protocol messages and their packet encoding.
 *
 * The 21364 global directory protocol is a forwarding protocol
 * (Section 2 of the paper): "A requesting processor sends a Request
 * message to the directory. If the block is local, the directory is
 * updated and a Response is sent back. If the block is in Exclusive
 * state, the Forward message is sent to the owner of the block, who
 * sends the Response to the requestor and directory. If the block
 * is in Shared state (and the request is to modify the block),
 * Forward/invalidates are sent to each of the shared copies, and a
 * Response is sent to the requestor."
 *
 * Message-class mapping keeps the required acyclic class order:
 * Request -> Forward -> {BlockResponse, Ack}; responses always sink.
 */

#ifndef GS_COHERENCE_MESSAGES_HH
#define GS_COHERENCE_MESSAGES_HH

#include "mem/address.hh"
#include "net/packet.hh"

namespace gs::coher
{

/** Protocol message types. */
enum class MsgType : std::uint8_t
{
    // Requests (network class Request), requester -> home.
    RdReq,       ///< read miss
    RdModReq,    ///< write miss (data + exclusivity)
    VictimWB,    ///< dirty eviction, carries the line
    VictimClean, ///< clean-exclusive eviction notice (header only)

    // Forwards (network class Forward), home -> third party.
    FwdRd,    ///< send line to requester, downgrade to Shared
    FwdRdMod, ///< send line to requester, invalidate yourself
    Inval,    ///< invalidate; ack to the requester

    // Block responses (network class BlockResponse), carry the line.
    BlkShared,    ///< fill Shared
    BlkExclusive, ///< fill Exclusive (Modified when writing)
    BlkDirty,     ///< fill from a forwarding owner
    WBShared,     ///< owner -> home: dirty data on a FwdRd downgrade

    // Non-block responses (network class Ack).
    FwdAckClean,    ///< owner -> home: clean FwdRd downgrade
    FwdAckTransfer, ///< owner -> home: FwdRdMod ownership moved
    InvalAck,       ///< sharer -> requester
    VictimAck,      ///< home -> victim sender: buffer may retire
};

/** Number of MsgType values (per-type telemetry arrays). */
constexpr int numMsgTypes =
    static_cast<int>(MsgType::VictimAck) + 1;

/** Decoded message (payload view of a packet). */
struct Msg
{
    MsgType type = MsgType::RdReq;
    mem::Addr line = 0;
    NodeId requester = invalidNode; ///< original requester of the txn
    std::uint32_t aux = 0; ///< invalidation count / retains flag
};

/** Network class carrying @p t. */
constexpr net::MsgClass
classOf(MsgType t)
{
    switch (t) {
      case MsgType::RdReq:
      case MsgType::RdModReq:
      case MsgType::VictimWB:
      case MsgType::VictimClean:
        return net::MsgClass::Request;
      case MsgType::FwdRd:
      case MsgType::FwdRdMod:
      case MsgType::Inval:
        return net::MsgClass::Forward;
      case MsgType::BlkShared:
      case MsgType::BlkExclusive:
      case MsgType::BlkDirty:
      case MsgType::WBShared:
        return net::MsgClass::BlockResponse;
      case MsgType::FwdAckClean:
      case MsgType::FwdAckTransfer:
      case MsgType::InvalAck:
      case MsgType::VictimAck:
        return net::MsgClass::Ack;
    }
    return net::MsgClass::Request;
}

/** True when @p t carries a 64 B line (long packet). */
constexpr bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::VictimWB:
      case MsgType::BlkShared:
      case MsgType::BlkExclusive:
      case MsgType::BlkDirty:
      case MsgType::WBShared:
        return true;
      default:
        return false;
    }
}

/** Build a packet for @p m from @p src to @p dst. */
inline net::Packet
encode(const Msg &m, NodeId src, NodeId dst)
{
    net::Packet pkt;
    pkt.cls = classOf(m.type);
    pkt.src = src;
    pkt.dst = dst;
    pkt.flits = carriesData(m.type) ? net::dataFlits : net::headerFlits;
    pkt.user[0] = m.line;
    pkt.user[1] = static_cast<std::uint64_t>(m.type) |
                  (static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(m.requester))
                   << 8) |
                  (static_cast<std::uint64_t>(m.aux) << 40);
    pkt.user[2] = static_cast<std::uint64_t>(src);
    return pkt;
}

/** Recover the message from a delivered packet. */
inline Msg
decode(const net::Packet &pkt)
{
    Msg m;
    m.line = pkt.user[0];
    m.type = static_cast<MsgType>(pkt.user[1] & 0xff);
    m.requester =
        static_cast<NodeId>((pkt.user[1] >> 8) & 0xffffffffULL);
    m.aux = static_cast<std::uint32_t>(pkt.user[1] >> 40);
    return m;
}

/** Sender node recorded at encode time. */
inline NodeId
senderOf(const net::Packet &pkt)
{
    return static_cast<NodeId>(pkt.user[2]);
}

} // namespace gs::coher

#endif // GS_COHERENCE_MESSAGES_HH

/**
 * @file
 * Per-node coherence engine: the cache-side controller (MAF + victim
 * buffers + L2) and the home-side blocking directory, sharing the
 * node's network handler.
 *
 * Cache side. Misses allocate a Miss Address File entry (16 on the
 * 21364) and send RdReq/RdModReq to the line's home. Evictions of
 * owned lines allocate one of the 16 victim buffers, which hold the
 * line until the home's VictimAck — this is what lets a forward that
 * races with a victim still find the data at the old owner, exactly
 * the EV7 arrangement the paper credits for its fast Read-Dirty.
 *
 * Home side. The directory (resident in DRAM beside the data, so a
 * lookup rides the Zbox access) serializes transactions per line:
 * while a forward/inval transaction is outstanding the line is Busy
 * and later requests queue. Sharers may evict silently; exclusive
 * owners never do (VictimClean), so a forward always finds its data.
 *
 * Known benign race: a response and a later invalidation to the same
 * line may arrive out of order (different packet classes). The MAF
 * notes an invalidation seen while the miss was pending and the fill
 * then completes its waiting accesses but does not retain the line.
 */

#ifndef GS_COHERENCE_NODE_HH
#define GS_COHERENCE_NODE_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/messages.hh"
#include "mem/address.hh"
#include "mem/cache.hh"
#include "mem/zbox.hh"
#include "net/network.hh"
#include "sim/checkpoint.hh"
#include "sim/trace_span.hh"

namespace gs::coher
{

/** Directory entry states. */
enum class DirState : std::uint8_t
{
    Invalid,   ///< memory owns the line
    Shared,    ///< one or more read-only copies
    Exclusive, ///< a single owner (clean or dirty)
    Busy,      ///< transaction in flight; requests queue
};

/** Per-node configuration. */
struct NodeConfig
{
    bool hasCache = true;  ///< CPU nodes have an L2 + controller
    bool hasMemory = true; ///< home nodes have Zboxes + directory

    mem::CacheParams l2 = mem::CacheParams::ev7L2();
    mem::ZboxParams zbox = mem::ZboxParams::ev7();
    int zboxCount = 2;

    int mafEntries = 16;

    /**
     * Nodes per sharer-set bit. 1 (machines up to 64 nodes) keeps
     * the exact per-node bit vector; larger machines set
     * ceil(nodes/64) so the 64-bit word holds one bit per *group* of
     * consecutive nodes (coarse-vector encoding). A coarse Inval
     * broadcasts to every member of a marked group except the
     * requester; non-holders ack an Inval anyway, so the protocol is
     * unchanged — only Inval traffic grows. Must satisfy
     * ceil(nodes / sharerGroupSize) <= 64.
     */
    int sharerGroupSize = 1;

    /**
     * Victim buffers on the real 21364 (16). The model's buffer is
     * unbounded for deadlock-structural reasons (see node.cc); the
     * high-water stat reports how many a run actually needed.
     */
    int victimBuffers = 16;

    double homeOverheadNs = 12.0; ///< directory pipeline per txn
    double fwdServiceNs = 10.0;   ///< owner cache/VB lookup on a fwd
    double fillOverheadNs = 12.0; ///< response-to-use at requester
};

/** Cumulative per-node protocol statistics. */
struct NodeStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t mafMerges = 0;
    std::uint64_t homeRequests = 0;
    std::uint64_t forwardsServed = 0;
    std::uint64_t invalsReceived = 0;
    std::uint64_t victimsSent = 0;
    std::uint64_t vbHighWater = 0; ///< peak victim-buffer occupancy
    stats::Average missLatencyNs; ///< miss issue to fill

    /** Messages sent/received by MsgType (telemetry `proto.*`). */
    std::array<std::uint64_t, numMsgTypes> msgSent{};
    std::array<std::uint64_t, numMsgTypes> msgRecv{};
};

/**
 * The coherence engine of one node. Registers itself as the node's
 * network handler.
 */
class CoherentNode
{
  public:
    CoherentNode(SimContext &ctx, net::Network &net, NodeId id,
                 const mem::AddressMap &map, NodeConfig cfg);

    /**
     * Issue one memory access from the local core. @p done fires
     * when the access is architecturally complete (cache hit time or
     * miss fill). Never refuses; throttling is the core's job. The
     * continuation's desc makes the access checkpointable while it
     * waits in the MAF (a bare callable still works but blocks
     * snapshots while pending).
     */
    void memAccess(mem::Addr a, bool write, ckpt::Cont done);

    /** @name Introspection (tests, stats, Xmesh) */
    /// @{
    NodeId id() const { return self; }
    bool hasCache() const { return cache != nullptr; }
    bool hasMemory() const { return !zboxes.empty(); }
    mem::Cache &l2() { return *cache; }
    const mem::Cache &l2() const { return *cache; }
    mem::Zbox &zbox(int i) { return *zboxes[std::size_t(i)]; }
    int zboxCount() const { return static_cast<int>(zboxes.size()); }
    const NodeStats &stats() const { return st; }
    void clearStats();

    /** Mean utilization over this node's memory controllers. */
    double memUtilization(Tick window_start, Tick now) const;

    /**
     * Register this node's protocol stats (including per-MsgType
     * send/receive counters under `proto.sent.<Name>` /
     * `proto.recv.<Name>`) and its Zboxes (under `mem.<i>`) below
     * @p prefix (e.g. "node.12").
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);

    int outstandingMisses() const { return static_cast<int>(maf.size()); }
    int victimBufferFill() const { return static_cast<int>(vb.size()); }
    bool quiesced() const;

    /**
     * Issue time of the oldest outstanding miss, or maxTick when no
     * miss is pending. The fault watchdog's coherence probe uses this
     * to detect transactions that will never complete (e.g. their
     * response was dropped by a failed link).
     */
    Tick
    oldestMissIssued() const
    {
        Tick oldest = maxTick;
        for (const auto &ent : maf)
            oldest = ent.second.issued < oldest ? ent.second.issued
                                                : oldest;
        return oldest;
    }

    DirState dirState(mem::Addr line) const;
    std::uint64_t dirSharers(mem::Addr line) const;
    NodeId dirOwner(mem::Addr line) const;

    /** Sharer-vector bit this home uses for node @p n (group bit in
     *  coarse mode); lets the checker test membership correctly. */
    std::uint64_t sharerBitOf(NodeId n) const { return sharerBit(n); }

    /** Lines with a non-Invalid directory entry at this home. */
    std::vector<mem::Addr> dirLines() const;

    /**
     * Bytes of protocol + memory-model state this node holds right
     * now (MAF, victim buffers, directory incl. side tables, cache
     * tags, Zbox banks). Heap sizes of the hash tables are estimated
     * from bucket and element counts.
     */
    std::size_t footprintBytes() const;

    /**
     * Bytes the pre-PR-10 layout would hold for the same state:
     * eager cache tags and Zbox banks, and the fat directory entry
     * (inline transaction bookkeeping with its eagerly-allocated
     * deque chunk) for every entry. The mem.* telemetry reports
     * footprintBytes()/denseFootprintBytes() as the scaling win.
     */
    std::size_t denseFootprintBytes() const;
    /// @}

    /** Hook invoked when a line must leave the core's L1 too. */
    void setBackInvalidate(std::function<void(mem::Addr)> fn)
    {
        backInval = std::move(fn);
    }

    /**
     * Sink for IO-class packets (DMA payloads addressed to this
     * node's IO7). Without a sink they are counted and dropped.
     */
    void setIoSink(std::function<void(const net::Packet &)> fn)
    {
        ioSink = std::move(fn);
    }

    std::uint64_t ioPacketsReceived() const { return ioReceived; }

    /**
     * Observer for every coherence message this node sends or
     * receives (IO packets excluded). The tracer in tracer.hh is
     * the standard consumer.
     */
    using MsgObserver =
        std::function<void(const net::Packet &, bool incoming)>;
    void setMsgObserver(MsgObserver fn) { observer = std::move(fn); }

    /**
     * Latency x-ray collector (docs/TRACING.md). When set, every
     * miss this node issues consults the collector's deterministic
     * sampler; sampled transactions carry a trace::SpanState through
     * the protocol and complete back into the collector at fill.
     * Null (the default) keeps every hook to a single branch.
     */
    void setSpanCollector(trace::SpanCollector *c) { spans_ = c; }

    /** @name Checkpoint/restore
     *
     * Serializes the protocol engine wholesale: stats, L2 tags,
     * Zboxes, the MAF (waiter/retry continuations by descriptor,
     * deferred forwards by value), victim buffers, the directory
     * (including Busy-transaction bookkeeping and queued requests),
     * throttled core accesses and in-flight fill batches. Restore
     * rebuilds every held continuation through @p rehydrate.
     * rehydrateEvent rebuilds the callbacks of pending events this
     * node owns (Coh* descriptor kinds).
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d,
                     const ckpt::RehydrateFn &rehydrate);
    std::function<void()> rehydrateEvent(const ckpt::EventDesc &d);
    /// @}

  private:
    /** One outstanding miss. */
    struct MafEntry
    {
        bool write = false;
        bool dataArrived = false;
        bool invalWhilePending = false;
        mem::LineState fillState = mem::LineState::Shared;
        int acksNeeded = -1; ///< unknown until the data response
        int acksGot = 0;
        Tick issued = 0;
        trace::SpanState span; ///< x-ray span (reply path; id 0 = off)
        std::vector<ckpt::Cont> waiters;
        std::deque<net::Packet> deferredFwds;
        std::vector<std::pair<bool, ckpt::Cont>> retries;
    };

    /** A line held between eviction and VictimAck. */
    struct VictimEntry
    {
        bool dirty = false;
    };

    /**
     * Home-side directory entry: the hot state only. The dominant
     * machine-wide footprint at 1024P+ is this table, so the entry
     * is packed to 16 bytes; the transaction bookkeeping a line only
     * carries while a forward/inval is in flight (requester, type,
     * queued requests) lives in the dirTxns side table and is erased
     * when the transaction drains.
     */
    struct DirEntry
    {
        std::uint64_t sharers = 0;
        NodeId owner = invalidNode;
        DirState state = DirState::Invalid;
    };

    /** Busy-transaction bookkeeping, present only while needed. */
    struct DirTxn
    {
        NodeId requester = invalidNode;
        MsgType type = MsgType::RdReq;
        std::deque<Msg> pending;
    };

    // -- network plumbing ------------------------------------------
    void onPacket(const net::Packet &pkt);
    void send(MsgType type, NodeId dst, mem::Addr line, NodeId requester,
              std::uint32_t aux = 0);
    void sendAfter(double delay_ns, MsgType type, NodeId dst,
                   mem::Addr line, NodeId requester,
                   std::uint32_t aux = 0);

    // -- latency x-ray (no-ops unless spans_ is set; see TRACING.md)
    /** Move a parked span onto an outgoing carrier message. */
    void spanAttach(net::Packet &pkt, const Msg &m);
    /** Park an incoming request-path span / stash a reply-path one. */
    void spanOnRecv(const net::Packet &pkt, const Msg &m);
    /** Zbox read that advances a parked span through its Dram stage. */
    void zboxReadSpan(mem::Addr line, NodeId req, ckpt::Cont done);
    /** Close a parked span's Dram stage (zbox read completed). */
    void spanDramDone(mem::Addr line, NodeId req);

    // -- cache side -------------------------------------------------
    void startMiss(mem::Addr line, bool write, ckpt::Cont done);
    void handleResponse(const Msg &m);
    void handleInvalAck(const Msg &m);
    void tryComplete(mem::Addr line);
    void finishFill(mem::Addr line);
    void runFillBatch(std::uint64_t id);
    void evictIfNeeded(const mem::Victim &victim);
    void handleForward(const net::Packet &pkt);
    void handleVictimAck(const Msg &m);
    void pumpPendingCore();

    // -- home side ---------------------------------------------------
    /**
     * Sharer-set bit for @p n: one bit per node in exact mode
     * (cfg.sharerGroupSize == 1), one per node group otherwise.
     */
    std::uint64_t
    sharerBit(NodeId n) const
    {
        return 1ULL << (static_cast<unsigned>(n) /
                        static_cast<unsigned>(cfg.sharerGroupSize));
    }

    /** Send Inval for @p line to every sharer in @p sharers except
     *  @p req; returns the number sent (the requester's ack count). */
    int sendInvals(std::uint64_t sharers, mem::Addr line, NodeId req);

    void homeDispatch(const Msg &m);
    void homeProcess(const Msg &m);
    void homeOwnerReply(const Msg &m, NodeId from);
    void finishTxn(mem::Addr line);
    mem::Zbox &zboxFor(mem::Addr line);

    // Home transaction bodies, factored out of homeProcess /
    // homeOwnerReply so rehydrateEvent can rebuild the exact
    // callback a snapshot found pending (scheduleHome* are the
    // zbox-read continuations; applyHome* the directory updates
    // they schedule after homeOverheadNs).
    void scheduleHomeExcl(mem::Addr line, NodeId req);
    void applyHomeExcl(mem::Addr line, NodeId req);
    void scheduleHomeShared(mem::Addr line, NodeId req, bool mod);
    void applyHomeShared(mem::Addr line, NodeId req, bool mod);
    void applyHomeVictim(mem::Addr line, NodeId req);
    void applyHomeDowngrade(mem::Addr line, std::uint64_t sharers);
    void applyHomeTransfer(mem::Addr line, NodeId req);

    SimContext &ctx;
    net::Network &net_;
    NodeId self;
    const mem::AddressMap &map;
    NodeConfig cfg;
    NodeStats st;

    std::unique_ptr<mem::Cache> cache;
    std::vector<std::unique_ptr<mem::Zbox>> zboxes;

    std::unordered_map<mem::Addr, MafEntry> maf;
    std::unordered_map<mem::Addr, VictimEntry> vb;
    std::unordered_map<mem::Addr, DirEntry> dir;
    std::unordered_map<mem::Addr, DirTxn> dirTxns;

    /**
     * X-ray spans parked while this node holds their transaction
     * (requester: issue to RdReq send; home: request arrival to
     * forward/response send; owner: forward arrival to response
     * send), keyed by (line, requester). std::map for deterministic
     * checkpoint iteration. Always empty when spans_ is null.
     */
    std::map<std::pair<mem::Addr, NodeId>, trace::SpanState> parked_;
    trace::SpanCollector *spans_ = nullptr;

    /** Core accesses waiting for a free MAF slot. */
    std::deque<std::tuple<mem::Addr, bool, ckpt::Cont>> pendingCore;

    /**
     * Fill-completion waiter groups parked while their one
     * fillOverheadNs event is pending (keyed by a monotonic id the
     * event's desc carries, so snapshots can re-attach it).
     */
    std::map<std::uint64_t, std::vector<ckpt::Cont>> fillBatches;
    std::uint64_t nextFillBatch = 0;

    std::function<void(mem::Addr)> backInval;
    std::function<void(const net::Packet &)> ioSink;
    std::uint64_t ioReceived = 0;
    MsgObserver observer;
};

} // namespace gs::coher

#endif // GS_COHERENCE_NODE_HH

#include "coherence/node.hh"

#include <algorithm>

#include "coherence/tracer.hh"
#include "sim/logging.hh"

namespace gs::coher
{

namespace
{

/** Build the checkpoint descriptor for a node-owned event. */
ckpt::EventDesc
cohDesc(ckpt::EvKind kind, NodeId owner, int a = 0, int b = 0,
        int c = 0, std::uint64_t u = 0, std::uint64_t v = 0)
{
    ckpt::EventDesc d;
    d.kind = kind;
    d.owner = static_cast<std::uint16_t>(owner);
    d.a = a;
    d.b = b;
    d.c = c;
    d.u = u;
    d.v = v;
    return d;
}

} // namespace

CoherentNode::CoherentNode(SimContext &context, net::Network &network,
                           NodeId node, const mem::AddressMap &addr_map,
                           NodeConfig config)
    : ctx(context), net_(network), self(node), map(addr_map),
      cfg(config)
{
    gs_assert(cfg.sharerGroupSize >= 1 &&
                  (net_.topology().numNodes() + cfg.sharerGroupSize -
                   1) / cfg.sharerGroupSize <=
                      64,
              "sharer groups overflow the 64-bit vector");
    if (cfg.hasCache)
        cache = std::make_unique<mem::Cache>(cfg.l2);
    if (cfg.hasMemory) {
        for (int i = 0; i < cfg.zboxCount; ++i)
            zboxes.push_back(std::make_unique<mem::Zbox>(ctx, cfg.zbox));
    }
    net_.setHandler(self,
                    [this](const net::Packet &pkt) { onPacket(pkt); });
}

void
CoherentNode::clearStats()
{
    st = NodeStats{};
    if (cache)
        cache->clearStats();
    for (auto &z : zboxes)
        z->clearStats();
}

void
CoherentNode::registerTelemetry(telem::Registry &reg,
                                const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "accesses"), st.accesses);
    reg.addCounter(telem::path(prefix, "l2_hits"), st.l2Hits);
    reg.addCounter(telem::path(prefix, "misses"), st.misses);
    reg.addCounter(telem::path(prefix, "maf_merges"), st.mafMerges);
    reg.addCounter(telem::path(prefix, "home_requests"),
                   st.homeRequests);
    reg.addCounter(telem::path(prefix, "forwards_served"),
                   st.forwardsServed);
    reg.addCounter(telem::path(prefix, "invals_received"),
                   st.invalsReceived);
    reg.addCounter(telem::path(prefix, "victims_sent"),
                   st.victimsSent);
    reg.addCounter(telem::path(prefix, "vb_high_water"),
                   st.vbHighWater);
    reg.addAverage(telem::path(prefix, "miss_latency_ns"),
                   st.missLatencyNs);
    reg.addGauge(telem::path(prefix, "maf_outstanding"), [this] {
        return static_cast<double>(maf.size());
    });
    reg.addGauge(telem::path(prefix, "victim_buffer_fill"), [this] {
        return static_cast<double>(vb.size());
    });
    for (int t = 0; t < numMsgTypes; ++t) {
        const char *name = msgTypeName(static_cast<MsgType>(t));
        reg.addCounter(telem::path(prefix, "proto", "sent", name),
                       st.msgSent[static_cast<std::size_t>(t)]);
        reg.addCounter(telem::path(prefix, "proto", "recv", name),
                       st.msgRecv[static_cast<std::size_t>(t)]);
    }
    for (std::size_t z = 0; z < zboxes.size(); ++z)
        zboxes[z]->registerTelemetry(reg,
                                     telem::path(prefix, "mem", z));
}

double
CoherentNode::memUtilization(Tick window_start, Tick now) const
{
    if (zboxes.empty())
        return 0.0;
    double sum = 0;
    for (const auto &z : zboxes)
        sum += z->utilization(window_start, now);
    return sum / static_cast<double>(zboxes.size());
}

bool
CoherentNode::quiesced() const
{
    if (!maf.empty() || !vb.empty() || !pendingCore.empty())
        return false;
    for (const auto &[line, entry] : dir) {
        if (entry.state == DirState::Busy)
            return false;
    }
    for (const auto &[line, txn] : dirTxns) {
        if (!txn.pending.empty())
            return false;
    }
    return true;
}

DirState
CoherentNode::dirState(mem::Addr line) const
{
    auto it = dir.find(mem::lineOf(line));
    return it == dir.end() ? DirState::Invalid : it->second.state;
}

std::uint64_t
CoherentNode::dirSharers(mem::Addr line) const
{
    auto it = dir.find(mem::lineOf(line));
    return it == dir.end() ? 0 : it->second.sharers;
}

NodeId
CoherentNode::dirOwner(mem::Addr line) const
{
    auto it = dir.find(mem::lineOf(line));
    return it == dir.end() ? invalidNode : it->second.owner;
}

std::vector<mem::Addr>
CoherentNode::dirLines() const
{
    std::vector<mem::Addr> lines;
    for (const auto &[line, entry] : dir)
        if (entry.state != DirState::Invalid)
            lines.push_back(line);
    return lines;
}

namespace
{

/**
 * Heap estimate for a node-based unordered_map: one bucket pointer
 * per bucket plus, per element, the value and the node's link +
 * cached hash.
 */
template <typename M>
std::size_t
mapBytes(const M &m)
{
    return m.bucket_count() * sizeof(void *) +
           m.size() *
               (sizeof(typename M::value_type) + 2 * sizeof(void *));
}

} // namespace

std::size_t
CoherentNode::footprintBytes() const
{
    std::size_t b = sizeof(*this);
    if (cache)
        b += cache->footprintBytes();
    for (const auto &z : zboxes)
        b += z->footprintBytes();
    b += mapBytes(maf) + mapBytes(vb) + mapBytes(dir) +
         mapBytes(dirTxns);
    for (const auto &[line, txn] : dirTxns)
        b += txn.pending.size() * sizeof(Msg);
    b += pendingCore.size() *
         sizeof(std::tuple<mem::Addr, bool, ckpt::Cont>);
    return b;
}

std::size_t
CoherentNode::denseFootprintBytes() const
{
    std::size_t b = sizeof(*this);
    if (cache)
        b += cache->denseFootprintBytes();
    for (const auto &z : zboxes)
        b += z->denseFootprintBytes();
    b += mapBytes(maf) + mapBytes(vb);
    // The pre-split directory entry carried the transaction
    // bookkeeping inline: hot fields padded to 32 bytes plus a
    // std::deque<Msg> whose libstdc++ constructor eagerly allocates
    // its pointer map (64 B) and one 512 B element chunk.
    constexpr std::size_t fatDirEntryBytes =
        32 + sizeof(std::deque<Msg>) + 64 + 512;
    b += dir.bucket_count() * sizeof(void *) +
         dir.size() *
             (sizeof(mem::Addr) + fatDirEntryBytes + 2 * sizeof(void *));
    b += pendingCore.size() *
         sizeof(std::tuple<mem::Addr, bool, ckpt::Cont>);
    return b;
}

// ---------------------------------------------------------------------
// Network plumbing
// ---------------------------------------------------------------------

void
CoherentNode::send(MsgType type, NodeId dst, mem::Addr line,
                   NodeId requester, std::uint32_t aux)
{
    Msg m;
    m.type = type;
    m.line = line;
    m.requester = requester;
    m.aux = aux;
    st.msgSent[static_cast<std::size_t>(type)] += 1;
    net::Packet pkt = encode(m, self, dst);
    if (spans_)
        spanAttach(pkt, m);
    if (observer)
        observer(pkt, /*incoming=*/false);
    net_.inject(pkt);
}

// ---------------------------------------------------------------------
// Latency x-ray hooks (docs/TRACING.md)
// ---------------------------------------------------------------------

void
CoherentNode::spanAttach(net::Packet &pkt, const Msg &m)
{
    // Carrier messages are the ones that move a transaction between
    // nodes: the request to the home, a forward to the owner, and
    // the data response back. Everything else (invalidates, acks,
    // victim traffic) belongs to other transactions or is overlap
    // the requester never waits on alone.
    bool reply = false;
    switch (m.type) {
      case MsgType::RdReq:
      case MsgType::RdModReq:
        if (m.requester != self)
            return;
        break;
      case MsgType::FwdRd:
      case MsgType::FwdRdMod:
        break;
      case MsgType::BlkShared:
      case MsgType::BlkExclusive:
      case MsgType::BlkDirty:
        reply = true;
        break;
      default:
        return;
    }
    auto it = parked_.find({m.line, m.requester});
    if (it == parked_.end())
        return;
    trace::SpanState ss = it->second;
    parked_.erase(it);
    if (reply) {
        // The whole return trip (network, ack waits, fill overhead)
        // is attributed to Reply, so the routers stop splitting.
        ss.advance(ctx.now(), trace::Reply);
        ss.phase = 1;
    }
    pkt.span = ss;
}

void
CoherentNode::spanOnRecv(const net::Packet &pkt, const Msg &m)
{
    if (pkt.span.phase == 1) {
        // Response at the requester: keep accumulating Reply until
        // the fill completes; the span waits on the MAF entry.
        auto it = maf.find(m.line);
        if (it != maf.end())
            it->second.span = pkt.span;
        return;
    }
    // Request or forward arriving at the node that will service it:
    // close the network stage and park under directory occupancy
    // (queueing behind a busy line and owner service both count).
    trace::SpanState ss = pkt.span;
    ss.advance(ctx.now(), trace::Directory);
    parked_[{m.line, m.requester}] = ss;
}

void
CoherentNode::zboxReadSpan(mem::Addr line, NodeId req, ckpt::Cont done)
{
    if (spans_) {
        auto it = parked_.find({line, req});
        if (it != parked_.end()) {
            it->second.advance(ctx.now(), trace::Dram);
            mem::AccessBreakdown bd;
            zboxFor(line).read(line, std::move(done), bd);
            it->second.dramQueue += bd.queueWait;
            return;
        }
    }
    zboxFor(line).read(line, std::move(done));
}

void
CoherentNode::spanDramDone(mem::Addr line, NodeId req)
{
    if (!spans_)
        return;
    auto it = parked_.find({line, req});
    if (it != parked_.end() && it->second.stage == trace::Dram)
        it->second.advance(ctx.now(), trace::Directory);
}

void
CoherentNode::sendAfter(double delay_ns, MsgType type, NodeId dst,
                        mem::Addr line, NodeId requester,
                        std::uint32_t aux)
{
    ctx.queue().schedule(nsToTicks(delay_ns),
                         cohDesc(ckpt::CohSendMsg, self,
                                 static_cast<int>(type), dst, requester,
                                 line, aux),
                         [this, type, dst, line, requester, aux] {
        send(type, dst, line, requester, aux);
    });
}

void
CoherentNode::onPacket(const net::Packet &pkt)
{
    if (pkt.cls == net::MsgClass::IO) {
        ioReceived += 1;
        if (ioSink)
            ioSink(pkt);
        return;
    }

    if (observer)
        observer(pkt, /*incoming=*/true);

    Msg m = decode(pkt);
    st.msgRecv[static_cast<std::size_t>(m.type)] += 1;
    if (pkt.span.id != 0)
        spanOnRecv(pkt, m);
    switch (m.type) {
      case MsgType::RdReq:
      case MsgType::RdModReq:
      case MsgType::VictimWB:
      case MsgType::VictimClean:
        gs_assert(cfg.hasMemory, "home request at memory-less node ",
                  self);
        st.homeRequests += 1;
        homeDispatch(m);
        break;
      case MsgType::FwdRd:
      case MsgType::FwdRdMod:
      case MsgType::Inval:
        handleForward(pkt);
        break;
      case MsgType::BlkShared:
      case MsgType::BlkExclusive:
      case MsgType::BlkDirty:
        handleResponse(m);
        break;
      case MsgType::WBShared:
      case MsgType::FwdAckClean:
      case MsgType::FwdAckTransfer:
        homeOwnerReply(m, senderOf(pkt));
        break;
      case MsgType::InvalAck:
        handleInvalAck(m);
        break;
      case MsgType::VictimAck:
        handleVictimAck(m);
        break;
    }
}

// ---------------------------------------------------------------------
// Cache side
// ---------------------------------------------------------------------

void
CoherentNode::memAccess(mem::Addr a, bool write, ckpt::Cont done)
{
    gs_assert(cfg.hasCache, "memAccess on cache-less node ", self);
    mem::Addr line = mem::lineOf(a);
    st.accesses += 1;

    auto access = cache->lookup(line, write);
    bool upgradeNeeded =
        write && access.hit && access.state == mem::LineState::Shared;

    if (access.hit && !upgradeNeeded) {
        if (write)
            cache->setState(line, mem::LineState::Modified);
        st.l2Hits += 1;
        if (done)
            ctx.queue().schedule(nsToTicks(cfg.l2.loadToUseNs),
                                 done.desc, std::move(done.fn));
        return;
    }

    st.misses += 1;

    auto it = maf.find(line);
    if (it != maf.end()) {
        MafEntry &entry = it->second;
        if (write && !entry.write) {
            // A write cannot merge into a read miss whose request is
            // already on the wire; retry once the read fill lands.
            entry.retries.emplace_back(true, std::move(done));
        } else {
            st.mafMerges += 1;
            if (done)
                entry.waiters.push_back(std::move(done));
        }
        return;
    }

    if (static_cast<int>(maf.size()) >= cfg.mafEntries) {
        pendingCore.emplace_back(line, write, std::move(done));
        return;
    }
    startMiss(line, write, std::move(done));
}

void
CoherentNode::startMiss(mem::Addr line, bool write, ckpt::Cont done)
{
    MafEntry entry;
    entry.write = write;
    entry.issued = ctx.now();
    if (done)
        entry.waiters.push_back(std::move(done));
    maf.emplace(line, std::move(entry));

    if (spans_) {
        if (std::uint64_t sid = spans_->sampleMiss(self)) {
            trace::SpanState ss;
            ss.id = sid;
            ss.begin = ctx.now();
            ss.mark = ctx.now();
            ss.stage = trace::Inject;
            parked_[{line, self}] = ss;
        }
    }

    NodeId home = map.home(line).node;
    // The miss is detected after the L2 tag lookup.
    sendAfter(cfg.l2.loadToUseNs,
              write ? MsgType::RdModReq : MsgType::RdReq, home, line,
              self);
}

void
CoherentNode::handleResponse(const Msg &m)
{
    auto it = maf.find(m.line);
    gs_assert(it != maf.end(), "response without MAF entry, node ",
              self);
    MafEntry &entry = it->second;

    switch (m.type) {
      case MsgType::BlkShared:
        gs_assert(!entry.write, "shared fill for a write miss");
        entry.fillState = mem::LineState::Shared;
        break;
      case MsgType::BlkExclusive:
        entry.fillState = entry.write ? mem::LineState::Modified
                                      : mem::LineState::Exclusive;
        break;
      case MsgType::BlkDirty:
        entry.fillState = entry.write ? mem::LineState::Modified
                                      : mem::LineState::Shared;
        break;
      default:
        gs_panic("bad response type");
    }
    entry.acksNeeded = static_cast<int>(m.aux);
    entry.dataArrived = true;
    tryComplete(m.line);
}

void
CoherentNode::handleInvalAck(const Msg &m)
{
    auto it = maf.find(m.line);
    gs_assert(it != maf.end(), "InvalAck without MAF entry");
    it->second.acksGot += 1;
    tryComplete(m.line);
}

void
CoherentNode::tryComplete(mem::Addr line)
{
    auto it = maf.find(line);
    gs_assert(it != maf.end());
    MafEntry &entry = it->second;
    if (!entry.dataArrived || entry.acksNeeded < 0 ||
        entry.acksGot < entry.acksNeeded)
        return;

    finishFill(line);
}

void
CoherentNode::finishFill(mem::Addr line)
{
    auto it = maf.find(line);
    gs_assert(it != maf.end());
    MafEntry entry = std::move(it->second);
    maf.erase(it);

    st.missLatencyNs.sample(ticksToNs(ctx.now() - entry.issued));

    if (spans_ && entry.span.id != 0) {
        // Close the Reply stage at the same instant missLatencyNs
        // samples, so a span's stage sum equals the measured
        // end-to-end miss latency exactly.
        entry.span.advance(ctx.now(), trace::Reply);
        spans_->complete(self, entry.span, ctx.now());
    }

    if (entry.invalWhilePending && !entry.write) {
        // The line was invalidated under us (response/forward class
        // reordering). Complete the waiting accesses with the data
        // but do not retain the line.
    } else if (cache->contains(line)) {
        // Write upgrade: the Shared copy is still resident.
        cache->setState(line, entry.fillState);
    } else {
        mem::Victim victim = cache->fill(line, entry.fillState);
        evictIfNeeded(victim);
    }

    if (!entry.waiters.empty()) {
        // Park the waiters in fillBatches rather than capturing them
        // in the event: the batch id in the event's desc is all a
        // snapshot needs to re-attach the (serializable) group.
        const std::uint64_t id = nextFillBatch++;
        fillBatches.emplace(id, std::move(entry.waiters));
        ctx.queue().schedule(
            nsToTicks(cfg.fillOverheadNs),
            cohDesc(ckpt::CohFillBatch, self, 0, 0, 0, id),
            [this, id] { runFillBatch(id); });
    }

    // Forwards that raced with the miss can be serviced now.
    for (const auto &pkt : entry.deferredFwds)
        handleForward(pkt);

    for (auto &[write, done] : entry.retries)
        memAccess(line, write, std::move(done));

    pumpPendingCore();
}

void
CoherentNode::runFillBatch(std::uint64_t id)
{
    auto it = fillBatches.find(id);
    gs_assert(it != fillBatches.end(), "fill batch ", id, " vanished");
    std::vector<ckpt::Cont> waiters = std::move(it->second);
    fillBatches.erase(it);
    for (const auto &w : waiters)
        w();
}

void
CoherentNode::evictIfNeeded(const mem::Victim &victim)
{
    if (!victim.valid())
        return;
    if (backInval)
        backInval(victim.line);
    if (victim.state == mem::LineState::Shared)
        return; // silent eviction; the directory may keep a stale bit

    st.victimsSent += 1;
    vb.emplace(victim.line, VictimEntry{victim.dirty()});
    st.vbHighWater = std::max(st.vbHighWater,
                              static_cast<std::uint64_t>(vb.size()));
    NodeId home = map.home(victim.line).node;
    send(victim.dirty() ? MsgType::VictimWB : MsgType::VictimClean,
         home, victim.line, self);
}

void
CoherentNode::handleForward(const net::Packet &pkt)
{
    Msg m = decode(pkt);
    mem::Addr line = m.line;

    if (auto it = maf.find(line); it != maf.end()) {
        if (m.type == MsgType::Inval) {
            it->second.invalWhilePending = true;
            if (cache->state(line) == mem::LineState::Shared) {
                cache->invalidate(line);
                if (backInval)
                    backInval(line);
            }
            st.invalsReceived += 1;
            sendAfter(cfg.fwdServiceNs, MsgType::InvalAck, m.requester,
                      line, m.requester);
            return;
        }
        // A data forward with a victim buffer entry alongside the
        // MAF targets our *old* ownership (we evicted and are
        // re-acquiring; our new request is queued behind this very
        // transaction at the home). It must be served from the
        // victim buffer now — deferring it behind the MAF would
        // deadlock the home against our queued request. Without a
        // VB entry the forward targets the fill still in flight to
        // us, so it waits for that fill.
        if (!vb.count(line)) {
            it->second.deferredFwds.push_back(pkt);
            return;
        }
    }

    NodeId home = map.home(line).node;
    auto cacheState =
        cache ? cache->state(line) : mem::LineState::Invalid;

    switch (m.type) {
      case MsgType::Inval:
        st.invalsReceived += 1;
        if (cacheState == mem::LineState::Shared) {
            cache->invalidate(line);
            if (backInval)
                backInval(line);
        }
        // An Inval reaching a current owner is necessarily stale
        // (our ownership was granted after it was sent): ignore it.
        sendAfter(cfg.fwdServiceNs, MsgType::InvalAck, m.requester,
                  line, m.requester);
        break;

      case MsgType::FwdRd:
        st.forwardsServed += 1;
        if (cacheState == mem::LineState::Modified) {
            cache->setState(line, mem::LineState::Shared);
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::WBShared, home, line,
                      m.requester, /*retains=*/1);
        } else if (cacheState == mem::LineState::Exclusive) {
            cache->setState(line, mem::LineState::Shared);
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::FwdAckClean, home,
                      line, m.requester, /*retains=*/1);
        } else if (auto vit = vb.find(line); vit != vb.end()) {
            // Serve from the victim buffer; the entry stays until
            // VictimAck but we no longer cache the line.
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs,
                      vit->second.dirty ? MsgType::WBShared
                                        : MsgType::FwdAckClean,
                      home, line, m.requester, /*retains=*/0);
        } else {
            gs_panic("FwdRd found no data at node ", self, " line ",
                     line);
        }
        break;

      case MsgType::FwdRdMod:
        st.forwardsServed += 1;
        if (cacheState == mem::LineState::Modified ||
            cacheState == mem::LineState::Exclusive) {
            cache->invalidate(line);
            if (backInval)
                backInval(line);
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::FwdAckTransfer, home,
                      line, m.requester);
        } else if (vb.count(line)) {
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::FwdAckTransfer, home,
                      line, m.requester);
        } else {
            gs_panic("FwdRdMod found no data at node ", self, " line ",
                     line);
        }
        break;

      default:
        gs_panic("bad forward type");
    }
}

void
CoherentNode::handleVictimAck(const Msg &m)
{
    auto it = vb.find(m.line);
    gs_assert(it != vb.end(), "VictimAck without victim buffer");
    vb.erase(it);
}

void
CoherentNode::pumpPendingCore()
{
    while (!pendingCore.empty() &&
           static_cast<int>(maf.size()) < cfg.mafEntries) {
        auto [line, write, done] = std::move(pendingCore.front());
        pendingCore.pop_front();
        memAccess(line, write, std::move(done));
    }
}

// ---------------------------------------------------------------------
// Home side
// ---------------------------------------------------------------------

mem::Zbox &
CoherentNode::zboxFor(mem::Addr line)
{
    mem::MemTarget target = map.home(line);
    gs_assert(target.node == self, "wrong home: line ", line,
              " maps to ", target.node, ", processed at ", self);
    return *zboxes[static_cast<std::size_t>(target.mc) %
                   zboxes.size()];
}

void
CoherentNode::homeDispatch(const Msg &m)
{
    DirEntry &entry = dir[m.line];

    if (entry.state == DirState::Busy) {
        dirTxns[m.line].pending.push_back(m);
        return;
    }
    // An owner re-requesting its own line means its victim message
    // is still in flight; hold the request until the victim lands.
    if ((m.type == MsgType::RdReq || m.type == MsgType::RdModReq) &&
        entry.state == DirState::Exclusive &&
        entry.owner == m.requester) {
        dirTxns[m.line].pending.push_back(m);
        return;
    }
    homeProcess(m);
}

void
CoherentNode::homeProcess(const Msg &m)
{
    DirEntry &entry = dir[m.line];
    const mem::Addr line = m.line;
    const NodeId req = m.requester;

    switch (m.type) {
      case MsgType::RdReq:
      case MsgType::RdModReq:
        if (entry.state == DirState::Invalid) {
            entry.state = DirState::Busy;
            zboxReadSpan(
                line, req,
                ckpt::Cont(cohDesc(ckpt::CohHomeReadExcl, self, req, 0,
                                   0, line),
                           [this, line, req] {
                               scheduleHomeExcl(line, req);
                           }));
        } else if (entry.state == DirState::Shared) {
            entry.state = DirState::Busy;
            bool mod = m.type == MsgType::RdModReq;
            zboxReadSpan(
                line, req,
                ckpt::Cont(cohDesc(ckpt::CohHomeReadShared, self, req,
                                   mod ? 1 : 0, 0, line),
                           [this, line, req, mod] {
                               scheduleHomeShared(line, req, mod);
                           }));
        } else { // Exclusive at a third party: forward.
            gs_assert(entry.owner != req, "owner re-request reached "
                                          "homeProcess");
            DirTxn &txn = dirTxns[line];
            txn.requester = req;
            txn.type = m.type;
            NodeId owner = entry.owner;
            entry.state = DirState::Busy;
            sendAfter(cfg.homeOverheadNs,
                      m.type == MsgType::RdReq ? MsgType::FwdRd
                                               : MsgType::FwdRdMod,
                      owner, line, req);
        }
        break;

      case MsgType::VictimWB:
      case MsgType::VictimClean:
        if (entry.state == DirState::Exclusive && entry.owner == req) {
            entry.state = DirState::Busy;
            bool dirty = m.type == MsgType::VictimWB;
            if (dirty)
                zboxFor(line).write(line);
            ctx.queue().schedule(
                nsToTicks(cfg.homeOverheadNs),
                cohDesc(ckpt::CohHomeApplyVictim, self, req, 0, 0,
                        line),
                [this, line, req] { applyHomeVictim(line, req); });
        } else {
            // Stale victim: its line was already forwarded away from
            // the sender's victim buffer. Ack and drop the data.
            sendAfter(cfg.homeOverheadNs, MsgType::VictimAck, req,
                      line, req);
        }
        break;

      default:
        gs_panic("bad home request type");
    }
}

void
CoherentNode::scheduleHomeExcl(mem::Addr line, NodeId req)
{
    spanDramDone(line, req);
    ctx.queue().schedule(
        nsToTicks(cfg.homeOverheadNs),
        cohDesc(ckpt::CohHomeApplyExcl, self, req, 0, 0, line),
        [this, line, req] { applyHomeExcl(line, req); });
}

void
CoherentNode::applyHomeExcl(mem::Addr line, NodeId req)
{
    DirEntry &e = dir[line];
    e.state = DirState::Exclusive;
    e.owner = req;
    e.sharers = 0;
    send(MsgType::BlkExclusive, req, line, req, 0);
    finishTxn(line);
}

void
CoherentNode::scheduleHomeShared(mem::Addr line, NodeId req, bool mod)
{
    spanDramDone(line, req);
    ctx.queue().schedule(
        nsToTicks(cfg.homeOverheadNs),
        cohDesc(ckpt::CohHomeApplyShared, self, req, mod ? 1 : 0, 0,
                line),
        [this, line, req, mod] { applyHomeShared(line, req, mod); });
}

int
CoherentNode::sendInvals(std::uint64_t sharers, mem::Addr line,
                         NodeId req)
{
    int count = 0;
    if (cfg.sharerGroupSize == 1) {
        std::uint64_t others = sharers & ~sharerBit(req);
        for (NodeId n = 0; others; ++n, others >>= 1) {
            if (others & 1) {
                send(MsgType::Inval, n, line, req);
                count += 1;
            }
        }
        return count;
    }
    // Coarse mode: the requester's presence cannot be masked out of
    // its group bit, so it is skipped at emission instead. Spurious
    // Invals to group members that never held the line are safe —
    // every node acks an Inval — and the ack count handed to the
    // requester matches the sends exactly.
    const int group = cfg.sharerGroupSize;
    const int nodes = net_.topology().numNodes();
    for (int g = 0; sharers; ++g, sharers >>= 1) {
        if (!(sharers & 1))
            continue;
        const int hi = std::min((g + 1) * group, nodes);
        for (int n = g * group; n < hi; ++n) {
            if (n == req)
                continue;
            send(MsgType::Inval, static_cast<NodeId>(n), line, req);
            count += 1;
        }
    }
    return count;
}

void
CoherentNode::applyHomeShared(mem::Addr line, NodeId req, bool mod)
{
    DirEntry &e = dir[line];
    if (!mod) {
        e.sharers |= sharerBit(req);
        e.state = DirState::Shared;
        send(MsgType::BlkShared, req, line, req, 0);
    } else {
        int count = sendInvals(e.sharers, line, req);
        e.sharers = 0;
        e.owner = req;
        e.state = DirState::Exclusive;
        send(MsgType::BlkExclusive, req, line, req,
             static_cast<std::uint32_t>(count));
    }
    finishTxn(line);
}

void
CoherentNode::applyHomeVictim(mem::Addr line, NodeId req)
{
    DirEntry &e = dir[line];
    e.state = DirState::Invalid;
    e.owner = invalidNode;
    e.sharers = 0;
    send(MsgType::VictimAck, req, line, req);
    finishTxn(line);
}

void
CoherentNode::applyHomeDowngrade(mem::Addr line, std::uint64_t sharers)
{
    DirEntry &e = dir[line];
    e.state = DirState::Shared;
    e.sharers = sharers;
    e.owner = invalidNode;
    finishTxn(line);
}

void
CoherentNode::applyHomeTransfer(mem::Addr line, NodeId req)
{
    DirEntry &e = dir[line];
    e.state = DirState::Exclusive;
    e.owner = req;
    e.sharers = 0;
    finishTxn(line);
}

void
CoherentNode::homeOwnerReply(const Msg &m, NodeId from)
{
    auto it = dir.find(m.line);
    gs_assert(it != dir.end() && it->second.state == DirState::Busy,
              "owner reply without busy transaction");
    auto tit = dirTxns.find(m.line);
    gs_assert(tit != dirTxns.end(),
              "owner reply without transaction record");
    const mem::Addr line = m.line;
    const NodeId req = tit->second.requester;

    switch (m.type) {
      case MsgType::WBShared:
      case MsgType::FwdAckClean: {
        gs_assert(tit->second.type == MsgType::RdReq,
                  "downgrade reply for a non-read transaction");
        if (m.type == MsgType::WBShared)
            zboxFor(line).write(line);
        bool retains = m.aux != 0;
        std::uint64_t sharers = sharerBit(req);
        if (retains)
            sharers |= sharerBit(from);
        ctx.queue().schedule(
            nsToTicks(cfg.homeOverheadNs),
            cohDesc(ckpt::CohHomeApplyDowngrade, self, 0, 0, 0, line,
                    sharers),
            [this, line, sharers] { applyHomeDowngrade(line, sharers); });
        break;
      }
      case MsgType::FwdAckTransfer:
        gs_assert(tit->second.type == MsgType::RdModReq,
                  "transfer reply for a non-write transaction");
        ctx.queue().schedule(
            nsToTicks(cfg.homeOverheadNs),
            cohDesc(ckpt::CohHomeApplyTransfer, self, req, 0, 0, line),
            [this, line, req] { applyHomeTransfer(line, req); });
        break;
      default:
        gs_panic("bad owner reply type");
    }
}

void
CoherentNode::finishTxn(mem::Addr line)
{
    gs_assert(dir[line].state != DirState::Busy,
              "finishTxn before the final state was applied");

    // Re-dispatch each queued message at most once: a message may
    // defer itself again (owner re-request waiting for its victim),
    // in which case it lands back in the entry's pending queue and
    // must not spin here.
    std::deque<Msg> work;
    if (auto tit = dirTxns.find(line); tit != dirTxns.end())
        work = std::move(tit->second.pending);
    while (!work.empty()) {
        Msg m = work.front();
        work.pop_front();
        homeDispatch(m);
        if (dir[line].state == DirState::Busy)
            break;
    }
    // Anything not processed keeps its order ahead of new deferrals.
    if (!work.empty()) {
        auto &pending = dirTxns[line].pending;
        for (auto it = work.rbegin(); it != work.rend(); ++it)
            pending.push_front(*it);
    }

    // Reclaim the side-table record once the line has no in-flight
    // transaction and nothing queued, and drop Invalid entries from
    // the hot table entirely — the directory's footprint tracks the
    // lines a home *currently* tracks, not every line it ever saw.
    if (auto tit = dirTxns.find(line);
        tit != dirTxns.end() && tit->second.pending.empty() &&
        dir[line].state != DirState::Busy)
        dirTxns.erase(tit);
    if (auto dit = dir.find(line);
        dit != dir.end() && dit->second.state == DirState::Invalid &&
        dirTxns.find(line) == dirTxns.end())
        dir.erase(dit);
}

// ---------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------

namespace
{

/** Deterministic iteration order over an unordered_map's keys. */
template <typename M>
std::vector<typename M::key_type>
sortedKeys(const M &m)
{
    std::vector<typename M::key_type> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
saveMsg(ckpt::Serializer &s, const Msg &m)
{
    s.put8(static_cast<std::uint8_t>(m.type));
    s.put64(m.line);
    s.putI32(m.requester);
    s.put32(m.aux);
}

Msg
restoreMsg(ckpt::Deserializer &d)
{
    Msg m;
    m.type = static_cast<MsgType>(d.get8());
    m.line = d.get64();
    m.requester = d.getI32();
    m.aux = d.get32();
    return m;
}

} // namespace

void
CoherentNode::saveCkpt(ckpt::Serializer &s) const
{
    s.put64(st.accesses);
    s.put64(st.l2Hits);
    s.put64(st.misses);
    s.put64(st.mafMerges);
    s.put64(st.homeRequests);
    s.put64(st.forwardsServed);
    s.put64(st.invalsReceived);
    s.put64(st.victimsSent);
    s.put64(st.vbHighWater);
    st.missLatencyNs.saveCkpt(s);
    for (std::uint64_t n : st.msgSent)
        s.put64(n);
    for (std::uint64_t n : st.msgRecv)
        s.put64(n);

    s.putBool(cache != nullptr);
    if (cache)
        cache->saveCkpt(s);
    s.put32(static_cast<std::uint32_t>(zboxes.size()));
    for (const auto &z : zboxes)
        z->saveCkpt(s);

    s.put32(static_cast<std::uint32_t>(maf.size()));
    for (mem::Addr line : sortedKeys(maf)) {
        const MafEntry &e = maf.at(line);
        s.put64(line);
        s.putBool(e.write);
        s.putBool(e.dataArrived);
        s.putBool(e.invalWhilePending);
        s.put8(static_cast<std::uint8_t>(e.fillState));
        s.putI32(e.acksNeeded);
        s.putI32(e.acksGot);
        s.put64(e.issued);
        trace::saveSpan(s, e.span);
        s.put32(static_cast<std::uint32_t>(e.waiters.size()));
        for (const ckpt::Cont &w : e.waiters)
            ckpt::saveCont(s, w, "a MAF waiter");
        s.put32(static_cast<std::uint32_t>(e.deferredFwds.size()));
        for (const net::Packet &p : e.deferredFwds)
            net::savePacket(s, p);
        s.put32(static_cast<std::uint32_t>(e.retries.size()));
        for (const auto &[write, done] : e.retries) {
            s.putBool(write);
            ckpt::saveCont(s, done, "a MAF retry");
        }
    }

    s.put32(static_cast<std::uint32_t>(vb.size()));
    for (mem::Addr line : sortedKeys(vb)) {
        s.put64(line);
        s.putBool(vb.at(line).dirty);
    }

    s.put32(static_cast<std::uint32_t>(dir.size()));
    for (mem::Addr line : sortedKeys(dir)) {
        const DirEntry &e = dir.at(line);
        s.put64(line);
        s.put8(static_cast<std::uint8_t>(e.state));
        s.put64(e.sharers);
        s.putI32(e.owner);
        // Transaction bookkeeping lives in the side table; entries
        // without a record serialise the idle placeholder values.
        auto tit = dirTxns.find(line);
        const NodeId txnReq =
            tit == dirTxns.end() ? invalidNode : tit->second.requester;
        const MsgType txnType =
            tit == dirTxns.end() ? MsgType::RdReq : tit->second.type;
        s.putI32(txnReq);
        s.put8(static_cast<std::uint8_t>(txnType));
        if (tit == dirTxns.end()) {
            s.put32(0);
        } else {
            s.put32(static_cast<std::uint32_t>(
                tit->second.pending.size()));
            for (const Msg &m : tit->second.pending)
                saveMsg(s, m);
        }
    }

    s.put32(static_cast<std::uint32_t>(pendingCore.size()));
    for (const auto &[line, write, done] : pendingCore) {
        s.put64(line);
        s.putBool(write);
        ckpt::saveCont(s, done, "a throttled core access");
    }

    s.put32(static_cast<std::uint32_t>(fillBatches.size()));
    for (const auto &[id, waiters] : fillBatches) {
        s.put64(id);
        s.put32(static_cast<std::uint32_t>(waiters.size()));
        for (const ckpt::Cont &w : waiters)
            ckpt::saveCont(s, w, "a fill-batch waiter");
    }
    s.put64(nextFillBatch);
    s.put64(ioReceived);

    s.put32(static_cast<std::uint32_t>(parked_.size()));
    for (const auto &[key, ss] : parked_) {
        s.put64(key.first);
        s.putI32(key.second);
        trace::saveSpan(s, ss);
    }
}

void
CoherentNode::restoreCkpt(ckpt::Deserializer &d,
                          const ckpt::RehydrateFn &rehydrate)
{
    st.accesses = d.get64();
    st.l2Hits = d.get64();
    st.misses = d.get64();
    st.mafMerges = d.get64();
    st.homeRequests = d.get64();
    st.forwardsServed = d.get64();
    st.invalsReceived = d.get64();
    st.victimsSent = d.get64();
    st.vbHighWater = d.get64();
    st.missLatencyNs.restoreCkpt(d);
    for (std::uint64_t &n : st.msgSent)
        n = d.get64();
    for (std::uint64_t &n : st.msgRecv)
        n = d.get64();

    if (d.getBool() != (cache != nullptr) && d.ok()) {
        d.fail("snapshot node " + std::to_string(self) +
               " cache presence differs from this machine");
        return;
    }
    if (cache)
        cache->restoreCkpt(d);
    if (d.get32() != zboxes.size() && d.ok()) {
        d.fail("snapshot node " + std::to_string(self) +
               " Zbox count differs from this machine");
        return;
    }
    for (auto &z : zboxes)
        z->restoreCkpt(d);

    maf.clear();
    std::uint32_t nMaf = d.get32();
    for (std::uint32_t i = 0; i < nMaf && d.ok(); ++i) {
        mem::Addr line = d.get64();
        MafEntry e;
        e.write = d.getBool();
        e.dataArrived = d.getBool();
        e.invalWhilePending = d.getBool();
        e.fillState = static_cast<mem::LineState>(d.get8());
        e.acksNeeded = d.getI32();
        e.acksGot = d.getI32();
        e.issued = d.get64();
        trace::restoreSpan(d, e.span);
        std::uint32_t nw = d.get32();
        for (std::uint32_t w = 0; w < nw && d.ok(); ++w)
            e.waiters.push_back(
                ckpt::restoreCont(d, rehydrate, "a MAF waiter"));
        std::uint32_t nf = d.get32();
        for (std::uint32_t f = 0; f < nf && d.ok(); ++f) {
            net::Packet p;
            net::restorePacket(d, p);
            e.deferredFwds.push_back(p);
        }
        std::uint32_t nr = d.get32();
        for (std::uint32_t r = 0; r < nr && d.ok(); ++r) {
            bool write = d.getBool();
            e.retries.emplace_back(
                write, ckpt::restoreCont(d, rehydrate, "a MAF retry"));
        }
        maf.emplace(line, std::move(e));
    }

    vb.clear();
    std::uint32_t nVb = d.get32();
    for (std::uint32_t i = 0; i < nVb && d.ok(); ++i) {
        mem::Addr line = d.get64();
        vb.emplace(line, VictimEntry{d.getBool()});
    }

    dir.clear();
    dirTxns.clear();
    std::uint32_t nDir = d.get32();
    for (std::uint32_t i = 0; i < nDir && d.ok(); ++i) {
        mem::Addr line = d.get64();
        DirEntry e;
        e.state = static_cast<DirState>(d.get8());
        e.sharers = d.get64();
        e.owner = d.getI32();
        const NodeId txnReq = d.getI32();
        const auto txnType = static_cast<MsgType>(d.get8());
        std::uint32_t np = d.get32();
        if (txnReq != invalidNode || np > 0) {
            DirTxn txn;
            txn.requester = txnReq;
            txn.type = txnType;
            for (std::uint32_t p = 0; p < np && d.ok(); ++p)
                txn.pending.push_back(restoreMsg(d));
            dirTxns.emplace(line, std::move(txn));
        }
        dir.emplace(line, e);
    }

    pendingCore.clear();
    std::uint32_t nPend = d.get32();
    for (std::uint32_t i = 0; i < nPend && d.ok(); ++i) {
        mem::Addr line = d.get64();
        bool write = d.getBool();
        pendingCore.emplace_back(
            line, write,
            ckpt::restoreCont(d, rehydrate, "a throttled core access"));
    }

    fillBatches.clear();
    std::uint32_t nBatch = d.get32();
    for (std::uint32_t i = 0; i < nBatch && d.ok(); ++i) {
        std::uint64_t id = d.get64();
        std::vector<ckpt::Cont> waiters;
        std::uint32_t nw = d.get32();
        for (std::uint32_t w = 0; w < nw && d.ok(); ++w)
            waiters.push_back(
                ckpt::restoreCont(d, rehydrate, "a fill-batch waiter"));
        fillBatches.emplace(id, std::move(waiters));
    }
    nextFillBatch = d.get64();
    ioReceived = d.get64();

    parked_.clear();
    std::uint32_t nParked = d.get32();
    for (std::uint32_t i = 0; i < nParked && d.ok(); ++i) {
        mem::Addr line = d.get64();
        NodeId req = d.getI32();
        trace::SpanState ss;
        trace::restoreSpan(d, ss);
        parked_.emplace(std::make_pair(line, req), ss);
    }
}

std::function<void()>
CoherentNode::rehydrateEvent(const ckpt::EventDesc &d)
{
    switch (d.kind) {
      case ckpt::CohSendMsg: {
        const auto type = static_cast<MsgType>(d.a);
        const NodeId dst = d.b;
        const NodeId requester = d.c;
        const mem::Addr line = d.u;
        const auto aux = static_cast<std::uint32_t>(d.v);
        return [this, type, dst, line, requester, aux] {
            send(type, dst, line, requester, aux);
        };
      }
      case ckpt::CohFillBatch: {
        const std::uint64_t id = d.u;
        return [this, id] { runFillBatch(id); };
      }
      case ckpt::CohHomeReadExcl: {
        const mem::Addr line = d.u;
        const NodeId req = d.a;
        return [this, line, req] { scheduleHomeExcl(line, req); };
      }
      case ckpt::CohHomeApplyExcl: {
        const mem::Addr line = d.u;
        const NodeId req = d.a;
        return [this, line, req] { applyHomeExcl(line, req); };
      }
      case ckpt::CohHomeReadShared: {
        const mem::Addr line = d.u;
        const NodeId req = d.a;
        const bool mod = d.b != 0;
        return
            [this, line, req, mod] { scheduleHomeShared(line, req, mod); };
      }
      case ckpt::CohHomeApplyShared: {
        const mem::Addr line = d.u;
        const NodeId req = d.a;
        const bool mod = d.b != 0;
        return
            [this, line, req, mod] { applyHomeShared(line, req, mod); };
      }
      case ckpt::CohHomeApplyVictim: {
        const mem::Addr line = d.u;
        const NodeId req = d.a;
        return [this, line, req] { applyHomeVictim(line, req); };
      }
      case ckpt::CohHomeApplyDowngrade: {
        const mem::Addr line = d.u;
        const std::uint64_t sharers = d.v;
        return
            [this, line, sharers] { applyHomeDowngrade(line, sharers); };
      }
      case ckpt::CohHomeApplyTransfer: {
        const mem::Addr line = d.u;
        const NodeId req = d.a;
        return [this, line, req] { applyHomeTransfer(line, req); };
      }
      default:
        return {};
    }
}

} // namespace gs::coher

#include "coherence/node.hh"

#include <algorithm>

#include "coherence/tracer.hh"
#include "sim/logging.hh"

namespace gs::coher
{

namespace
{

/** Sharer bitmask helpers (up to 64 nodes, the GS1280 maximum). */
constexpr std::uint64_t
bitOf(NodeId n)
{
    return 1ULL << static_cast<unsigned>(n);
}

} // namespace

CoherentNode::CoherentNode(SimContext &context, net::Network &network,
                           NodeId node, const mem::AddressMap &addr_map,
                           NodeConfig config)
    : ctx(context), net_(network), self(node), map(addr_map),
      cfg(config)
{
    if (cfg.hasCache)
        cache = std::make_unique<mem::Cache>(cfg.l2);
    if (cfg.hasMemory) {
        for (int i = 0; i < cfg.zboxCount; ++i)
            zboxes.push_back(std::make_unique<mem::Zbox>(ctx, cfg.zbox));
    }
    net_.setHandler(self,
                    [this](const net::Packet &pkt) { onPacket(pkt); });
}

void
CoherentNode::clearStats()
{
    st = NodeStats{};
    if (cache)
        cache->clearStats();
    for (auto &z : zboxes)
        z->clearStats();
}

void
CoherentNode::registerTelemetry(telem::Registry &reg,
                                const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "accesses"), st.accesses);
    reg.addCounter(telem::path(prefix, "l2_hits"), st.l2Hits);
    reg.addCounter(telem::path(prefix, "misses"), st.misses);
    reg.addCounter(telem::path(prefix, "maf_merges"), st.mafMerges);
    reg.addCounter(telem::path(prefix, "home_requests"),
                   st.homeRequests);
    reg.addCounter(telem::path(prefix, "forwards_served"),
                   st.forwardsServed);
    reg.addCounter(telem::path(prefix, "invals_received"),
                   st.invalsReceived);
    reg.addCounter(telem::path(prefix, "victims_sent"),
                   st.victimsSent);
    reg.addCounter(telem::path(prefix, "vb_high_water"),
                   st.vbHighWater);
    reg.addAverage(telem::path(prefix, "miss_latency_ns"),
                   st.missLatencyNs);
    reg.addGauge(telem::path(prefix, "maf_outstanding"), [this] {
        return static_cast<double>(maf.size());
    });
    reg.addGauge(telem::path(prefix, "victim_buffer_fill"), [this] {
        return static_cast<double>(vb.size());
    });
    for (int t = 0; t < numMsgTypes; ++t) {
        const char *name = msgTypeName(static_cast<MsgType>(t));
        reg.addCounter(telem::path(prefix, "proto", "sent", name),
                       st.msgSent[static_cast<std::size_t>(t)]);
        reg.addCounter(telem::path(prefix, "proto", "recv", name),
                       st.msgRecv[static_cast<std::size_t>(t)]);
    }
    for (std::size_t z = 0; z < zboxes.size(); ++z)
        zboxes[z]->registerTelemetry(reg,
                                     telem::path(prefix, "mem", z));
}

double
CoherentNode::memUtilization(Tick window_start, Tick now) const
{
    if (zboxes.empty())
        return 0.0;
    double sum = 0;
    for (const auto &z : zboxes)
        sum += z->utilization(window_start, now);
    return sum / static_cast<double>(zboxes.size());
}

bool
CoherentNode::quiesced() const
{
    if (!maf.empty() || !vb.empty() || !pendingCore.empty())
        return false;
    for (const auto &[line, entry] : dir) {
        if (entry.state == DirState::Busy || !entry.pending.empty())
            return false;
    }
    return true;
}

DirState
CoherentNode::dirState(mem::Addr line) const
{
    auto it = dir.find(mem::lineOf(line));
    return it == dir.end() ? DirState::Invalid : it->second.state;
}

std::uint64_t
CoherentNode::dirSharers(mem::Addr line) const
{
    auto it = dir.find(mem::lineOf(line));
    return it == dir.end() ? 0 : it->second.sharers;
}

NodeId
CoherentNode::dirOwner(mem::Addr line) const
{
    auto it = dir.find(mem::lineOf(line));
    return it == dir.end() ? invalidNode : it->second.owner;
}

std::vector<mem::Addr>
CoherentNode::dirLines() const
{
    std::vector<mem::Addr> lines;
    for (const auto &[line, entry] : dir)
        if (entry.state != DirState::Invalid)
            lines.push_back(line);
    return lines;
}

// ---------------------------------------------------------------------
// Network plumbing
// ---------------------------------------------------------------------

void
CoherentNode::send(MsgType type, NodeId dst, mem::Addr line,
                   NodeId requester, std::uint32_t aux)
{
    Msg m;
    m.type = type;
    m.line = line;
    m.requester = requester;
    m.aux = aux;
    st.msgSent[static_cast<std::size_t>(type)] += 1;
    net::Packet pkt = encode(m, self, dst);
    if (observer)
        observer(pkt, /*incoming=*/false);
    net_.inject(pkt);
}

void
CoherentNode::sendAfter(double delay_ns, MsgType type, NodeId dst,
                        mem::Addr line, NodeId requester,
                        std::uint32_t aux)
{
    ctx.queue().schedule(nsToTicks(delay_ns),
                         [this, type, dst, line, requester, aux] {
        send(type, dst, line, requester, aux);
    });
}

void
CoherentNode::onPacket(const net::Packet &pkt)
{
    if (pkt.cls == net::MsgClass::IO) {
        ioReceived += 1;
        if (ioSink)
            ioSink(pkt);
        return;
    }

    if (observer)
        observer(pkt, /*incoming=*/true);

    Msg m = decode(pkt);
    st.msgRecv[static_cast<std::size_t>(m.type)] += 1;
    switch (m.type) {
      case MsgType::RdReq:
      case MsgType::RdModReq:
      case MsgType::VictimWB:
      case MsgType::VictimClean:
        gs_assert(cfg.hasMemory, "home request at memory-less node ",
                  self);
        st.homeRequests += 1;
        homeDispatch(m);
        break;
      case MsgType::FwdRd:
      case MsgType::FwdRdMod:
      case MsgType::Inval:
        handleForward(pkt);
        break;
      case MsgType::BlkShared:
      case MsgType::BlkExclusive:
      case MsgType::BlkDirty:
        handleResponse(m);
        break;
      case MsgType::WBShared:
      case MsgType::FwdAckClean:
      case MsgType::FwdAckTransfer:
        homeOwnerReply(m, senderOf(pkt));
        break;
      case MsgType::InvalAck:
        handleInvalAck(m);
        break;
      case MsgType::VictimAck:
        handleVictimAck(m);
        break;
    }
}

// ---------------------------------------------------------------------
// Cache side
// ---------------------------------------------------------------------

void
CoherentNode::memAccess(mem::Addr a, bool write,
                        std::function<void()> done)
{
    gs_assert(cfg.hasCache, "memAccess on cache-less node ", self);
    mem::Addr line = mem::lineOf(a);
    st.accesses += 1;

    auto access = cache->lookup(line, write);
    bool upgradeNeeded =
        write && access.hit && access.state == mem::LineState::Shared;

    if (access.hit && !upgradeNeeded) {
        if (write)
            cache->setState(line, mem::LineState::Modified);
        st.l2Hits += 1;
        if (done)
            ctx.queue().schedule(nsToTicks(cfg.l2.loadToUseNs),
                                 std::move(done));
        return;
    }

    st.misses += 1;

    auto it = maf.find(line);
    if (it != maf.end()) {
        MafEntry &entry = it->second;
        if (write && !entry.write) {
            // A write cannot merge into a read miss whose request is
            // already on the wire; retry once the read fill lands.
            entry.retries.emplace_back(true, std::move(done));
        } else {
            st.mafMerges += 1;
            if (done)
                entry.waiters.push_back(std::move(done));
        }
        return;
    }

    if (static_cast<int>(maf.size()) >= cfg.mafEntries) {
        pendingCore.emplace_back(line, write, std::move(done));
        return;
    }
    startMiss(line, write, std::move(done));
}

void
CoherentNode::startMiss(mem::Addr line, bool write,
                        std::function<void()> done)
{
    MafEntry entry;
    entry.write = write;
    entry.issued = ctx.now();
    if (done)
        entry.waiters.push_back(std::move(done));
    maf.emplace(line, std::move(entry));

    NodeId home = map.home(line).node;
    // The miss is detected after the L2 tag lookup.
    sendAfter(cfg.l2.loadToUseNs,
              write ? MsgType::RdModReq : MsgType::RdReq, home, line,
              self);
}

void
CoherentNode::handleResponse(const Msg &m)
{
    auto it = maf.find(m.line);
    gs_assert(it != maf.end(), "response without MAF entry, node ",
              self);
    MafEntry &entry = it->second;

    switch (m.type) {
      case MsgType::BlkShared:
        gs_assert(!entry.write, "shared fill for a write miss");
        entry.fillState = mem::LineState::Shared;
        break;
      case MsgType::BlkExclusive:
        entry.fillState = entry.write ? mem::LineState::Modified
                                      : mem::LineState::Exclusive;
        break;
      case MsgType::BlkDirty:
        entry.fillState = entry.write ? mem::LineState::Modified
                                      : mem::LineState::Shared;
        break;
      default:
        gs_panic("bad response type");
    }
    entry.acksNeeded = static_cast<int>(m.aux);
    entry.dataArrived = true;
    tryComplete(m.line);
}

void
CoherentNode::handleInvalAck(const Msg &m)
{
    auto it = maf.find(m.line);
    gs_assert(it != maf.end(), "InvalAck without MAF entry");
    it->second.acksGot += 1;
    tryComplete(m.line);
}

void
CoherentNode::tryComplete(mem::Addr line)
{
    auto it = maf.find(line);
    gs_assert(it != maf.end());
    MafEntry &entry = it->second;
    if (!entry.dataArrived || entry.acksNeeded < 0 ||
        entry.acksGot < entry.acksNeeded)
        return;

    finishFill(line);
}

void
CoherentNode::finishFill(mem::Addr line)
{
    auto it = maf.find(line);
    gs_assert(it != maf.end());
    MafEntry entry = std::move(it->second);
    maf.erase(it);

    st.missLatencyNs.sample(ticksToNs(ctx.now() - entry.issued));

    if (entry.invalWhilePending && !entry.write) {
        // The line was invalidated under us (response/forward class
        // reordering). Complete the waiting accesses with the data
        // but do not retain the line.
    } else if (cache->contains(line)) {
        // Write upgrade: the Shared copy is still resident.
        cache->setState(line, entry.fillState);
    } else {
        mem::Victim victim = cache->fill(line, entry.fillState);
        evictIfNeeded(victim);
    }

    if (!entry.waiters.empty()) {
        ctx.queue().schedule(
            nsToTicks(cfg.fillOverheadNs),
            [waiters = std::move(entry.waiters)] {
            for (const auto &w : waiters)
                w();
        });
    }

    // Forwards that raced with the miss can be serviced now.
    for (const auto &pkt : entry.deferredFwds)
        handleForward(pkt);

    for (auto &[write, done] : entry.retries)
        memAccess(line, write, std::move(done));

    pumpPendingCore();
}

void
CoherentNode::evictIfNeeded(const mem::Victim &victim)
{
    if (!victim.valid())
        return;
    if (backInval)
        backInval(victim.line);
    if (victim.state == mem::LineState::Shared)
        return; // silent eviction; the directory may keep a stale bit

    st.victimsSent += 1;
    vb.emplace(victim.line, VictimEntry{victim.dirty()});
    st.vbHighWater = std::max(st.vbHighWater,
                              static_cast<std::uint64_t>(vb.size()));
    NodeId home = map.home(victim.line).node;
    send(victim.dirty() ? MsgType::VictimWB : MsgType::VictimClean,
         home, victim.line, self);
}

void
CoherentNode::handleForward(const net::Packet &pkt)
{
    Msg m = decode(pkt);
    mem::Addr line = m.line;

    if (auto it = maf.find(line); it != maf.end()) {
        if (m.type == MsgType::Inval) {
            it->second.invalWhilePending = true;
            if (cache->state(line) == mem::LineState::Shared) {
                cache->invalidate(line);
                if (backInval)
                    backInval(line);
            }
            st.invalsReceived += 1;
            sendAfter(cfg.fwdServiceNs, MsgType::InvalAck, m.requester,
                      line, m.requester);
            return;
        }
        // A data forward with a victim buffer entry alongside the
        // MAF targets our *old* ownership (we evicted and are
        // re-acquiring; our new request is queued behind this very
        // transaction at the home). It must be served from the
        // victim buffer now — deferring it behind the MAF would
        // deadlock the home against our queued request. Without a
        // VB entry the forward targets the fill still in flight to
        // us, so it waits for that fill.
        if (!vb.count(line)) {
            it->second.deferredFwds.push_back(pkt);
            return;
        }
    }

    NodeId home = map.home(line).node;
    auto cacheState =
        cache ? cache->state(line) : mem::LineState::Invalid;

    switch (m.type) {
      case MsgType::Inval:
        st.invalsReceived += 1;
        if (cacheState == mem::LineState::Shared) {
            cache->invalidate(line);
            if (backInval)
                backInval(line);
        }
        // An Inval reaching a current owner is necessarily stale
        // (our ownership was granted after it was sent): ignore it.
        sendAfter(cfg.fwdServiceNs, MsgType::InvalAck, m.requester,
                  line, m.requester);
        break;

      case MsgType::FwdRd:
        st.forwardsServed += 1;
        if (cacheState == mem::LineState::Modified) {
            cache->setState(line, mem::LineState::Shared);
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::WBShared, home, line,
                      m.requester, /*retains=*/1);
        } else if (cacheState == mem::LineState::Exclusive) {
            cache->setState(line, mem::LineState::Shared);
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::FwdAckClean, home,
                      line, m.requester, /*retains=*/1);
        } else if (auto vit = vb.find(line); vit != vb.end()) {
            // Serve from the victim buffer; the entry stays until
            // VictimAck but we no longer cache the line.
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs,
                      vit->second.dirty ? MsgType::WBShared
                                        : MsgType::FwdAckClean,
                      home, line, m.requester, /*retains=*/0);
        } else {
            gs_panic("FwdRd found no data at node ", self, " line ",
                     line);
        }
        break;

      case MsgType::FwdRdMod:
        st.forwardsServed += 1;
        if (cacheState == mem::LineState::Modified ||
            cacheState == mem::LineState::Exclusive) {
            cache->invalidate(line);
            if (backInval)
                backInval(line);
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::FwdAckTransfer, home,
                      line, m.requester);
        } else if (vb.count(line)) {
            sendAfter(cfg.fwdServiceNs, MsgType::BlkDirty, m.requester,
                      line, m.requester);
            sendAfter(cfg.fwdServiceNs, MsgType::FwdAckTransfer, home,
                      line, m.requester);
        } else {
            gs_panic("FwdRdMod found no data at node ", self, " line ",
                     line);
        }
        break;

      default:
        gs_panic("bad forward type");
    }
}

void
CoherentNode::handleVictimAck(const Msg &m)
{
    auto it = vb.find(m.line);
    gs_assert(it != vb.end(), "VictimAck without victim buffer");
    vb.erase(it);
}

void
CoherentNode::pumpPendingCore()
{
    while (!pendingCore.empty() &&
           static_cast<int>(maf.size()) < cfg.mafEntries) {
        auto [line, write, done] = std::move(pendingCore.front());
        pendingCore.pop_front();
        memAccess(line, write, std::move(done));
    }
}

// ---------------------------------------------------------------------
// Home side
// ---------------------------------------------------------------------

mem::Zbox &
CoherentNode::zboxFor(mem::Addr line)
{
    mem::MemTarget target = map.home(line);
    gs_assert(target.node == self, "wrong home: line ", line,
              " maps to ", target.node, ", processed at ", self);
    return *zboxes[static_cast<std::size_t>(target.mc) %
                   zboxes.size()];
}

void
CoherentNode::homeDispatch(const Msg &m)
{
    DirEntry &entry = dir[m.line];

    if (entry.state == DirState::Busy) {
        entry.pending.push_back(m);
        return;
    }
    // An owner re-requesting its own line means its victim message
    // is still in flight; hold the request until the victim lands.
    if ((m.type == MsgType::RdReq || m.type == MsgType::RdModReq) &&
        entry.state == DirState::Exclusive &&
        entry.owner == m.requester) {
        entry.pending.push_back(m);
        return;
    }
    homeProcess(m);
}

void
CoherentNode::homeProcess(const Msg &m)
{
    DirEntry &entry = dir[m.line];
    const mem::Addr line = m.line;
    const NodeId req = m.requester;

    switch (m.type) {
      case MsgType::RdReq:
      case MsgType::RdModReq:
        if (entry.state == DirState::Invalid) {
            entry.state = DirState::Busy;
            zboxFor(line).read(line, [this, line, req] {
                ctx.queue().schedule(nsToTicks(cfg.homeOverheadNs),
                                     [this, line, req] {
                    DirEntry &e = dir[line];
                    e.state = DirState::Exclusive;
                    e.owner = req;
                    e.sharers = 0;
                    send(MsgType::BlkExclusive, req, line, req, 0);
                    finishTxn(line);
                });
            });
        } else if (entry.state == DirState::Shared) {
            entry.state = DirState::Busy;
            bool mod = m.type == MsgType::RdModReq;
            zboxFor(line).read(line, [this, line, req, mod] {
                ctx.queue().schedule(nsToTicks(cfg.homeOverheadNs),
                                     [this, line, req, mod] {
                    DirEntry &e = dir[line];
                    if (!mod) {
                        e.sharers |= bitOf(req);
                        e.state = DirState::Shared;
                        send(MsgType::BlkShared, req, line, req, 0);
                    } else {
                        std::uint64_t others =
                            e.sharers & ~bitOf(req);
                        int count = 0;
                        for (NodeId n = 0; others; ++n, others >>= 1) {
                            if (others & 1) {
                                send(MsgType::Inval, n, line, req);
                                count += 1;
                            }
                        }
                        e.sharers = 0;
                        e.owner = req;
                        e.state = DirState::Exclusive;
                        send(MsgType::BlkExclusive, req, line, req,
                             static_cast<std::uint32_t>(count));
                    }
                    finishTxn(line);
                });
            });
        } else { // Exclusive at a third party: forward.
            gs_assert(entry.owner != req, "owner re-request reached "
                                          "homeProcess");
            entry.txnRequester = req;
            entry.txnType = m.type;
            NodeId owner = entry.owner;
            entry.state = DirState::Busy;
            sendAfter(cfg.homeOverheadNs,
                      m.type == MsgType::RdReq ? MsgType::FwdRd
                                               : MsgType::FwdRdMod,
                      owner, line, req);
        }
        break;

      case MsgType::VictimWB:
      case MsgType::VictimClean:
        if (entry.state == DirState::Exclusive && entry.owner == req) {
            entry.state = DirState::Busy;
            bool dirty = m.type == MsgType::VictimWB;
            if (dirty)
                zboxFor(line).write(line);
            ctx.queue().schedule(nsToTicks(cfg.homeOverheadNs),
                                 [this, line, req] {
                DirEntry &e = dir[line];
                e.state = DirState::Invalid;
                e.owner = invalidNode;
                e.sharers = 0;
                send(MsgType::VictimAck, req, line, req);
                finishTxn(line);
            });
        } else {
            // Stale victim: its line was already forwarded away from
            // the sender's victim buffer. Ack and drop the data.
            sendAfter(cfg.homeOverheadNs, MsgType::VictimAck, req,
                      line, req);
        }
        break;

      default:
        gs_panic("bad home request type");
    }
}

void
CoherentNode::homeOwnerReply(const Msg &m, NodeId from)
{
    auto it = dir.find(m.line);
    gs_assert(it != dir.end() && it->second.state == DirState::Busy,
              "owner reply without busy transaction");
    DirEntry &entry = it->second;
    const mem::Addr line = m.line;
    const NodeId req = entry.txnRequester;

    switch (m.type) {
      case MsgType::WBShared:
      case MsgType::FwdAckClean: {
        gs_assert(entry.txnType == MsgType::RdReq,
                  "downgrade reply for a non-read transaction");
        if (m.type == MsgType::WBShared)
            zboxFor(line).write(line);
        bool retains = m.aux != 0;
        std::uint64_t sharers = bitOf(req);
        if (retains)
            sharers |= bitOf(from);
        ctx.queue().schedule(nsToTicks(cfg.homeOverheadNs),
                             [this, line, sharers] {
            DirEntry &e = dir[line];
            e.state = DirState::Shared;
            e.sharers = sharers;
            e.owner = invalidNode;
            finishTxn(line);
        });
        break;
      }
      case MsgType::FwdAckTransfer:
        gs_assert(entry.txnType == MsgType::RdModReq,
                  "transfer reply for a non-write transaction");
        ctx.queue().schedule(nsToTicks(cfg.homeOverheadNs),
                             [this, line, req] {
            DirEntry &e = dir[line];
            e.state = DirState::Exclusive;
            e.owner = req;
            e.sharers = 0;
            finishTxn(line);
        });
        break;
      default:
        gs_panic("bad owner reply type");
    }
}

void
CoherentNode::finishTxn(mem::Addr line)
{
    gs_assert(dir[line].state != DirState::Busy,
              "finishTxn before the final state was applied");

    // Re-dispatch each queued message at most once: a message may
    // defer itself again (owner re-request waiting for its victim),
    // in which case it lands back in the entry's pending queue and
    // must not spin here.
    std::deque<Msg> work = std::move(dir[line].pending);
    dir[line].pending.clear();
    while (!work.empty()) {
        Msg m = work.front();
        work.pop_front();
        homeDispatch(m);
        if (dir[line].state == DirState::Busy)
            break;
    }
    // Anything not processed keeps its order ahead of new deferrals.
    DirEntry &entry = dir[line];
    for (auto it = work.rbegin(); it != work.rend(); ++it)
        entry.pending.push_front(*it);
}

} // namespace gs::coher

/**
 * @file
 * A Topology decorator that masks failed links and routers.
 *
 * The GS1280's torus was designed for graceful degradation: every
 * node pair has multiple minimal paths, so the machine can route
 * around a broken cable or a dead router, where the GS320's switch
 * hierarchy has single points of failure. DegradedTopology is the
 * routing side of that story: it wraps any base Topology and
 * re-answers the routing relations over the surviving graph.
 *
 *  - port() hides masked links (both directions at once);
 *  - adaptivePorts() re-derives minimality on the surviving graph:
 *    a candidate hop must strictly decrease the BFS distance to the
 *    destination. (Filtering the base topology's minimal set is not
 *    enough: a base-minimal hop can move *away* from the target in
 *    the degraded graph and livelock against the escape route.)
 *  - escapeRoute() falls back from the base topology's scheme
 *    (dimension-order with a dateline on tori) to up/down routing
 *    on a BFS-derived spanning forest of the surviving graph: up
 *    hops toward the root use escape VC0, down hops VC1, which is
 *    deadlock-free on any graph because no path ever turns up again
 *    after going down.
 *
 * Pay-for-use: while nothing is failed, every routing query
 * delegates verbatim to the base topology, so a fault-capable build
 * is bit-identical to one without the fault layer.
 */

#ifndef GS_FAULT_DEGRADED_HH
#define GS_FAULT_DEGRADED_HH

#include <vector>

#include "sim/checkpoint.hh"
#include "topology/topology.hh"

namespace gs::fault
{

/** A live view of a base topology minus its failed elements. */
class DegradedTopology : public topo::Topology
{
  public:
    explicit DegradedTopology(const topo::Topology &base);

    /** @name Topology interface (delegating, fault-masked) */
    /// @{
    int numNodes() const override { return base_.numNodes(); }
    int numCpuNodes() const override { return base_.numCpuNodes(); }
    int numPorts(NodeId n) const override { return base_.numPorts(n); }
    topo::Port port(NodeId node, int port) const override;
    std::string name() const override;

    topo::PortSet
    adaptivePorts(NodeId at, NodeId dst, int hopsTaken) const override;

    topo::EscapeHop
    escapeRoute(NodeId at, NodeId dst, int curVc) const override;
    /// @}

    /** @name Fault state mutation
     *
     * Callers that wired a Network over this topology must notify it
     * afterwards (Network::onTopologyChange); FaultInjector does both.
     */
    /// @{

    /** Fail the link behind (node, port), in both directions. */
    void failLink(NodeId node, int port);

    /** Undo failLink. */
    void repairLink(NodeId node, int port);

    /** Fail a whole router: all its links drop. */
    void failNode(NodeId node);

    /** Undo failNode (independently failed links stay failed). */
    void repairNode(NodeId node);
    /// @}

    /** @name Fault state inspection */
    /// @{
    bool degraded() const { return nFailedLinks > 0 || nFailedNodes > 0; }
    int failedLinks() const { return nFailedLinks; }
    int failedNodes() const { return nFailedNodes; }
    bool linkFailed(NodeId node, int port) const;
    bool nodeFailed(NodeId node) const
    {
        return dead[static_cast<std::size_t>(node)] != 0;
    }

    /** True when the surviving fabric still routes at -> dst. */
    bool reachable(NodeId at, NodeId dst) const;

    const topo::Topology &base() const { return base_; }
    /// @}

    /** @name Checkpoint/restore: fault masks (escape state is
     *  recomputed from them, never serialized). */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put32(static_cast<std::uint32_t>(cut.size()));
        for (const auto &ports : cut) {
            s.put32(static_cast<std::uint32_t>(ports.size()));
            for (char c : ports)
                s.put8(static_cast<std::uint8_t>(c));
        }
        for (char c : dead)
            s.put8(static_cast<std::uint8_t>(c));
        s.putI32(nFailedLinks);
        s.putI32(nFailedNodes);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        if (d.get32() != cut.size() && d.ok()) {
            d.fail("snapshot topology node count differs from this "
                   "machine");
            return;
        }
        for (auto &ports : cut) {
            if (d.get32() != ports.size() && d.ok()) {
                d.fail("snapshot topology port count differs from "
                       "this machine");
                return;
            }
            for (char &c : ports)
                c = static_cast<char>(d.get8());
        }
        for (char &c : dead)
            c = static_cast<char>(d.get8());
        nFailedLinks = d.getI32();
        nFailedNodes = d.getI32();
        if (d.ok() && degraded())
            rebuild();
    }
    /// @}

  private:
    /** Both endpoints live and the link itself not cut? */
    bool alive(NodeId node, int port, const topo::Port &link) const;

    /** Recompute the escape forest and next-hop table. */
    void rebuild();

    const topo::Topology &base_;

    std::vector<std::vector<char>> cut; ///< per-(node, port) link mask
    std::vector<char> dead;             ///< per-node router mask
    int nFailedLinks = 0;
    int nFailedNodes = 0;

    /** @name Up/down escape state (valid while degraded()) */
    /// @{
    std::vector<NodeId> parent;   ///< BFS forest parent (invalidNode = root)
    std::vector<int> parentPort;  ///< port from node toward its parent
    std::vector<NodeId> comp;     ///< connected-component id per node
    std::vector<topo::EscapeHop> esc; ///< next hop, indexed [dst * N + at]
    std::vector<int> dist; ///< surviving-graph hops, [dst * N + at]
    /// @}
};

} // namespace gs::fault

#endif // GS_FAULT_DEGRADED_HH

/**
 * @file
 * Scheduled fault injection for the interconnect fabric.
 *
 * A FaultPlan is a declarative list of link/router failures (and
 * optional repairs) at absolute simulation times. A FaultInjector
 * binds one plan at a time to a (Network, DegradedTopology) pair:
 * applying an event mutates the topology mask, resyncs the routers,
 * and flushes the buffers of a dying router. Packets that lose
 * their destination — buffered toward a now-unreachable node, on
 * the wire into a dead router, or injected from/to one — are
 * dropped and accounted per reason in FaultStats.
 *
 * Packets merely *buffered along* a failed link are not lost: the
 * router re-evaluates routes every cycle, so they re-route over the
 * surviving graph automatically (minimal-adaptive where possible,
 * the up/down escape otherwise).
 */

#ifndef GS_FAULT_INJECTOR_HH
#define GS_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/degraded.hh"
#include "net/network.hh"
#include "sim/checkpoint.hh"

namespace gs::fault
{

/** What a scheduled fault event does. */
enum class FaultKind : std::uint8_t
{
    LinkDown,
    LinkUp,
    NodeDown,
    NodeUp,
};

/** One scheduled fault. */
struct FaultEvent
{
    Tick when = 0;
    FaultKind kind = FaultKind::LinkDown;
    NodeId node = invalidNode;
    int port = -1; ///< unused for node events
};

/** A declarative failure/repair schedule. */
class FaultPlan
{
  public:
    FaultPlan &linkDown(Tick when, NodeId node, int port)
    {
        ev.push_back({when, FaultKind::LinkDown, node, port});
        return *this;
    }
    FaultPlan &linkUp(Tick when, NodeId node, int port)
    {
        ev.push_back({when, FaultKind::LinkUp, node, port});
        return *this;
    }
    FaultPlan &nodeDown(Tick when, NodeId node)
    {
        ev.push_back({when, FaultKind::NodeDown, node, -1});
        return *this;
    }
    FaultPlan &nodeUp(Tick when, NodeId node)
    {
        ev.push_back({when, FaultKind::NodeUp, node, -1});
        return *this;
    }

    const std::vector<FaultEvent> &events() const { return ev; }
    bool empty() const { return ev.empty(); }

  private:
    std::vector<FaultEvent> ev;
};

/** Cumulative fault-layer statistics. */
struct FaultStats
{
    int linkFailures = 0;
    int nodeFailures = 0;
    int repairs = 0;

    std::uint64_t packetsDropped = 0;   ///< total, all causes
    std::uint64_t dropsUnroutable = 0;  ///< destination unreachable
    std::uint64_t dropsDeadNode = 0;    ///< at/from/to a dead router
};

/** Applies fault events to a fabric and accounts the fallout. */
class FaultInjector
{
  public:
    /**
     * @p topo must be the same object @p net routes over; the
     * injector registers itself as the network's drop observer.
     */
    FaultInjector(SimContext &ctx, net::Network &net,
                  DegradedTopology &topo);

    /** Schedule every event of @p plan on the simulation clock. */
    void schedule(const FaultPlan &plan);

    /** Apply one event immediately. */
    void apply(const FaultEvent &event);

    /** @name Immediate convenience mutations */
    /// @{
    void failLink(NodeId node, int port)
    {
        apply({0, FaultKind::LinkDown, node, port});
    }
    void repairLink(NodeId node, int port)
    {
        apply({0, FaultKind::LinkUp, node, port});
    }
    void failNode(NodeId node)
    {
        apply({0, FaultKind::NodeDown, node, -1});
    }
    void repairNode(NodeId node)
    {
        apply({0, FaultKind::NodeUp, node, -1});
    }
    /// @}

    const FaultStats &stats() const { return st; }
    DegradedTopology &fabric() { return topo_; }
    const DegradedTopology &fabric() const { return topo_; }

    /**
     * Register drop and failure accounting under @p prefix
     * (conventionally "fault"): `<prefix>.drops.{total, unroutable,
     * dead_node}` plus failure/repair event gauges.
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);

    /**
     * Stop applying scheduled fault events (pending FaultApply
     * events become no-ops). The watchdog's heal-faults rollback
     * policy uses this so a restored run does not immediately
     * re-inject the fault that wedged it.
     */
    void suppressFaults() { suppress_ = true; }
    bool faultsSuppressed() const { return suppress_; }

    /** @name Checkpoint/restore: statistics + suppression flag.
     *
     * Pending FaultApply events live in the event queue; the whole
     * FaultEvent is encoded in the descriptor operands, so
     * rehydrateEvent rebuilds them without a plan replay.
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d);
    std::function<void()> rehydrateEvent(const ckpt::EventDesc &d);
    /// @}

  private:
    SimContext &ctx;
    net::Network &net_;
    DegradedTopology &topo_;
    FaultStats st;
    bool suppress_ = false;
};

} // namespace gs::fault

#endif // GS_FAULT_INJECTOR_HH

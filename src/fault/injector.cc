#include "fault/injector.hh"

#include <cstring>

#include "sim/logging.hh"

namespace gs::fault
{

FaultInjector::FaultInjector(SimContext &context, net::Network &net,
                             DegradedTopology &topo)
    : ctx(context), net_(net), topo_(topo)
{
    gs_assert(&net.topology() == &topo,
              "injector's topology is not the one the network routes "
              "over");
    net_.setDropHook([this](NodeId, const net::Packet &,
                            const char *why) {
        st.packetsDropped += 1;
        if (std::strcmp(why, "unroutable") == 0)
            st.dropsUnroutable += 1;
        else
            st.dropsDeadNode += 1;
    });
    // A topology that was degraded before the network attached still
    // needs the routers' port state brought in line.
    if (topo_.degraded())
        net_.onTopologyChange();
}

void
FaultInjector::schedule(const FaultPlan &plan)
{
    for (const FaultEvent &event : plan.events()) {
        ctx.queue().scheduleAt(event.when,
                               [this, event] { apply(event); });
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    // A bad node/port names hardware that doesn't exist — a user
    // error in the fault plan, not a simulator bug.
    if (event.node < 0 || event.node >= topo_.numNodes())
        gs_fatal("fault event: node ", event.node, " out of range [0,",
                 topo_.numNodes(), ")");
    const bool linkEvent = event.kind == FaultKind::LinkDown ||
                           event.kind == FaultKind::LinkUp;
    if (linkEvent &&
        (event.port < 0 || event.port >= topo_.numPorts(event.node)))
        gs_fatal("fault event: node ", event.node, " port ", event.port,
                 " out of range [0,", topo_.numPorts(event.node), ")");
    switch (event.kind) {
      case FaultKind::LinkDown:
        topo_.failLink(event.node, event.port);
        st.linkFailures += 1;
        break;
      case FaultKind::LinkUp:
        topo_.repairLink(event.node, event.port);
        st.repairs += 1;
        break;
      case FaultKind::NodeDown:
        topo_.failNode(event.node);
        // Masks first, then flush: the dying router's buffered
        // packets drop without crediting across dead links.
        net_.setNodeFailed(event.node, true);
        st.nodeFailures += 1;
        break;
      case FaultKind::NodeUp:
        topo_.repairNode(event.node);
        net_.setNodeFailed(event.node, false);
        st.repairs += 1;
        break;
    }
    net_.onTopologyChange();
}

void
FaultInjector::registerTelemetry(telem::Registry &reg,
                                 const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "drops", "total"),
                   st.packetsDropped);
    reg.addCounter(telem::path(prefix, "drops", "unroutable"),
                   st.dropsUnroutable);
    reg.addCounter(telem::path(prefix, "drops", "dead_node"),
                   st.dropsDeadNode);
    reg.addGauge(telem::path(prefix, "link_failures"), [this] {
        return static_cast<double>(st.linkFailures);
    });
    reg.addGauge(telem::path(prefix, "node_failures"), [this] {
        return static_cast<double>(st.nodeFailures);
    });
    reg.addGauge(telem::path(prefix, "repairs"), [this] {
        return static_cast<double>(st.repairs);
    });
}

} // namespace gs::fault

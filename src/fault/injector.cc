#include "fault/injector.hh"

#include <cstring>

#include "sim/logging.hh"

namespace gs::fault
{

FaultInjector::FaultInjector(SimContext &context, net::Network &net,
                             DegradedTopology &topo)
    : ctx(context), net_(net), topo_(topo)
{
    gs_assert(&net.topology() == &topo,
              "injector's topology is not the one the network routes "
              "over");
    net_.setDropHook([this](NodeId, const net::Packet &,
                            const char *why) {
        st.packetsDropped += 1;
        if (std::strcmp(why, "unroutable") == 0)
            st.dropsUnroutable += 1;
        else
            st.dropsDeadNode += 1;
    });
    // A topology that was degraded before the network attached still
    // needs the routers' port state brought in line.
    if (topo_.degraded())
        net_.onTopologyChange();
}

namespace
{

ckpt::EventDesc
faultDesc(const FaultEvent &event)
{
    ckpt::EventDesc d;
    d.kind = ckpt::FaultApply;
    d.a = static_cast<std::int32_t>(event.kind);
    d.b = event.node;
    d.c = event.port;
    d.u = static_cast<std::uint64_t>(event.when);
    return d;
}

FaultEvent
faultOf(const ckpt::EventDesc &d)
{
    FaultEvent event;
    event.when = static_cast<Tick>(d.u);
    event.kind = static_cast<FaultKind>(d.a);
    event.node = d.b;
    event.port = d.c;
    return event;
}

} // namespace

void
FaultInjector::schedule(const FaultPlan &plan)
{
    for (const FaultEvent &event : plan.events()) {
        ctx.queue().scheduleAt(event.when, faultDesc(event),
                               [this, event] {
                                   if (!suppress_)
                                       apply(event);
                               });
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    // A bad node/port names hardware that doesn't exist — a user
    // error in the fault plan, not a simulator bug.
    if (event.node < 0 || event.node >= topo_.numNodes())
        gs_fatal("fault event: node ", event.node, " out of range [0,",
                 topo_.numNodes(), ")");
    const bool linkEvent = event.kind == FaultKind::LinkDown ||
                           event.kind == FaultKind::LinkUp;
    if (linkEvent &&
        (event.port < 0 || event.port >= topo_.numPorts(event.node)))
        gs_fatal("fault event: node ", event.node, " port ", event.port,
                 " out of range [0,", topo_.numPorts(event.node), ")");
    switch (event.kind) {
      case FaultKind::LinkDown:
        topo_.failLink(event.node, event.port);
        st.linkFailures += 1;
        break;
      case FaultKind::LinkUp:
        topo_.repairLink(event.node, event.port);
        st.repairs += 1;
        break;
      case FaultKind::NodeDown:
        topo_.failNode(event.node);
        // Masks first, then flush: the dying router's buffered
        // packets drop without crediting across dead links.
        net_.setNodeFailed(event.node, true);
        st.nodeFailures += 1;
        break;
      case FaultKind::NodeUp:
        topo_.repairNode(event.node);
        net_.setNodeFailed(event.node, false);
        st.repairs += 1;
        break;
    }
    net_.onTopologyChange();
}

void
FaultInjector::saveCkpt(ckpt::Serializer &s) const
{
    s.putI32(st.linkFailures);
    s.putI32(st.nodeFailures);
    s.putI32(st.repairs);
    s.put64(st.packetsDropped);
    s.put64(st.dropsUnroutable);
    s.put64(st.dropsDeadNode);
    s.putBool(suppress_);
}

void
FaultInjector::restoreCkpt(ckpt::Deserializer &d)
{
    st.linkFailures = d.getI32();
    st.nodeFailures = d.getI32();
    st.repairs = d.getI32();
    st.packetsDropped = d.get64();
    st.dropsUnroutable = d.get64();
    st.dropsDeadNode = d.get64();
    // Suppression is sticky across rollback: the restored snapshot
    // predates the fault, but re-injecting it would wedge the run
    // again, so the live flag wins over the serialized one.
    bool was = d.getBool();
    suppress_ = suppress_ || was;
}

std::function<void()>
FaultInjector::rehydrateEvent(const ckpt::EventDesc &d)
{
    if (d.kind != ckpt::FaultApply)
        return {};
    const FaultEvent event = faultOf(d);
    return [this, event] {
        if (!suppress_)
            apply(event);
    };
}

void
FaultInjector::registerTelemetry(telem::Registry &reg,
                                 const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "drops", "total"),
                   st.packetsDropped);
    reg.addCounter(telem::path(prefix, "drops", "unroutable"),
                   st.dropsUnroutable);
    reg.addCounter(telem::path(prefix, "drops", "dead_node"),
                   st.dropsDeadNode);
    reg.addGauge(telem::path(prefix, "link_failures"), [this] {
        return static_cast<double>(st.linkFailures);
    });
    reg.addGauge(telem::path(prefix, "node_failures"), [this] {
        return static_cast<double>(st.nodeFailures);
    });
    reg.addGauge(telem::path(prefix, "repairs"), [this] {
        return static_cast<double>(st.repairs);
    });
}

} // namespace gs::fault

#include "fault/degraded.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace gs::fault
{

DegradedTopology::DegradedTopology(const topo::Topology &base)
    : base_(base)
{
    const int n = base.numNodes();
    cut.resize(static_cast<std::size_t>(n));
    for (NodeId node = 0; node < n; ++node)
        cut[static_cast<std::size_t>(node)].assign(
            static_cast<std::size_t>(base.numPorts(node)), 0);
    dead.assign(static_cast<std::size_t>(n), 0);
}

bool
DegradedTopology::alive(NodeId node, int port,
                        const topo::Port &link) const
{
    if (!link.connected())
        return false;
    if (dead[static_cast<std::size_t>(node)] ||
        dead[static_cast<std::size_t>(link.peer)])
        return false;
    return cut[static_cast<std::size_t>(node)]
              [static_cast<std::size_t>(port)] == 0;
}

topo::Port
DegradedTopology::port(NodeId node, int p) const
{
    topo::Port link = base_.port(node, p);
    if (!degraded() || !link.connected())
        return link;
    return alive(node, p, link) ? link : topo::Port{};
}

std::string
DegradedTopology::name() const
{
    if (!degraded())
        return base_.name();
    std::string out = base_.name() + " [degraded:";
    if (nFailedLinks > 0)
        out += " " + std::to_string(nFailedLinks) + " links";
    if (nFailedNodes > 0)
        out += " " + std::to_string(nFailedNodes) + " nodes";
    return out + " down]";
}

topo::PortSet
DegradedTopology::adaptivePorts(NodeId at, NodeId dst,
                                int hopsTaken) const
{
    if (!degraded())
        return base_.adaptivePorts(at, dst, hopsTaken);
    if (at == dst || dead[static_cast<std::size_t>(at)] ||
        dead[static_cast<std::size_t>(dst)])
        return {};

    // Minimality must be re-derived on the surviving graph: a hop is
    // adaptive only if it strictly closes on the destination. The
    // base topology's minimal set would happily point through (or
    // around) the hole and ping-pong against the escape route.
    const auto n = static_cast<std::size_t>(numNodes());
    const int *toDst = &dist[static_cast<std::size_t>(dst) * n];
    if (toDst[at] < 0)
        return {}; // unreachable; the escape lookup reports it too
    topo::PortSet ports;
    for (int p = 0; p < numPorts(at); ++p) {
        topo::Port link = base_.port(at, p);
        if (alive(at, p, link) &&
            toDst[link.peer] == toDst[at] - 1)
            ports.push_back(p);
    }
    return ports;
}

topo::EscapeHop
DegradedTopology::escapeRoute(NodeId at, NodeId dst, int curVc) const
{
    if (!degraded())
        return base_.escapeRoute(at, dst, curVc);
    return esc[static_cast<std::size_t>(dst) *
                   static_cast<std::size_t>(numNodes()) +
               static_cast<std::size_t>(at)];
}

void
DegradedTopology::failLink(NodeId node, int p)
{
    topo::Port link = base_.port(node, p);
    gs_assert(link.connected(), "failing unconnected port ", p,
              " of node ", node);
    auto &mine = cut[static_cast<std::size_t>(node)]
                    [static_cast<std::size_t>(p)];
    auto &theirs = cut[static_cast<std::size_t>(link.peer)]
                      [static_cast<std::size_t>(link.peerPort)];
    if (!mine) {
        mine = 1;
        theirs = 1;
        nFailedLinks += 1;
    }
    rebuild();
}

void
DegradedTopology::repairLink(NodeId node, int p)
{
    topo::Port link = base_.port(node, p);
    gs_assert(link.connected(), "repairing unconnected port ", p,
              " of node ", node);
    auto &mine = cut[static_cast<std::size_t>(node)]
                    [static_cast<std::size_t>(p)];
    auto &theirs = cut[static_cast<std::size_t>(link.peer)]
                      [static_cast<std::size_t>(link.peerPort)];
    if (mine) {
        mine = 0;
        theirs = 0;
        nFailedLinks -= 1;
    }
    rebuild();
}

void
DegradedTopology::failNode(NodeId node)
{
    gs_assert(node >= 0 && node < numNodes(), "bad node ", node);
    auto &flag = dead[static_cast<std::size_t>(node)];
    if (!flag) {
        flag = 1;
        nFailedNodes += 1;
    }
    rebuild();
}

void
DegradedTopology::repairNode(NodeId node)
{
    gs_assert(node >= 0 && node < numNodes(), "bad node ", node);
    auto &flag = dead[static_cast<std::size_t>(node)];
    if (flag) {
        flag = 0;
        nFailedNodes -= 1;
    }
    rebuild();
}

bool
DegradedTopology::linkFailed(NodeId node, int p) const
{
    return cut[static_cast<std::size_t>(node)]
              [static_cast<std::size_t>(p)] != 0;
}

bool
DegradedTopology::reachable(NodeId at, NodeId dst) const
{
    if (!degraded())
        return true;
    if (dead[static_cast<std::size_t>(at)] ||
        dead[static_cast<std::size_t>(dst)])
        return false;
    return comp[static_cast<std::size_t>(at)] ==
           comp[static_cast<std::size_t>(dst)];
}

void
DegradedTopology::rebuild()
{
    if (!degraded()) {
        // Back to a healthy fabric: every query delegates again.
        parent.clear();
        parentPort.clear();
        comp.clear();
        esc.clear();
        dist.clear();
        return;
    }

    const auto n = static_cast<std::size_t>(numNodes());
    parent.assign(n, invalidNode);
    parentPort.assign(n, -1);
    comp.assign(n, invalidNode);

    // BFS spanning forest of the surviving graph. Deterministic:
    // roots in increasing node order, neighbours in port order.
    std::deque<NodeId> queue;
    for (NodeId root = 0; root < numNodes(); ++root) {
        if (dead[static_cast<std::size_t>(root)] ||
            comp[static_cast<std::size_t>(root)] != invalidNode)
            continue;
        comp[static_cast<std::size_t>(root)] = root;
        queue.push_back(root);
        while (!queue.empty()) {
            NodeId at = queue.front();
            queue.pop_front();
            for (int p = 0; p < numPorts(at); ++p) {
                topo::Port link = base_.port(at, p);
                if (!alive(at, p, link))
                    continue;
                auto peer = static_cast<std::size_t>(link.peer);
                if (comp[peer] != invalidNode)
                    continue;
                comp[peer] = root;
                parent[peer] = at;
                parentPort[peer] = link.peerPort;
                queue.push_back(link.peer);
            }
        }
    }

    // All-pairs shortest hops on the surviving graph, -1 when
    // unreachable; adaptivePorts() keys minimality off this.
    dist.assign(n * n, -1);
    for (NodeId dst = 0; dst < numNodes(); ++dst) {
        if (dead[static_cast<std::size_t>(dst)])
            continue;
        int *row = &dist[static_cast<std::size_t>(dst) * n];
        row[dst] = 0;
        queue.push_back(dst);
        while (!queue.empty()) {
            NodeId at = queue.front();
            queue.pop_front();
            for (int p = 0; p < numPorts(at); ++p) {
                topo::Port link = base_.port(at, p);
                if (!alive(at, p, link) || row[link.peer] >= 0)
                    continue;
                row[link.peer] = row[at] + 1;
                queue.push_back(link.peer);
            }
        }
    }

    // Per-destination next hops: up the forest to the lowest common
    // ancestor (escape VC0), then down along dst's ancestor path
    // (VC1). Paths never turn upward after descending, so the escape
    // channels stay deadlock-free on any surviving graph.
    esc.assign(n * n, topo::EscapeHop{-1, 0});
    std::vector<int> downPort(n);
    for (NodeId dst = 0; dst < numNodes(); ++dst) {
        if (dead[static_cast<std::size_t>(dst)])
            continue;
        std::fill(downPort.begin(), downPort.end(), -1);
        for (NodeId cur = dst;
             parent[static_cast<std::size_t>(cur)] != invalidNode;) {
            NodeId par = parent[static_cast<std::size_t>(cur)];
            // The parent's port toward cur reverses cur's parent port.
            downPort[static_cast<std::size_t>(par)] =
                base_.port(cur,
                           parentPort[static_cast<std::size_t>(cur)])
                    .peerPort;
            cur = par;
        }
        auto *row = &esc[static_cast<std::size_t>(dst) * n];
        for (NodeId at = 0; at < numNodes(); ++at) {
            auto i = static_cast<std::size_t>(at);
            if (dead[i] || comp[i] != comp[static_cast<std::size_t>(dst)])
                continue; // unreachable: stays {-1, 0}
            if (at == dst)
                continue;
            if (downPort[i] >= 0)
                row[i] = topo::EscapeHop{downPort[i], 1};
            else
                row[i] = topo::EscapeHop{parentPort[i], 0};
        }
    }
}

} // namespace gs::fault

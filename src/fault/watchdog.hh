/**
 * @file
 * Simulation health monitor: detects loss of forward progress in
 * the fabric (deadlock/livelock) and stuck transactions, then dumps
 * a structured diagnostic through sim/logging before aborting.
 *
 * The watchdog polls the network every checkCycles network cycles.
 * It trips when packets are in flight but neither deliveries nor
 * drops have advanced for stallCycles, when the oldest buffered
 * packet exceeds maxPacketAgeNs, or when any registered liveness
 * probe reports a problem (Machine wires a coherence-transaction
 * probe through here). A healthy fabric — even a saturated one —
 * keeps delivering, so the watchdog stays silent.
 *
 * The default trip action dumps the diagnostic (per-router VC
 * occupancy, injection-queue depths, oldest in-flight packet
 * provenance) via gs_warn and then gs_panic's; tests replace it
 * with onTrip() to observe detection without dying.
 */

#ifndef GS_FAULT_WATCHDOG_HH
#define GS_FAULT_WATCHDOG_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"
#include "sim/checkpoint.hh"

namespace gs::fault
{

/** Watchdog thresholds, in network cycles / nanoseconds. */
struct WatchdogConfig
{
    /** Poll interval. */
    int checkCycles = 2000;

    /**
     * Trip when packets are in flight but no delivery (or drop)
     * completed for this long. Must comfortably exceed the worst
     * legitimate head-of-line wait at saturation.
     */
    int stallCycles = 200000;

    /** Trip when a buffered packet is older than this (0 = off). */
    double maxPacketAgeNs = 0.0;
};

/** Forward-progress monitor for one Network. */
class Watchdog
{
  public:
    Watchdog(SimContext &ctx, net::Network &net,
             WatchdogConfig cfg = {});

    /** Start polling. Safe to call again after disarm(). */
    void arm();

    /** Stop polling; pending poll events become no-ops. */
    void disarm();

    bool armed() const { return token != nullptr; }
    bool tripped() const { return tripped_; }

    /** Times the watchdog has tripped over its lifetime. */
    std::uint64_t trips() const { return trips_; }

    /**
     * Register trip accounting under @p prefix (conventionally
     * "fault.watchdog").
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);

    /**
     * Replace the default trip action (diagnostic dump + gs_panic).
     * The argument is the trip reason; call diagnose() for the full
     * fabric state.
     */
    void onTrip(std::function<void(const std::string &)> fn)
    {
        tripFn = std::move(fn);
    }

    /**
     * Register an extra liveness probe, polled every check: return
     * an empty string while healthy, a diagnosis to trip on.
     */
    void addProbe(std::function<std::string()> probe)
    {
        probes.push_back(std::move(probe));
    }

    /** Structured snapshot of fabric state (multi-line). */
    std::string diagnose() const;

    /** @name Checkpoint/restore of monitor state.
     *
     * Pending poll events are serialized by the event queue
     * (WatchdogPoll descriptor); rehydrateEvent rebuilds their
     * callbacks. An armed watchdog restores armed, driven by the
     * snapshot's own pending poll event — restore does not schedule
     * a fresh one.
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d);
    std::function<void()> rehydrateEvent(const ckpt::EventDesc &d);
    /// @}

  private:
    void scheduleNext();
    void poll();
    void trip(const std::string &why);

    /** Node holding the oldest buffered packet, or invalidNode. */
    NodeId trippingNode() const;

    SimContext &ctx;
    net::Network &net_;
    WatchdogConfig cfg;

    /** Liveness token: pending poll events hold a weak reference. */
    std::shared_ptr<char> token;

    std::function<void(const std::string &)> tripFn;
    std::vector<std::function<std::string()>> probes;

    std::uint64_t lastProgress = 0; ///< deliveries + drops last seen
    Tick lastProgressTick = 0;      ///< when progress last advanced
    long stalledCycles = 0;
    bool tripped_ = false;
    std::uint64_t trips_ = 0;
};

} // namespace gs::fault

#endif // GS_FAULT_WATCHDOG_HH

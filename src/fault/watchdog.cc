#include "fault/watchdog.hh"

#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace gs::fault
{

namespace
{

const char *
className(net::MsgClass cls)
{
    switch (cls) {
      case net::MsgClass::Request: return "Request";
      case net::MsgClass::Forward: return "Forward";
      case net::MsgClass::BlockResponse: return "BlockResponse";
      case net::MsgClass::Ack: return "Ack";
      case net::MsgClass::IO: return "IO";
      default: return "?";
    }
}

} // namespace

Watchdog::Watchdog(SimContext &context, net::Network &net,
                   WatchdogConfig config)
    : ctx(context), net_(net), cfg(config)
{
    gs_assert(cfg.checkCycles > 0 && cfg.stallCycles > 0,
              "watchdog intervals must be positive");
}

void
Watchdog::arm()
{
    if (token)
        return;
    token = std::make_shared<char>(0);
    lastProgress =
        net_.stats().deliveredPackets + net_.stats().droppedPackets;
    lastProgressTick = ctx.now();
    stalledCycles = 0;
    scheduleNext();
}

void
Watchdog::disarm()
{
    // Pending poll events hold only a weak reference; dropping the
    // token turns them into no-ops without touching the event queue.
    token.reset();
}

void
Watchdog::scheduleNext()
{
    Tick delay = static_cast<Tick>(cfg.checkCycles) * net_.period();
    ckpt::EventDesc desc;
    desc.kind = ckpt::WatchdogPoll;
    std::weak_ptr<char> alive = token;
    ctx.queue().scheduleAt(ctx.now() + delay, desc, [this, alive] {
        if (alive.expired())
            return;
        poll();
    });
}

void
Watchdog::poll()
{
    const auto &st = net_.stats();
    std::uint64_t progress = st.deliveredPackets + st.droppedPackets;

    if (net_.inFlight() > 0 && progress == lastProgress) {
        stalledCycles += cfg.checkCycles;
        if (stalledCycles >= cfg.stallCycles) {
            std::ostringstream os;
            os << "no forward progress: " << net_.inFlight()
               << " packet(s) in flight, zero deliveries for "
               << stalledCycles << " network cycles";
            trip(os.str());
            return;
        }
    } else {
        stalledCycles = 0;
        lastProgress = progress;
        lastProgressTick = ctx.now();
    }

    if (cfg.maxPacketAgeNs > 0) {
        const auto &topo = net_.topology();
        for (NodeId n = 0; n < NodeId(topo.numNodes()); ++n) {
            net::Packet pkt;
            if (!net_.router(n).oldestBuffered(pkt))
                continue;
            double age = ticksToNs(ctx.now() - pkt.injected);
            if (age > cfg.maxPacketAgeNs) {
                std::ostringstream os;
                os << "packet " << pkt.id << " ("
                   << className(pkt.cls) << " " << pkt.src << "->"
                   << pkt.dst << ") buffered at node " << n
                   << " is " << age << " ns old (limit "
                   << cfg.maxPacketAgeNs << ")";
                trip(os.str());
                return;
            }
        }
    }

    for (const auto &probe : probes) {
        std::string diag = probe();
        if (!diag.empty()) {
            trip(diag);
            return;
        }
    }

    scheduleNext();
}

void
Watchdog::registerTelemetry(telem::Registry &reg,
                            const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "trips"), trips_);
    reg.addGauge(telem::path(prefix, "armed"),
                 [this] { return armed() ? 1.0 : 0.0; });
}

NodeId
Watchdog::trippingNode() const
{
    const auto &topo = net_.topology();
    net::Packet oldest;
    NodeId at = invalidNode;
    for (NodeId n = 0; n < NodeId(topo.numNodes()); ++n) {
        net::Packet pkt;
        if (net_.router(n).oldestBuffered(pkt) &&
            (at == invalidNode || pkt.injected < oldest.injected)) {
            oldest = pkt;
            at = n;
        }
    }
    return at;
}

void
Watchdog::trip(const std::string &why)
{
    tripped_ = true;
    trips_ += 1;
    token.reset();

    // Every trip reason carries the context an operator needs to
    // correlate with traces: simulated time, the node holding the
    // oldest stuck packet, and when forward progress last advanced.
    std::ostringstream os;
    os << why << " [t=" << ticksToNs(ctx.now()) << " ns (tick "
       << ctx.now() << "), tripping node ";
    NodeId at = trippingNode();
    if (at == invalidNode)
        os << "none-buffered";
    else
        os << at;
    os << ", last progress at tick " << lastProgressTick << " ("
       << ticksToNs(lastProgressTick) << " ns)]";
    std::string full = os.str();

    if (tripFn) {
        tripFn(full);
        return;
    }
    gs_warn("watchdog tripped: ", full, "\n", diagnose());
    gs_panic("watchdog: fabric lost forward progress (", full, ")");
}

void
Watchdog::saveCkpt(ckpt::Serializer &s) const
{
    s.putBool(token != nullptr);
    s.put64(lastProgress);
    s.put64(static_cast<std::uint64_t>(lastProgressTick));
    s.put64(static_cast<std::uint64_t>(stalledCycles));
    s.putBool(tripped_);
    s.put64(trips_);
}

void
Watchdog::restoreCkpt(ckpt::Deserializer &d)
{
    bool wasArmed = d.getBool();
    lastProgress = d.get64();
    lastProgressTick = static_cast<Tick>(d.get64());
    stalledCycles = static_cast<long>(d.get64());
    tripped_ = d.getBool();
    trips_ = d.get64();
    if (!d.ok())
        return;
    token = wasArmed ? std::make_shared<char>(0) : nullptr;
}

std::function<void()>
Watchdog::rehydrateEvent(const ckpt::EventDesc &d)
{
    if (d.kind != ckpt::WatchdogPoll)
        return {};
    // Rehydrated polls key liveness off the token itself: pending
    // events from before the snapshot died with the old token, and
    // disarm() after restore still cancels these.
    return [this] {
        if (token)
            poll();
    };
}

std::string
Watchdog::diagnose() const
{
    const auto &topo = net_.topology();
    const auto &st = net_.stats();
    std::ostringstream os;

    os << "watchdog diagnostic @ " << ticksToNs(ctx.now()) << " ns\n"
       << "  in flight " << net_.inFlight() << ", injected "
       << st.injectedPackets << ", delivered " << st.deliveredPackets
       << ", dropped " << st.droppedPackets << "\n";

    net::Packet oldest;
    bool haveOldest = false;
    NodeId oldestAt = invalidNode;

    for (NodeId n = 0; n < NodeId(topo.numNodes()); ++n) {
        const auto &router = net_.router(n);
        const int ports = topo.numPorts(n);

        // Per-router VC occupancy: only non-empty buffers, to keep
        // the dump readable on big fabrics.
        std::ostringstream vcs;
        for (int p = 0; p < ports; ++p) {
            for (int vc = 0; vc < net::numVcs; ++vc) {
                int flits = router.vcOccupancy(p, vc);
                if (flits > 0)
                    vcs << " p" << p << ".vc" << vc << "=" << flits;
            }
        }
        std::ostringstream inj;
        for (int c = 0; c < net::numClasses; ++c) {
            auto depth =
                router.injQueueDepth(static_cast<net::MsgClass>(c));
            if (depth > 0) {
                inj << " " << className(static_cast<net::MsgClass>(c))
                    << "=" << depth;
            }
        }
        if (vcs.str().empty() && inj.str().empty())
            continue;

        os << "  node " << std::setw(3) << n << ": vc flits"
           << (vcs.str().empty() ? " -" : vcs.str());
        if (!inj.str().empty())
            os << " | inj" << inj.str();
        os << "\n";

        net::Packet pkt;
        if (router.oldestBuffered(pkt) &&
            (!haveOldest || pkt.injected < oldest.injected)) {
            oldest = pkt;
            haveOldest = true;
            oldestAt = n;
        }
    }

    if (haveOldest) {
        os << "  oldest in-flight: packet " << oldest.id << " "
           << className(oldest.cls) << " " << oldest.src << "->"
           << oldest.dst << ", " << oldest.flits << " flits, "
           << oldest.hops << " hops, stuck at node " << oldestAt
           << ", age " << ticksToNs(ctx.now() - oldest.injected)
           << " ns";
    } else {
        os << "  no packet buffered in any router (in-flight packets "
              "are on the wire or in scheduled events)";
    }
    return os.str();
}

} // namespace gs::fault

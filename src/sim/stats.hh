/**
 * @file
 * Statistics primitives used by every model: scalar counters,
 * running averages, histograms, busy-fraction accumulators, and a
 * periodic time-series sampler (the substrate for the Xmesh-style
 * profiles in Figures 10, 11, 20, 22 and 24 of the paper).
 */

#ifndef GS_SIM_STATS_HH
#define GS_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace gs::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { val += n; }
    void reset() { val = 0; }
    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/** Running mean / min / max / count over observed samples. */
class Average
{
  public:
    void
    sample(double x)
    {
        sum += x;
        n += 1;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }

    void
    reset()
    {
        sum = 0;
        n = 0;
        lo = std::numeric_limits<double>::max();
        hi = std::numeric_limits<double>::lowest();
    }

    /**
     * Fold @p o into this average (shard aggregation). count/min/max
     * are exact; the merged total sums shard subtotals, so its
     * floating-point association differs from a single global
     * accumulator by at most the usual summation-reorder ulps.
     */
    void
    merge(const Average &o)
    {
        sum += o.sum;
        n += o.n;
        lo = std::min(lo, o.lo);
        hi = std::max(hi, o.hi);
    }

    std::uint64_t count() const { return n; }
    double total() const { return sum; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** @name Checkpoint/restore: the four accumulator fields. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.putF64(sum);
        s.put64(n);
        s.putF64(lo);
        s.putF64(hi);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        sum = d.getF64();
        n = d.get64();
        lo = d.getF64();
        hi = d.getF64();
    }
    /// @}

  private:
    double sum = 0;
    std::uint64_t n = 0;
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
};

/** Fixed-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lower(lo), upper(hi), counts(buckets + 1, 0)
    {
        gs_assert(buckets > 0 && hi > lo);
    }

    void
    sample(double x)
    {
        stat.sample(x);
        if (x < lower) {
            counts.front() += 1;
        } else if (x > upper) {
            counts.back() += 1;
        } else {
            auto idx = static_cast<std::size_t>(
                (x - lower) / (upper - lower)
                * static_cast<double>(counts.size() - 1));
            // The inclusive upper edge (and any rounding that lands
            // on it) belongs to the last real bucket, not overflow.
            idx = std::min(idx, counts.size() - 2);
            counts[idx] += 1;
        }
    }

    const Average &summary() const { return stat; }
    const std::vector<std::uint64_t> &buckets() const { return counts; }

    /**
     * Approximate quantile (q in [0,1]) from bucket midpoints.
     * An empty histogram has no quantiles: NaN, never a made-up 0
     * (or edge) that would read like a real measurement.
     */
    double
    quantile(double q) const
    {
        if (stat.count() == 0)
            return std::numeric_limits<double>::quiet_NaN();
        const std::uint64_t target =
            static_cast<std::uint64_t>(q * static_cast<double>(stat.count()));
        std::uint64_t seen = 0;
        const double width =
            (upper - lower) / static_cast<double>(counts.size() - 1);
        for (std::size_t i = 0; i < counts.size(); ++i) {
            seen += counts[i];
            if (seen > target)
                return lower + (static_cast<double>(i) + 0.5) * width;
        }
        return upper;
    }

    /**
     * Percentile estimate (q in [0,1]) by linear interpolation
     * within the containing bucket — the method percentile readers
     * (p50/p95/p99 telemetry queries) use.
     *
     * Method: with n samples, the rank is r = q*n counted over the
     * cumulative bucket counts; the containing bucket is the first
     * whose cumulative count reaches r (inclusive upper edge, so
     * q = 1 resolves inside the last occupied bucket, matching
     * sample()'s inclusive treatment of the range's upper edge). The
     * estimate interpolates linearly across that bucket's nominal
     * [lower, upper) span by the rank's fractional position in the
     * bucket. Underflow samples count at the first bucket's nominal
     * span; the overflow bucket spans [range upper, observed max].
     * An empty histogram reports NaN.
     */
    double
    percentile(double q) const
    {
        if (stat.count() == 0)
            return std::numeric_limits<double>::quiet_NaN();
        q = std::clamp(q, 0.0, 1.0);
        const double target = q * static_cast<double>(stat.count());
        const double width =
            (upper - lower) / static_cast<double>(counts.size() - 1);
        double seen = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0)
                continue;
            const auto n = static_cast<double>(counts[i]);
            if (seen + n >= target) {
                const bool overflow = (i == counts.size() - 1);
                const double bLo =
                    overflow ? upper
                             : lower + static_cast<double>(i) * width;
                const double bHi = overflow ? stat.max() : bLo + width;
                const double frac =
                    std::max(target - seen, 0.0) / n;
                return bLo + frac * (bHi - bLo);
            }
            seen += n;
        }
        return upper; // unreachable: the loop covers every sample
    }

    /** Drop every sample (geometry is construction-time). */
    void
    reset()
    {
        std::fill(counts.begin(), counts.end(), 0);
        stat.reset();
    }

    /** @name Checkpoint/restore (geometry is construction-time). */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put32(static_cast<std::uint32_t>(counts.size()));
        for (std::uint64_t c : counts)
            s.put64(c);
        stat.saveCkpt(s);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        if (d.get32() != counts.size() && d.ok()) {
            d.fail("histogram bucket count mismatch");
            return;
        }
        for (std::uint64_t &c : counts)
            c = d.get64();
        stat.restoreCkpt(d);
    }
    /// @}

  private:
    double lower, upper;
    std::vector<std::uint64_t> counts;
    Average stat;
};

/**
 * Tracks the busy fraction of a resource (a link direction, a Zbox)
 * over a measurement window. Components report busy spans; the
 * utilization is busy-time / elapsed-time, exactly what the 21364
 * performance counters expose to Xmesh.
 */
class Utilization
{
  public:
    /** Record that the resource was busy for @p ticks. */
    void addBusy(Tick ticks) { busy += ticks; }

    /** Start a measurement window at @p now. */
    void
    beginWindow(Tick now)
    {
        windowStart = now;
        busy = 0;
    }

    /** Busy fraction in [0,1] for the window ending at @p now. */
    double
    fraction(Tick now) const
    {
        if (now <= windowStart)
            return 0.0;
        double f = static_cast<double>(busy)
                   / static_cast<double>(now - windowStart);
        return std::min(f, 1.0);
    }

    Tick busyTicks() const { return busy; }

    /** @name Checkpoint/restore. */
    /// @{
    void
    saveCkpt(ckpt::Serializer &s) const
    {
        s.put64(busy);
        s.put64(windowStart);
    }

    void
    restoreCkpt(ckpt::Deserializer &d)
    {
        busy = d.get64();
        windowStart = d.get64();
    }
    /// @}

  private:
    Tick busy = 0;
    Tick windowStart = 0;
};

/** One named series of periodic samples (e.g. "MC util, node 3"). */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/**
 * Periodic sampler producing the utilization-vs-time histograms the
 * paper plots. An experiment registers probe callbacks; sample()
 * is invoked at a fixed interval and appends one value per probe.
 */
class TimeSeries
{
  public:
    using Probe = std::function<double()>;

    /** Register a named probe; returns its series index. */
    std::size_t
    add(std::string name, Probe probe)
    {
        probes.push_back(std::move(probe));
        data.push_back(Series{std::move(name), {}});
        return probes.size() - 1;
    }

    /** Take one sample of every probe. */
    void
    sample()
    {
        for (std::size_t i = 0; i < probes.size(); ++i)
            data[i].values.push_back(probes[i]());
    }

    const std::vector<Series> &series() const { return data; }
    std::size_t sampleCount() const
    {
        return data.empty() ? 0 : data.front().values.size();
    }

  private:
    std::vector<Probe> probes;
    std::vector<Series> data;
};

} // namespace gs::stats

#endif // GS_SIM_STATS_HH

/**
 * @file
 * Discrete-event kernel: a time-ordered queue of callbacks.
 *
 * Events scheduled for the same tick fire in FIFO order of their
 * scheduling (a monotone sequence number breaks ties), which keeps
 * component interactions deterministic and reproducible.
 */

#ifndef GS_SIM_EVENT_QUEUE_HH
#define GS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gs
{

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A discrete-event queue with a current simulated time.
 *
 * The queue owns the notion of "now": callbacks observe time via
 * now() and schedule further work with schedule()/scheduleAt().
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of events not yet fired. */
    std::size_t pending() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    /** @name Self-metrics (telemetry / --verbose bench reporting) */
    /// @{
    /** Events fired since construction. */
    std::uint64_t firedCount() const { return fired; }

    /** High-water mark of the pending-event heap. */
    std::size_t peakPending() const { return peak; }
    /// @}

    /** Schedule @p fn at absolute time @p when (>= now). */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        gs_assert(when >= curTick,
                  "event scheduled in the past: ", when, " < ", curTick);
        heap.push(Entry{when, nextSeq++, std::move(fn)});
        if (heap.size() > peak)
            peak = heap.size();
    }

    /** Schedule @p fn @p delay ticks from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        scheduleAt(curTick + delay, std::move(fn));
    }

    /**
     * Fire the single earliest event.
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        if (heap.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        curTick = e.when;
        fired += 1;
        e.fn();
        return true;
    }

    /**
     * Run until the queue drains or time exceeds @p limit.
     * @return the tick at which execution stopped.
     */
    Tick
    runUntil(Tick limit = maxTick)
    {
        while (!heap.empty() && heap.top().when <= limit)
            step();
        if (curTick < limit && limit != maxTick)
            curTick = limit;
        return curTick;
    }

    /** Run for @p duration ticks past the current time. */
    Tick runFor(Tick duration) { return runUntil(curTick + duration); }

    /** Drop all pending events (used between experiment phases). */
    void
    clear()
    {
        while (!heap.empty())
            heap.pop();
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
    std::size_t peak = 0;
};

} // namespace gs

#endif // GS_SIM_EVENT_QUEUE_HH

/**
 * @file
 * Discrete-event kernel: a time-ordered queue of callbacks.
 *
 * Events scheduled for the same tick fire in FIFO order of their
 * scheduling (a monotone sequence number breaks ties), which keeps
 * component interactions deterministic and reproducible.
 *
 * Internally the queue is a hierarchical calendar: a power-of-two
 * ring of buckets covers the near future (bucketWidth ticks per
 * bucket, bucketCount buckets of horizon total), and anything
 * scheduled beyond the ring's window waits in an overflow min-heap
 * until the window slides over it. Steady-state traffic — network
 * cycles, memory callbacks, coherence hops, all within a few hundred
 * nanoseconds of now — lands in a warm bucket vector with no heap
 * ordering work and, because callbacks are InlineFn rather than
 * std::function, no allocation. The fire order is contractual and
 * identical to a single (when, seq) min-heap; see
 * tests/sim/event_queue_ab_test.cc, which locks the two
 * implementations together, and docs/EVENT_KERNEL.md for sizing.
 */

#ifndef GS_SIM_EVENT_QUEUE_HH
#define GS_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/inline_fn.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace gs
{

/** Callback type executed when an event fires. */
using EventFn = InlineFn;

/**
 * A discrete-event queue with a current simulated time.
 *
 * The queue owns the notion of "now": callbacks observe time via
 * now() and schedule further work with schedule()/scheduleAt().
 */
class EventQueue
{
  public:
    /** @name Calendar geometry (see docs/EVENT_KERNEL.md) */
    /// @{
    /** log2 of the bucket width in ticks. */
    static constexpr int bucketBits = 12;

    /** One bucket covers this many ticks (~4.1 ns at 1 tick = 1 ps). */
    static constexpr Tick bucketWidth = Tick(1) << bucketBits;

    /** Number of buckets in the ring (power of two). */
    static constexpr std::size_t bucketCount = 1024;

    /** Ring window span; events past it go to the overflow heap. */
    static constexpr Tick horizon = bucketWidth * bucketCount;
    /// @}

    /**
     * Sequence-number bands. Locally scheduled events draw their
     * tie-breaking sequence numbers from the upper band; events
     * merged in from another domain's mailbox (scheduleMergedAt, the
     * parallel engine's barrier merge) draw from the lower band.
     * Cross-domain arrivals and credits therefore fire before any
     * same-tick locally scheduled event — exactly the order the
     * serial engine produces, where a credit or arrival for tick T
     * is always scheduled before the self-ticking network event for
     * T (see docs/PARALLEL.md). Serial runs never use the lower
     * band, so their ordering is unchanged.
     */
    static constexpr std::uint64_t localSeqBase = std::uint64_t(1) << 63;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of events not yet fired. */
    std::size_t pending() const { return pendingCnt; }

    bool empty() const { return pending() == 0; }

    /** @name Self-metrics (telemetry / --verbose bench reporting) */
    /// @{
    /** Events fired since construction. */
    std::uint64_t firedCount() const { return fired; }

    /** High-water mark of the pending-event count. */
    std::size_t peakPending() const { return peak; }

    /** Events currently resident in the near-future bucket ring. */
    std::size_t ringPending() const { return ringCount; }

    /** Events currently parked in the overflow heap. */
    std::size_t overflowPending() const { return heap.size(); }

    /** Events migrated overflow-heap -> ring since construction. */
    std::uint64_t overflowMigrations() const { return migrated; }
    /// @}

    /**
     * Schedule @p fn at absolute time @p when (>= now).
     *
     * Templated on the callable so the capture is constructed
     * directly inside the calendar slot — no intermediate EventFn
     * relocation on the hot path.
     */
    template <typename F>
    void
    scheduleAt(Tick when, F &&fn)
    {
        scheduleAt(when, ckpt::EventDesc{}, std::forward<F>(fn));
    }

    /**
     * Schedule @p fn at @p when, tagged with @p desc so the event
     * can be serialized into a machine snapshot and rebuilt at
     * restore. The untagged overload marks the event Opaque —
     * legal to run, fatal to checkpoint while pending.
     */
    template <typename F>
    void
    scheduleAt(Tick when, const ckpt::EventDesc &desc, F &&fn)
    {
        gs_assert(when >= curTick,
                  "event scheduled in the past: ", when, " < ", curTick);
        insert(when, nextSeq++, desc, std::forward<F>(fn));
        pendingCnt += 1;
        if (pendingCnt > peak)
            peak = pendingCnt;
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&fn)
    {
        scheduleAt(curTick + delay, ckpt::EventDesc{},
                   std::forward<F>(fn));
    }

    /** Schedule @p fn @p delay ticks from now, snapshot-tagged. */
    template <typename F>
    void
    schedule(Tick delay, const ckpt::EventDesc &desc, F &&fn)
    {
        scheduleAt(curTick + delay, desc, std::forward<F>(fn));
    }

    /**
     * Schedule a cross-domain event merged in at a parallel-epoch
     * barrier. Merged events take sequence numbers below
     * localSeqBase, so at equal @p when they fire before every
     * locally scheduled event — the serial engine's order for
     * arrivals and credits. Callers must present merged events in
     * their canonical (when, src-domain, src-seq) order; this queue
     * preserves that order among them.
     */
    template <typename F>
    void
    scheduleMergedAt(Tick when, F &&fn)
    {
        scheduleMergedAt(when, ckpt::EventDesc{}, std::forward<F>(fn));
    }

    /** Merged-band scheduling, snapshot-tagged (see scheduleAt). */
    template <typename F>
    void
    scheduleMergedAt(Tick when, const ckpt::EventDesc &desc, F &&fn)
    {
        gs_assert(when >= curTick,
                  "merged event scheduled in the past: ", when, " < ",
                  curTick);
        insert(when, nextMergedSeq++, desc, std::forward<F>(fn));
        pendingCnt += 1;
        if (pendingCnt > peak)
            peak = pendingCnt;
    }

    /**
     * Fire the single earliest event.
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        if (!ensureCurrent())
            return false;
        fireHead();
        return true;
    }

    /**
     * Run until the queue drains or time exceeds @p limit.
     * @return the tick at which execution stopped.
     */
    Tick
    runUntil(Tick limit = maxTick)
    {
        while (ensureCurrent()) {
            Bucket &b = *curb;
            if (b.entries[b.head].when > limit)
                break;
            fireHead();
        }
        if (curTick < limit && limit != maxTick)
            curTick = limit;
        return curTick;
    }

    /** Run for @p duration ticks past the current time. */
    Tick runFor(Tick duration) { return runUntil(curTick + duration); }

    /**
     * Fire every event strictly before @p limit. Unlike runUntil,
     * now() is left at the last fired event — not advanced to the
     * limit — so a parallel domain's clock after an epoch matches
     * what the serial engine would show after the same events.
     * @return the number of events fired.
     */
    std::size_t
    drainWindow(Tick limit)
    {
        drainLimit_ = limit;
        std::size_t n = 0;
        while (ensureCurrent()) {
            Bucket &b = *curb;
            if (b.entries[b.head].when >= drainLimit_)
                break;
            fireHead();
            n += 1;
        }
        return n;
    }

    /**
     * Shrink the limit of the drainWindow() call currently executing
     * on this queue to @p t (no-op if the window already ends at or
     * before @p t). Callable from inside a firing event: the parallel
     * engine's adaptive-lookahead protocol cuts a widened window
     * short at now()+1 when an injection breaks fabric quiescence, so
     * same-tick events still fire but nothing later does until the
     * barrier re-derives a safe window (see docs/PARALLEL.md).
     */
    void
    truncateDrain(Tick t)
    {
        if (t < drainLimit_)
            drainLimit_ = t;
    }

    /**
     * Time of the earliest pending event without firing it, or
     * maxTick when nothing is pending. Positions the calendar window
     * (same cost class as step()).
     */
    Tick
    peekNext()
    {
        if (!ensureCurrent())
            return maxTick;
        return curb->entries[curb->head].when;
    }

    /**
     * Advance now() to @p t (>= now) without firing anything.
     * Precondition: no pending event is earlier than @p t. The
     * parallel engine uses this to align domain clocks at epoch
     * barriers and at the end of a run.
     */
    void
    syncTime(Tick t)
    {
        gs_assert(t >= curTick, "syncTime into the past: ", t, " < ",
                  curTick);
        curTick = t;
    }

    /** Drop all pending events (used between experiment phases). */
    void
    clear()
    {
        for (auto &b : buckets) {
            b.entries.destroyAll();
            b.head = 0;
            b.sorted = false;
        }
        heap.clear();
        ringCount = 0;
        pendingCnt = 0;
        // Re-anchor the ring at zero: leaving base/cur at the old
        // epoch would let the next insert land relative to a stale
        // window. (Today every post-clear insert takes the
        // empty-queue re-anchor path in insert(), but that is an
        // invariant of the current code shape, not of the API —
        // clear() must leave the queue indistinguishable from a
        // fresh one, pending-state-wise.)
        base = 0;
        cur = 0;
        curb = &buckets[0];
    }

    /**
     * Pre-size every ring bucket to hold @p perBucket entries.
     *
     * Bucket storage grows on first touch and then persists, but the
     * tick grid and the bucket ring have co-prime periods, so a
     * sparse workload can keep first-touching fresh buckets many
     * ring laps into a run. A queue whose steady state must be
     * allocation-free — every parallel-engine domain queue — calls
     * this once at construction instead (8 * 128-byte entries per
     * bucket = 1 MiB per queue; serial contexts skip it).
     */
    void
    prewarm(std::size_t perBucket = 8)
    {
        for (auto &b : buckets)
            b.entries.reserve(perBucket);
    }

    /** @name Checkpoint/restore (docs/CHECKPOINT.md)
     *
     * A snapshot of the queue is its clock, its counters, and every
     * pending (when, seq, desc) triple; callbacks are rebuilt from
     * the descs at restore. Restoring re-inserts entries with their
     * original sequence numbers, so the continuation fires in
     * exactly the order the uninterrupted run would have used.
     */
    /// @{

    /** Clock and counters restored alongside the pending entries. */
    struct CkptState
    {
        Tick now = 0;
        std::uint64_t nextSeq = localSeqBase;
        std::uint64_t nextMergedSeq = 0;
        std::uint64_t fired = 0;
        std::uint64_t peak = 0;
        std::uint64_t migrated = 0;
    };

    CkptState
    ckptState() const
    {
        return {curTick, nextSeq, nextMergedSeq, fired, peak, migrated};
    }

    /**
     * Invoke @p visit(when, seq, desc) for every pending event, in
     * unspecified order (checkpoint writers sort by (when, seq)).
     */
    template <typename V>
    void
    visitPending(V &&visit) const
    {
        for (const auto &b : buckets) {
            for (std::size_t i = b.head; i < b.entries.size(); ++i) {
                const Entry &e = b.entries[i];
                visit(e.when, e.seq, e.desc);
            }
        }
        for (const auto &e : heap)
            visit(e.when, e.seq, e.desc);
    }

    /**
     * Drop all pending events and reset clock and counters to
     * @p st — the restore entry point. Unlike syncTime, the clock
     * may move backward (watchdog rollback rewinds time).
     */
    void
    restoreBegin(const CkptState &st)
    {
        clear();
        curTick = st.now;
        nextSeq = st.nextSeq;
        nextMergedSeq = st.nextMergedSeq;
        fired = st.fired;
        peak = static_cast<std::size_t>(st.peak);
        migrated = st.migrated;
    }

    /**
     * Re-insert one snapshotted event with its original sequence
     * number (either band). Counters are untouched: peak and the
     * band cursors came back via restoreBegin.
     */
    void
    insertRestored(Tick when, std::uint64_t seq,
                   const ckpt::EventDesc &desc, EventFn fn)
    {
        gs_assert(when >= curTick,
                  "restored event in the past: ", when, " < ", curTick);
        insert(when, seq, desc, std::move(fn));
        pendingCnt += 1;
    }
    /// @}

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
        // Fills sizeof(Entry) to a power of two so every
        // vector<Entry>::size() on the hot path is a shift instead
        // of a multiply by a magic reciprocal. The filler is the
        // event's checkpoint descriptor — describing every event for
        // snapshots costs the hot path no extra stride.
        ckpt::EventDesc desc;

        template <typename F,
                  typename = std::enable_if_t<
                      !std::is_same_v<std::decay_t<F>, Entry>>>
        Entry(Tick w, std::uint64_t s, const ckpt::EventDesc &d, F &&f)
            : when(w), seq(s), fn(std::forward<F>(f)), desc(d)
        {}

        Entry(Entry &&o) noexcept
            : when(o.when), seq(o.seq), fn(std::move(o.fn)),
              desc(o.desc)
        {}

        Entry &
        operator=(Entry &&o) noexcept
        {
            when = o.when;
            seq = o.seq;
            fn = std::move(o.fn);
            desc = o.desc;
            return *this;
        }

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };
    static_assert(sizeof(Entry) == 128, "hot-path stride");

    /**
     * Grow-only storage for a bucket's entries.
     *
     * A pared-down vector with one extra verb std::vector cannot
     * express: truncateHusks(), which drops every element without
     * running destructors. When a bucket drains, all its entries are
     * moved-from husks whose InlineFn destructors are no-ops by
     * construction (fireHead relocates the callable out before
     * invoking it), so the per-element destructor walk std::vector
     * would do on clear() is pure overhead on the fire path. Elements
     * that may still be live (queue clear()/rewind/destruction) go
     * through destroyAll() instead. Capacity is retained across
     * truncation so warm buckets never re-allocate.
     */
    class EntryVec
    {
      public:
        EntryVec() = default;
        EntryVec(const EntryVec &) = delete;
        EntryVec &operator=(const EntryVec &) = delete;

        // Plain (unaligned) operator new suffices — and keeps these
        // allocations visible to tests that override it globally.
        static_assert(alignof(Entry) <= alignof(std::max_align_t),
                      "Entry must not be over-aligned");

        ~EntryVec()
        {
            destroyAll();
            ::operator delete(data_);
        }

        std::size_t size() const { return size_; }
        bool empty() const { return size_ == 0; }
        Entry &operator[](std::size_t i) { return data_[i]; }
        const Entry &operator[](std::size_t i) const { return data_[i]; }
        Entry &back() { return data_[size_ - 1]; }
        Entry *begin() { return data_; }
        Entry *end() { return data_ + size_; }

        template <typename... Args>
        void
        emplace_back(Args &&...args)
        {
            if (size_ == cap_) [[unlikely]]
                grow();
            ::new (static_cast<void *>(data_ + size_))
                Entry(std::forward<Args>(args)...);
            size_ += 1;
        }

        /** Insert before @p pos, shifting the tail up one slot. */
        template <typename... Args>
        void
        emplace(Entry *pos, Args &&...args)
        {
            std::size_t at = static_cast<std::size_t>(pos - data_);
            if (size_ == cap_) [[unlikely]]
                grow();
            for (std::size_t i = size_; i > at; --i) {
                ::new (static_cast<void *>(data_ + i))
                    Entry(std::move(data_[i - 1]));
                data_[i - 1].~Entry();
            }
            ::new (static_cast<void *>(data_ + at))
                Entry(std::forward<Args>(args)...);
            size_ += 1;
        }

        /** Drop all elements, destructor-free. Precondition: every
         *  element is a vacated husk (no-op destructor). */
        void truncateHusks() { size_ = 0; }

        /** Grow capacity to at least @p n without adding elements. */
        void
        reserve(std::size_t n)
        {
            while (cap_ < n)
                grow();
        }

        /** Drop all elements, running destructors (live entries). */
        void
        destroyAll()
        {
            for (std::size_t i = 0; i < size_; ++i)
                data_[i].~Entry();
            size_ = 0;
        }

      private:
        void
        grow()
        {
            std::size_t ncap = cap_ ? cap_ * 2 : 8;
            auto *nd = static_cast<Entry *>(
                ::operator new(ncap * sizeof(Entry)));
            for (std::size_t i = 0; i < size_; ++i) {
                ::new (static_cast<void *>(nd + i))
                    Entry(std::move(data_[i]));
                data_[i].~Entry();
            }
            ::operator delete(data_);
            data_ = nd;
            cap_ = ncap;
        }

        Entry *data_ = nullptr;
        std::size_t size_ = 0;
        std::size_t cap_ = 0;
    };

    /**
     * One calendar slot. `sorted` is true only while this is the
     * current bucket: future buckets take cheap unordered appends and
     * are sorted once, by (when, seq), when the window reaches them.
     * `head` indexes the next unfired entry of the current bucket
     * (consumed entries stay as moved-from husks until the bucket
     * drains and its storage is recycled).
     */
    struct Bucket
    {
        EntryVec entries;
        std::size_t head = 0;
        bool sorted = false;
    };

    static constexpr std::size_t
    bucketIndex(Tick when)
    {
        return static_cast<std::size_t>(when >> bucketBits) &
               (bucketCount - 1);
    }

    static constexpr Tick
    bucketBase(Tick when)
    {
        return when & ~(bucketWidth - 1);
    }

    template <typename F>
    void
    insert(Tick when, std::uint64_t seq, const ckpt::EventDesc &desc,
           F &&fn)
    {
        if (pendingCnt == 0) {
            // Empty queue: re-anchor the window at the new event so
            // the ubiquitous schedule-then-fire pattern never touches
            // the overflow heap no matter how far curTick drifted.
            // Every bucket is empty here (fireHead clears a bucket
            // the moment it drains), so the event is trivially in
            // order and its bucket — the current one after the
            // re-anchor — takes a straight append.
            Tick nb = bucketBase(when);
            if (nb != base) {
                curb->sorted = false;
                base = nb;
                cur = bucketIndex(when);
                curb = &buckets[cur];
                curb->sorted = true; // empty: trivially sorted
            }
            curb->entries.emplace_back(when, seq, desc,
                                       std::forward<F>(fn));
            ringCount += 1;
            return;
        }
        if (when < base) {
            // A long idle runUntil() re-anchored the window at a
            // far-future event and control returned to the user; a
            // new event now lands before the window. Rare and cold:
            // rebuild the window around the early event.
            rewindTo(when);
        }
        if (when < base + horizon) {
            Bucket &b = buckets[bucketIndex(when)];
            if (&b == curb && b.sorted &&
                !(b.entries.empty() ||
                  b.entries.back().when < when ||
                  (b.entries.back().when == when &&
                   b.entries.back().seq < seq))) {
                // Out-of-order arrival into the live bucket: a
                // binary-search insert keeps it sorted. The compare
                // is the full (when, seq) order — a merged-band
                // event (scheduleMergedAt) carries a lower seq than
                // same-tick local events already in the bucket, so
                // ordering by `when` alone would misplace it.
                // In-order arrivals (the common case) append below,
                // which also keeps the bucket sorted.
                auto it = std::upper_bound(
                    b.entries.begin() +
                        static_cast<std::ptrdiff_t>(b.head),
                    b.entries.end(),
                    std::pair<Tick, std::uint64_t>{when, seq},
                    [](const std::pair<Tick, std::uint64_t> &k,
                       const Entry &e) {
                        return k.first != e.when ? k.first < e.when
                                                 : k.second < e.seq;
                    });
                b.entries.emplace(it, when, seq, desc,
                                  std::forward<F>(fn));
            } else {
                b.entries.emplace_back(when, seq, desc,
                                       std::forward<F>(fn));
            }
            ringCount += 1;
        } else {
            heap.emplace_back(when, seq, desc, std::forward<F>(fn));
            std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        }
    }

    /**
     * Position the window on the earliest pending event: sort the
     * bucket it lives in if needed, sliding over empty buckets and
     * pulling overflow events that fall into the window as it moves.
     * @retval false when nothing is pending.
     */
    bool
    ensureCurrent()
    {
        for (;;) {
            Bucket &b = *curb;
            if (b.head < b.entries.size()) {
                if (!b.sorted)
                    sortBucket(b);
                return true;
            }
            if (b.head != 0) {
                // Destructor-free: a drained bucket holds only husks.
                // Capacity is kept, so warm buckets stay warm.
                b.entries.truncateHusks();
                b.head = 0;
            }
            if (ringCount == 0) {
                if (heap.empty())
                    return false;
                // Ring dry: jump the window to the heap's earliest
                // event instead of sliding bucket by bucket.
                b.sorted = false;
                Tick w = heap.front().when;
                base = bucketBase(w);
                cur = bucketIndex(w);
                curb = &buckets[cur];
                migrateOverflow();
                continue;
            }
            // Slide one bucket; the vacated slot becomes the far edge
            // of the window and inherits any overflow events there.
            b.sorted = false;
            cur = (cur + 1) & (bucketCount - 1);
            curb = &buckets[cur];
            base += bucketWidth;
            migrateOverflow();
        }
    }

    /** Pull every overflow event inside [base, base + horizon). */
    void
    migrateOverflow()
    {
        const Tick limit = base + horizon;
        while (!heap.empty() && heap.front().when < limit) {
            std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
            Entry &top = heap.back();
            Bucket &b = buckets[bucketIndex(top.when)];
            b.entries.emplace_back(top.when, top.seq, top.desc,
                                   std::move(top.fn));
            b.sorted = false;
            heap.pop_back();
            ringCount += 1;
            migrated += 1;
        }
    }

    /** Rebuild the window around early @p when (cold path; see insert). */
    void
    rewindTo(Tick when)
    {
        for (auto &b : buckets) {
            for (std::size_t i = b.head; i < b.entries.size(); ++i) {
                heap.push_back(std::move(b.entries[i]));
                std::push_heap(heap.begin(), heap.end(),
                               std::greater<>{});
            }
            b.entries.destroyAll();
            b.head = 0;
            b.sorted = false;
        }
        ringCount = 0;
        base = bucketBase(when);
        cur = bucketIndex(when);
        curb = &buckets[cur];
        migrateOverflow();
    }

    static void
    sortBucket(Bucket &b)
    {
        gs_assert(b.head == 0, "sorting a partially drained bucket");
        std::sort(b.entries.begin(), b.entries.end(),
                  [](const Entry &a, const Entry &c) {
                      return a.when != c.when ? a.when < c.when
                                              : a.seq < c.seq;
                  });
        b.sorted = true;
    }

    /** Fire the head of the current bucket (ensureCurrent() == true). */
    void
    fireHead()
    {
        Bucket &b = *curb;
        Entry &slot = b.entries[b.head];
        // The callable is relocated out of the slot before it runs:
        // the callback may append to this bucket and reallocate its
        // storage. Trivially-relocatable callables (the steady-state
        // shape) take the raw-copy thunk path; the rest pay a full
        // InlineFn move.
        alignas(std::max_align_t) unsigned char tmp[EventFn::inlineCapacity];
        const Tick when = slot.when;
        auto pop = [&] {
            b.head += 1;
            if (b.head == b.entries.size()) {
                b.entries.truncateHusks(); // all husks: destructor-free
                b.head = 0;
            }
            ringCount -= 1;
            pendingCnt -= 1;
            curTick = when;
            fired += 1;
        };
        if (EventFn::CallFn thunk = slot.fn.stealTrivial(tmp)) {
            pop();
            thunk(tmp);
        } else {
            EventFn fn = std::move(slot.fn);
            pop();
            fn();
        }
    }

    std::array<Bucket, bucketCount> buckets;
    // Overflow min-heap, kept as a raw vector + std::push_heap /
    // std::pop_heap (same complexity as std::priority_queue) so that
    // checkpointing can iterate the parked entries.
    std::vector<Entry> heap;
    Tick base = 0;        ///< window start (current bucket's range)
    std::size_t cur = 0;  ///< physical index of the current bucket
    Bucket *curb = &buckets[0]; ///< cached &buckets[cur] (hot paths)
    std::size_t ringCount = 0;  ///< unfired events in the ring
    std::size_t pendingCnt = 0; ///< ringCount + heap.size(), cached

    Tick curTick = 0;
    Tick drainLimit_ = 0; ///< live only inside drainWindow()
    std::uint64_t nextSeq = localSeqBase; ///< local scheduling band
    std::uint64_t nextMergedSeq = 0;      ///< barrier-merge band
    std::uint64_t fired = 0;
    std::size_t peak = 0;
    std::uint64_t migrated = 0;
};

} // namespace gs

#endif // GS_SIM_EVENT_QUEUE_HH

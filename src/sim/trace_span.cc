#include "sim/trace_span.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/telemetry.hh"

namespace gs::trace
{

namespace
{

/** Sampling stream tag for Rng::deriveSeed ("SPAN"). */
constexpr std::uint64_t spanStream = 0x5350414eULL;

/** Ticks (ps) to the nanoseconds the histograms are bucketed in. */
double
ns(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

/**
 * Shared histogram geometry: 4 ns buckets to 4096 ns cover every
 * latency the paper's configurations produce (remote loads top out
 * near 1 us under load) while keeping sub-bucket interpolation
 * honest for the short stages (VC wait is often < 16 ns); heavier
 * tails land in the overflow bucket, which percentile()
 * interpolates against the observed max.
 */
constexpr double histLo = 0.0;
constexpr double histHi = 4096.0;
constexpr std::size_t histBuckets = 1024;

} // namespace

SpanCollector::SpanCollector(std::uint64_t seed, double rate, int nodes)
    : seedHash_(Rng::deriveSeed(seed, spanStream)),
      rate_(std::clamp(rate, 0.0, 1.0)),
      sampleAll_(rate >= 1.0),
      lanes_(static_cast<std::size_t>(nodes)),
      total_(histLo, histHi, histBuckets),
      stage_(numStages,
             stats::Histogram(histLo, histHi, histBuckets)),
      dramQueue_(histLo, histHi, histBuckets),
      dramService_(histLo, histHi, histBuckets)
{
    gs_assert(nodes > 0, "span collector needs at least one node");
    // rate < 1 keeps the product strictly below 2^64, so the cast
    // is exact-representable; rate >= 1 short-circuits in sampleMiss.
    threshold_ = sampleAll_
                     ? ~0ULL
                     : static_cast<std::uint64_t>(
                           std::ldexp(rate_, 64));
}

void
SpanCollector::complete(NodeId node, const SpanState &s, Tick now)
{
    gs_assert(s.id != 0, "completing an unsampled span");
    SpanRecord r;
    r.id = s.id;
    r.node = node;
    r.begin = s.begin;
    r.end = now;
    r.dramQueue = s.dramQueue;
    r.ticks = s.ticks;
    lanes_[static_cast<std::size_t>(node)].done.push_back(r);
}

void
SpanCollector::finalize()
{
    ordered_.clear();
    std::uint64_t sampled = 0;
    for (const Lane &ln : lanes_) {
        sampled += ln.sampled;
        ordered_.insert(ordered_.end(), ln.done.begin(),
                        ln.done.end());
    }
    // Canonical order: issue time, then id. Ids are unique, so the
    // order — and every export derived from it — is total and
    // independent of which lane (thread) a span completed in.
    std::sort(ordered_.begin(), ordered_.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.begin != b.begin)
                      return a.begin < b.begin;
                  return a.id < b.id;
              });
    snapSampled_ = sampled;
    snapCompleted_ = ordered_.size();

    total_.reset();
    for (auto &h : stage_)
        h.reset();
    dramQueue_.reset();
    dramService_.reset();
    for (const SpanRecord &r : ordered_) {
        total_.sample(ns(r.end - r.begin));
        // Every span feeds every stage (zeros included): that makes
        // the per-stage means sum to the total mean exactly, the
        // invariant the x-ray breakdown table checks.
        for (int s = 0; s < numStages; ++s)
            stage_[static_cast<std::size_t>(s)].sample(ns(r.ticks[
                static_cast<std::size_t>(s)]));
        if (r.ticks[Dram] != 0) {
            dramQueue_.sample(ns(r.dramQueue));
            dramService_.sample(ns(r.ticks[Dram] - r.dramQueue));
        }
    }
}

void
SpanCollector::clearStats()
{
    // Sequences keep advancing: span identity (and thus the sample
    // set) is a property of the whole run, not the measured window.
    for (Lane &ln : lanes_) {
        ln.sampled = 0;
        ln.done.clear();
    }
    ordered_.clear();
    snapSampled_ = 0;
    snapCompleted_ = 0;
    total_.reset();
    for (auto &h : stage_)
        h.reset();
    dramQueue_.reset();
    dramService_.reset();
}

void
SpanCollector::registerTelemetry(telem::Registry &reg,
                                 const std::string &prefix)
{
    reg.addCounter(telem::path(prefix, "sampled"), snapSampled_);
    reg.addCounter(telem::path(prefix, "completed"), snapCompleted_);
    reg.addHistogram(telem::path(prefix, "total_ns"), total_);
    for (int s = 0; s < numStages; ++s)
        reg.addHistogram(
            telem::path(prefix, "stage",
                        std::string(stageName(s)) + "_ns"),
            stage_[static_cast<std::size_t>(s)]);
    reg.addHistogram(telem::path(prefix, "dram", "queue_ns"),
                     dramQueue_);
    reg.addHistogram(telem::path(prefix, "dram", "service_ns"),
                     dramService_);
}

void
SpanCollector::exportTrace(telem::TraceWriter &tw) const
{
    int tid = 1000;
    for (const SpanRecord &r : ordered_) {
        tw.flowStart(r.begin, "txn", tid, r.id);
        tw.begin(r.begin, "txn", tid, "txn");
        Tick t = r.begin;
        for (int s = 0; s < numStages; ++s) {
            const Tick d = r.ticks[static_cast<std::size_t>(s)];
            if (d == 0)
                continue;
            tw.begin(t, stageName(s), tid, "stage");
            t += d;
            tw.end(t, stageName(s), tid, "stage");
        }
        tw.flowFinish(r.end, "txn", tid, r.id);
        tw.end(r.end, "txn", tid, "txn");
        tid += 1;
    }
}

void
SpanCollector::saveCkpt(ckpt::Serializer &s) const
{
    s.put32(static_cast<std::uint32_t>(lanes_.size()));
    for (const Lane &ln : lanes_) {
        s.put64(ln.seq);
        s.put64(ln.sampled);
        s.put32(static_cast<std::uint32_t>(ln.done.size()));
        for (const SpanRecord &r : ln.done) {
            s.put64(r.id);
            s.putI32(r.node);
            s.put64(r.begin);
            s.put64(r.end);
            s.put64(r.dramQueue);
            for (Tick t : r.ticks)
                s.put64(t);
        }
    }
}

void
SpanCollector::restoreCkpt(ckpt::Deserializer &d)
{
    if (d.get32() != lanes_.size() && d.ok()) {
        d.fail("span collector node count mismatch");
        return;
    }
    for (Lane &ln : lanes_) {
        ln.seq = d.get64();
        ln.sampled = d.get64();
        ln.done.assign(d.get32(), SpanRecord{});
        for (SpanRecord &r : ln.done) {
            r.id = d.get64();
            r.node = d.getI32();
            r.begin = d.get64();
            r.end = d.get64();
            r.dramQueue = d.get64();
            for (Tick &t : r.ticks)
                t = d.get64();
        }
    }
    // Derived state is rebuilt by the next finalize().
    ordered_.clear();
    snapSampled_ = 0;
    snapCompleted_ = 0;
}

std::function<void()>
SpanCollector::rehydrateEvent(const ckpt::EventDesc &d)
{
    (void)d;
    gs_fatal("span collector schedules no events");
}

} // namespace gs::trace

/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component takes a seed explicitly so that whole
 * experiments replay bit-identically; nothing in the library touches
 * global RNG state.
 */

#ifndef GS_SIM_RANDOM_HH
#define GS_SIM_RANDOM_HH

#include <cstdint>

namespace gs
{

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and high
 * quality; statistically far better than rand() at similar cost.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /**
     * Derive the seed of counted stream @p stream under @p master.
     *
     * Streams are *counted*, not sequentially drawn: stream i's seed
     * is a pure function of (master, i), so adding or removing a
     * stream never perturbs any other stream's values. Sweep engines
     * use one stream per sweep point, which is what makes results
     * independent of execution order and thread count.
     */
    static std::uint64_t
    deriveSeed(std::uint64_t master, std::uint64_t stream)
    {
        // Two rounds of the SplitMix64 finalizer over a golden-ratio
        // spread of the stream index, folded into the master seed.
        return mix(master + mix(stream * 0x9e3779b97f4a7c15ULL + 1));
    }

    /** The generator for counted stream @p stream under @p master. */
    static Rng
    stream(std::uint64_t master, std::uint64_t stream)
    {
        return Rng(deriveSeed(master, stream));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        const auto hi = static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(hi >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** @name Checkpoint/restore: the four raw state words.
     *
     * The generator's position in its stream is exactly s[0..3], so
     * a snapshot restores the continuation bit-exactly. Words come
     * back verbatim; an all-zero state (never produced by seeding)
     * is rejected by restore callers, not here.
     */
    /// @{
    void
    stateWords(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = s[i];
    }

    void
    setStateWords(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            s[i] = in[i];
    }
    /// @}

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** SplitMix64 finalizer: a strong 64-bit bijective mix. */
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t s[4];
};

} // namespace gs

#endif // GS_SIM_RANDOM_HH

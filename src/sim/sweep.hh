/**
 * @file
 * Parallel deterministic sweep engine.
 *
 * Every figure bench regenerates a paper series by running many
 * *independent* simulations — one per sweep point (CPU count, stride,
 * load level, fault count, ...). SweepRunner executes those points
 * across a pool of hardware threads while keeping the results
 * bit-identical to a serial run:
 *
 *  - each point gets a *counted* RNG seed derived from the master
 *    seed and its declared index (Rng::deriveSeed), never from shared
 *    generator state, so scheduling order cannot perturb anything;
 *  - each point's task builds its own SimContext/Machine and returns
 *    a value; tasks share nothing mutable;
 *  - results are stored by declared index and returned in declared
 *    order, regardless of completion order.
 *
 * `--jobs 1` therefore reproduces the serial path exactly, and
 * `--jobs N` produces byte-identical output N times faster.
 */

#ifndef GS_SIM_SWEEP_HH
#define GS_SIM_SWEEP_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace gs
{

/** One sweep point's identity and deterministic services. */
struct SweepPoint
{
    std::size_t index;  ///< position in the declared point list
    std::uint64_t seed; ///< counted stream seed for this point

    /** A fresh generator on this point's private stream. */
    Rng rng() const { return Rng(seed); }
};

/**
 * Thread-pool executor for independent simulation sweep points.
 *
 * Usage:
 *
 *   SweepRunner runner(args);   // --jobs / --seed
 *   auto rows = runner.map(points, [&](const P &p, SweepPoint sp) {
 *       auto m = sys::Machine::buildGS1280(p.cpus, {.seed = sp.seed});
 *       ...measure...
 *       return row;
 *   });
 */
class SweepRunner
{
  public:
    /**
     * @param jobs worker threads; 0 picks hardware concurrency,
     *             1 runs points inline on the calling thread
     * @param masterSeed root of every point's counted RNG stream
     */
    explicit SweepRunner(int jobs = 0, std::uint64_t masterSeed = 1)
        : nJobs(clampJobs(jobs)), seed_(masterSeed)
    {
    }

    /** Threads this runner will use (>= 1). */
    int jobs() const { return nJobs; }

    std::uint64_t masterSeed() const { return seed_; }

    /** The hardware-concurrency default (>= 1). */
    static int hardwareJobs();

    /** Normalise a --jobs request: 0 -> hardware, floor 1. */
    static int clampJobs(int jobs);

    /** The counted seed point @p index would receive. */
    std::uint64_t
    pointSeed(std::size_t index) const
    {
        return Rng::deriveSeed(seed_, index);
    }

    /**
     * Run @p fn(point, SweepPoint) over every element of @p points
     * and return the results in declared order. @p fn must be
     * self-contained: everything mutable it touches is built inside
     * the call (its own Machine, its own generators seeded from the
     * SweepPoint), so any thread may run any point.
     */
    template <typename T, typename Fn>
    auto
    map(const std::vector<T> &points, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &, SweepPoint>>
    {
        using R = std::invoke_result_t<Fn &, const T &, SweepPoint>;
        static_assert(std::is_default_constructible_v<R>,
                      "sweep results are stored by index");

        std::vector<R> results(points.size());
        auto task = [&](std::size_t i) {
            results[i] =
                fn(points[i], SweepPoint{i, pointSeed(i)});
        };
        dispatch(points.size(), task);
        return results;
    }

    /** Index-only form: run @p fn(SweepPoint) for n declared points. */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, SweepPoint>>
    {
        using R = std::invoke_result_t<Fn &, SweepPoint>;
        static_assert(std::is_default_constructible_v<R>,
                      "sweep results are stored by index");

        std::vector<R> results(n);
        auto task = [&](std::size_t i) {
            results[i] = fn(SweepPoint{i, pointSeed(i)});
        };
        dispatch(n, task);
        return results;
    }

  private:
    /**
     * Run task(i) for i in [0, n). Points are claimed from an atomic
     * cursor; each writes only its own result slot, so no locking is
     * needed beyond the cursor itself.
     */
    template <typename Task>
    void
    dispatch(std::size_t n, Task &task)
    {
        if (n == 0)
            return;
        const int workers =
            static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(nJobs), n));
        if (workers <= 1) {
            // Serial path: in declared order, on this thread.
            for (std::size_t i = 0; i < n; ++i)
                task(i);
            return;
        }

        std::atomic<std::size_t> cursor{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::once_flag errorOnce;

        auto worker = [&]() {
            while (!failed.load(std::memory_order_relaxed)) {
                const std::size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    task(i);
                } catch (...) {
                    std::call_once(errorOnce, [&] {
                        error = std::current_exception();
                    });
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers) - 1);
        for (int t = 1; t < workers; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &th : pool)
            th.join();
        if (error)
            std::rethrow_exception(error);
    }

    int nJobs;
    std::uint64_t seed_;
};

} // namespace gs

#endif // GS_SIM_SWEEP_HH

#include "sim/logging.hh"

#include <atomic>
#include <cstdio>

namespace gs
{

namespace
{
// Atomic so sweep workers can log while the driver toggles
// verbosity; this is the library's only global mutable state.
std::atomic<bool> verboseFlag{true};
}

void setVerbose(bool on) { verboseFlag.store(on, std::memory_order_relaxed); }
bool verbose() { return verboseFlag.load(std::memory_order_relaxed); }

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace gs

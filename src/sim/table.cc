#include "sim/table.hh"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace gs
{

Table::Table(std::vector<std::string> header) : head(std::move(header))
{
    gs_assert(!head.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    gs_assert(cells.size() == head.size(),
              "row width ", cells.size(), " != header width ", head.size());
    body.push_back(std::move(cells));
}

std::string
Table::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::num(int v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
               << row[c];
        }
        os << '\n';
    };

    emit(head);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << '\n';
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==" << '\n';
}

} // namespace gs

/**
 * @file
 * Minimal command-line option parsing for bench/example binaries.
 *
 * Supports `--key=value` and `--flag` forms plus `--help`. Unknown
 * options are fatal so that typos in sweep scripts fail loudly.
 */

#ifndef GS_SIM_ARGS_HH
#define GS_SIM_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gs
{

/** Parsed command line with typed accessors and defaults. */
class Args
{
  public:
    /**
     * Parse argv. @p known maps option name -> help text; options not
     * in @p known (other than help) terminate the program.
     */
    Args(int argc, char **argv,
         std::map<std::string, std::string> known = {});

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

  private:
    std::map<std::string, std::string> values;
};

} // namespace gs

#endif // GS_SIM_ARGS_HH

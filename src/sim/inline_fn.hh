/**
 * @file
 * InlineFn: a small-buffer-optimized, move-only void() callable.
 *
 * The event kernel fires millions of callbacks per simulated second;
 * with std::function every scheduled lambda that outgrows the
 * (implementation-defined, typically 16-byte) internal buffer costs a
 * heap allocation. InlineFn reserves enough inline storage for the
 * simulator's hot-path captures — a network arrival event carries a
 * packet handle plus routing coordinates, a coherence callback a
 * couple of pointers — so steady-state scheduling allocates nothing.
 * Callables larger than the buffer still work; they fall back to the
 * heap exactly like std::function would.
 */

#ifndef GS_SIM_INLINE_FN_HH
#define GS_SIM_INLINE_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gs
{

/** Move-only type-erased void() callable with inline storage. */
class InlineFn
{
  public:
    /**
     * Capture bytes stored without heap allocation. Sized for the
     * largest hot-path lambda (the synthetic traffic re-arm closure:
     * two shared_ptrs, two references and a node id, ~56 bytes);
     * packets travel as 4-byte pool handles, so network wire events
     * need far less. tests/sim/alloc_count_test.cc pins this.
     */
    static constexpr std::size_t inlineCapacity = 64;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineCapacity &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            call_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            if constexpr (std::is_trivially_copyable_v<Fn> &&
                          std::is_trivially_destructible_v<Fn>) {
                // Trivially relocatable: mgr_ stays null, moves are a
                // straight buffer copy and destruction is free. This
                // is the hot-path shape (captures of pointers, ids,
                // packet handles) — no indirect calls per move.
            } else {
                mgr_ = [](Op op, void *self, void *dst) {
                    auto *fn = static_cast<Fn *>(self);
                    if (op == Op::relocateTo)
                        ::new (dst) Fn(std::move(*fn));
                    fn->~Fn();
                };
            }
        } else {
            // Oversized capture: one allocation, owned pointer in buf.
            auto *heap = new Fn(std::forward<F>(f));
            ::new (static_cast<void *>(buf)) Fn *(heap);
            call_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            mgr_ = [](Op op, void *self, void *dst) {
                auto **fn = static_cast<Fn **>(self);
                if (op == Op::relocateTo)
                    ::new (dst) Fn *(*fn);
                else
                    delete *fn;
            };
        }
    }

    /**
     * Moved-from state: empty for heap-backed and non-trivial
     * callables; valid-but-unspecified (possibly still truthy, never
     * owning) for trivially-relocatable ones. The trivial path skips
     * nulling the source — its destructor is a no-op either way —
     * which keeps the event kernel's fire path to a plain copy.
     */
    InlineFn(InlineFn &&o) noexcept : call_(o.call_), mgr_(o.mgr_)
    {
        if (mgr_) {
            mgr_(Op::relocateTo, o.buf, buf);
            o.call_ = nullptr;
            o.mgr_ = nullptr;
        } else if (call_) {
            std::memcpy(buf, o.buf, inlineCapacity);
        }
    }

    InlineFn &
    operator=(InlineFn &&o) noexcept
    {
        if (this != &o) {
            if (mgr_)
                mgr_(Op::destroy, buf, nullptr);
            call_ = o.call_;
            mgr_ = o.mgr_;
            if (mgr_) {
                mgr_(Op::relocateTo, o.buf, buf);
                o.call_ = nullptr;
                o.mgr_ = nullptr;
            } else if (call_) {
                std::memcpy(buf, o.buf, inlineCapacity);
            }
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn()
    {
        if (mgr_)
            mgr_(Op::destroy, buf, nullptr);
    }

    /** Invoke. Precondition: non-empty. */
    void operator()() { call_(buf); }

    explicit operator bool() const { return call_ != nullptr; }

    /** Thunk type returned by stealTrivial(); invoke as thunk(tmp). */
    using CallFn = void (*)(void *);

    /**
     * Fire-path escape hatch for the event kernel: when the stored
     * callable is trivially relocatable (mgr_ unset), copy its
     * capture bytes into @p tmp — at least inlineCapacity bytes,
     * max_align_t-aligned — and return the call thunk; *this is left
     * a vacated husk. Returns nullptr (and does nothing) for
     * heap-backed/non-trivial callables, which need a full move. The
     * caller invoking the thunk directly skips the temporary
     * InlineFn's destructor check that a move would cost.
     */
    CallFn
    stealTrivial(void *tmp)
    {
        if (mgr_)
            return nullptr;
        std::memcpy(tmp, buf, inlineCapacity);
        return call_;
    }

    /** True when a callable of type @p F stays in the inline buffer. */
    template <typename F>
    static constexpr bool
    fitsInline()
    {
        using Fn = std::decay_t<F>;
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    enum class Op
    {
        relocateTo, ///< move-construct into dst, destroy self
        destroy,    ///< destroy self
    };

    using MgrFn = void (*)(Op, void *self, void *dst);

    alignas(std::max_align_t) unsigned char buf[inlineCapacity];
    CallFn call_ = nullptr;
    MgrFn mgr_ = nullptr;
};

} // namespace gs

#endif // GS_SIM_INLINE_FN_HH

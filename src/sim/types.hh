/**
 * @file
 * Fundamental simulation types and time helpers.
 *
 * The simulator keeps one global time base in picoseconds so that
 * components in different clock domains (1.15 GHz EV7 core, 767 MHz
 * router/Zbox data rate, 400 MHz GS320 switch) can interoperate on a
 * single event queue without rounding surprises.
 */

#ifndef GS_SIM_TYPES_HH
#define GS_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace gs
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Node (processor/switch) identifier inside one machine. */
using NodeId = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = -1;

/** Sentinel tick, later than any reachable simulation time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** One nanosecond in ticks. */
constexpr Tick tickNs = 1000;

/** One microsecond in ticks. */
constexpr Tick tickUs = 1000 * tickNs;

/** One millisecond in ticks. */
constexpr Tick tickMs = 1000 * tickUs;

/** Convert a floating-point nanosecond quantity to ticks (rounded). */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickNs) + 0.5);
}

/** Convert ticks to (floating point) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickNs);
}

/**
 * A clock domain: converts between cycles and ticks.
 *
 * Period is stored in ticks (picoseconds); e.g. the EV7 core at
 * 1.15 GHz has a period of 870 ps, the router/Zbox data clock at
 * 767 MHz has a period of 1304 ps.
 */
class Clock
{
  public:
    /** Construct from a frequency in MHz. */
    static Clock
    fromMHz(double mhz)
    {
        return Clock(static_cast<Tick>(1e6 / mhz + 0.5));
    }

    explicit constexpr Clock(Tick period_ps) : period(period_ps) {}

    constexpr Tick periodTicks() const { return period; }
    constexpr double frequencyGHz() const
    {
        return 1000.0 / static_cast<double>(period);
    }

    /** Ticks taken by @p n cycles of this clock. */
    constexpr Tick cyclesToTicks(Cycles n) const { return n * period; }

    /** Whole cycles elapsed at tick @p t (floor). */
    constexpr Cycles ticksToCycles(Tick t) const { return t / period; }

    /** Next tick at or after @p t that is aligned to a clock edge. */
    constexpr Tick
    nextEdge(Tick t) const
    {
        return ((t + period - 1) / period) * period;
    }

  private:
    Tick period;
};

} // namespace gs

#endif // GS_SIM_TYPES_HH

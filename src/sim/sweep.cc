#include "sim/sweep.hh"

namespace gs
{

int
SweepRunner::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
SweepRunner::clampJobs(int jobs)
{
    if (jobs <= 0)
        return hardwareJobs();
    return jobs;
}

} // namespace gs

/**
 * @file
 * Error/status reporting in the gem5 spirit: panic() for simulator
 * bugs, fatal() for user errors, warn()/inform() for status.
 */

#ifndef GS_SIM_LOGGING_HH
#define GS_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gs
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a variadic pack into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Toggle inform() output (benches silence it for clean tables). */
void setVerbose(bool on);
bool verbose();

} // namespace gs

/**
 * panic: something happened that should never happen regardless of
 * what the user does, i.e. a simulator bug. Aborts.
 */
#define gs_panic(...) \
    ::gs::detail::panicImpl(__FILE__, __LINE__, \
                            ::gs::detail::concat(__VA_ARGS__))

/**
 * fatal: the simulation cannot continue due to a user-level problem
 * (bad configuration, invalid arguments). Exits with code 1.
 */
#define gs_fatal(...) \
    ::gs::detail::fatalImpl(__FILE__, __LINE__, \
                            ::gs::detail::concat(__VA_ARGS__))

/** warn: possibly-incorrect behaviour the user should know about. */
#define gs_warn(...) \
    ::gs::detail::warnImpl(::gs::detail::concat(__VA_ARGS__))

/** inform: normal operating message. */
#define gs_inform(...) \
    ::gs::detail::informImpl(::gs::detail::concat(__VA_ARGS__))

/** Internal invariant check that survives NDEBUG builds. */
#define gs_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            gs_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // GS_SIM_LOGGING_HH

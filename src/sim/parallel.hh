/**
 * @file
 * Conservative parallel discrete-event engine.
 *
 * A machine's components are partitioned into spatial domains — on
 * the torus, rectangular R x C *tiles* chosen by chooseTileShape()
 * from the worker-thread count (or pinned via --tile-shape) — each
 * with its own SimContext (event queue), and all domains advance in
 * barrier-synchronized epochs. An epoch's window length equals the
 * conservative lookahead: the minimum delay any event executing in
 * one domain can impose on another domain (on the torus, the
 * one-cycle credit return across a cross-domain link — see
 * docs/PARALLEL.md for the derivation). A client-supplied window
 * hook may *widen* a window when the fabric is provably quiescent
 * (adaptive lookahead; the AdaptiveLookahead state machine below).
 * Within a window every domain fires its events independently;
 * anything aimed at another domain is buffered in a mailbox by the
 * client layer (the Network) and merged at the next barrier in
 * canonical (when, src-domain, src-seq) order via
 * EventQueue::scheduleMergedAt.
 *
 * Workers claim domains through a per-epoch atomic stamp, home block
 * first and then stealing unclaimed tiles from other workers, so one
 * hot tile does not leave the rest of the pool spinning at the
 * barrier. Stealing moves only *which thread* drains a tile, never
 * what fires when.
 *
 * Determinism contract: epoch boundaries are a pure function of
 * simulation state (each next window starts at the globally earliest
 * pending event; widening depends only on fabric state), and domain
 * count is fixed by the machine build — never by the worker-thread
 * count. Results are therefore bit-identical at any --threads value,
 * the same contract the sweep engine (sim/sweep.hh) established
 * across --jobs.
 */

#ifndef GS_SIM_PARALLEL_HH
#define GS_SIM_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/context.hh"
#include "sim/types.hh"

namespace gs
{

/**
 * A box tiling of a torus into rows x cols (x slabs) domains. The
 * 2-D machines tile W x H into rows x cols; 3-D machines add slabs
 * along Z. slabs defaults to 1 so 2-D call sites (and `{r, c}`
 * aggregate initialisers) are unchanged.
 */
struct TileShape
{
    int rows = 1;
    int cols = 1;
    int slabs = 1;

    int count() const { return rows * cols * slabs; }
    bool operator==(const TileShape &o) const
    {
        return rows == o.rows && cols == o.cols && slabs == o.slabs;
    }
};

/**
 * Pick the R x C tiling of a @p width x @p height torus for
 * @p threads workers. Deterministic, and a pure function of its
 * arguments: the decomposition (and therefore every simulated
 * result) depends on the *shape*, so runs that must be compared at
 * different thread counts pin an explicit shape instead.
 *
 * Preference order among tilings with rows*cols >= min(threads, W*H):
 * fewest tiles, then fewest torus links cut, then squarest, then
 * wider-than-tall — so 8 threads on an 8x8 torus get 2x4 tiles
 * (48 cut links) rather than the old 8 columns (64).
 */
TileShape chooseTileShape(int width, int height, int threads);

/**
 * 3-D generalisation of chooseTileShape(): pick the R x C x S box
 * tiling of a @p width x @p height x @p depth torus for @p threads
 * workers. Same preference order — fewest tiles, fewest torus links
 * cut by tile seams (a seam between Z slabs cuts width*height links,
 * between Y bands width*depth, between X bands height*depth), most
 * cubical, then wider-than-tall/deep. At depth == 1 it picks exactly
 * chooseTileShape(width, height, threads) with slabs == 1 (unit
 * tested), so the 2-D decompositions are a strict special case.
 */
TileShape
chooseTileShape3(int width, int height, int depth, int threads);

/**
 * Domain index of torus node (@p x, @p y) under @p shape tiles on a
 * @p width x @p height torus: tiles are contiguous blocks of whole
 * rows/columns (balanced split), numbered row-major.
 */
inline int
tileDomainOf(int x, int y, int width, int height, TileShape shape)
{
    int tr = y * shape.rows / height;
    int tc = x * shape.cols / width;
    return tr * shape.cols + tc;
}

/**
 * 3-D counterpart of tileDomainOf(): slabs-major over Z, then
 * row-major within the slab, so depth == 1 (slabs == 1) reduces to
 * the 2-D mapping unchanged.
 */
inline int
tileDomainOf3(int x, int y, int z, int width, int height, int depth,
              TileShape shape)
{
    int ts = z * shape.slabs / depth;
    return (ts * shape.rows + y * shape.rows / height) * shape.cols +
           x * shape.cols / width;
}

/**
 * The adaptive-lookahead state machine (docs/PARALLEL.md). One
 * instance per machine, stepped once per epoch barrier by the window
 * hook: while the fabric is quiescent the window doubles each epoch
 * up to min(base * maxFactor, bound); any traffic snaps it back to
 * the conservative base. Pure state machine — unit-tested directly
 * in tests/sim/parallel_tile_test.cc — and checkpointed (the factor
 * is part of deterministic engine state).
 */
struct AdaptiveLookahead
{
    Tick base = 1;     ///< conservative lookahead (floor)
    Tick bound = 1;    ///< provable idle-window cap (ceiling)
    int maxFactor = 16;
    int factor = 1;    ///< current widening multiple

    /**
     * One barrier step: @p quiet is "no cross-domain effect can
     * arise without a fresh injection". @return the next window
     * length.
     */
    Tick
    step(bool quiet)
    {
        factor = quiet ? std::min(factor * 2, maxFactor) : 1;
        Tick len = base * static_cast<Tick>(factor);
        Tick cap = bound > base ? bound : base;
        return len < cap ? len : cap;
    }

    /** Whether the last step() returned a window wider than base. */
    bool
    widened() const
    {
        return factor > 1 && bound > base;
    }
};

/** Barrier-synchronized multi-domain event-loop driver. */
class ParallelEngine
{
  public:
    struct Config
    {
        int domains = 1;
        int threads = 1;    ///< workers; clamped to [1, domains]
        Tick lookahead = 1; ///< epoch window length in ticks
        std::uint64_t seed = 1;
    };

    /**
     * Merge hook: called for every domain at the start of every
     * epoch by the worker that claimed the domain, after the barrier —
     * every mailbox written during the previous epoch is quiescent.
     * The client schedules the buffered cross-domain work into
     * domainCtx(domain) with scheduleMergedAt, in canonical order.
     */
    using MergeFn = std::function<void(int domain, Tick windowStart)>;

    /**
     * Earliest due time among cross-domain entries domain @p d has
     * posted but no consumer has merged yet (maxTick when none).
     * Folded into the next-window computation at each barrier so
     * skip-ahead never jumps past buffered work.
     */
    using PendingMinFn = std::function<Tick(int domain)>;

    /**
     * Stop predicate, evaluated by exactly one thread at each
     * barrier while all other workers are parked — every domain's
     * state is coherent and safe to read. Returning true ends the
     * run (the Machine's completion check).
     */
    using StopFn = std::function<bool()>;

    /**
     * Publish hook: called for every domain by its claiming worker
     * after the domain drains each window, before the barrier. The
     * client snapshots per-domain state (double-buffered on its
     * side) that every domain's next merge may read — the Network
     * uses it to reduce global tick-chain liveness.
     */
    using PublishFn = std::function<void(int domain)>;

    /**
     * Window hook: called once per epoch (by the last thread to
     * arrive at the barrier, all others parked) with the window
     * start and the conservative end (start + lookahead). Returns
     * the window end to use — the Network's adaptive-lookahead step
     * widens it when the fabric is quiescent. Must be a pure
     * function of simulation state; the result is clamped at the
     * run deadline afterwards.
     */
    using WindowFn = std::function<Tick(Tick windowStart, Tick baseEnd)>;

    /** Epoch observer for tests: (worker thread, epoch index). */
    using EpochFn = std::function<void(int thread, std::uint64_t epoch)>;

    explicit ParallelEngine(Config cfg);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    int domains() const { return nDomains; }
    int threads() const { return nThreads; }
    Tick lookahead() const { return lookahead_; }

    SimContext &domainCtx(int d) { return *ctxs[std::size_t(d)]; }
    const SimContext &domainCtx(int d) const
    {
        return *ctxs[std::size_t(d)];
    }

    void setMergeHook(MergeFn fn) { merge = std::move(fn); }
    void setPendingMinHook(PendingMinFn fn) { pendingMin = std::move(fn); }
    void setPublishHook(PublishFn fn) { publish = std::move(fn); }
    void setWindowHook(WindowFn fn) { windowFn = std::move(fn); }
    void setEpochHook(EpochFn fn) { epochHook = std::move(fn); }

    /**
     * Advance all domains in epochs until every queue and mailbox
     * drains, the next window would start past @p deadline (events
     * due exactly at the deadline still fire, matching the serial
     * runUntil contract; windows are clamped so nothing later
     * does), or @p stop returns true at a barrier. On return every
     * domain clock is synced to the same final time — the maximum
     * across domains, i.e. the time of the globally last fired
     * event.
     * @return that final time.
     */
    Tick run(Tick deadline, const StopFn &stop = {});

    /** Sync every domain clock to @p t (>= every domain's now). */
    void syncAll(Tick t);

    /** @name Self-metrics (the par.* telemetry gauges) */
    /// @{
    /** Epochs (barrier intervals) executed so far. */
    std::uint64_t epochs() const { return epochs_; }

    /**
     * Reset the epoch counter to a snapshotted value (restore path).
     * Epoch boundaries are a pure function of simulation state, so a
     * restored run's subsequent epochs replay the saved run's and
     * the par.epochs gauge converges to the uninterrupted value.
     */
    void restoreEpochs(std::uint64_t e) { epochs_ = e; }

    /** Events fired across all domains. */
    std::uint64_t firedTotal() const;

    /**
     * Fraction of total worker wall-time spent waiting at barriers.
     * Wall-clock derived — like every metric in this group below, it
     * is NOT deterministic across runs or thread counts.
     */
    double barrierWaitFrac() const;

    /** Tiles drained by a worker outside its home block. */
    std::uint64_t steals() const;

    /**
     * Fraction of the average worker's wall-time during which tile
     * @p d was NOT being drained — per-tile barrier/idle share. A
     * hot tile shows a low value; its peers' high values are the
     * wait the work-stealing loop converts into steals.
     */
    double tileWaitFrac(int d) const;
    /// @}

  private:
    struct alignas(64) PerThread
    {
        std::uint64_t waitNs = 0;   ///< wall time parked at barriers
        std::uint64_t activeNs = 0; ///< wall time in the epoch body
        std::uint64_t steals = 0;   ///< non-home tiles drained
    };

    /**
     * Per-domain epoch state. `claimed` carries the stamp of the
     * last epoch in which some worker drained this domain; a worker
     * owns the domain for epoch stamp s iff its exchange(s) returns
     * an older stamp. The non-atomic fields are written only by that
     * owner and read either by the next epoch's owner or by the
     * barrier's window computation — both ordered by the barrier.
     */
    struct alignas(64) PerDomain
    {
        std::atomic<std::uint64_t> claimed{0};
        Tick localMin = maxTick; ///< earliest pending after drain
        std::uint64_t activeNs = 0;
    };

    void workerLoop(int t);
    void processDomain(int d, Tick ws, Tick we);
    void barrier(int t);
    void computeNextWindow();
    Tick clampWindowEnd(Tick we) const;

    /** Home domains of worker @p t: a contiguous block. */
    std::pair<int, int> ownedRange(int t) const;

    int nDomains;
    int nThreads;
    Tick lookahead_;

    std::vector<std::unique_ptr<SimContext>> ctxs;

    MergeFn merge;
    PendingMinFn pendingMin;
    PublishFn publish;
    WindowFn windowFn;
    EpochFn epochHook;
    const StopFn *stop_ = nullptr; ///< valid during run() only

    // Epoch/barrier state. `gen` is the barrier generation counter;
    // the last arriver computes the next window (or sets `done`)
    // and bumps it, releasing the spinners. Spinners that exhaust
    // their spin budget park on `gen` (futex wait) — `parked` tells
    // the releaser whether a notify is needed, which keeps
    // oversubscribed hosts from burning whole scheduler quanta in
    // the spin loop.
    std::atomic<int> arrived{0};
    std::atomic<int> parked{0};
    std::atomic<std::uint64_t> gen{0};
    Tick windowStart = 0;
    Tick windowEnd = 0;
    Tick deadline_ = maxTick;
    bool done = false;

    std::vector<PerThread> per;
    std::vector<std::unique_ptr<PerDomain>> dom_;
    std::uint64_t epochs_ = 0;
};

} // namespace gs

#endif // GS_SIM_PARALLEL_HH

/**
 * @file
 * Conservative parallel discrete-event engine.
 *
 * A machine's components are partitioned into spatial domains, each
 * with its own SimContext (event queue), and all domains advance in
 * barrier-synchronized epochs. An epoch's window length equals the
 * conservative lookahead: the minimum delay any event executing in
 * one domain can impose on another domain (on the torus, the
 * one-cycle credit return across a cross-domain link — see
 * docs/PARALLEL.md for the derivation). Within a window every domain
 * fires its events independently; anything aimed at another domain
 * is buffered in a mailbox by the client layer (the Network) and
 * merged at the next barrier in canonical (when, src-domain,
 * src-seq) order via EventQueue::scheduleMergedAt.
 *
 * Determinism contract: epoch boundaries are a pure function of
 * simulation state (each next window starts at the globally earliest
 * pending event), and domain count is fixed by the machine build —
 * never by the worker-thread count. Results are therefore
 * bit-identical at any --threads value, the same contract the sweep
 * engine (sim/sweep.hh) established across --jobs.
 */

#ifndef GS_SIM_PARALLEL_HH
#define GS_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/context.hh"
#include "sim/types.hh"

namespace gs
{

/** Barrier-synchronized multi-domain event-loop driver. */
class ParallelEngine
{
  public:
    struct Config
    {
        int domains = 1;
        int threads = 1;    ///< workers; clamped to [1, domains]
        Tick lookahead = 1; ///< epoch window length in ticks
        std::uint64_t seed = 1;
    };

    /**
     * Merge hook: called for every domain at the start of every
     * epoch by the worker that owns the domain, after the barrier —
     * every mailbox written during the previous epoch is quiescent.
     * The client schedules the buffered cross-domain work into
     * domainCtx(domain) with scheduleMergedAt, in canonical order.
     */
    using MergeFn = std::function<void(int domain, Tick windowStart)>;

    /**
     * Earliest due time among cross-domain entries domain @p d has
     * posted but no consumer has merged yet (maxTick when none).
     * Folded into the next-window computation at each barrier so
     * skip-ahead never jumps past buffered work.
     */
    using PendingMinFn = std::function<Tick(int domain)>;

    /**
     * Stop predicate, evaluated by exactly one thread at each
     * barrier while all other workers are parked — every domain's
     * state is coherent and safe to read. Returning true ends the
     * run (the Machine's completion check).
     */
    using StopFn = std::function<bool()>;

    /**
     * Publish hook: called for every domain by its owning worker
     * after the domain drains each window, before the barrier. The
     * client snapshots per-domain state (double-buffered on its
     * side) that every domain's next merge may read — the Network
     * uses it to reduce global tick-chain liveness.
     */
    using PublishFn = std::function<void(int domain)>;

    /** Epoch observer for tests: (worker thread, epoch index). */
    using EpochFn = std::function<void(int thread, std::uint64_t epoch)>;

    explicit ParallelEngine(Config cfg);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    int domains() const { return nDomains; }
    int threads() const { return nThreads; }
    Tick lookahead() const { return lookahead_; }

    SimContext &domainCtx(int d) { return *ctxs[std::size_t(d)]; }
    const SimContext &domainCtx(int d) const
    {
        return *ctxs[std::size_t(d)];
    }

    void setMergeHook(MergeFn fn) { merge = std::move(fn); }
    void setPendingMinHook(PendingMinFn fn) { pendingMin = std::move(fn); }
    void setPublishHook(PublishFn fn) { publish = std::move(fn); }
    void setEpochHook(EpochFn fn) { epochHook = std::move(fn); }

    /**
     * Advance all domains in epochs until every queue and mailbox
     * drains, the next window would start past @p deadline (events
     * due exactly at the deadline still fire, matching the serial
     * runUntil contract; windows are clamped so nothing later
     * does), or @p stop returns true at a barrier. On return every
     * domain
     * clock is synced to the same final time — the maximum across
     * domains, i.e. the time of the globally last fired event.
     * @return that final time.
     */
    Tick run(Tick deadline, const StopFn &stop = {});

    /** Sync every domain clock to @p t (>= every domain's now). */
    void syncAll(Tick t);

    /** @name Self-metrics (the par.* telemetry gauges) */
    /// @{
    /** Epochs (barrier intervals) executed so far. */
    std::uint64_t epochs() const { return epochs_; }

    /**
     * Reset the epoch counter to a snapshotted value (restore path).
     * Epoch boundaries are a pure function of simulation state, so a
     * restored run's subsequent epochs replay the saved run's and
     * the par.epochs gauge converges to the uninterrupted value.
     */
    void restoreEpochs(std::uint64_t e) { epochs_ = e; }

    /** Events fired across all domains. */
    std::uint64_t firedTotal() const;

    /**
     * Fraction of total worker wall-time spent waiting at barriers.
     * Wall-clock derived — the one par.* value that is NOT
     * deterministic across runs or thread counts.
     */
    double barrierWaitFrac() const;
    /// @}

  private:
    struct alignas(64) PerThread
    {
        Tick localMin = maxTick;      ///< published before each barrier
        std::uint64_t waitNs = 0;     ///< wall time parked at barriers
        std::uint64_t activeNs = 0;   ///< wall time in the epoch body
    };

    void workerLoop(int t);
    void barrier(int t);
    void computeNextWindow();

    /** Domains owned by worker @p t: a contiguous block. */
    std::pair<int, int> ownedRange(int t) const;

    int nDomains;
    int nThreads;
    Tick lookahead_;

    std::vector<std::unique_ptr<SimContext>> ctxs;

    MergeFn merge;
    PendingMinFn pendingMin;
    PublishFn publish;
    EpochFn epochHook;
    const StopFn *stop_ = nullptr; ///< valid during run() only

    // Epoch/barrier state. `gen` is the barrier generation counter;
    // the last arriver computes the next window (or sets `done`)
    // and bumps it, releasing the spinners.
    std::atomic<int> arrived{0};
    std::atomic<std::uint64_t> gen{0};
    Tick windowStart = 0;
    Tick windowEnd = 0;
    Tick deadline_ = maxTick;
    bool done = false;

    std::vector<PerThread> per;
    std::uint64_t epochs_ = 0;
};

} // namespace gs

#endif // GS_SIM_PARALLEL_HH

/**
 * @file
 * Versioned, checksummed machine snapshots (docs/CHECKPOINT.md).
 *
 * A snapshot is a little-endian binary file: an 8-byte magic, a
 * format version, then a fixed sequence of framed sections. Every
 * section carries its own CRC32, so corruption (bit flips, truncated
 * writes, concatenation accidents) is detected at restore time with
 * a precise error instead of undefined behaviour downstream.
 *
 * Three pieces live here:
 *
 *  - Serializer / Deserializer: the visitor every stateful component
 *    implements (see EXTENDING.md). The Deserializer never throws
 *    and never reads out of bounds: the first malformed field sets a
 *    sticky error and every later getter returns zero, so component
 *    restore code can be written straight-line and the caller checks
 *    ok() once.
 *
 *  - EventDesc: a 32-byte POD describing how to rebuild a pending
 *    event's callback after restore. It rides in the otherwise-pad
 *    bytes of the event kernel's 128-byte entry, so describing every
 *    event costs the hot path nothing. Kind 0 (Opaque) marks a
 *    callback that cannot be rebuilt; saving fails loudly if one is
 *    pending.
 *
 *  - Cont: a continuation (callback + EventDesc) components hold in
 *    their own pending state (MAF waiters, deferred core requests).
 *    It is implicitly constructible from any callable — such a Cont
 *    is Opaque, which keeps non-checkpointed call sites compiling
 *    unchanged — and from (desc, callable) for serializable ones.
 */

#ifndef GS_SIM_CHECKPOINT_HH
#define GS_SIM_CHECKPOINT_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace gs::ckpt
{

/** Snapshot file magic ("GS12CKPT"). */
constexpr char magic[8] = {'G', 'S', '1', '2', 'C', 'K', 'P', 'T'};

/** Snapshot format version; bump on any layout change. */
constexpr std::uint32_t formatVersion = 5;

/** CRC32 (IEEE 802.3, reflected) of @p len bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Section tags, in file order (a fourcc reads well in hexdumps). */
constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(b))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(c))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(d))
            << 24);
}

constexpr std::uint32_t secMeta = fourcc('M', 'E', 'T', 'A');
constexpr std::uint32_t secRng = fourcc('R', 'N', 'G', 'S');
constexpr std::uint32_t secEvtq = fourcc('E', 'V', 'T', 'Q');
constexpr std::uint32_t secNet = fourcc('N', 'E', 'T', 'W');
constexpr std::uint32_t secCoh = fourcc('C', 'O', 'H', 'R');
constexpr std::uint32_t secCpu = fourcc('C', 'P', 'U', 'S');
constexpr std::uint32_t secWld = fourcc('W', 'L', 'O', 'D');
constexpr std::uint32_t secFlt = fourcc('F', 'A', 'L', 'T');
constexpr std::uint32_t secCkpt = fourcc('C', 'K', 'P', 'T');
constexpr std::uint32_t secXtra = fourcc('X', 'T', 'R', 'A');

/**
 * How to rebuild a pending event's callback after restore.
 *
 * `kind` selects the owning component's rehydration recipe (EvKind);
 * `owner` is the component instance (node id, cpu id, network
 * domain, or registered-client id); a/b/c/u/v are kind-specific
 * operands. Exactly 32 bytes: it replaces the padding of the event
 * kernel's 128-byte entry.
 */
struct EventDesc
{
    std::uint16_t kind = 0;
    std::uint16_t owner = 0;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::uint64_t u = 0;
    std::uint64_t v = 0;
};
static_assert(sizeof(EventDesc) == 32, "event-entry pad layout");
static_assert(std::is_trivially_copyable_v<EventDesc>);

/** Event-callback kinds (EventDesc::kind). */
enum EvKind : std::uint16_t
{
    Opaque = 0, ///< not serializable; save fails if one is pending

    // net/: owner = destination node unless noted
    NetInjStart,     ///< injection reaches the router; u = handle
    NetDeliverLocal, ///< cut-through delivery; u = handle
    NetReceive,      ///< a = port, b = vc, u = handle
    NetCredit,       ///< a = port, b = vc, c = flits
    NetTick,         ///< router pipeline tick; owner = domain

    // coherence/: owner = the node running the handler
    CohSendMsg,       ///< a = type, b = dst, c = requester,
                      ///< u = line, v = aux
    CohFillBatch,     ///< u = fill-batch id
    CohHomeReadExcl,  ///< a = requester, u = line (zbox done)
    CohHomeApplyExcl, ///< a = requester, u = line
    CohHomeReadShared,  ///< a = requester, b = modify, u = line
    CohHomeApplyShared, ///< a = requester, b = modify, u = line
    CohHomeApplyVictim, ///< a = requester, u = line
    CohHomeApplyDowngrade, ///< u = line, v = sharers
    CohHomeApplyTransfer,  ///< a = requester, u = line

    // cpu/: owner = cpu index; op encoding: u = addr,
    // a = flags (bit0 write, bit1 dependent), v = thinkNs bits
    CoreThink,   ///< staged-op think time elapses
    CoreL1Hit,   ///< L1 load-to-use completes
    CoreMemDone, ///< coherent access completes

    // fault/
    FaultApply,   ///< owner = 0; a = kind, b = node, c = port, u = when
    WatchdogPoll, ///< owner = 0

    // registered checkpoint clients (telemetry sampler, ...)
    ClientEvent, ///< owner = client id; operands are client-defined
};

/**
 * A continuation a component holds in its own pending state.
 *
 * Implicit construction from a plain callable yields an Opaque
 * continuation (fine for components that are never checkpointed
 * mid-flight, e.g. unit-test callbacks); serializable call sites
 * pass an EventDesc alongside.
 */
class Cont
{
  public:
    Cont() = default;

    template <typename F,
              std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Cont> &&
                      std::is_invocable_r_v<void, std::decay_t<F> &>,
                  int> = 0>
    Cont(F &&f) // NOLINT: implicit by design (Opaque continuation)
        : fn(std::forward<F>(f))
    {}

    template <typename F>
    Cont(const EventDesc &d, F &&f) : fn(std::forward<F>(f)), desc(d)
    {}

    void operator()() const { fn(); }
    explicit operator bool() const { return static_cast<bool>(fn); }

    std::function<void()> fn;
    EventDesc desc;
};

/** Rebuilds the callback a serialized EventDesc describes. */
using RehydrateFn =
    std::function<std::function<void()>(const EventDesc &)>;

class Serializer;
class Deserializer;

/**
 * Serialize a held continuation (its descriptor only; the callback
 * is rebuilt at restore). An Opaque continuation cannot be rebuilt,
 * so finding one pending aborts with a loud diagnostic naming
 * @p what — the fix is to pass an EventDesc at the call site.
 */
void saveCont(Serializer &s, const Cont &c, const char *what);

/**
 * Read a descriptor and rebuild its callback through @p rehydrate.
 * Fails the deserializer (naming @p what) when no recipe exists.
 */
Cont restoreCont(Deserializer &d, const RehydrateFn &rehydrate,
                 const char *what);

/**
 * Appends fields to a growing byte buffer, little-endian, framed
 * into CRC-checked sections. Sections do not nest.
 */
class Serializer
{
  public:
    void
    beginSection(std::uint32_t tag)
    {
        secStart = buf.size();
        put32(tag);
        put32(0); // crc, patched by endSection
        put64(0); // payload length, patched by endSection
    }

    void
    endSection()
    {
        const std::size_t payload = secStart + frameBytes;
        const std::uint64_t len = buf.size() - payload;
        const std::uint32_t crc =
            crc32(buf.data() + payload, static_cast<std::size_t>(len));
        patch32(secStart + 4, crc);
        patch64(secStart + 8, len);
    }

    void
    put8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    put16(std::uint16_t v)
    {
        put8(static_cast<std::uint8_t>(v));
        put8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    put32(std::uint32_t v)
    {
        put16(static_cast<std::uint16_t>(v));
        put16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    put64(std::uint64_t v)
    {
        put32(static_cast<std::uint32_t>(v));
        put32(static_cast<std::uint32_t>(v >> 32));
    }

    void putI32(std::int32_t v) { put32(static_cast<std::uint32_t>(v)); }
    void putI64(std::int64_t v) { put64(static_cast<std::uint64_t>(v)); }
    void putBool(bool v) { put8(v ? 1 : 0); }

    void
    putF64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        put64(bits);
    }

    void
    putStr(const std::string &s)
    {
        put32(static_cast<std::uint32_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

    void
    putBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + len);
    }

    void
    putDesc(const EventDesc &d)
    {
        put16(d.kind);
        put16(d.owner);
        putI32(d.a);
        putI32(d.b);
        putI32(d.c);
        put64(d.u);
        put64(d.v);
    }

    const std::vector<std::uint8_t> &buffer() const { return buf; }
    std::size_t size() const { return buf.size(); }

  private:
    static constexpr std::size_t frameBytes = 16;

    void
    patch32(std::size_t at, std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf[at + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
    }

    void
    patch64(std::size_t at, std::uint64_t v)
    {
        patch32(at, static_cast<std::uint32_t>(v));
        patch32(at + 4, static_cast<std::uint32_t>(v >> 32));
    }

    std::vector<std::uint8_t> buf;
    std::size_t secStart = 0;
};

/**
 * Bounds-checked reader over a snapshot's section payloads with a
 * sticky error: the first malformed field records a message and
 * every later getter returns zero, so restore code never branches
 * per field and never reads out of bounds.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t len)
        : buf(data), end(len)
    {}

    bool ok() const { return err.empty(); }
    const std::string &error() const { return err; }

    /** Record an error (first one wins). */
    void
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
    }

    /**
     * Open the next section, which must carry @p tag (sections are
     * positional). Verifies the frame fits, the payload fits, and
     * the payload CRC matches. @p name labels errors.
     */
    bool enterSection(std::uint32_t tag, const char *name);

    /**
     * Close the current section. Requires every payload byte to
     * have been consumed — trailing bytes mean the writer and
     * reader disagree about the layout, which is corruption as far
     * as the restore contract is concerned.
     */
    void leaveSection(const char *name);

    std::uint8_t
    get8()
    {
        if (!need(1))
            return 0;
        return buf[pos++];
    }

    std::uint16_t
    get16()
    {
        std::uint16_t lo = get8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t(get8()) << 8));
    }

    std::uint32_t
    get32()
    {
        std::uint32_t lo = get16();
        return lo | (std::uint32_t(get16()) << 16);
    }

    std::uint64_t
    get64()
    {
        std::uint64_t lo = get32();
        return lo | (std::uint64_t(get32()) << 32);
    }

    std::int32_t getI32() { return static_cast<std::int32_t>(get32()); }
    std::int64_t getI64() { return static_cast<std::int64_t>(get64()); }
    bool getBool() { return get8() != 0; }

    double
    getF64()
    {
        std::uint64_t bits = get64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    getStr()
    {
        std::uint32_t n = get32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(buf + pos),
                      static_cast<std::size_t>(n));
        pos += n;
        return s;
    }

    bool
    getBytes(void *out, std::size_t len)
    {
        if (!need(len))
            return false;
        std::memcpy(out, buf + pos, len);
        pos += len;
        return true;
    }

    EventDesc
    getDesc()
    {
        EventDesc d;
        d.kind = get16();
        d.owner = get16();
        d.a = getI32();
        d.b = getI32();
        d.c = getI32();
        d.u = get64();
        d.v = get64();
        return d;
    }

    /** Bytes left in the current section. */
    std::size_t
    sectionRemaining() const
    {
        return secEnd > pos ? secEnd - pos : 0;
    }

  private:
    /** @retval true when @p n more bytes fit in the current bound. */
    bool
    need(std::size_t n)
    {
        const std::size_t bound = inSection ? secEnd : end;
        if (!err.empty() || pos + n > bound || pos + n < pos) {
            fail("snapshot truncated: field read past " +
                 std::string(inSection ? "section" : "file") + " end");
            return false;
        }
        return true;
    }

    const std::uint8_t *buf;
    std::size_t end;
    std::size_t pos = 0;
    std::size_t secEnd = 0;
    bool inSection = false;
    std::string err;
};

/**
 * Write magic + version + @p s's sections to @p path atomically:
 * the bytes go to "<path>.tmp" first and are renamed into place, so
 * a crash mid-write never corrupts an existing snapshot at @p path.
 * @retval false on I/O failure, with @p err describing it.
 */
bool writeSnapshot(const std::string &path, const Serializer &s,
                   std::string *err);

/**
 * Read @p path and validate the snapshot header (magic, version).
 * On success @p out holds the full file contents and @p bodyOff the
 * offset of the first section.
 */
bool readSnapshot(const std::string &path,
                  std::vector<std::uint8_t> *out,
                  std::size_t *bodyOff, std::string *err);

/**
 * A bench- or experiment-owned object (e.g. the telemetry sampler)
 * that participates in machine snapshots. Register it with
 * sys::Machine::registerCkptClient before save or restore; its
 * pending events carry EvKind::ClientEvent descs with the returned
 * client id as owner.
 */
class Client
{
  public:
    virtual ~Client() = default;

    /** Append this client's state (one contiguous blob). */
    virtual void saveCkpt(Serializer &s) const = 0;

    /** Restore state written by saveCkpt; report via @p d.fail(). */
    virtual void restoreCkpt(Deserializer &d) = 0;

    /** Rebuild a pending event's callback from its desc. */
    virtual std::function<void()>
    rehydrateEvent(const EventDesc &d) = 0;

    /** Set by Machine::registerCkptClient; -1 while unregistered. */
    void setCkptClientId(int id) { ckptId_ = id; }
    int ckptClientId() const { return ckptId_; }

  protected:
    /**
     * Descriptor for one of this client's pending events. Safe to
     * call before registration: the placeholder owner makes a later
     * save fail loudly instead of mis-routing the event.
     */
    EventDesc
    clientDesc(std::int32_t a = 0, std::uint64_t u = 0) const
    {
        EventDesc d;
        d.kind = ClientEvent;
        d.owner = static_cast<std::uint16_t>(
            ckptId_ < 0 ? 0xffff : ckptId_);
        d.a = a;
        d.u = u;
        return d;
    }

  private:
    int ckptId_ = -1;
};

} // namespace gs::ckpt

#endif // GS_SIM_CHECKPOINT_HH

/**
 * @file
 * Plain-text table and CSV emission for bench harnesses. Every bench
 * binary prints the rows/series of one paper figure or table through
 * these helpers so output formatting is uniform.
 */

#ifndef GS_SIM_TABLE_HH
#define GS_SIM_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace gs
{

/**
 * Column-aligned ASCII table. Usage:
 *
 *   Table t({"dataset", "GS1280", "GS320"});
 *   t.addRow({"4k", "2.4", "3.3"});
 *   t.print(std::cout);
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a pre-formatted row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p digits fraction digits. */
    static std::string num(double v, int digits = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);
    static std::string num(int v);

    void print(std::ostream &os) const;
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }
    const std::vector<std::string> &row(std::size_t i) const
    {
        return body[i];
    }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Print a section banner ("== Figure 15: Load test ==") to @p os. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace gs

#endif // GS_SIM_TABLE_HH

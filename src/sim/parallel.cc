#include "sim/parallel.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace gs
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

TileShape
chooseTileShape(int width, int height, int threads)
{
    gs_assert(width >= 1 && height >= 1, "degenerate torus");
    const int nodes = width * height;
    const int target = std::min(std::max(threads, 1), nodes);

    // Among tilings with at least `target` tiles prefer: fewest
    // tiles, then fewest torus links cut by tile boundaries, then
    // squarest, then wider-than-tall (rows <= cols keeps the
    // decomposition aligned with the wider torus axis). Cutting
    // along a full row of tiles severs `width` links per seam and
    // the torus wraps, so R > 1 rows cut width*R links (R == 1 cuts
    // none — the wrap seam is interior to the single tile).
    TileShape best;
    long bestKey[4] = {0, 0, 0, 0};
    bool have = false;
    for (int r = 1; r <= height; ++r) {
        for (int c = 1; c <= width; ++c) {
            const int n = r * c;
            if (n < target)
                continue;
            const long cut = (r > 1 ? long(width) * r : 0) +
                             (c > 1 ? long(height) * c : 0);
            long key[4] = {n, cut, std::labs(long(r) - c), -c};
            if (!have || std::lexicographical_compare(
                             key, key + 4, bestKey, bestKey + 4)) {
                best = {r, c};
                std::copy(key, key + 4, bestKey);
                have = true;
            }
        }
    }
    return best;
}

TileShape
chooseTileShape3(int width, int height, int depth, int threads)
{
    gs_assert(width >= 1 && height >= 1 && depth >= 1,
              "degenerate torus");
    const int nodes = width * height * depth;
    const int target = std::min(std::max(threads, 1), nodes);

    // Same selection as chooseTileShape with the seam-cut and
    // squareness terms generalised per dimension. The imbalance term
    // |r-c| + |c-s| + |r-s| orders factorisations of a fixed tile
    // count identically to |r-c| when s == 1 (both are monotone in
    // the spread of a fixed product), so depth == 1 reproduces the
    // 2-D chooser's picks exactly.
    TileShape best;
    long bestKey[5] = {0, 0, 0, 0, 0};
    bool have = false;
    for (int r = 1; r <= height; ++r) {
        for (int c = 1; c <= width; ++c) {
            for (int s = 1; s <= depth; ++s) {
                const int n = r * c * s;
                if (n < target)
                    continue;
                const long cut =
                    (r > 1 ? long(width) * depth * r : 0) +
                    (c > 1 ? long(height) * depth * c : 0) +
                    (s > 1 ? long(width) * height * s : 0);
                const long imbalance = std::labs(long(r) - c) +
                                       std::labs(long(c) - s) +
                                       std::labs(long(r) - s);
                long key[5] = {n, cut, imbalance, -c, -s};
                if (!have ||
                    std::lexicographical_compare(key, key + 5, bestKey,
                                                 bestKey + 5)) {
                    best = {r, c, s};
                    std::copy(key, key + 5, bestKey);
                    have = true;
                }
            }
        }
    }
    return best;
}

ParallelEngine::ParallelEngine(Config cfg)
    : nDomains(cfg.domains),
      nThreads(std::min(std::max(cfg.threads, 1), cfg.domains)),
      lookahead_(cfg.lookahead)
{
    gs_assert(nDomains >= 1, "need at least one domain");
    gs_assert(lookahead_ > 0, "lookahead must be positive");
    ctxs.reserve(static_cast<std::size_t>(nDomains));
    // Workers must not allocate in steady state; first-touch bucket
    // growth can strike arbitrarily late without prewarming. The
    // per-queue footprint scales down as the tile count grows so a
    // finely tiled machine does not multiply it.
    const std::size_t perBucket =
        nDomains <= 8 ? 8
                      : std::max<std::size_t>(
                            2, 64 / static_cast<std::size_t>(nDomains));
    for (int d = 0; d < nDomains; ++d) {
        ctxs.push_back(std::make_unique<SimContext>(
            Rng::deriveSeed(cfg.seed, static_cast<std::uint64_t>(d))));
        ctxs.back()->queue().prewarm(perBucket);
    }
    per.resize(static_cast<std::size_t>(nThreads));
    dom_.reserve(static_cast<std::size_t>(nDomains));
    for (int d = 0; d < nDomains; ++d)
        dom_.push_back(std::make_unique<PerDomain>());
}

ParallelEngine::~ParallelEngine() = default;

std::pair<int, int>
ParallelEngine::ownedRange(int t) const
{
    // Contiguous blocks: worker t starts at [t*D/T, (t+1)*D/T).
    // Adjacent tiles land on the same worker, which keeps a worker's
    // epoch body walking neighbouring state; stealing relaxes the
    // assignment only when the block is imbalanced.
    int lo = t * nDomains / nThreads;
    int hi = (t + 1) * nDomains / nThreads;
    return {lo, hi};
}

std::uint64_t
ParallelEngine::firedTotal() const
{
    std::uint64_t n = 0;
    for (const auto &c : ctxs)
        n += c->queue().firedCount();
    return n;
}

double
ParallelEngine::barrierWaitFrac() const
{
    std::uint64_t wait = 0, active = 0;
    for (const auto &p : per) {
        wait += p.waitNs;
        active += p.activeNs;
    }
    std::uint64_t total = wait + active;
    return total ? static_cast<double>(wait) /
                       static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
ParallelEngine::steals() const
{
    std::uint64_t n = 0;
    for (const auto &p : per)
        n += p.steals;
    return n;
}

double
ParallelEngine::tileWaitFrac(int d) const
{
    std::uint64_t wait = 0, active = 0;
    for (const auto &p : per) {
        wait += p.waitNs;
        active += p.activeNs;
    }
    const double wall = static_cast<double>(wait + active) /
                        static_cast<double>(nThreads);
    if (wall <= 0.0)
        return 0.0;
    const double mine =
        static_cast<double>(dom_[std::size_t(d)]->activeNs);
    const double frac = 1.0 - mine / wall;
    return frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
}

void
ParallelEngine::syncAll(Tick t)
{
    for (auto &c : ctxs)
        c->queue().syncTime(t);
}

Tick
ParallelEngine::clampWindowEnd(Tick we) const
{
    // Clamped at the deadline so that, like the serial runUntil,
    // events due exactly at the deadline fire and nothing past it
    // does.
    if (deadline_ != maxTick && we > deadline_)
        return deadline_ + 1;
    return we;
}

void
ParallelEngine::computeNextWindow()
{
    // Runs with every other worker parked at the barrier: all domain
    // state is coherent here.
    Tick globalMin = maxTick;
    for (const auto &pd : dom_)
        globalMin = std::min(globalMin, pd->localMin);

    epochs_ += 1;

    if (stop_ && *stop_ && (*stop_)()) {
        done = true; // the client's completion condition holds
        return;
    }
    if (globalMin > deadline_ || globalMin == maxTick) {
        done = true; // out of time, or fully drained
        return;
    }
    // Skip-ahead: the next window starts at the globally earliest
    // pending work, not at the previous window's end — idle gaps
    // cost one barrier, not one barrier per lookahead interval. The
    // window hook (adaptive lookahead) may then widen the
    // conservative end; both are pure functions of simulation state,
    // so the epoch sequence stays thread-count invariant.
    windowStart = globalMin;
    windowEnd = windowStart + lookahead_;
    if (windowFn)
        windowEnd = windowFn(windowStart, windowEnd);
    windowEnd = clampWindowEnd(windowEnd);
}

void
ParallelEngine::barrier(int t)
{
    std::uint64_t g = gen.load(std::memory_order_relaxed);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) ==
        nThreads - 1) {
        computeNextWindow();
        arrived.store(0, std::memory_order_relaxed);
        gen.store(g + 1, std::memory_order_seq_cst);
        if (parked.load(std::memory_order_seq_cst) > 0)
            gen.notify_all();
        return;
    }
    std::uint64_t t0 = nowNs();
    int spins = 0;
    while (gen.load(std::memory_order_acquire) == g) {
        spins += 1;
        if (spins < 128)
            continue;
        if (spins < 144) {
            std::this_thread::yield();
            continue;
        }
        // Park: on an oversubscribed host a spinner would otherwise
        // burn its whole scheduler quantum while the worker that
        // must release it waits for a core.
        parked.fetch_add(1, std::memory_order_seq_cst);
        if (gen.load(std::memory_order_seq_cst) == g)
            gen.wait(g);
        parked.fetch_sub(1, std::memory_order_relaxed);
        spins = 0;
    }
    per[std::size_t(t)].waitNs += nowNs() - t0;
}

void
ParallelEngine::processDomain(int d, Tick ws, Tick we)
{
    std::uint64_t a0 = nowNs();
    EventQueue &q = ctxs[std::size_t(d)]->queue();
    // windowStart never precedes a domain's pending work (it is the
    // global min), so the sync below is always legal; it keeps idle
    // domains' clocks moving with the machine.
    if (q.now() < ws)
        q.syncTime(ws);
    if (merge)
        merge(d, ws);
    q.drainWindow(we);
    if (publish)
        publish(d);
    Tick lm = q.peekNext();
    if (pendingMin)
        lm = std::min(lm, pendingMin(d));
    PerDomain &pd = *dom_[std::size_t(d)];
    pd.localMin = lm;
    pd.activeNs += nowNs() - a0;
}

void
ParallelEngine::workerLoop(int t)
{
    auto [lo, hi] = ownedRange(t);
    std::uint64_t epoch = epochs_; // same value on every worker
    for (;;) {
        std::uint64_t t0 = nowNs();
        const Tick ws = windowStart, we = windowEnd;
        // One claim stamp per epoch: the first exchange() wins the
        // tile for this epoch, everyone else sees its own stamp and
        // moves on. The winning worker's writes are ordered before
        // the next epoch's readers by the barrier.
        const std::uint64_t stamp = epoch + 1;
        for (int d = lo; d < hi; ++d) {
            if (dom_[std::size_t(d)]->claimed.exchange(
                    stamp, std::memory_order_acq_rel) != stamp)
                processDomain(d, ws, we);
        }
        if (nThreads > 1) {
            // Steal scan: sweep the other workers' tiles (wrapping
            // from our block's end) and drain any not yet claimed
            // this epoch. Placement moves; the event order does not.
            for (int i = 0, n = nDomains; i < n; ++i) {
                int d = hi + i;
                if (d >= nDomains)
                    d -= nDomains;
                if (d >= lo && d < hi)
                    continue;
                if (dom_[std::size_t(d)]->claimed.exchange(
                        stamp, std::memory_order_acq_rel) != stamp) {
                    processDomain(d, ws, we);
                    per[std::size_t(t)].steals += 1;
                }
            }
        }
        per[std::size_t(t)].activeNs += nowNs() - t0;
        if (epochHook)
            epochHook(t, epoch);
        epoch += 1;
        barrier(t);
        if (done)
            return;
    }
}

Tick
ParallelEngine::run(Tick deadline, const StopFn &stop)
{
    deadline_ = deadline;
    stop_ = &stop;
    done = false;

    // Initial window: the serial loop checks for completion before
    // firing anything; mirror that, then anchor the first window at
    // the earliest pending event anywhere.
    Tick globalMin = maxTick;
    for (auto &c : ctxs)
        globalMin = std::min(globalMin, c->queue().peekNext());
    if (pendingMin) {
        for (int d = 0; d < nDomains; ++d)
            globalMin = std::min(globalMin, pendingMin(d));
    }
    bool stopNow = stop && stop();
    if (!stopNow && globalMin <= deadline_ && globalMin != maxTick) {
        windowStart = globalMin;
        windowEnd = windowStart + lookahead_;
        if (windowFn)
            windowEnd = windowFn(windowStart, windowEnd);
        windowEnd = clampWindowEnd(windowEnd);

        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(nThreads - 1));
        for (int t = 1; t < nThreads; ++t)
            workers.emplace_back([this, t] { workerLoop(t); });
        workerLoop(0);
        for (auto &w : workers)
            w.join();
    }
    stop_ = nullptr;

    // Final time: the globally last fired event, mirrored into every
    // domain clock so any component's view of now() agrees.
    Tick end = 0;
    for (auto &c : ctxs)
        end = std::max(end, c->queue().now());
    syncAll(end);
    return end;
}

} // namespace gs

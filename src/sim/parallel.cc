#include "sim/parallel.hh"

#include <chrono>
#include <thread>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace gs
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ParallelEngine::ParallelEngine(Config cfg)
    : nDomains(cfg.domains),
      nThreads(std::min(std::max(cfg.threads, 1), cfg.domains)),
      lookahead_(cfg.lookahead)
{
    gs_assert(nDomains >= 1, "need at least one domain");
    gs_assert(lookahead_ > 0, "lookahead must be positive");
    ctxs.reserve(static_cast<std::size_t>(nDomains));
    for (int d = 0; d < nDomains; ++d) {
        ctxs.push_back(std::make_unique<SimContext>(
            Rng::deriveSeed(cfg.seed, static_cast<std::uint64_t>(d))));
        // Workers must not allocate in steady state; first-touch
        // bucket growth can strike arbitrarily late without this.
        ctxs.back()->queue().prewarm();
    }
    per.resize(static_cast<std::size_t>(nThreads));
}

ParallelEngine::~ParallelEngine() = default;

std::pair<int, int>
ParallelEngine::ownedRange(int t) const
{
    // Contiguous blocks: worker t owns [t*D/T, (t+1)*D/T). Adjacent
    // torus stripes land on the same worker, which keeps a worker's
    // epoch body walking neighbouring state.
    int lo = t * nDomains / nThreads;
    int hi = (t + 1) * nDomains / nThreads;
    return {lo, hi};
}

std::uint64_t
ParallelEngine::firedTotal() const
{
    std::uint64_t n = 0;
    for (const auto &c : ctxs)
        n += c->queue().firedCount();
    return n;
}

double
ParallelEngine::barrierWaitFrac() const
{
    std::uint64_t wait = 0, active = 0;
    for (const auto &p : per) {
        wait += p.waitNs;
        active += p.activeNs;
    }
    std::uint64_t total = wait + active;
    return total ? static_cast<double>(wait) /
                       static_cast<double>(total)
                 : 0.0;
}

void
ParallelEngine::syncAll(Tick t)
{
    for (auto &c : ctxs)
        c->queue().syncTime(t);
}

void
ParallelEngine::computeNextWindow()
{
    // Runs with every other worker parked at the barrier: all domain
    // state is coherent here.
    Tick globalMin = maxTick;
    for (const auto &p : per)
        globalMin = std::min(globalMin, p.localMin);

    epochs_ += 1;

    if (stop_ && *stop_ && (*stop_)()) {
        done = true; // the client's completion condition holds
        return;
    }
    if (globalMin > deadline_ || globalMin == maxTick) {
        done = true; // out of time, or fully drained
        return;
    }
    // Skip-ahead: the next window starts at the globally earliest
    // pending work, not at the previous window's end — idle gaps
    // cost one barrier, not one barrier per lookahead interval.
    // Windows are clamped at the deadline so that, like the serial
    // runUntil, events due exactly at the deadline fire and nothing
    // past it does.
    windowStart = globalMin;
    windowEnd = windowStart + lookahead_;
    if (deadline_ != maxTick && windowEnd > deadline_)
        windowEnd = deadline_ + 1;
}

void
ParallelEngine::barrier(int t)
{
    std::uint64_t g = gen.load(std::memory_order_relaxed);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) ==
        nThreads - 1) {
        computeNextWindow();
        arrived.store(0, std::memory_order_relaxed);
        gen.store(g + 1, std::memory_order_release);
        return;
    }
    std::uint64_t t0 = nowNs();
    int spins = 0;
    while (gen.load(std::memory_order_acquire) == g) {
        if (++spins >= 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
    per[std::size_t(t)].waitNs += nowNs() - t0;
}

void
ParallelEngine::workerLoop(int t)
{
    auto [lo, hi] = ownedRange(t);
    std::uint64_t epoch = epochs_; // same value on every worker
    for (;;) {
        std::uint64_t t0 = nowNs();
        // windowStart never precedes a domain's pending work (it is
        // the global min), so the sync below is always legal; it
        // keeps idle domains' clocks moving with the machine.
        const Tick ws = windowStart, we = windowEnd;
        for (int d = lo; d < hi; ++d) {
            EventQueue &q = ctxs[std::size_t(d)]->queue();
            if (q.now() < ws)
                q.syncTime(ws);
            if (merge)
                merge(d, ws);
        }
        for (int d = lo; d < hi; ++d)
            ctxs[std::size_t(d)]->queue().drainWindow(we);
        if (publish) {
            for (int d = lo; d < hi; ++d)
                publish(d);
        }
        Tick lm = maxTick;
        for (int d = lo; d < hi; ++d) {
            lm = std::min(lm, ctxs[std::size_t(d)]->queue().peekNext());
            if (pendingMin)
                lm = std::min(lm, pendingMin(d));
        }
        per[std::size_t(t)].localMin = lm;
        per[std::size_t(t)].activeNs += nowNs() - t0;
        if (epochHook)
            epochHook(t, epoch);
        epoch += 1;
        barrier(t);
        if (done)
            return;
    }
}

Tick
ParallelEngine::run(Tick deadline, const StopFn &stop)
{
    deadline_ = deadline;
    stop_ = &stop;
    done = false;

    // Initial window: the serial loop checks for completion before
    // firing anything; mirror that, then anchor the first window at
    // the earliest pending event anywhere.
    Tick globalMin = maxTick;
    for (auto &c : ctxs)
        globalMin = std::min(globalMin, c->queue().peekNext());
    if (pendingMin) {
        for (int d = 0; d < nDomains; ++d)
            globalMin = std::min(globalMin, pendingMin(d));
    }
    bool stopNow = stop && stop();
    if (!stopNow && globalMin <= deadline_ && globalMin != maxTick) {
        windowStart = globalMin;
        windowEnd = windowStart + lookahead_;
        if (deadline_ != maxTick && windowEnd > deadline_)
            windowEnd = deadline_ + 1;

        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(nThreads - 1));
        for (int t = 1; t < nThreads; ++t)
            workers.emplace_back([this, t] { workerLoop(t); });
        workerLoop(0);
        for (auto &w : workers)
            w.join();
    }
    stop_ = nullptr;

    // Final time: the globally last fired event, mirrored into every
    // domain clock so any component's view of now() agrees.
    Tick end = 0;
    for (auto &c : ctxs)
        end = std::max(end, c->queue().now());
    syncAll(end);
    return end;
}

} // namespace gs

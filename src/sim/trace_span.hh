/**
 * @file
 * Latency x-ray: deterministic, sampled per-transaction tracing with
 * per-stage attribution (docs/TRACING.md).
 *
 * Figures 12/13 of the paper decompose a remote dependent-load's
 * latency into where each nanosecond goes: local issue, per-router
 * transit, directory occupancy, DRAM access, reply return. The span
 * layer reproduces that decomposition per transaction: each sampled
 * coherence miss carries a compact SpanState that accumulates ticks
 * into exactly one Stage at a time, so the per-stage sum is the
 * end-to-end latency *by construction* — no residual bucket, no
 * double counting.
 *
 * Determinism contract (same discipline as the mailbox merge in
 * net::Network):
 *
 *  - Sampling is a pure function of (master seed, stable span id);
 *    the id derives from the requester node and a per-node issue
 *    sequence, both of which are identical serial vs. parallel. The
 *    sample set is therefore bit-identical at any --threads/--jobs.
 *  - SpanState rides *inside* net::Packet by value, so it crosses
 *    domain boundaries with the packet copy the parallel engine
 *    already makes; no side tables, no cross-thread writes.
 *  - Completed spans land in per-node lanes (each written only by
 *    the domain thread that owns the node) and are merged into
 *    canonical (begin, id) order by finalize(), which runs
 *    single-threaded. Exports read only the merged order, so span
 *    traces and histograms are byte-identical at any thread count.
 *
 * When tracing is off the collector simply does not exist and every
 * hook reduces to one branch on `span.id != 0` (id 0 is never
 * assigned to a sampled span).
 */

#ifndef GS_SIM_TRACE_SPAN_HH
#define GS_SIM_TRACE_SPAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gs::telem
{
class Registry;
class TraceWriter;
} // namespace gs::telem

namespace gs::trace
{

/**
 * Where a sampled transaction's time is attributed. A span is in
 * exactly one stage at any instant:
 *
 *  - Inject: miss issue until the first link grant at the source
 *    router (L2 miss handling + injection-queue wait).
 *  - VcWait: buffered at an intermediate router waiting for a
 *    virtual-channel/switch grant.
 *  - Link: in flight on a link (router pipeline + wire + cut-through
 *    serialization); ejection at the destination folds in here.
 *  - Directory: directory/protocol occupancy at the home node,
 *    including owner service time on a forwarded intervention.
 *  - Dram: Zbox queue + DRAM access at the home (queue portion is
 *    additionally recorded in SpanState::dramQueue).
 *  - Reply: everything on the response path, from the home (or
 *    owner) sending the block until the requester's fill completes.
 */
enum Stage : std::uint8_t
{
    Inject = 0,
    VcWait,
    Link,
    Directory,
    Dram,
    Reply,
};

/** Number of stages (size of SpanState::ticks). */
constexpr int numStages = 6;

/** Stage name for telemetry paths and trace events. */
constexpr const char *
stageName(int s)
{
    switch (s) {
      case Inject:
        return "inject";
      case VcWait:
        return "vc_wait";
      case Link:
        return "link";
      case Directory:
        return "directory";
      case Dram:
        return "dram";
      case Reply:
        return "reply";
    }
    return "?";
}

/**
 * SplitMix64 finalizer (same mixer the Rng uses for stream
 * derivation): full-avalanche, so consecutive span ids map to
 * effectively independent sample decisions.
 */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Per-transaction span accumulator. Trivially copyable on purpose:
 * it is embedded in net::Packet by value and serialized field-wise
 * by savePacket/restorePacket, so spans cross parallel-domain
 * boundaries and checkpoint save/restore with zero extra machinery.
 *
 * id == 0 means "not sampled" — every hot-path hook gates on that
 * single branch and touches nothing else.
 */
struct SpanState
{
    std::uint64_t id = 0; ///< 0 = unsampled; else (node<<40)|seq
    Tick begin = 0;       ///< miss issue time
    Tick mark = 0;        ///< time of the last stage transition
    std::uint8_t stage = Inject; ///< stage currently accumulating
    std::uint8_t phase = 0;      ///< 0 = request path, 1 = reply path
    Tick dramQueue = 0; ///< Zbox queue-wait portion of ticks[Dram]
    std::array<Tick, numStages> ticks{}; ///< per-stage attribution

    /**
     * Close the current stage at @p now and start @p next. Every
     * tick between begin and completion passes through exactly one
     * advance, which is what makes sum(ticks) == end - begin exact.
     */
    void
    advance(Tick now, Stage next)
    {
        ticks[stage] += now - mark;
        mark = now;
        stage = next;
    }
};

static_assert(std::is_trivially_copyable_v<SpanState>,
              "SpanState rides packet copies and checkpoints");

/** @name Field-wise SpanState serialization (layout-stable). */
/// @{
inline void
saveSpan(ckpt::Serializer &s, const SpanState &ss)
{
    s.put64(ss.id);
    s.put64(ss.begin);
    s.put64(ss.mark);
    s.put8(ss.stage);
    s.put8(ss.phase);
    s.put64(ss.dramQueue);
    for (Tick t : ss.ticks)
        s.put64(t);
}

inline void
restoreSpan(ckpt::Deserializer &d, SpanState &ss)
{
    ss.id = d.get64();
    ss.begin = d.get64();
    ss.mark = d.get64();
    ss.stage = d.get8();
    ss.phase = d.get8();
    ss.dramQueue = d.get64();
    for (Tick &t : ss.ticks)
        t = d.get64();
}
/// @}

/** A completed span, ready for merge/export. */
struct SpanRecord
{
    std::uint64_t id = 0;
    NodeId node = invalidNode; ///< requester
    Tick begin = 0;
    Tick end = 0;
    Tick dramQueue = 0;
    std::array<Tick, numStages> ticks{};
};

/**
 * Owns sampling decisions and completed spans for one machine.
 *
 * Threading: sampleMiss/complete touch only lanes_[node], and the
 * parallel engine guarantees a node's events run on its owning
 * domain's thread — so lanes need no locks. finalize() and every
 * reader (telemetry gauges/histograms, exportTrace) run
 * single-threaded between runs; gauges registered with the telemetry
 * Registry read snapshot fields refreshed only by finalize(), so a
 * mid-run Sampler probe sees stable (last-finalize) values on both
 * engines.
 */
class SpanCollector : public ckpt::Client
{
  public:
    /**
     * @param seed   machine master seed (sampling derives from it)
     * @param rate   target sample fraction in [0, 1]; >= 1 samples
     *               every transaction
     * @param nodes  node count (one lane per node)
     */
    SpanCollector(std::uint64_t seed, double rate, int nodes);

    double rate() const { return rate_; }

    /**
     * Hot path, called at every miss issue by the requesting node.
     * Always advances the node's issue sequence (so the id stream —
     * and thus the sample set — is independent of the sampling
     * rate), and returns the span id when this miss is sampled, 0
     * otherwise.
     */
    std::uint64_t
    sampleMiss(NodeId node)
    {
        Lane &ln = lanes_[static_cast<std::size_t>(node)];
        const std::uint64_t id =
            (static_cast<std::uint64_t>(node) << 40) | ++ln.seq;
        if (!sampleAll_ && mix64(seedHash_ ^ mix64(id)) >= threshold_)
            return 0;
        ln.sampled += 1;
        return id;
    }

    /** Record a finished span (caller has closed its final stage). */
    void complete(NodeId node, const SpanState &s, Tick now);

    /**
     * Merge every lane's completed spans into canonical (begin, id)
     * order and rebuild the histograms and snapshot counters from
     * the merged set. Single-threaded; idempotent (histograms are
     * reset and re-fed, so calling it twice changes nothing). Run it
     * after the machine drains, before reading any export.
     */
    void finalize();

    /** Drop all completed spans and samples (warmup reset). */
    void clearStats();

    /**
     * Register counters and per-stage histograms under
     * "<prefix>.": sampled/completed counters, total_ns and
     * stage.<name>_ns histograms (percentile-queryable via pNN
     * paths), dram.queue_ns / dram.service_ns.
     */
    void registerTelemetry(telem::Registry &reg,
                           const std::string &prefix);

    /**
     * Emit the merged spans as Chrome trace events: per span a
     * unique synthetic tid carrying an outer "txn" B/E pair, the
     * nonzero stage segments laid end-to-end inside it (aggregate
     * attribution order, not hop-by-hop chronology), and an s/f flow
     * pair keyed by the span id. finalize() first.
     */
    void exportTrace(telem::TraceWriter &tw) const;

    /** Merged spans in canonical order (valid after finalize()). */
    const std::vector<SpanRecord> &spans() const { return ordered_; }

    std::uint64_t sampledCount() const { return snapSampled_; }
    std::uint64_t completedCount() const { return snapCompleted_; }

    /** @name Checkpoint/restore (ckpt::Client).
     *
     * The full collector state — per-node sequences, lane contents,
     * merged order — is serialized, and in-flight spans ride the
     * packet/MAF serialization, so a restored run's span export is
     * byte-identical to the unbroken run's. The collector schedules
     * no events, so there is nothing to rehydrate.
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const override;
    void restoreCkpt(ckpt::Deserializer &d) override;
    std::function<void()>
    rehydrateEvent(const ckpt::EventDesc &d) override;
    /// @}

  private:
    /** Per-node completion lane (single-writer: the owning domain). */
    struct Lane
    {
        std::uint64_t seq = 0;     ///< issue sequence (all misses)
        std::uint64_t sampled = 0; ///< misses selected for tracing
        std::vector<SpanRecord> done;
    };

    std::uint64_t seedHash_; ///< derived sampling stream seed
    std::uint64_t threshold_; ///< sample iff mixed id < threshold
    double rate_;
    bool sampleAll_;

    std::vector<Lane> lanes_;
    std::vector<SpanRecord> ordered_; ///< canonical merged order

    // Snapshots refreshed by finalize(); what gauges/counters read.
    std::uint64_t snapSampled_ = 0;
    std::uint64_t snapCompleted_ = 0;

    stats::Histogram total_;
    std::vector<stats::Histogram> stage_;
    stats::Histogram dramQueue_;
    stats::Histogram dramService_;
};

} // namespace gs::trace

#endif // GS_SIM_TRACE_SPAN_HH

/**
 * @file
 * Unified telemetry layer: a hierarchical stats registry, a
 * simulated-time sampler, and machine-wide exporters.
 *
 * The paper's most distinctive results are utilization *profiles*
 * (Figures 10/11, 20, 22, 24), read from the 21364's built-in
 * performance counters by the Xmesh tool. This layer gives every
 * model component the same capability: components register their
 * counters/averages/histograms under a dotted path at build time
 * (`node.12.router.port.E.vc.1.flits`), a Sampler snapshots selected
 * paths on a fixed simulated-time cadence, and exporters dump the
 * whole machine as JSON/CSV or as a Chrome `trace_event` file that
 * opens in Perfetto / chrome://tracing.
 *
 * Design rules:
 *  - One Registry per machine instance, no globals: independent
 *    machines stay independent, so exports are bit-identical under
 *    `SweepRunner --jobs N`.
 *  - Registration is pull-based (the registry stores pointers and
 *    probes); components pay nothing on their hot paths beyond the
 *    plain integer increments they already do. Push-style costs
 *    (trace emission, sampling) exist only while a sink is attached.
 *  - Exports iterate a sorted map and format numbers with a fixed
 *    conversion, so identical runs produce byte-identical files.
 */

#ifndef GS_SIM_TELEMETRY_HH
#define GS_SIM_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/context.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gs::telem
{

/** Join path segments with '.': path("node", 12, "router"). */
template <typename... Parts>
std::string
path(Parts &&...parts)
{
    std::ostringstream os;
    const char *sep = "";
    ((os << sep << parts, sep = "."), ...);
    return os.str();
}

/**
 * Hierarchical stats registry: dotted path -> stat. The registry
 * never owns the stats; registrants guarantee the referenced objects
 * outlive it (components and registry share the machine's lifetime).
 *
 * Duplicate registration is a wiring error and fatal: silently
 * shadowing a path would corrupt every export that reads it.
 */
class Registry
{
  public:
    using Probe = std::function<double()>;

    /** Scalar kinds an entry can hold. */
    enum class Kind : std::uint8_t
    {
        Counter,   ///< monotone count (stats::Counter or raw u64)
        Gauge,     ///< computed-on-read probe
        Average,   ///< mean/min/max/count summary
        Histogram, ///< bucketed distribution
    };

    /** One registered stat (pointers into the owning component). */
    struct Entry
    {
        Kind kind = Kind::Counter;
        const stats::Counter *counter = nullptr;
        const std::uint64_t *raw = nullptr;
        Probe probe;
        const stats::Average *avg = nullptr;
        const stats::Histogram *hist = nullptr;
        /**
         * Wall-clock-derived value (e.g. par.barrier_wait_frac):
         * readable via value() for live diagnostics, but skipped by
         * the exporters so snapshot files stay byte-identical across
         * runs and thread counts.
         */
        bool wallClock = false;
    };

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** @name Registration (build time) */
    /// @{
    void addCounter(const std::string &p, const stats::Counter &c);

    /** Raw counter member (what hot paths increment directly). */
    void addCounter(const std::string &p, const std::uint64_t &raw);

    void addGauge(const std::string &p, Probe probe);

    /** Gauge whose value depends on host timing, not simulation
     * state; excluded from exports (see Entry::wallClock). */
    void addWallClockGauge(const std::string &p, Probe probe);

    void addAverage(const std::string &p, const stats::Average &a);
    void addHistogram(const std::string &p, const stats::Histogram &h);
    /// @}

    /** @name Lookup */
    /// @{
    bool has(const std::string &p) const;
    std::size_t size() const { return entries_.size(); }

    /** All registered paths under @p prefix, sorted. */
    std::vector<std::string> paths(const std::string &prefix = {}) const;

    /**
     * Scalar view of the entry at @p p: counter value, gauge value,
     * or summary mean. A registered Histogram additionally answers
     * percentile queries through a `pNN` (or `pNN_M` for a decimal,
     * e.g. `p99_9`) suffix on its path: `value("xray.total_ns.p95")`
     * returns `Histogram::percentile(0.95)` — NaN while the
     * histogram is empty. Fatal when the path is unknown, when a
     * percentile suffix hangs off a non-histogram entry, or when NN
     * is outside [0, 100].
     */
    double value(const std::string &p) const;

    /** Sorted path -> entry map (exporters iterate this). */
    const std::map<std::string, Entry> &entries() const
    {
        return entries_;
    }
    /// @}

  private:
    void insert(const std::string &p, Entry e);

    std::map<std::string, Entry> entries_;
};

class TraceWriter;

/**
 * Periodic snapshotter: records watched registry paths into
 * time-series on a fixed simulated-time cadence. Two watch modes:
 *
 *  - watch(): the raw scalar value at each sample;
 *  - watchRate(): the per-interval delta, scaled —
 *    `(cur - prev) * scale / interval_ticks` — which turns a
 *    cumulative busy/flit counter into a busy fraction (for a link,
 *    scale = ticks per flit; for a Zbox busy-tick counter,
 *    scale = 1 / channels).
 */
class Sampler : public ckpt::Client
{
  public:
    /** One watched path's recorded values. */
    struct Series
    {
        std::string path;
        bool rate = false;
        double scale = 1.0;
        double prev = 0.0;
        std::vector<double> values;
    };

    Sampler(SimContext &ctx, const Registry &reg, Tick interval);

    void watch(const std::string &p);
    void watchRate(const std::string &p, double scale);

    /** Watch every registered path under @p prefix; returns count. */
    int watchPrefix(const std::string &prefix);

    /** Begin sampling; first sample lands one interval from now. */
    void start();

    /**
     * Stop sampling (a pending sample event becomes a no-op). If any
     * time has passed since the last periodic sample, a final sample
     * is flushed first, its rate values scaled to the partial window
     * actually covered — series include the tail of the run.
     */
    void stop();

    /** Take one sample of every watched path immediately. */
    void sampleNow();

    /**
     * Additionally emit every sample as Chrome counter events into
     * @p tw (one counter track per watched path in Perfetto).
     */
    void mirrorToTrace(TraceWriter &tw) { trace = &tw; }

    Tick interval() const { return interval_; }
    const std::vector<Tick> &times() const { return times_; }
    const std::vector<Series> &series() const { return series_; }

    /** @name Checkpoint/restore (ckpt::Client).
     *
     * Register with Machine::registerCkptClient before save/restore
     * and watch the same paths in the same order before restoring.
     * Trace mirroring is wall-clock-shaped output and cannot be
     * checkpointed; saving with a mirror attached is fatal.
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const override;
    void restoreCkpt(ckpt::Deserializer &d) override;
    std::function<void()>
    rehydrateEvent(const ckpt::EventDesc &d) override;
    /// @}

  private:
    void tick();

    SimContext &ctx;
    const Registry &reg;
    Tick interval_;

    /** Liveness token: pending sample events hold a weak reference. */
    std::shared_ptr<char> token;

    Tick lastSample_ = 0; ///< time of the most recent sample

    std::vector<Series> series_;
    std::vector<Tick> times_;
    TraceWriter *trace = nullptr;
};

/**
 * Buffered Chrome `trace_event` writer. Events accumulate in memory
 * (deterministic order: simulation event order) and serialize on
 * write() as `{"traceEvents": [...]}` — the JSON object format both
 * Perfetto and chrome://tracing load. Timestamps convert from ticks
 * (ps) to the format's microseconds.
 *
 * A capacity cap bounds memory on long runs; events past the cap are
 * counted, not stored.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(std::size_t max_events = 2'000'000)
        : cap(max_events)
    {
    }

    /** Counter sample ("C" phase): one value on a named track. */
    void counter(Tick when, const std::string &name, double value);

    /** Instant event ("i" phase) on thread-track @p tid. */
    void instant(Tick when, const std::string &name, int tid,
                 const char *category = "event");

    /** Complete event ("X" phase): a span of @p dur ticks. */
    void complete(Tick when, Tick dur, const std::string &name, int tid,
                  const char *category = "span");

    /** @name Nested spans and flow binding ("B"/"E", "s"/"f")
     *
     * begin/end form a per-tid stack (emit them balanced and with
     * non-decreasing timestamps per tid — scripts/trace_check.py
     * enforces both); flowStart/flowFinish bind two points of the
     * same logical transaction by @p id, drawn as an arrow in
     * Perfetto. The latency x-ray span exporter
     * (trace::SpanCollector::exportTrace) is the worked example.
     */
    /// @{
    void begin(Tick when, const std::string &name, int tid,
               const char *category = "span");
    void end(Tick when, const std::string &name, int tid,
             const char *category = "span");
    void flowStart(Tick when, const std::string &name, int tid,
                   std::uint64_t id, const char *category = "flow");
    void flowFinish(Tick when, const std::string &name, int tid,
                    std::uint64_t id, const char *category = "flow");
    /// @}

    std::size_t size() const { return events.size(); }
    std::uint64_t dropped() const { return dropped_; }

    void write(std::ostream &os) const;

  private:
    struct Ev
    {
        char ph;
        Tick ts = 0;
        Tick dur = 0;
        int tid = 0;
        double value = 0.0;
        std::uint64_t id = 0; ///< flow-binding id ("s"/"f" phases)
        std::string name;
        const char *cat = "";
    };

    bool room();

    std::vector<Ev> events;
    std::size_t cap;
    std::uint64_t dropped_ = 0;
};

/** @name Exporters
 *
 * All exporters are deterministic: sorted registry order, fixed
 * number formatting, no wall-clock anywhere. Identical seeds produce
 * byte-identical files.
 */
/// @{

/**
 * Full machine snapshot as JSON: every registry entry (counters as
 * integers, gauges as numbers, averages/histograms as objects) plus,
 * when @p sampler is given, its time-series.
 */
void exportJson(std::ostream &os, const Registry &reg,
                const Sampler *sampler = nullptr, Tick now = 0);

/** Scalar snapshot as CSV: `path,kind,value` rows. */
void exportCsv(std::ostream &os, const Registry &reg);

/** Sampler series as wide CSV: `t_ps,<path>,...` columns. */
void exportSeriesCsv(std::ostream &os, const Sampler &sampler);

/// @}

} // namespace gs::telem

#endif // GS_SIM_TELEMETRY_HH

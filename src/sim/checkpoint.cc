#include "sim/checkpoint.hh"

#include <array>
#include <cstdio>

#include "sim/logging.hh"

namespace gs::ckpt
{

namespace
{

/** CRC32 lookup table (IEEE 802.3 reflected polynomial). */
std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

std::string
fourccName(std::uint32_t tag)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>(tag >> (8 * i));
        s.push_back(c >= 32 && c < 127 ? c : '?');
    }
    return s;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const auto table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

bool
Deserializer::enterSection(std::uint32_t tag, const char *name)
{
    if (!err.empty())
        return false;
    inSection = false; // frame reads are bounded by the file
    if (pos + 16 > end) {
        fail(std::string("snapshot truncated: no '") + name +
             "' section frame");
        return false;
    }
    const std::uint32_t got = get32();
    const std::uint32_t crc = get32();
    const std::uint64_t len = get64();
    if (got != tag) {
        fail(std::string("snapshot layout error: expected section '") +
             name + "', found '" + fourccName(got) + "'");
        return false;
    }
    if (len > end - pos) {
        fail(std::string("snapshot truncated: section '") + name +
             "' claims " + std::to_string(len) + " bytes, " +
             std::to_string(end - pos) + " remain");
        return false;
    }
    const std::uint32_t actual =
        crc32(buf + pos, static_cast<std::size_t>(len));
    if (actual != crc) {
        fail(std::string("snapshot corrupt: section '") + name +
             "' CRC mismatch (stored " + std::to_string(crc) +
             ", computed " + std::to_string(actual) + ")");
        return false;
    }
    secEnd = pos + static_cast<std::size_t>(len);
    inSection = true;
    return true;
}

void
Deserializer::leaveSection(const char *name)
{
    if (!err.empty())
        return;
    if (pos != secEnd) {
        fail(std::string("snapshot layout error: section '") + name +
             "' has " + std::to_string(secEnd - pos) +
             " unread byte(s)");
        return;
    }
    inSection = false;
}

void
saveCont(Serializer &s, const Cont &c, const char *what)
{
    if (c.desc.kind == Opaque) {
        gs_fatal("cannot checkpoint: ", what,
                 " holds an opaque continuation (its call site passes "
                 "a bare callable; give it an EventDesc)");
    }
    s.putDesc(c.desc);
}

Cont
restoreCont(Deserializer &d, const RehydrateFn &rehydrate,
            const char *what)
{
    Cont c;
    c.desc = d.getDesc();
    if (!d.ok())
        return c;
    c.fn = rehydrate(c.desc);
    if (!c.fn) {
        d.fail(std::string("snapshot corrupt: no rehydration recipe "
                           "for ") +
               what + " (event kind " + std::to_string(c.desc.kind) +
               ")");
    }
    return c;
}

bool
writeSnapshot(const std::string &path, const Serializer &s,
              std::string *err)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        if (err)
            *err = "cannot open " + tmp + " for writing";
        return false;
    }
    bool ok = std::fwrite(magic, 1, sizeof(magic), f) == sizeof(magic);
    std::uint8_t ver[8] = {};
    for (int i = 0; i < 4; ++i)
        ver[i] = static_cast<std::uint8_t>(formatVersion >> (8 * i));
    // Bytes 4..7 are reserved flags, zero in version 1.
    ok = ok && std::fwrite(ver, 1, sizeof(ver), f) == sizeof(ver);
    ok = ok && (s.size() == 0 ||
                std::fwrite(s.buffer().data(), 1, s.size(), f) ==
                    s.size());
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        if (err)
            *err = "short write to " + tmp;
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readSnapshot(const std::string &path, std::vector<std::uint8_t> *out,
             std::size_t *bodyOff, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = "cannot open snapshot " + path;
        return false;
    }
    out->clear();
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out->insert(out->end(), chunk, chunk + n);
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk) {
        if (err)
            *err = "I/O error reading snapshot " + path;
        return false;
    }
    if (out->size() < sizeof(magic) + 8) {
        if (err)
            *err = "not a snapshot: " + path + " is " +
                   std::to_string(out->size()) +
                   " bytes, smaller than the header";
        return false;
    }
    if (std::memcmp(out->data(), magic, sizeof(magic)) != 0) {
        if (err)
            *err = "not a snapshot: " + path + " has no " +
                   std::string(magic, sizeof(magic)) + " magic";
        return false;
    }
    std::uint32_t ver = 0;
    for (int i = 0; i < 4; ++i)
        ver |= std::uint32_t((*out)[sizeof(magic) +
                                    static_cast<std::size_t>(i)])
               << (8 * i);
    if (ver != formatVersion) {
        if (err)
            *err = "snapshot " + path + " is format version " +
                   std::to_string(ver) + ", this build reads version " +
                   std::to_string(formatVersion);
        return false;
    }
    *bodyOff = sizeof(magic) + 8;
    return true;
}

} // namespace gs::ckpt

#include "sim/args.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace gs
{

Args::Args(int argc, char **argv, std::map<std::string, std::string> known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            gs_fatal("unexpected positional argument: ", arg);
        arg = arg.substr(2);

        std::string key = arg, value = "1";
        if (auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }

        if (key == "help") {
            std::printf("options:\n");
            for (const auto &[name, help] : known)
                std::printf("  --%-20s %s\n", name.c_str(), help.c_str());
            std::exit(0);
        }
        if (!known.empty() && !known.count(key))
            gs_fatal("unknown option --", key, " (try --help)");
        values[key] = value;
    }
}

bool
Args::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::string
Args::getString(const std::string &key, const std::string &def) const
{
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

std::int64_t
Args::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values.find(key);
    return it == values.end() ? def : std::strtoll(it->second.c_str(),
                                                   nullptr, 0);
}

double
Args::getDouble(const std::string &key, double def) const
{
    auto it = values.find(key);
    return it == values.end() ? def : std::strtod(it->second.c_str(),
                                                  nullptr);
}

bool
Args::getBool(const std::string &key, bool def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    return it->second != "0" && it->second != "false" &&
           it->second != "no";
}

} // namespace gs

#include "sim/telemetry.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace gs::telem
{

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

void
Registry::insert(const std::string &p, Entry e)
{
    gs_assert(!p.empty(), "empty telemetry path");
    auto [it, fresh] = entries_.emplace(p, std::move(e));
    (void)it;
    if (!fresh)
        gs_fatal("duplicate telemetry path: ", p);
}

void
Registry::addCounter(const std::string &p, const stats::Counter &c)
{
    Entry e;
    e.kind = Kind::Counter;
    e.counter = &c;
    insert(p, std::move(e));
}

void
Registry::addCounter(const std::string &p, const std::uint64_t &raw)
{
    Entry e;
    e.kind = Kind::Counter;
    e.raw = &raw;
    insert(p, std::move(e));
}

void
Registry::addGauge(const std::string &p, Probe probe)
{
    gs_assert(probe != nullptr, "null telemetry probe for ", p);
    Entry e;
    e.kind = Kind::Gauge;
    e.probe = std::move(probe);
    insert(p, std::move(e));
}

void
Registry::addWallClockGauge(const std::string &p, Probe probe)
{
    gs_assert(probe != nullptr, "null telemetry probe for ", p);
    Entry e;
    e.kind = Kind::Gauge;
    e.probe = std::move(probe);
    e.wallClock = true;
    insert(p, std::move(e));
}

void
Registry::addAverage(const std::string &p, const stats::Average &a)
{
    Entry e;
    e.kind = Kind::Average;
    e.avg = &a;
    insert(p, std::move(e));
}

void
Registry::addHistogram(const std::string &p, const stats::Histogram &h)
{
    Entry e;
    e.kind = Kind::Histogram;
    e.hist = &h;
    insert(p, std::move(e));
}

bool
Registry::has(const std::string &p) const
{
    return entries_.count(p) != 0;
}

std::vector<std::string>
Registry::paths(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (auto it = entries_.lower_bound(prefix); it != entries_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.push_back(it->first);
    }
    return out;
}

namespace
{

double
scalarOf(const Registry::Entry &e)
{
    switch (e.kind) {
      case Registry::Kind::Counter:
        return e.counter
                   ? static_cast<double>(e.counter->value())
                   : static_cast<double>(*e.raw);
      case Registry::Kind::Gauge:
        return e.probe();
      case Registry::Kind::Average:
        return e.avg->mean();
      case Registry::Kind::Histogram:
        return e.hist->summary().mean();
    }
    return 0.0;
}

} // namespace

namespace
{

/**
 * Parse a percentile suffix segment ("p50", "p99_9"): returns the
 * quantile in [0, 1], or a negative value when the segment is not a
 * percentile query at all. NN outside [0, 100] is a caller error and
 * fatal — silently treating "p200" as an unknown path would bury the
 * typo under a misleading "unknown path" diagnostic.
 */
double
parsePercentileSuffix(const std::string &seg, const std::string &full)
{
    if (seg.size() < 2 || seg[0] != 'p')
        return -1.0;
    double v = 0.0;
    std::size_t i = 1;
    if (!std::isdigit(static_cast<unsigned char>(seg[i])))
        return -1.0;
    for (; i < seg.size() &&
           std::isdigit(static_cast<unsigned char>(seg[i]));
         ++i)
        v = v * 10.0 + (seg[i] - '0');
    if (i < seg.size()) {
        // Fractional percentile: '_' stands in for the decimal point
        // a path segment cannot carry (p99_9 = 99.9).
        if (seg[i] != '_' || i + 1 >= seg.size())
            return -1.0;
        double scale = 0.1;
        for (i += 1; i < seg.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(seg[i])))
                return -1.0;
            v += (seg[i] - '0') * scale;
            scale *= 0.1;
        }
    }
    if (v > 100.0)
        gs_fatal("percentile out of range in telemetry query: ", full);
    return v / 100.0;
}

} // namespace

double
Registry::value(const std::string &p) const
{
    auto it = entries_.find(p);
    if (it != entries_.end())
        return scalarOf(it->second);

    // Histogram percentile query: "<hist-path>.pNN" (or pNN_M).
    auto dot = p.rfind('.');
    if (dot != std::string::npos && dot + 1 < p.size()) {
        double q = parsePercentileSuffix(p.substr(dot + 1), p);
        if (q >= 0.0) {
            auto stem = entries_.find(p.substr(0, dot));
            if (stem != entries_.end()) {
                if (stem->second.kind != Kind::Histogram)
                    gs_fatal("percentile query on non-histogram "
                             "telemetry path: ", p);
                return stem->second.hist->percentile(q);
            }
        }
    }
    gs_fatal("unknown telemetry path: ", p);
}

// ---------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------

Sampler::Sampler(SimContext &context, const Registry &registry,
                 Tick interval)
    : ctx(context), reg(registry), interval_(interval)
{
    gs_assert(interval_ > 0, "sampler interval must be positive");
}

void
Sampler::watch(const std::string &p)
{
    gs_assert(reg.has(p), "sampler watch of unknown path ", p);
    Series s;
    s.path = p;
    series_.push_back(std::move(s));
}

void
Sampler::watchRate(const std::string &p, double scale)
{
    gs_assert(reg.has(p), "sampler watch of unknown path ", p);
    Series s;
    s.path = p;
    s.rate = true;
    s.scale = scale;
    s.prev = reg.value(p);
    series_.push_back(std::move(s));
}

int
Sampler::watchPrefix(const std::string &prefix)
{
    int n = 0;
    for (const auto &p : reg.paths(prefix)) {
        watch(p);
        n += 1;
    }
    return n;
}

void
Sampler::sampleNow()
{
    Tick now = ctx.now();
    // Rates divide by the span actually covered since the previous
    // sample: interval_ on the periodic tick, less on the final
    // partial flush stop() takes. A zero span would double-record
    // the same instant; skip it.
    Tick span = now - lastSample_;
    if (span == 0 && !times_.empty())
        return;
    if (span == 0)
        span = interval_;
    times_.push_back(now);
    for (auto &s : series_) {
        double cur = reg.value(s.path);
        double v = cur;
        if (s.rate) {
            v = (cur - s.prev) * s.scale / static_cast<double>(span);
            s.prev = cur;
        }
        s.values.push_back(v);
        if (trace)
            trace->counter(now, s.path, v);
    }
    lastSample_ = now;
}

void
Sampler::start()
{
    if (token)
        return;
    token = std::make_shared<char>(0);
    lastSample_ = ctx.now();
    std::weak_ptr<char> alive = token;
    ctx.queue().schedule(interval_, clientDesc(), [this, alive] {
        if (!alive.expired())
            tick();
    });
}

void
Sampler::stop()
{
    if (!token)
        return;
    // Flush the tail: a run rarely ends on an interval edge, and
    // silently dropping the final partial window made every rate
    // series (heatmaps included) understate the end of the run.
    if (ctx.now() > lastSample_)
        sampleNow();
    token.reset();
}

void
Sampler::tick()
{
    sampleNow();
    std::weak_ptr<char> alive = token;
    ctx.queue().schedule(interval_, clientDesc(), [this, alive] {
        if (!alive.expired())
            tick();
    });
}

void
Sampler::saveCkpt(ckpt::Serializer &s) const
{
    gs_assert(trace == nullptr,
              "cannot checkpoint: telemetry trace mirroring is active "
              "(--trace is incompatible with checkpointing)");
    s.putBool(token != nullptr);
    s.put64(static_cast<std::uint64_t>(interval_));
    s.put64(static_cast<std::uint64_t>(lastSample_));
    s.put32(static_cast<std::uint32_t>(times_.size()));
    for (Tick t : times_)
        s.put64(static_cast<std::uint64_t>(t));
    s.put32(static_cast<std::uint32_t>(series_.size()));
    for (const auto &sr : series_) {
        s.putStr(sr.path);
        s.putF64(sr.prev);
        s.put32(static_cast<std::uint32_t>(sr.values.size()));
        for (double v : sr.values)
            s.putF64(v);
    }
}

void
Sampler::restoreCkpt(ckpt::Deserializer &d)
{
    bool wasRunning = d.getBool();
    if (d.get64() != static_cast<std::uint64_t>(interval_) &&
        d.ok()) {
        d.fail("snapshot sampler interval differs from this run's");
        return;
    }
    lastSample_ = static_cast<Tick>(d.get64());
    std::uint32_t nt = d.get32();
    if (!d.ok())
        return;
    times_.assign(nt, 0);
    for (Tick &t : times_)
        t = static_cast<Tick>(d.get64());
    if (d.get32() != series_.size() && d.ok()) {
        d.fail("snapshot sampler watches a different series set "
               "(watch the same paths, in order, before restoring)");
        return;
    }
    for (auto &sr : series_) {
        if (d.getStr() != sr.path && d.ok()) {
            d.fail("snapshot sampler series path differs (watch the "
                   "same paths, in order, before restoring)");
            return;
        }
        sr.prev = d.getF64();
        std::uint32_t nv = d.get32();
        if (!d.ok())
            return;
        sr.values.assign(nv, 0.0);
        for (double &v : sr.values)
            v = d.getF64();
    }
    if (!d.ok())
        return;
    token = wasRunning ? std::make_shared<char>(0) : nullptr;
}

std::function<void()>
Sampler::rehydrateEvent(const ckpt::EventDesc &d)
{
    if (d.kind != ckpt::ClientEvent)
        return {};
    return [this] {
        if (token)
            tick();
    };
}

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

bool
TraceWriter::room()
{
    if (events.size() < cap)
        return true;
    dropped_ += 1;
    return false;
}

void
TraceWriter::counter(Tick when, const std::string &name, double value)
{
    if (!room())
        return;
    Ev e;
    e.ph = 'C';
    e.ts = when;
    e.value = value;
    e.name = name;
    events.push_back(std::move(e));
}

void
TraceWriter::instant(Tick when, const std::string &name, int tid,
                     const char *category)
{
    if (!room())
        return;
    Ev e;
    e.ph = 'i';
    e.ts = when;
    e.tid = tid;
    e.name = name;
    e.cat = category;
    events.push_back(std::move(e));
}

void
TraceWriter::complete(Tick when, Tick dur, const std::string &name,
                      int tid, const char *category)
{
    if (!room())
        return;
    Ev e;
    e.ph = 'X';
    e.ts = when;
    e.dur = dur;
    e.tid = tid;
    e.name = name;
    e.cat = category;
    events.push_back(std::move(e));
}

void
TraceWriter::begin(Tick when, const std::string &name, int tid,
                   const char *category)
{
    if (!room())
        return;
    Ev e;
    e.ph = 'B';
    e.ts = when;
    e.tid = tid;
    e.name = name;
    e.cat = category;
    events.push_back(std::move(e));
}

void
TraceWriter::end(Tick when, const std::string &name, int tid,
                 const char *category)
{
    if (!room())
        return;
    Ev e;
    e.ph = 'E';
    e.ts = when;
    e.tid = tid;
    e.name = name;
    e.cat = category;
    events.push_back(std::move(e));
}

void
TraceWriter::flowStart(Tick when, const std::string &name, int tid,
                       std::uint64_t id, const char *category)
{
    if (!room())
        return;
    Ev e;
    e.ph = 's';
    e.ts = when;
    e.tid = tid;
    e.id = id;
    e.name = name;
    e.cat = category;
    events.push_back(std::move(e));
}

void
TraceWriter::flowFinish(Tick when, const std::string &name, int tid,
                        std::uint64_t id, const char *category)
{
    if (!room())
        return;
    Ev e;
    e.ph = 'f';
    e.ts = when;
    e.tid = tid;
    e.id = id;
    e.name = name;
    e.cat = category;
    events.push_back(std::move(e));
}

// ---------------------------------------------------------------------
// Export helpers
// ---------------------------------------------------------------------

namespace
{

/**
 * Fixed, locale-independent number rendering. Identical doubles
 * (which identical seeds guarantee) always format identically, so
 * exports diff clean. Non-finite values become JSON null.
 */
void
putNum(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

void
putEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
putEntryJson(std::ostream &os, const Registry::Entry &e)
{
    switch (e.kind) {
      case Registry::Kind::Counter:
        os << (e.counter ? e.counter->value() : *e.raw);
        break;
      case Registry::Kind::Gauge:
        putNum(os, e.probe());
        break;
      case Registry::Kind::Average: {
        const auto &a = *e.avg;
        os << "{\"count\":" << a.count() << ",\"mean\":";
        putNum(os, a.mean());
        os << ",\"min\":";
        putNum(os, a.min());
        os << ",\"max\":";
        putNum(os, a.max());
        os << ",\"total\":";
        putNum(os, a.total());
        os << "}";
        break;
      }
      case Registry::Kind::Histogram: {
        const auto &h = *e.hist;
        os << "{\"count\":" << h.summary().count() << ",\"mean\":";
        putNum(os, h.summary().mean());
        os << ",\"buckets\":[";
        const char *sep = "";
        for (auto b : h.buckets()) {
            os << sep << b;
            sep = ",";
        }
        os << "]}";
        break;
      }
    }
}

const char *
kindName(Registry::Kind k)
{
    switch (k) {
      case Registry::Kind::Counter:
        return "counter";
      case Registry::Kind::Gauge:
        return "gauge";
      case Registry::Kind::Average:
        return "average";
      case Registry::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

} // namespace

void
TraceWriter::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    const char *sep = "\n";
    for (const auto &e : events) {
        os << sep << "{\"ph\":\"" << e.ph << "\",\"ts\":";
        // trace_event timestamps are microseconds; ticks are ps.
        putNum(os, static_cast<double>(e.ts) / 1e6);
        os << ",\"pid\":0,\"tid\":" << e.tid << ",\"name\":";
        putEscaped(os, e.name);
        if (e.ph == 'C') {
            os << ",\"args\":{\"value\":";
            putNum(os, e.value);
            os << "}";
        } else {
            os << ",\"cat\":\"" << e.cat << "\"";
            if (e.ph == 'X') {
                os << ",\"dur\":";
                putNum(os, static_cast<double>(e.dur) / 1e6);
            }
            if (e.ph == 'i')
                os << ",\"s\":\"t\"";
            if (e.ph == 's' || e.ph == 'f') {
                os << ",\"id\":" << e.id;
                // Bind the finish to the *end* of its enclosing
                // slice, so Perfetto draws the arrow span-to-span.
                if (e.ph == 'f')
                    os << ",\"bp\":\"e\"";
            }
            os << ",\"args\":{}";
        }
        os << "}";
        sep = ",\n";
    }
    os << "\n]}\n";
}

void
exportJson(std::ostream &os, const Registry &reg, const Sampler *sampler,
           Tick now)
{
    os << "{\"schema\":\"gs-telemetry-1\",\"now_ps\":" << now
       << ",\"stats\":{";
    const char *sep = "\n";
    for (const auto &[p, e] : reg.entries()) {
        if (e.wallClock)
            continue; // host-timing value; keep exports reproducible
        os << sep;
        putEscaped(os, p);
        os << ":";
        putEntryJson(os, e);
        sep = ",\n";
    }
    os << "\n}";
    if (sampler) {
        os << ",\"series\":{\"interval_ps\":" << sampler->interval()
           << ",\"t_ps\":[";
        sep = "";
        for (Tick t : sampler->times()) {
            os << sep << t;
            sep = ",";
        }
        os << "],\"paths\":{";
        sep = "\n";
        for (const auto &s : sampler->series()) {
            os << sep;
            putEscaped(os, s.path);
            os << ":[";
            const char *vsep = "";
            for (double v : s.values) {
                os << vsep;
                putNum(os, v);
                vsep = ",";
            }
            os << "]";
            sep = ",\n";
        }
        os << "\n}}";
    }
    os << "}\n";
}

void
exportCsv(std::ostream &os, const Registry &reg)
{
    os << "path,kind,value\n";
    for (const auto &[p, e] : reg.entries()) {
        if (e.wallClock)
            continue; // host-timing value; keep exports reproducible
        os << p << "," << kindName(e.kind) << ",";
        putNum(os, scalarOf(e));
        os << "\n";
    }
}

void
exportSeriesCsv(std::ostream &os, const Sampler &sampler)
{
    os << "t_ps";
    for (const auto &s : sampler.series())
        os << "," << s.path;
    os << "\n";
    const auto &times = sampler.times();
    for (std::size_t i = 0; i < times.size(); ++i) {
        os << times[i];
        for (const auto &s : sampler.series()) {
            os << ",";
            putNum(os, s.values[i]);
        }
        os << "\n";
    }
}

} // namespace gs::telem

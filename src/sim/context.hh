/**
 * @file
 * Simulation context: the event queue plus the experiment-level RNG.
 * One context per experiment run; components hold a reference.
 *
 * A context is fully self-contained — no global or static mutable
 * state anywhere in the library backs it — so independent contexts
 * may run concurrently on different threads (the SweepRunner
 * contract). A single context is not internally synchronised; drive
 * it from one thread at a time.
 */

#ifndef GS_SIM_CONTEXT_HH
#define GS_SIM_CONTEXT_HH

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace gs
{

/** Bundles the per-run simulation services components depend on. */
class SimContext
{
  public:
    explicit SimContext(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

    EventQueue &queue() { return eq; }
    Rng &rng() { return rng_; }
    Tick now() const { return eq.now(); }

    /** The seed this run was built from (for reproduction lines). */
    std::uint64_t seed() const { return seed_; }

  private:
    EventQueue eq;
    std::uint64_t seed_;
    Rng rng_;
};

} // namespace gs

#endif // GS_SIM_CONTEXT_HH

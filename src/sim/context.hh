/**
 * @file
 * Simulation context: the event queue plus the experiment-level RNG.
 * One context per experiment run; components hold a reference.
 */

#ifndef GS_SIM_CONTEXT_HH
#define GS_SIM_CONTEXT_HH

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace gs
{

/** Bundles the per-run simulation services components depend on. */
class SimContext
{
  public:
    explicit SimContext(std::uint64_t seed = 1) : rng_(seed) {}

    EventQueue &queue() { return eq; }
    Rng &rng() { return rng_; }
    Tick now() const { return eq.now(); }

  private:
    EventQueue eq;
    Rng rng_;
};

} // namespace gs

#endif // GS_SIM_CONTEXT_HH

#include "cpu/trace.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace gs::cpu
{

TraceSource::TraceSource(std::vector<MemOp> operations)
    : ops(std::move(operations))
{
}

TraceSource
TraceSource::parse(std::istream &is)
{
    std::vector<MemOp> ops;
    std::string line;
    double pendingThinkNs = 0;
    int lineNo = 0;

    while (std::getline(is, line)) {
        lineNo += 1;
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;

        if (tag == "T") {
            double ns = 0;
            if (!(ls >> ns) || ns < 0)
                gs_fatal("trace line ", lineNo, ": bad think time");
            pendingThinkNs += ns;
            continue;
        }

        if (tag != "R" && tag != "W" && tag != "D")
            gs_fatal("trace line ", lineNo, ": unknown tag '", tag,
                     "'");

        std::string hex;
        if (!(ls >> hex))
            gs_fatal("trace line ", lineNo, ": missing address");
        MemOp op;
        op.addr = std::strtoull(hex.c_str(), nullptr, 16);
        op.write = tag == "W";
        op.dependent = tag == "D";
        op.thinkNs = pendingThinkNs;
        pendingThinkNs = 0;
        ops.push_back(op);
    }
    return TraceSource(std::move(ops));
}

TraceSource
TraceSource::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        gs_fatal("cannot open trace file: ", path);
    return parse(is);
}

void
TraceSource::dump(std::ostream &os) const
{
    for (const auto &op : ops) {
        if (op.thinkNs > 0)
            os << "T " << op.thinkNs << '\n';
        os << (op.write ? 'W' : op.dependent ? 'D' : 'R') << " 0x"
           << std::hex << op.addr << std::dec << '\n';
    }
}

std::optional<MemOp>
TraceSource::next()
{
    if (cursor >= ops.size())
        return std::nullopt;
    return ops[cursor++];
}

} // namespace gs::cpu

#include "cpu/analytic_core.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace gs::cpu
{

MachineTiming
MachineTiming::gs1280()
{
    MachineTiming m;
    m.name = "GS1280/1.15GHz";
    m.clockGHz = 1.15;
    m.l2SizeMB = 1.75;
    m.l2LatencyNs = 10.4; // 12 cycles, on-chip
    m.memLatencyNs = 83.0;
    m.memBandwidthGBs = 4.6; // per-CPU sustained (local RDRAM)
    return m;
}

MachineTiming
MachineTiming::gs320()
{
    MachineTiming m;
    m.name = "GS320/1.22GHz";
    m.clockGHz = 1.22;
    m.l2SizeMB = 16.0;
    m.l2LatencyNs = 25.0; // off-chip SRAM
    m.memLatencyNs = 330.0;
    m.memBandwidthGBs = 0.75; // shared QBB memory, per-CPU share
    return m;
}

MachineTiming
MachineTiming::es45()
{
    MachineTiming m;
    m.name = "ES45/1.25GHz";
    m.clockGHz = 1.25;
    m.l2SizeMB = 16.0;
    m.l2LatencyNs = 24.0;
    m.memLatencyNs = 195.0;
    m.memBandwidthGBs = 1.35; // shared crossbar, per-CPU share
    return m;
}

CpiBreakdown
evaluateIpc(const BenchProfile &profile, const MachineTiming &machine)
{
    gs_assert(machine.clockGHz > 0 && machine.memBandwidthGBs > 0);

    CpiBreakdown out;
    for (const auto &ws : profile.workingSet) {
        if (ws.sizeMB <= machine.l2SizeMB)
            out.l2Mpki += ws.missPer1k;
        else
            out.memMpki += ws.missPer1k;
    }

    double tCore = profile.cpiBase / machine.clockGHz;
    double tL2 = out.l2Mpki / 1000.0 * machine.l2LatencyNs *
                 machine.l2Overlap;
    double tMemLat =
        out.memMpki / 1000.0 * machine.memLatencyNs / profile.mlp;
    double tMemBw =
        out.memMpki / 1000.0 * 64.0 / machine.memBandwidthGBs;

    out.bandwidthBound = tMemBw > tMemLat;
    out.nsPerInstr = tCore + tL2 + std::max(tMemLat, tMemBw);
    out.ipc = 1.0 / (out.nsPerInstr * machine.clockGHz);

    double demandGBs =
        out.memMpki / 1000.0 * 64.0 / out.nsPerInstr;
    out.memUtilization =
        std::min(demandGBs / machine.memBandwidthGBs, 1.0);
    return out;
}

std::vector<double>
utilizationSeries(const BenchProfile &profile,
                  const MachineTiming &machine, int samples)
{
    gs_assert(samples > 0);
    CpiBreakdown base = evaluateIpc(profile, machine);

    std::vector<double> series;
    series.reserve(static_cast<std::size_t>(samples));
    const auto &phases =
        profile.phases.empty() ? std::vector<double>{1.0}
                               : profile.phases;
    // Normalize phases so their mean activity matches the model's
    // average utilization.
    double mean = 0;
    for (double p : phases)
        mean += p;
    mean /= static_cast<double>(phases.size());
    double scale = mean > 0 ? base.memUtilization / mean : 0.0;

    for (int s = 0; s < samples; ++s) {
        double pos = static_cast<double>(s) /
                     static_cast<double>(samples) *
                     static_cast<double>(phases.size());
        auto idx = std::min(static_cast<std::size_t>(pos),
                            phases.size() - 1);
        series.push_back(std::min(phases[idx] * scale, 1.0));
    }
    return series;
}

} // namespace gs::cpu

/**
 * @file
 * Analytic CPI model for the SPEC CPU2000 comparisons (Figures 8-11
 * of the paper).
 *
 * We cannot run SPEC binaries; what the paper's IPC comparison
 * actually measures is where each benchmark's working set lands in
 * each machine's cache/memory hierarchy (its own explanation for
 * facerec). The model therefore takes a benchmark profile — base
 * CPI plus a small set of working-set components, each with a size
 * and a miss density — and a machine's cache size, latencies and
 * bandwidth, and composes per-instruction time:
 *
 *   t = cpiBase/clock + l2mpki/1000 * l2Lat * overlap
 *       + max(memMpki/1000 * memLat / mlp,
 *             memMpki/1000 * 64 B / memBW)
 *
 * Every component that does not fit in the L2 spills to memory;
 * everything else that misses the L1 hits the L2.
 */

#ifndef GS_CPU_ANALYTIC_CORE_HH
#define GS_CPU_ANALYTIC_CORE_HH

#include <string>
#include <vector>

namespace gs::cpu
{

/** One lump of a benchmark's reuse-distance profile. */
struct WorkingSetComponent
{
    double sizeMB = 0;     ///< footprint of this component
    double missPer1k = 0;  ///< L1 misses/1000 instr touching it
};

/** Synthetic profile of one SPEC CPU2000 benchmark. */
struct BenchProfile
{
    std::string name;
    bool fp = false;
    double cpiBase = 0.7;  ///< core-bound CPI (covers L1 hits)
    double mlp = 2.0;      ///< average memory-level parallelism
    std::vector<WorkingSetComponent> workingSet;

    /**
     * Relative activity by execution phase, used to shape the
     * memory-controller utilization time series (Figures 10/11).
     * Values scale the benchmark's mean utilization.
     */
    std::vector<double> phases{1.0};
};

/** Cache/memory character of one machine, for the CPI model. */
struct MachineTiming
{
    std::string name;
    double clockGHz = 1.15;
    double l2SizeMB = 1.75;
    double l2LatencyNs = 10.4;
    double memLatencyNs = 83.0;
    double memBandwidthGBs = 12.3; ///< per-CPU sustainable
    double l2Overlap = 0.55; ///< fraction of L2 hit latency exposed

    /** GS1280 (1.15 GHz 21364). */
    static MachineTiming gs1280();
    /** AlphaServer GS320 (1.22 GHz 21264, 16 MB off-chip L2). */
    static MachineTiming gs320();
    /** ES45 (1.25 GHz 21264, 16 MB off-chip L2, faster memory). */
    static MachineTiming es45();
};

/** Result of evaluating a profile on a machine. */
struct CpiBreakdown
{
    double ipc = 0;
    double nsPerInstr = 0;
    double l2Mpki = 0;    ///< L1 misses served by the L2
    double memMpki = 0;   ///< L1 misses spilling to memory
    double memUtilization = 0; ///< of the machine's per-CPU mem BW
    bool bandwidthBound = false;
};

/** Evaluate @p profile on @p machine. */
CpiBreakdown evaluateIpc(const BenchProfile &profile,
                         const MachineTiming &machine);

/**
 * Memory-controller utilization over @p profile's phases on
 * @p machine, as plotted in Figures 10/11 (one value per sample).
 */
std::vector<double> utilizationSeries(const BenchProfile &profile,
                                      const MachineTiming &machine,
                                      int samples);

} // namespace gs::cpu

#endif // GS_CPU_ANALYTIC_CORE_HH

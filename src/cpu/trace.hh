/**
 * @file
 * Address-trace replay: run a recorded (or hand-written) memory
 * trace through the timing core, the way trace-driven simulators
 * consume SPEC traces. The text format is one operation per line:
 *
 *     R <hex-addr>            read
 *     W <hex-addr>            write
 *     D <hex-addr>            dependent read (serializes issue)
 *     T <ns>                  think time before the next op
 *     # comment / blank lines ignored
 *
 * A TraceSource can also be built programmatically and recorded
 * back out, which the tests use for round-tripping.
 */

#ifndef GS_CPU_TRACE_HH
#define GS_CPU_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/traffic.hh"

namespace gs::cpu
{

/** A replayable memory trace. */
class TraceSource : public TrafficSource
{
  public:
    TraceSource() = default;

    /** Build from parsed operations. */
    explicit TraceSource(std::vector<MemOp> ops);

    /**
     * Parse the text format from @p is. Malformed lines are fatal
     * (traces are inputs; fail loudly).
     */
    static TraceSource parse(std::istream &is);

    /** Parse a file on disk. */
    static TraceSource load(const std::string &path);

    /** Write the trace back in the text format. */
    void dump(std::ostream &os) const;

    /** Append one operation (builder-style use). */
    void append(MemOp op) { ops.push_back(op); }

    std::size_t size() const { return ops.size(); }

    /** Rewind to the beginning for another replay. */
    void rewind() { cursor = 0; }

    std::optional<MemOp> next() override;

  private:
    std::vector<MemOp> ops;
    std::size_t cursor = 0;
};

} // namespace gs::cpu

#endif // GS_CPU_TRACE_HH

/**
 * @file
 * Traffic-source interface between workloads and the timing core.
 *
 * A TrafficSource yields a per-CPU stream of memory operations, each
 * optionally preceded by compute ("think") time. Workloads implement
 * this to express the access patterns of the paper's benchmarks:
 * dependent-load chains, streaming kernels, random table updates,
 * BSP phase programs, and so on.
 */

#ifndef GS_CPU_TRAFFIC_HH
#define GS_CPU_TRAFFIC_HH

#include <optional>

#include "mem/address.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace gs::cpu
{

/** One memory operation from a core's instruction stream. */
struct MemOp
{
    mem::Addr addr = 0;
    bool write = false;

    /**
     * Compute time that must elapse (serially) before this op may
     * issue. Models both ALU work and issue-width limits.
     */
    double thinkNs = 0.0;

    /**
     * When false, the op does not block the pipeline: the core may
     * issue past it up to its MLP limit (independent loads/stores).
     * When true, issue stalls until this op completes (a dependent
     * load — the lmbench lat_mem_rd pattern).
     */
    bool dependent = false;
};

/** A per-CPU stream of memory operations. */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Next operation, or nullopt when the stream is exhausted. */
    virtual std::optional<MemOp> next() = 0;

    /** @name Checkpoint/restore of the stream position.
     *
     * Stateful sources (every workload) override both so that a
     * restored run replays the exact remaining operation sequence.
     * The defaults abort loudly: a source that has not opted in
     * cannot silently produce a diverging stream after restore.
     */
    /// @{
    virtual void
    saveCkpt(ckpt::Serializer &s) const
    {
        (void)s;
        gs_fatal("cannot checkpoint: this traffic source does not "
                 "implement saveCkpt/restoreCkpt");
    }

    virtual void
    restoreCkpt(ckpt::Deserializer &d)
    {
        d.fail("snapshot restore: this traffic source does not "
               "implement saveCkpt/restoreCkpt");
    }
    /// @}
};

} // namespace gs::cpu

#endif // GS_CPU_TRAFFIC_HH

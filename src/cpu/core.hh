/**
 * @file
 * Timing core: issues a TrafficSource's operations into the node's
 * coherent memory system, modelling an L1 data cache, bounded memory
 * parallelism (MLP), dependent-load serialization and think time.
 *
 * The 21364 keeps the 21264 core (Section 2 of the paper), so the
 * same core model serves every machine; only cache geometry, memory
 * and interconnect parameters differ between systems.
 */

#ifndef GS_CPU_CORE_HH
#define GS_CPU_CORE_HH

#include <functional>
#include <memory>
#include <optional>

#include "coherence/node.hh"
#include "cpu/traffic.hh"
#include "mem/cache.hh"
#include "sim/stats.hh"

namespace gs::cpu
{

/** Core issue parameters. */
struct CoreParams
{
    /** Maximum overlapped outstanding misses the core sustains.
     *  The 21364 MAF allows 16; sustained streaming MLP is lower. */
    int mlp = 8;

    bool useL1 = true;
    mem::CacheParams l1 = mem::CacheParams::l1d();
};

/** Per-core run statistics. */
struct CoreStats
{
    std::uint64_t opsIssued = 0;
    std::uint64_t opsDone = 0;
    std::uint64_t l1Hits = 0;
    Tick startTick = 0;
    Tick endTick = 0;

    double
    elapsedNs() const
    {
        return ticksToNs(endTick - startTick);
    }

    /** Demand bandwidth assuming 64 B per op below L1, in GB/s. */
    double
    missBandwidthGBs(std::uint64_t misses) const
    {
        double ns = elapsedNs();
        return ns > 0 ? static_cast<double>(misses) * 64.0 / ns : 0.0;
    }
};

/**
 * One CPU. Attach a TrafficSource with run(); the completion
 * callback fires when every operation has issued and completed.
 */
class TimingCore
{
  public:
    TimingCore(SimContext &ctx, coher::CoherentNode &node,
               CoreParams params);

    /** Begin executing @p source; @p on_done fires at completion. */
    void run(TrafficSource &source, std::function<void()> on_done);

    /**
     * Re-attach @p source and @p on_done to a core whose execution
     * state was just restored from a snapshot, WITHOUT resetting or
     * pumping: a quiescent unfinished core always has a pending
     * event or a parked continuation driving it, which the restore
     * re-enters separately.
     */
    void resume(TrafficSource &source, std::function<void()> on_done);

    /** True when the current stream has fully completed. */
    bool done() const { return finished; }

    const CoreStats &stats() const { return st; }

    /** Outstanding below-L1 accesses right now. */
    int outstanding() const { return inFlight; }

    /** @name Checkpoint/restore: issue-stage state and the L1.
     *
     * The attached TrafficSource is serialized by its owner (the
     * bench keeps the sources; Machine::save snapshots them in the
     * workload section). rehydrateEvent rebuilds think-timer, L1-hit
     * and memory-completion callbacks (Core* descriptor kinds, op
     * operands encoded in the desc).
     */
    /// @{
    void saveCkpt(ckpt::Serializer &s) const;
    void restoreCkpt(ckpt::Deserializer &d);
    std::function<void()> rehydrateEvent(const ckpt::EventDesc &d);
    /// @}

  private:
    void pump();
    void issue(const MemOp &op);
    void thinkDone();
    void memDone(const MemOp &op);
    void complete(const MemOp &op);
    void maybeFinish();

    SimContext &ctx;
    coher::CoherentNode &node;
    CoreParams prm;
    std::unique_ptr<mem::Cache> l1;

    TrafficSource *src = nullptr;
    std::function<void()> onDone;

    std::optional<MemOp> staged; ///< op whose think time is elapsing
    bool thinking = false;
    bool blocked = false; ///< dependent op in flight
    bool exhausted = false;
    bool finished = true;
    int inFlight = 0;

    CoreStats st;
};

} // namespace gs::cpu

#endif // GS_CPU_CORE_HH

#include "cpu/core.hh"

#include "sim/logging.hh"

namespace gs::cpu
{

TimingCore::TimingCore(SimContext &context, coher::CoherentNode &n,
                       CoreParams params)
    : ctx(context), node(n), prm(params)
{
    if (prm.useL1) {
        l1 = std::make_unique<mem::Cache>(prm.l1);
        node.setBackInvalidate(
            [this](mem::Addr line) { l1->invalidate(line); });
    }
}

void
TimingCore::run(TrafficSource &source, std::function<void()> on_done)
{
    gs_assert(finished, "core is already running a stream");
    src = &source;
    onDone = std::move(on_done);
    staged.reset();
    thinking = false;
    blocked = false;
    exhausted = false;
    finished = false;
    inFlight = 0;
    st = CoreStats{};
    st.startTick = ctx.now();
    pump();
}

void
TimingCore::pump()
{
    if (finished)
        return;
    while (!thinking && !blocked && inFlight < prm.mlp) {
        if (!staged) {
            auto op = src->next();
            if (!op) {
                exhausted = true;
                maybeFinish();
                return;
            }
            staged = *op;
            if (staged->thinkNs > 0) {
                // Compute serializes in front of the issue stage.
                thinking = true;
                ctx.queue().schedule(nsToTicks(staged->thinkNs),
                                     [this] {
                    thinking = false;
                    MemOp op2 = *staged;
                    staged.reset();
                    issue(op2);
                    pump();
                });
                return;
            }
        }
        MemOp op = *staged;
        staged.reset();
        issue(op);
    }
}

void
TimingCore::issue(const MemOp &op)
{
    st.opsIssued += 1;
    inFlight += 1;
    if (op.dependent)
        blocked = true;

    // Read hits in the L1 complete without touching the L2. Writes
    // always visit the coherent L2 so upgrades are never skipped.
    if (l1 && !op.write && l1->lookup(op.addr, false).hit) {
        st.l1Hits += 1;
        ctx.queue().schedule(nsToTicks(prm.l1.loadToUseNs),
                             [this, op] { complete(op); });
        return;
    }

    node.memAccess(op.addr, op.write, [this, op] {
        if (l1 && !l1->contains(op.addr)) {
            mem::Victim victim =
                l1->fill(op.addr, mem::LineState::Shared);
            (void)victim; // L1 is write-through here; drop silently
        }
        complete(op);
    });
}

void
TimingCore::complete(const MemOp &op)
{
    st.opsDone += 1;
    inFlight -= 1;
    if (op.dependent)
        blocked = false;
    maybeFinish();
    pump();
}

void
TimingCore::maybeFinish()
{
    if (finished || !exhausted || inFlight != 0 || staged || thinking)
        return;
    finished = true;
    st.endTick = ctx.now();
    if (onDone) {
        auto done = std::move(onDone);
        onDone = nullptr;
        done();
    }
}

} // namespace gs::cpu

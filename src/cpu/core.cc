#include "cpu/core.hh"

#include <cstring>

#include "sim/logging.hh"

namespace gs::cpu
{

namespace
{

/** Encode a core event (the full MemOp rides in the operands). */
ckpt::EventDesc
opDesc(ckpt::EvKind kind, NodeId owner, const MemOp &op)
{
    ckpt::EventDesc d;
    d.kind = kind;
    d.owner = static_cast<std::uint16_t>(owner);
    d.a = (op.write ? 1 : 0) | (op.dependent ? 2 : 0);
    d.u = op.addr;
    std::memcpy(&d.v, &op.thinkNs, sizeof(d.v));
    return d;
}

MemOp
opOf(const ckpt::EventDesc &d)
{
    MemOp op;
    op.addr = d.u;
    op.write = (d.a & 1) != 0;
    op.dependent = (d.a & 2) != 0;
    std::memcpy(&op.thinkNs, &d.v, sizeof(op.thinkNs));
    return op;
}

} // namespace

TimingCore::TimingCore(SimContext &context, coher::CoherentNode &n,
                       CoreParams params)
    : ctx(context), node(n), prm(params)
{
    if (prm.useL1) {
        l1 = std::make_unique<mem::Cache>(prm.l1);
        node.setBackInvalidate(
            [this](mem::Addr line) { l1->invalidate(line); });
    }
}

void
TimingCore::run(TrafficSource &source, std::function<void()> on_done)
{
    gs_assert(finished, "core is already running a stream");
    src = &source;
    onDone = std::move(on_done);
    staged.reset();
    thinking = false;
    blocked = false;
    exhausted = false;
    finished = false;
    inFlight = 0;
    st = CoreStats{};
    st.startTick = ctx.now();
    pump();
}

void
TimingCore::pump()
{
    if (finished)
        return;
    while (!thinking && !blocked && inFlight < prm.mlp) {
        if (!staged) {
            auto op = src->next();
            if (!op) {
                exhausted = true;
                maybeFinish();
                return;
            }
            staged = *op;
            if (staged->thinkNs > 0) {
                // Compute serializes in front of the issue stage.
                thinking = true;
                ctx.queue().schedule(
                    nsToTicks(staged->thinkNs),
                    opDesc(ckpt::CoreThink, node.id(), *staged),
                    [this] { thinkDone(); });
                return;
            }
        }
        MemOp op = *staged;
        staged.reset();
        issue(op);
    }
}

void
TimingCore::thinkDone()
{
    thinking = false;
    MemOp op = *staged;
    staged.reset();
    issue(op);
    pump();
}

void
TimingCore::issue(const MemOp &op)
{
    st.opsIssued += 1;
    inFlight += 1;
    if (op.dependent)
        blocked = true;

    // Read hits in the L1 complete without touching the L2. Writes
    // always visit the coherent L2 so upgrades are never skipped.
    if (l1 && !op.write && l1->lookup(op.addr, false).hit) {
        st.l1Hits += 1;
        ctx.queue().schedule(nsToTicks(prm.l1.loadToUseNs),
                             opDesc(ckpt::CoreL1Hit, node.id(), op),
                             [this, op] { complete(op); });
        return;
    }

    node.memAccess(op.addr, op.write,
                   ckpt::Cont(opDesc(ckpt::CoreMemDone, node.id(), op),
                              [this, op] { memDone(op); }));
}

void
TimingCore::memDone(const MemOp &op)
{
    if (l1 && !l1->contains(op.addr)) {
        mem::Victim victim = l1->fill(op.addr, mem::LineState::Shared);
        (void)victim; // L1 is write-through here; drop silently
    }
    complete(op);
}

void
TimingCore::complete(const MemOp &op)
{
    st.opsDone += 1;
    inFlight -= 1;
    if (op.dependent)
        blocked = false;
    maybeFinish();
    pump();
}

void
TimingCore::maybeFinish()
{
    if (finished || !exhausted || inFlight != 0 || staged || thinking)
        return;
    finished = true;
    st.endTick = ctx.now();
    if (onDone) {
        auto done = std::move(onDone);
        onDone = nullptr;
        done();
    }
}

void
TimingCore::resume(TrafficSource &source, std::function<void()> on_done)
{
    src = &source;
    onDone = finished ? nullptr : std::move(on_done);
}

void
TimingCore::saveCkpt(ckpt::Serializer &s) const
{
    s.put64(st.opsIssued);
    s.put64(st.opsDone);
    s.put64(st.l1Hits);
    s.put64(st.startTick);
    s.put64(st.endTick);
    s.putBool(staged.has_value());
    if (staged) {
        s.put64(staged->addr);
        s.putBool(staged->write);
        s.putF64(staged->thinkNs);
        s.putBool(staged->dependent);
    }
    s.putBool(thinking);
    s.putBool(blocked);
    s.putBool(exhausted);
    s.putBool(finished);
    s.putI32(inFlight);
    s.putBool(l1 != nullptr);
    if (l1)
        l1->saveCkpt(s);
}

void
TimingCore::restoreCkpt(ckpt::Deserializer &d)
{
    st.opsIssued = d.get64();
    st.opsDone = d.get64();
    st.l1Hits = d.get64();
    st.startTick = d.get64();
    st.endTick = d.get64();
    if (d.getBool()) {
        MemOp op;
        op.addr = d.get64();
        op.write = d.getBool();
        op.thinkNs = d.getF64();
        op.dependent = d.getBool();
        staged = op;
    } else {
        staged.reset();
    }
    thinking = d.getBool();
    blocked = d.getBool();
    exhausted = d.getBool();
    finished = d.getBool();
    inFlight = d.getI32();
    if (d.getBool() != (l1 != nullptr) && d.ok()) {
        d.fail("snapshot core L1 presence differs from this machine");
        return;
    }
    if (l1)
        l1->restoreCkpt(d);
}

std::function<void()>
TimingCore::rehydrateEvent(const ckpt::EventDesc &d)
{
    switch (d.kind) {
      case ckpt::CoreThink:
        return [this] { thinkDone(); };
      case ckpt::CoreL1Hit: {
        const MemOp op = opOf(d);
        return [this, op] { complete(op); };
      }
      case ckpt::CoreMemDone: {
        const MemOp op = opOf(d);
        return [this, op] { memDone(op); };
      }
      default:
        return {};
    }
}

} // namespace gs::cpu

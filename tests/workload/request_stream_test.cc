/**
 * @file
 * Request-stream statistics for the workload generators the paper
 * characterizes in Section 5: GUPS (random updates spanning the
 * whole machine), NAS SP (streaming sweeps plus small neighbour
 * exchanges) and the commercial profiles (OLTP vs DSS memory
 * character). Each test drains a generator and asserts the address
 * distribution, read/write mix and footprint the paper describes.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/address.hh"
#include "workload/commercial.hh"
#include "workload/gups.hh"
#include "workload/nas_sp.hh"

namespace
{

using namespace gs;
using namespace gs::wl;

// ---------------------------------------------------------------
// GUPS: "each thread updates an item randomly picked from the large
// table ... the table is so large that it spans the entire memory".
// ---------------------------------------------------------------

TEST(GupsStream, AllUpdatesAreWrites)
{
    Gups gups(4, 1 << 20, 2000, 11);
    std::uint64_t ops = 0;
    while (auto op = gups.next()) {
        EXPECT_TRUE(op->write);
        EXPECT_FALSE(op->dependent);
        ops += 1;
    }
    EXPECT_EQ(ops, 2000u);
    EXPECT_EQ(gups.updatesIssued(), 2000u);
}

TEST(GupsStream, AddressesAreLineAlignedAndInTable)
{
    const std::uint64_t bytesPerNode = 1 << 20;
    Gups gups(8, bytesPerNode, 4000, 42);
    while (auto op = gups.next()) {
        EXPECT_EQ(op->addr % mem::lineBytes, 0u);
        NodeId node = mem::regionNode(op->addr);
        EXPECT_LT(node, 8);
        EXPECT_LT(op->addr - mem::regionBase(node), bytesPerNode);
    }
}

TEST(GupsStream, NodeDistributionIsUniform)
{
    // The table spans every node equally; a 16-node chi-square
    // statistic over 16000 updates should stay far under the
    // p=0.001 cut (~37.7 for 15 dof).
    const int nodes = 16;
    const std::uint64_t updates = 16000;
    Gups gups(nodes, 1 << 20, updates, 7);
    std::map<NodeId, double> counts;
    while (auto op = gups.next())
        counts[mem::regionNode(op->addr)] += 1;
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(nodes));
    const double expected =
        static_cast<double>(updates) / nodes;
    double chi2 = 0;
    for (auto [node, n] : counts)
        chi2 += (n - expected) * (n - expected) / expected;
    EXPECT_LT(chi2, 37.7);
}

TEST(GupsStream, FootprintGrowsTowardTable)
{
    // Uniform picks over a 512-line table: after 4096 updates nearly
    // every line should have been touched at least once.
    const std::uint64_t bytesPerNode = 256 * mem::lineBytes;
    Gups gups(2, bytesPerNode, 4096, 3);
    std::set<mem::Addr> lines;
    while (auto op = gups.next())
        lines.insert(op->addr);
    EXPECT_GT(lines.size(), 480u); // of 512 distinct table lines
}

// ---------------------------------------------------------------
// NAS SP: memory-bandwidth-heavy local sweeps with real FP work,
// small boundary exchanges with ring neighbours.
// ---------------------------------------------------------------

TEST(NasSpStream, SweepMixIsTwoReadsOneWrite)
{
    NasSpParams p;
    p.iterations = 3;
    p.sweepLines = 120;
    p.exchangeLines = 0;
    NasSP sp(0, 1, p);
    std::uint64_t reads = 0, writes = 0;
    while (auto op = sp.next())
        (op->write ? writes : reads) += 1;
    EXPECT_EQ(reads, 2 * writes);
    EXPECT_EQ(writes, 3u * 120u);
}

TEST(NasSpStream, ThinkTimeOncePerGridLine)
{
    // The FP work the paper prices at ~95 ns/line rides on the first
    // op of each line; exchanges carry none.
    NasSpParams p;
    p.iterations = 1;
    p.sweepLines = 60;
    p.exchangeLines = 8;
    NasSP sp(2, 4, p);
    std::uint64_t thinkOps = 0, sweepOps = 0, exchangeOps = 0;
    while (auto op = sp.next()) {
        bool local = mem::regionNode(op->addr) == 2;
        (local ? sweepOps : exchangeOps) += 1;
        if (op->thinkNs > 0) {
            EXPECT_TRUE(local);
            EXPECT_DOUBLE_EQ(op->thinkNs, p.thinkNsPerLine);
            thinkOps += 1;
        }
    }
    EXPECT_EQ(thinkOps, p.sweepLines);
    EXPECT_EQ(sweepOps, 3 * p.sweepLines);
    EXPECT_EQ(exchangeOps, 2 * p.exchangeLines);
}

TEST(NasSpStream, FootprintStaysInsideSlab)
{
    NasSpParams p;
    p.iterations = 2;
    p.sweepLines = 200;
    p.exchangeLines = 16;
    p.slabBytes = 64 * mem::lineBytes; // tiny slab -> wraps
    NasSP sp(1, 4, p);
    while (auto op = sp.next()) {
        NodeId node = mem::regionNode(op->addr);
        EXPECT_LT(op->addr - mem::regionBase(node), p.slabBytes);
    }
}

TEST(NasSpStream, ExchangesMissAcrossIterations)
{
    // Boundary reads are offset per iteration so each exchange
    // misses: the same peer lines must not repeat while the slab
    // hasn't wrapped.
    NasSpParams p;
    p.iterations = 4;
    p.sweepLines = 10;
    p.exchangeLines = 8;
    NasSP sp(0, 8, p);
    std::map<NodeId, std::multiset<mem::Addr>> byPeer;
    while (auto op = sp.next()) {
        NodeId node = mem::regionNode(op->addr);
        if (node != 0)
            byPeer[node].insert(op->addr);
    }
    ASSERT_EQ(byPeer.size(), 2u); // ring neighbours 1 and 7
    for (const auto &[peer, addrs] : byPeer) {
        std::set<mem::Addr> unique(addrs.begin(), addrs.end());
        EXPECT_EQ(unique.size(), addrs.size())
            << "peer " << peer << " lines were re-read";
    }
}

TEST(NasSpStream, RemoteTrafficFractionIsSmall)
{
    // The paper measures low IP-link utilization: exchange ops are a
    // small fixed fraction of the stream (2*256 vs 3*8192 per
    // iteration with default parameters ~ 2%).
    NasSP sp(3, 8);
    std::uint64_t local = 0, remote = 0;
    while (auto op = sp.next())
        (mem::regionNode(op->addr) == 3 ? local : remote) += 1;
    double frac = static_cast<double>(remote) /
                  static_cast<double>(local + remote);
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 0.05);
}

// ---------------------------------------------------------------
// Commercial profiles: the paper's OLTP (SAP SD) vs DSS memory
// character, beyond the advantage ratios commercial_test covers.
// ---------------------------------------------------------------

TEST(CommercialProfile, OltpIsLatencyBoundWithMemoryResidentSet)
{
    // OLTP: a cache-resident hot set plus a footprint too big even
    // for the GS320's 16 MB off-chip cache, with little memory
    // parallelism — the latency-bound character behind the paper's
    // modest 1.3x ratio.
    const auto &p = sapSd();
    bool hasCached = false, hasUncached = false;
    for (const auto &c : p.workingSet) {
        hasCached = hasCached || c.sizeMB <= 1.75;
        hasUncached = hasUncached || c.sizeMB > 16.0;
    }
    EXPECT_TRUE(hasCached);
    EXPECT_TRUE(hasUncached);
    EXPECT_LT(p.mlp, 2.5); // latency-bound, little overlap
    EXPECT_LT(p.mlp, decisionSupport().mlp);
}

TEST(CommercialProfile, DssStreamsPastEveryCache)
{
    const auto &p = decisionSupport();
    bool hasUncachedComponent = false;
    for (const auto &c : p.workingSet)
        if (c.sizeMB > 16.0)
            hasUncachedComponent = true;
    EXPECT_TRUE(hasUncachedComponent);
    EXPECT_GT(p.mlp, sapSd().mlp); // scans overlap misses
}

} // namespace

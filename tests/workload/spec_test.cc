/** @file SPEC profile/rate model tests against the paper's stated
 *  per-benchmark behaviour. */

#include <gtest/gtest.h>

#include "workload/spec_profiles.hh"
#include "workload/spec_rate.hh"

namespace
{

using namespace gs;
using namespace gs::cpu;
using namespace gs::wl;

TEST(SpecProfiles, SuitesComplete)
{
    EXPECT_EQ(specFp2000().size(), 14u);
    EXPECT_EQ(specInt2000().size(), 12u);
    for (const auto &p : specFp2000())
        EXPECT_TRUE(p.fp);
    for (const auto &p : specInt2000())
        EXPECT_FALSE(p.fp);
}

TEST(SpecProfiles, LookupByName)
{
    EXPECT_EQ(specProfile("swim").name, "swim");
    EXPECT_EQ(specProfile("mcf").name, "mcf");
}

TEST(SpecProfiles, SwimLeadsMemoryUtilization)
{
    // Paper Figure 10: "Swim is the leader with 53% utilization".
    auto m = MachineTiming::gs1280();
    double swim =
        evaluateIpc(specProfile("swim"), m).memUtilization;
    EXPECT_GT(swim, 0.40);
    EXPECT_LT(swim, 0.65);
    for (const auto &p : specFp2000()) {
        if (p.name == "swim")
            continue;
        EXPECT_LE(evaluateIpc(p, m).memUtilization, swim)
            << p.name << " exceeds swim's utilization";
    }
}

TEST(SpecProfiles, UtilizationTiersMatchPaper)
{
    auto m = MachineTiming::gs1280();
    auto util = [&](const char *name) {
        return evaluateIpc(specProfile(name), m).memUtilization;
    };
    // 20-30%: applu, lucas, equake, mgrid.
    for (const char *name : {"applu", "lucas", "equake", "mgrid"}) {
        EXPECT_GT(util(name), 0.15) << name;
        EXPECT_LT(util(name), 0.40) << name;
    }
    // 10-20%: fma3d, art, wupwise, galgel.
    for (const char *name : {"fma3d", "art", "wupwise", "galgel"}) {
        EXPECT_GT(util(name), 0.07) << name;
        EXPECT_LT(util(name), 0.25) << name;
    }
    // facerec ~8%.
    EXPECT_NEAR(util("facerec"), 0.08, 0.05);
    // mesa/sixtrack near zero.
    EXPECT_LT(util("mesa"), 0.03);
    EXPECT_LT(util("sixtrack"), 0.03);
}

TEST(SpecProfiles, SwimAdvantageMatchesPaper)
{
    // "swim shows 2.3 times advantage on GS1280 vs ES45 and 4 times
    // advantage vs GS320."
    const auto &swim = specProfile("swim");
    double gs1280 = evaluateIpc(swim, MachineTiming::gs1280()).ipc;
    double es45 = evaluateIpc(swim, MachineTiming::es45()).ipc;
    double gs320 = evaluateIpc(swim, MachineTiming::gs320()).ipc;
    EXPECT_NEAR(gs1280 / es45, 2.3, 0.7);
    EXPECT_NEAR(gs1280 / gs320, 4.0, 1.2);
}

TEST(SpecProfiles, FacerecAndAmmpLoseOnGs1280)
{
    // "there are cases where GS320 and ES45 outperform GS1280 (e.g.
    // facerec and ammp)" — their sets fit 16 MB but not 1.75 MB.
    for (const char *name : {"facerec", "ammp"}) {
        const auto &p = specProfile(name);
        double gs1280 = evaluateIpc(p, MachineTiming::gs1280()).ipc;
        double gs320 = evaluateIpc(p, MachineTiming::gs320()).ipc;
        double es45 = evaluateIpc(p, MachineTiming::es45()).ipc;
        EXPECT_GT(gs320, gs1280) << name;
        EXPECT_GT(es45, gs1280) << name;
    }
}

TEST(SpecProfiles, IntegerSuiteIsCacheBound)
{
    // "all integer benchmarks fit well in the MB-size caches" (bar
    // mcf): comparable IPC across machines.
    for (const auto &p : specInt2000()) {
        if (p.name == "mcf")
            continue;
        double gs1280 = evaluateIpc(p, MachineTiming::gs1280()).ipc;
        double gs320 = evaluateIpc(p, MachineTiming::gs320()).ipc;
        EXPECT_LT(gs1280 / gs320, 1.6) << p.name;
        EXPECT_GT(gs1280 / gs320, 0.7) << p.name;
    }
}

TEST(SpecProfiles, McfGainsFromLowLatency)
{
    const auto &mcf = specProfile("mcf");
    double gs1280 = evaluateIpc(mcf, MachineTiming::gs1280()).ipc;
    double gs320 = evaluateIpc(mcf, MachineTiming::gs320()).ipc;
    EXPECT_GT(gs1280 / gs320, 1.5);
}

TEST(SpecRate, Gs1280ScalesLinearly)
{
    double r1 = specRate(specFp2000(), RateSystem::GS1280, 1);
    double r16 = specRate(specFp2000(), RateSystem::GS1280, 16);
    EXPECT_NEAR(r16 / r1, 16.0, 0.01);
    EXPECT_NEAR(r1, 19.0, 0.5); // normalization anchor
}

TEST(SpecRate, OrderingMatchesFigure1)
{
    for (int cpus : {8, 16, 32}) {
        double gs1280 = specRate(specFp2000(), RateSystem::GS1280,
                                 cpus);
        double sc45 = specRate(specFp2000(), RateSystem::SC45, cpus);
        double gs320 = specRate(specFp2000(), RateSystem::GS320,
                                cpus);
        EXPECT_GT(gs1280, sc45) << cpus;
        EXPECT_GT(sc45, gs320) << cpus;
    }
}

TEST(SpecRate, Gs1280AdvantageNearFigure28)
{
    // Figure 28: SPECfp_rate2000 (16P) ratio vs GS320 ~ 2.0-2.6.
    double ratio = specRate(specFp2000(), RateSystem::GS1280, 16) /
                   specRate(specFp2000(), RateSystem::GS320, 16);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 3.2);
}

TEST(SpecRate, StripingDegradesThroughput)
{
    // Figure 25: 10-30% degradation across SPECfp_rate.
    double worst = 0, best = 1e9;
    for (const auto &p : specFp2000()) {
        double d = stripingDegradationPct(p, 16);
        EXPECT_GE(d, -1.0) << p.name; // striping never helps rate
        worst = std::max(worst, d);
        best = std::min(best, d);
    }
    EXPECT_GT(worst, 8.0);  // someone degrades >= ~10%
    EXPECT_LT(worst, 45.0);
}

TEST(SpecRate, IntRateNearParity)
{
    // Figure 28: SPECint_rate ~1.1x vs GS320 — the small-cache
    // benchmarks don't care about the memory system.
    double ratio = specRate(specInt2000(), RateSystem::GS1280, 16) /
                   specRate(specInt2000(), RateSystem::GS320, 16);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.7);
}

} // namespace

/** @file Workload generator stream tests. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/fluent.hh"
#include "workload/gups.hh"
#include "workload/load_test.hh"
#include "workload/nas_sp.hh"
#include "workload/pointer_chase.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::wl;

TEST(PointerChase, EveryLoadIsDependent)
{
    PointerChase chase(0, 4096, 64, 10);
    int count = 0;
    while (auto op = chase.next()) {
        EXPECT_TRUE(op->dependent);
        EXPECT_FALSE(op->write);
        count += 1;
    }
    EXPECT_EQ(count, 10);
    EXPECT_EQ(chase.issued(), 10u);
}

TEST(PointerChase, CoversDatasetAndWraps)
{
    const std::uint64_t dataset = 8 * 64;
    PointerChase chase(1000 * 64, dataset, 64, 16);
    std::set<mem::Addr> seen;
    while (auto op = chase.next())
        seen.insert(op->addr);
    EXPECT_EQ(seen.size(), 8u); // wrapped exactly twice
    for (mem::Addr a : seen) {
        EXPECT_GE(a, 1000u * 64u);
        EXPECT_LT(a, 1000u * 64u + dataset);
    }
}

TEST(PointerChase, StrideRespected)
{
    PointerChase chase(0, 1 << 20, 4096, 5);
    mem::Addr prev = 0;
    bool first = true;
    while (auto op = chase.next()) {
        if (!first)
            EXPECT_EQ(op->addr - prev, 4096u);
        prev = op->addr;
        first = false;
    }
}

TEST(StreamTriad, TrafficShapeIsTwoReadsOneWrite)
{
    StreamTriad triad(0, 64 * 64, 1, 0.0);
    int reads = 0, writes = 0;
    while (auto op = triad.next()) {
        (op->write ? writes : reads) += 1;
    }
    EXPECT_EQ(reads, 2 * writes);
    EXPECT_EQ(writes, 64);
    EXPECT_EQ(triad.linesProcessed(), 64u);
}

TEST(StreamTriad, ArraysAreDisjoint)
{
    const std::uint64_t bytes = 32 * 64;
    StreamTriad triad(0, bytes, 1, 0.0);
    std::set<mem::Addr> readAddrs, writeAddrs;
    while (auto op = triad.next())
        (op->write ? writeAddrs : readAddrs).insert(op->addr);
    for (mem::Addr w : writeAddrs)
        EXPECT_EQ(readAddrs.count(w), 0u);
    // Writes land in [base, base+bytes), reads beyond.
    for (mem::Addr w : writeAddrs)
        EXPECT_LT(w, bytes);
    for (mem::Addr r : readAddrs)
        EXPECT_GE(r, bytes);
}

TEST(StreamTriad, ThinkTimeOnFirstOpOfLine)
{
    StreamTriad triad(0, 4 * 64, 1, 2.5);
    int thinkOps = 0, total = 0;
    while (auto op = triad.next()) {
        thinkOps += op->thinkNs > 0;
        total += 1;
    }
    EXPECT_EQ(thinkOps, total / 3);
}

TEST(Gups, UniformOverNodes)
{
    Gups gups(8, 1 << 20, 8000, 123);
    std::map<NodeId, int> perNode;
    while (auto op = gups.next()) {
        EXPECT_TRUE(op->write);
        perNode[mem::regionNode(op->addr)] += 1;
    }
    ASSERT_EQ(perNode.size(), 8u);
    for (auto [node, count] : perNode)
        EXPECT_NEAR(count, 1000, 250);
}

TEST(Gups, Deterministic)
{
    Gups a(4, 1 << 20, 100, 9);
    Gups b(4, 1 << 20, 100, 9);
    while (true) {
        auto oa = a.next();
        auto ob = b.next();
        ASSERT_EQ(oa.has_value(), ob.has_value());
        if (!oa)
            break;
        EXPECT_EQ(oa->addr, ob->addr);
    }
}

TEST(RandomRemoteReads, NeverPicksSelf)
{
    RandomRemoteReads reads(3, 8, 1 << 20, 5000, 77);
    while (auto op = reads.next()) {
        EXPECT_NE(mem::regionNode(op->addr), 3);
        EXPECT_FALSE(op->write);
    }
}

TEST(RandomRemoteReads, AllOthersChosen)
{
    RandomRemoteReads reads(0, 4, 1 << 20, 3000, 5);
    std::set<NodeId> seen;
    while (auto op = reads.next())
        seen.insert(mem::regionNode(op->addr));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(HotSpotReads, AllOnVictim)
{
    HotSpotReads reads(2, 1 << 20, 500, 3);
    while (auto op = reads.next())
        EXPECT_EQ(mem::regionNode(op->addr), 2);
}

TEST(NasSP, SweepDominatesExchange)
{
    NasSpParams p;
    p.iterations = 2;
    p.sweepLines = 100;
    p.exchangeLines = 10;
    NasSP sp(0, 4, p);
    int local = 0, remote = 0;
    while (auto op = sp.next()) {
        if (mem::regionNode(op->addr) == 0)
            local += 1;
        else
            remote += 1;
    }
    EXPECT_EQ(remote, 2 * 2 * 10); // two neighbours per iteration
    EXPECT_EQ(local, 2 * 3 * 100);
}

TEST(NasSP, ExchangeTargetsAreRingNeighbours)
{
    NasSpParams p;
    p.iterations = 1;
    p.sweepLines = 10;
    p.exchangeLines = 4;
    NasSP sp(0, 8, p);
    std::set<NodeId> peers;
    while (auto op = sp.next()) {
        NodeId n = mem::regionNode(op->addr);
        if (n != 0)
            peers.insert(n);
    }
    EXPECT_EQ(peers, (std::set<NodeId>{1, 7}));
}

TEST(NasSP, SingleRankSkipsExchange)
{
    NasSpParams p;
    p.iterations = 1;
    p.sweepLines = 10;
    NasSP sp(0, 1, p);
    while (auto op = sp.next())
        EXPECT_EQ(mem::regionNode(op->addr), 0);
}

TEST(Fluent, MostAccessesReuseTheBlock)
{
    FluentParams p;
    p.iterations = 1;
    p.blockBytes = 16 * 64;
    p.blocksPerIter = 2;
    p.reusePasses = 4;
    p.exchangeLines = 2;
    FluentCfd cfd(0, 4, p);
    std::map<mem::Addr, int> touches;
    int ops = 0;
    while (auto op = cfd.next()) {
        if (mem::regionNode(op->addr) == 0)
            touches[mem::lineOf(op->addr)] += 1;
        ops += 1;
    }
    // Every local line touched reusePasses times.
    for (auto [line, count] : touches)
        EXPECT_EQ(count, 4);
    EXPECT_EQ(ops, 2 * 4 * 16 + 2);
}

TEST(Fluent, CarriesComputePerAccess)
{
    FluentCfd cfd(0, 1);
    auto op = cfd.next();
    ASSERT_TRUE(op);
    EXPECT_GT(op->thinkNs, 0.0);
}

} // namespace

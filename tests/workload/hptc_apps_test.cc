/** @file HPTC ISV profile tests against Figure 28's rows. */

#include <gtest/gtest.h>

#include "workload/hptc_apps.hh"

namespace
{

using namespace gs;
using namespace gs::wl;

TEST(HptcApps, SevenRows)
{
    EXPECT_EQ(hptcApplications().size(), 7u);
}

TEST(HptcApps, EveryRowNearThePaperRatio)
{
    // The chart reads 1.2-2.1x; each profile must land within 25%
    // of its row.
    for (const auto &app : hptcApplications()) {
        double modelled = hptcAdvantage(app);
        EXPECT_NEAR(modelled, app.paperRatio, 0.25 * app.paperRatio)
            << app.profile.name;
    }
}

TEST(HptcApps, OrderingFollowsMemoryCharacter)
{
    // Blocked solvers (Nastran) gain least; bandwidth-leaning codes
    // (MM5) gain most — the paper's spread.
    const auto &apps = hptcApplications();
    double nastran = hptcAdvantage(apps[0]);
    double mm5 = 0;
    for (const auto &app : apps)
        if (app.profile.name == "MM5 (weather)")
            mm5 = hptcAdvantage(app);
    EXPECT_GT(mm5, nastran);
}

TEST(HptcApps, AllRatiosInTheChartsBand)
{
    for (const auto &app : hptcApplications()) {
        double r = hptcAdvantage(app);
        EXPECT_GT(r, 1.0) << app.profile.name;
        EXPECT_LT(r, 2.6) << app.profile.name;
    }
}

} // namespace

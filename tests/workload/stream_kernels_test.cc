/** @file Traffic-shape tests for all four STREAM kernels. */

#include <gtest/gtest.h>

#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::wl;

struct Shape
{
    StreamOp op;
    int reads;
    int writes;
};

class StreamShapes : public ::testing::TestWithParam<Shape>
{
};

TEST_P(StreamShapes, ReadsWritesPerLine)
{
    auto [op, reads, writes] = GetParam();
    StreamKernel k(op, 0, 16 * 64, 1, 0.0);
    int r = 0, w = 0;
    while (auto mem_op = k.next())
        (mem_op->write ? w : r) += 1;
    EXPECT_EQ(r, reads * 16);
    EXPECT_EQ(w, writes * 16);
    EXPECT_EQ(k.linesProcessed(), 16u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, StreamShapes,
    ::testing::Values(Shape{StreamOp::Copy, 1, 1},
                      Shape{StreamOp::Scale, 1, 1},
                      Shape{StreamOp::Add, 2, 1},
                      Shape{StreamOp::Triad, 2, 1}));

TEST(StreamKernels, BytesPerLineMatchesStreamAccounting)
{
    EXPECT_DOUBLE_EQ(streamBytesPerLine(StreamOp::Copy), 128.0);
    EXPECT_DOUBLE_EQ(streamBytesPerLine(StreamOp::Scale), 128.0);
    EXPECT_DOUBLE_EQ(streamBytesPerLine(StreamOp::Add), 192.0);
    EXPECT_DOUBLE_EQ(streamBytesPerLine(StreamOp::Triad), 192.0);
}

TEST(StreamKernels, IterationsRepeatTheSweep)
{
    StreamKernel k(StreamOp::Copy, 0, 8 * 64, 3, 0.0);
    int ops = 0;
    while (k.next())
        ops += 1;
    EXPECT_EQ(ops, 2 * 8 * 3);
    EXPECT_EQ(k.linesProcessed(), 24u);
}

TEST(StreamKernels, WritesTargetTheFirstArray)
{
    const std::uint64_t bytes = 8 * 64;
    StreamKernel k(StreamOp::Add, 1 << 20, bytes, 1, 0.0);
    while (auto op = k.next()) {
        if (op->write) {
            EXPECT_GE(op->addr, 1u << 20);
            EXPECT_LT(op->addr, (1u << 20) + bytes);
        } else {
            EXPECT_GE(op->addr, (1u << 20) + bytes);
        }
    }
}

TEST(StreamKernels, TriadAliasStillWorks)
{
    StreamTriad t(0, 4 * 64);
    EXPECT_EQ(t.op(), StreamOp::Triad);
    EXPECT_DOUBLE_EQ(StreamTriad::bytesPerLine, 192.0);
}

} // namespace

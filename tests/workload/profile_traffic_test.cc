/** @file Profile-driven traffic tests: stream shape + simulated IPC
 *  cross-check against the analytic CPI model. */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "system/machine.hh"
#include "workload/nas_sp.hh"
#include "workload/nas_ft.hh"
#include "workload/profile_traffic.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace gs;
using namespace gs::wl;

TEST(ProfileTraffic, EmitsTheConfiguredDensity)
{
    cpu::BenchProfile p;
    p.cpiBase = 1.0;
    p.workingSet = {{1.0, 4.0}, {64.0, 2.0}};
    ProfileTraffic t(p, 0, 1.0, 10);

    int ops = 0, thinkOps = 0, writes = 0;
    while (auto op = t.next()) {
        ops += 1;
        thinkOps += op->thinkNs > 0;
        writes += op->write;
    }
    EXPECT_EQ(ops, 10 * (4 + 2));
    EXPECT_EQ(thinkOps, 10); // one compute bubble per block
    EXPECT_GT(writes, 0);
    EXPECT_DOUBLE_EQ(t.instructionsIssued(), 10000.0);
}

TEST(ProfileTraffic, ComponentsOccupyDisjointRegions)
{
    cpu::BenchProfile p;
    p.workingSet = {{1.0, 2.0}, {2.0, 2.0}};
    ProfileTraffic t(p, 1 << 20, 1.15, 5000);
    mem::Addr smallEnd = (1 << 20) + (1ULL << 20);
    bool sawSmall = false, sawBig = false;
    while (auto op = t.next()) {
        if (op->addr < smallEnd)
            sawSmall = true;
        else
            sawBig = true;
        EXPECT_GE(op->addr, 1u << 20);
    }
    EXPECT_TRUE(sawSmall);
    EXPECT_TRUE(sawBig);
}

TEST(ProfileTraffic, SimulatedSwimIpcTracksAnalyticModel)
{
    // Replay the swim profile through the full GS1280 machine and
    // compare against the closed-form CPI model it was derived from.
    const auto &swim = specProfile("swim");
    auto m = sys::Machine::buildGS1280(2);
    ProfileTraffic traffic(swim, m->cpuAddr(0, 0), 1.15, 1500);
    std::vector<cpu::TrafficSource *> sources{&traffic};
    ASSERT_TRUE(m->run(sources, 5000 * tickMs));

    double simIpc = traffic.ipc(m->core(0).stats().elapsedNs());
    double modelIpc =
        cpu::evaluateIpc(swim, cpu::MachineTiming::gs1280()).ipc;
    EXPECT_NEAR(simIpc, modelIpc, 0.45 * modelIpc);
}

TEST(ProfileTraffic, CacheResidentProfileRunsNearCoreBound)
{
    cpu::BenchProfile p;
    p.cpiBase = 0.7;
    p.workingSet = {{0.5, 2.0}};
    auto m = sys::Machine::buildGS1280(2);
    ProfileTraffic traffic(p, m->cpuAddr(0, 0), 1.15, 2000);
    std::vector<cpu::TrafficSource *> sources{&traffic};
    ASSERT_TRUE(m->run(sources, 5000 * tickMs));
    double simIpc = traffic.ipc(m->core(0).stats().elapsedNs());
    EXPECT_GT(simIpc, 0.9); // ~1/cpiBase once the 0.5 MB set caches
}

TEST(ProfileTraffic, StripingDegradesSimulatedSwim)
{
    // The Figure 25 effect, in simulation rather than the model.
    auto runSwim = [](bool striped) {
        sys::Gs1280Options opt;
        opt.striped = striped;
        auto m = sys::Machine::buildGS1280(8, opt);
        ProfileTraffic traffic(specProfile("swim"), m->cpuAddr(0, 0),
                               1.15, 1200);
        std::vector<cpu::TrafficSource *> sources{&traffic};
        EXPECT_TRUE(m->run(sources, 5000 * tickMs));
        return m->core(0).stats().elapsedNs();
    };
    double plain = runSwim(false);
    double striped = runSwim(true);
    EXPECT_GT(striped, 1.05 * plain);
    EXPECT_LT(striped, 1.60 * plain);
}

TEST(NasFT, AllToAllTouchesEveryPeer)
{
    NasFtParams p;
    p.iterations = 1;
    p.fftLines = 16;
    p.exchangeLinesPerPeer = 4;
    NasFT ft(2, 8, p);
    std::set<NodeId> peers;
    int local = 0;
    while (auto op = ft.next()) {
        NodeId n = mem::regionNode(op->addr);
        if (n == 2)
            local += 1;
        else
            peers.insert(n);
    }
    EXPECT_EQ(peers.size(), 7u); // all other ranks
    EXPECT_EQ(local, 16 * 3);
}

TEST(NasFT, TransposeVolumeScalesWithRanks)
{
    auto remoteOps = [](int ranks) {
        NasFtParams p;
        p.iterations = 1;
        p.fftLines = 8;
        p.exchangeLinesPerPeer = 4;
        NasFT ft(0, ranks, p);
        int remote = 0;
        while (auto op = ft.next())
            remote += mem::regionNode(op->addr) != 0;
        return remote;
    };
    EXPECT_EQ(remoteOps(4), 3 * 4);
    EXPECT_EQ(remoteOps(8), 7 * 4);
}

TEST(NasFT, StressesLinksMoreThanSP)
{
    // For the same volume of remote lines, FT's all-to-all crosses
    // more of the fabric than SP's one-hop neighbour pencils, so it
    // accumulates more link-flits.
    auto linkShare = [](bool ft) {
        auto m = sys::Machine::buildGS1280(8);
        std::vector<std::unique_ptr<cpu::TrafficSource>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 8; ++c) {
            if (ft) {
                NasFtParams p;
                p.fftLines = 1024;
                p.exchangeLinesPerPeer = 64; // 7 x 64 remote lines
                gens.push_back(std::make_unique<wl::NasFT>(c, 8, p));
            } else {
                NasSpParams p;
                p.sweepLines = 1024;
                p.exchangeLines = 224; // 2 x 224 remote lines
                gens.push_back(std::make_unique<wl::NasSP>(c, 8, p));
            }
            sources.push_back(gens.back().get());
        }
        EXPECT_TRUE(m->run(sources, 30000 * tickMs));
        double flits = 0;
        for (NodeId n = 0; n < 8; ++n)
            for (int p = 0; p < 4; ++p)
                flits += static_cast<double>(
                    m->network().linkBusyFlits(n, p));
        return flits;
    };
    EXPECT_GT(linkShare(true), 1.3 * linkShare(false));
}

} // namespace

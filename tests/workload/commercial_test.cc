/** @file Commercial profile tests against Figure 28's rows. */

#include <gtest/gtest.h>

#include "workload/commercial.hh"

namespace
{

using namespace gs;
using namespace gs::wl;

TEST(Commercial, SapAdvantageNearPaper)
{
    // Figure 28: SAP SD Transaction Processing (32P) ~ 1.3x.
    double ratio = commercialAdvantage(sapSd(), 32);
    EXPECT_GT(ratio, 1.15);
    EXPECT_LT(ratio, 1.55);
}

TEST(Commercial, DssAdvantageNearPaper)
{
    // Figure 28: Decision Support internal (32P) ~ 1.6x.
    double ratio = commercialAdvantage(decisionSupport(), 32);
    EXPECT_GT(ratio, 1.35);
    EXPECT_LT(ratio, 1.95);
}

TEST(Commercial, DssIsMoreBandwidthHungryThanSap)
{
    auto machine = cpu::MachineTiming::gs1280();
    double sapUtil = cpu::evaluateIpc(sapSd(), machine).memUtilization;
    double dssUtil =
        cpu::evaluateIpc(decisionSupport(), machine).memUtilization;
    EXPECT_GT(dssUtil, sapUtil);
}

TEST(Commercial, OltpIsLatencyBoundNotBandwidthBound)
{
    auto r = cpu::evaluateIpc(sapSd(), cpu::MachineTiming::gs1280());
    EXPECT_FALSE(r.bandwidthBound);
    EXPECT_LT(r.ipc, 1.0); // branchy, serialized
}

TEST(Commercial, AdvantageGrowsWithSharing)
{
    // One copy sees the full GS320 QBB port; 32 copies share it
    // four ways, so the GS1280 edge grows with load.
    EXPECT_GT(commercialAdvantage(decisionSupport(), 32),
              commercialAdvantage(decisionSupport(), 1));
}

} // namespace

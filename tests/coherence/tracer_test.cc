/** @file Protocol tracer tests: assert whole transaction flows. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "coherence/tracer.hh"
#include "net/network.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::coher;

struct TracedFixture
{
    TracedFixture() : topo(2, 2), net(ctx, topo,
                                      net::NetworkParams::gs1280())
    {
        for (NodeId n = 0; n < 4; ++n) {
            nodes.push_back(std::make_unique<CoherentNode>(
                ctx, net, n, map, NodeConfig{}));
            tracer.observe(*nodes.back());
        }
    }

    void
    access(NodeId node, mem::Addr a, bool write)
    {
        bool done = false;
        nodes[std::size_t(node)]->memAccess(a, write,
                                            [&] { done = true; });
        ctx.queue().runUntil(ctx.now() + 100 * tickUs);
        ASSERT_TRUE(done);
    }

    int
    count(mem::Addr line, MsgType type)
    {
        auto flow = tracer.flowOf(line);
        return static_cast<int>(
            std::count(flow.begin(), flow.end(), type));
    }

    SimContext ctx;
    topo::Torus2D topo;
    mem::NodeOwnedMap map;
    net::Network net;
    std::vector<std::unique_ptr<CoherentNode>> nodes;
    ProtocolTracer tracer;
};

TEST(Tracer, ColdReadIsRequestThenExclusiveFill)
{
    TracedFixture f;
    mem::Addr a = mem::regionBase(1);
    f.access(0, a, false);
    auto flow = f.tracer.flowOf(a);
    ASSERT_EQ(flow.size(), 2u);
    EXPECT_EQ(flow[0], MsgType::RdReq);
    EXPECT_EQ(flow[1], MsgType::BlkExclusive);
}

TEST(Tracer, ReadDirtyIsTheThreeHopFlow)
{
    TracedFixture f;
    mem::Addr a = mem::regionBase(2);
    f.access(0, a, true);  // RdModReq -> BlkExclusive
    f.access(1, a, false); // the read-dirty transaction
    f.ctx.queue().runUntil(f.ctx.now() + 100 * tickUs);

    // The second transaction: RdReq at home, FwdRd at owner,
    // BlkDirty at requester, WBShared (dirty data) back at home.
    EXPECT_EQ(f.count(a, MsgType::RdReq), 1);
    EXPECT_EQ(f.count(a, MsgType::FwdRd), 1);
    EXPECT_EQ(f.count(a, MsgType::BlkDirty), 1);
    EXPECT_EQ(f.count(a, MsgType::WBShared), 1);
    EXPECT_EQ(f.count(a, MsgType::FwdAckClean), 0);
}

TEST(Tracer, CleanForwardSendsNoData)
{
    TracedFixture f;
    mem::Addr a = mem::regionBase(2) + 64;
    f.access(0, a, false); // clean exclusive owner
    f.access(1, a, false);
    f.ctx.queue().runUntil(f.ctx.now() + 100 * tickUs);

    // Clean downgrade: FwdAckClean, no WBShared (memory is current).
    EXPECT_EQ(f.count(a, MsgType::FwdRd), 1);
    EXPECT_EQ(f.count(a, MsgType::FwdAckClean), 1);
    EXPECT_EQ(f.count(a, MsgType::WBShared), 0);
}

TEST(Tracer, WriteToSharedFansOutInvals)
{
    TracedFixture f;
    mem::Addr a = mem::regionBase(3);
    f.access(0, a, false);
    f.access(1, a, false);
    f.access(2, a, true);
    f.ctx.queue().runUntil(f.ctx.now() + 100 * tickUs);

    EXPECT_EQ(f.count(a, MsgType::Inval), 2);
    EXPECT_EQ(f.count(a, MsgType::InvalAck), 2);
    EXPECT_GE(f.count(a, MsgType::BlkExclusive), 1);
}

TEST(Tracer, DescribeIsHumanReadable)
{
    TracedFixture f;
    mem::Addr a = mem::regionBase(1) + 128;
    f.access(0, a, false);
    std::string text = f.tracer.describe(a);
    EXPECT_NE(text.find("RdReq@1"), std::string::npos);
    EXPECT_NE(text.find("BlkExclusive@0"), std::string::npos);
}

TEST(Tracer, FlowIsPerLine)
{
    TracedFixture f;
    f.access(0, mem::regionBase(1), false);
    f.access(0, mem::regionBase(2), false);
    EXPECT_EQ(f.tracer.flowOf(mem::regionBase(1)).size(), 2u);
    EXPECT_EQ(f.tracer.flowOf(mem::regionBase(2)).size(), 2u);
    EXPECT_EQ(f.tracer.flowOf(mem::regionBase(3)).size(), 0u);
}

TEST(Tracer, ClearEmptiesTheLog)
{
    TracedFixture f;
    f.access(0, mem::regionBase(1), false);
    EXPECT_GT(f.tracer.size(), 0u);
    f.tracer.clear();
    EXPECT_EQ(f.tracer.size(), 0u);
}

TEST(Tracer, MsgTypeNamesCoverEveryType)
{
    for (int t = 0; t <= static_cast<int>(MsgType::VictimAck); ++t) {
        EXPECT_STRNE(msgTypeName(static_cast<MsgType>(t)), "?");
    }
}

} // namespace

/** @file Randomized protocol stress: many nodes, small caches, hot
 *  line sets, verified with the whole-machine coherence checker and
 *  a functional value model (single-writer serialization). */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "coherence/checker.hh"
#include "coherence/node.hh"
#include "net/network.hh"
#include "sim/random.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::coher;

struct StressParam
{
    int width;
    int height;
    int lines;   ///< distinct hot lines
    int opsPerCpu;
    std::uint64_t seed;
};

class CoherenceStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(CoherenceStress, RandomSharingStaysCoherent)
{
    const StressParam prm = GetParam();

    SimContext ctx(prm.seed);
    topo::Torus2D topo(prm.width, prm.height);
    mem::NodeOwnedMap map;
    net::Network net(ctx, topo, net::NetworkParams::gs1280());

    NodeConfig cfg;
    cfg.l2.sizeBytes = 16 * mem::lineBytes; // tiny: force victims
    cfg.l2.ways = 2;
    cfg.victimBuffers = 4;
    cfg.mafEntries = 4;

    const int n = topo.numNodes();
    std::vector<std::unique_ptr<CoherentNode>> nodes;
    for (NodeId id = 0; id < n; ++id)
        nodes.push_back(
            std::make_unique<CoherentNode>(ctx, net, id, map, cfg));

    // Hot lines spread over every home.
    std::vector<mem::Addr> lines;
    for (int l = 0; l < prm.lines; ++l) {
        auto home = static_cast<NodeId>(l % n);
        lines.push_back(mem::regionBase(home) +
                        static_cast<std::uint64_t>(l / n) * 1024);
    }

    // Each CPU issues a random dependent stream of reads/writes.
    Rng rng(prm.seed * 7919 + 13);
    int completed = 0;
    int issued = 0;
    std::function<void(NodeId, int)> issueNext = [&](NodeId id,
                                                     int left) {
        if (left == 0)
            return;
        mem::Addr a = lines[rng.below(lines.size())];
        bool write = rng.chance(0.4);
        issued += 1;
        nodes[std::size_t(id)]->memAccess(a, write,
                                          [&, id, left] {
            completed += 1;
            issueNext(id, left - 1);
        });
    };
    for (NodeId id = 0; id < n; ++id)
        issueNext(id, prm.opsPerCpu);

    ctx.queue().runUntil(ctx.now() + 500 * tickMs);
    ASSERT_EQ(completed, issued) << "stress run did not drain";
    ASSERT_EQ(completed, n * prm.opsPerCpu);

    std::vector<CoherentNode *> all;
    for (auto &node : nodes)
        all.push_back(node.get());
    auto check = verifyCoherence(all);
    EXPECT_TRUE(check.ok) << check.firstViolation;
    EXPECT_EQ(net.inFlight(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CoherenceStress,
    ::testing::Values(StressParam{2, 2, 4, 150, 1},
                      StressParam{2, 2, 1, 200, 2},  // single hot line
                      StressParam{4, 2, 8, 120, 3},
                      StressParam{4, 4, 16, 80, 4},
                      StressParam{4, 4, 3, 100, 5},
                      StressParam{8, 4, 32, 40, 6},
                      StressParam{2, 1, 2, 300, 7},
                      StressParam{4, 4, 64, 60, 8}));

/**
 * Functional single-writer check: a chain of counter increments on
 * one line by alternating writers must serialize; we model the value
 * out-of-band and verify every increment observed the previous one.
 */
TEST(CoherenceStress, IncrementChainSerializes)
{
    SimContext ctx(42);
    topo::Torus2D topo(2, 2);
    mem::NodeOwnedMap map;
    net::Network net(ctx, topo, net::NetworkParams::gs1280());

    NodeConfig cfg;
    std::vector<std::unique_ptr<CoherentNode>> nodes;
    for (NodeId id = 0; id < 4; ++id)
        nodes.push_back(
            std::make_unique<CoherentNode>(ctx, net, id, map, cfg));

    const mem::Addr line = mem::regionBase(3);
    int value = 0;
    int rounds = 0;
    constexpr int total = 64;

    std::function<void()> step = [&] {
        if (rounds == total)
            return;
        NodeId who = static_cast<NodeId>(rounds % 4);
        int expected = rounds;
        rounds += 1;
        nodes[std::size_t(who)]->memAccess(line, true,
                                           [&, expected] {
            // The write completes while this node owns the line
            // exclusively; the increment must see the prior value.
            EXPECT_EQ(value, expected);
            value += 1;
            step();
        });
    };
    step();
    ctx.queue().runUntil(ctx.now() + 100 * tickMs);
    EXPECT_EQ(value, total);

    std::vector<CoherentNode *> all;
    for (auto &node : nodes)
        all.push_back(node.get());
    EXPECT_TRUE(verifyCoherence(all).ok);
}

} // namespace

/** @file Directed coherence-protocol scenarios: fills, sharing,
 *  invalidation, forwarding (read-dirty), victims and races. */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/checker.hh"
#include "coherence/node.hh"
#include "net/network.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::coher;
using mem::LineState;

/** A 4-node GS1280-like coherent system. */
struct CoherFixture
{
    explicit CoherFixture(int w = 2, int h = 2, NodeConfig cfg = {})
        : topo(w, h), net(ctx, topo, net::NetworkParams::gs1280())
    {
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            nodes.push_back(std::make_unique<CoherentNode>(
                ctx, net, n, map, cfg));
        }
    }

    /** Blocking access helper: run until the access completes. */
    void
    access(NodeId node, mem::Addr a, bool write)
    {
        bool done = false;
        nodes[std::size_t(node)]->memAccess(a, write,
                                            [&] { done = true; });
        ctx.queue().runUntil(ctx.now() + 50 * tickUs);
        ASSERT_TRUE(done) << "access did not complete";
    }

    void
    drain()
    {
        ctx.queue().runUntil(ctx.now() + 100 * tickUs);
    }

    std::vector<CoherentNode *>
    all()
    {
        std::vector<CoherentNode *> v;
        for (auto &n : nodes)
            v.push_back(n.get());
        return v;
    }

    SimContext ctx;
    topo::Torus2D topo;
    mem::NodeOwnedMap map;
    net::Network net;
    std::vector<std::unique_ptr<CoherentNode>> nodes;
};

mem::Addr
lineAt(NodeId home, std::uint64_t k)
{
    return mem::regionBase(home) + k * mem::lineBytes;
}

TEST(Protocol, ColdReadFillsExclusive)
{
    CoherFixture f;
    mem::Addr a = lineAt(1, 0);
    f.access(0, a, false);
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Exclusive);
    EXPECT_EQ(f.nodes[1]->dirState(a), DirState::Exclusive);
    EXPECT_EQ(f.nodes[1]->dirOwner(a), 0);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, ColdWriteFillsModified)
{
    CoherFixture f;
    mem::Addr a = lineAt(1, 1);
    f.access(0, a, true);
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Modified);
    EXPECT_EQ(f.nodes[1]->dirState(a), DirState::Exclusive);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, LocalAccessStaysLocal)
{
    CoherFixture f;
    mem::Addr a = lineAt(0, 2);
    f.access(0, a, false);
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Exclusive);
    // No network hop was needed (loopback path).
    EXPECT_EQ(f.net.stats().hopsPerPacket.max(), 0.0);
}

TEST(Protocol, SecondReaderTriggersReadDirtyForward)
{
    CoherFixture f;
    mem::Addr a = lineAt(2, 3);
    f.access(0, a, true); // node 0 owns dirty
    f.access(1, a, false); // node 1 reads: 3-hop forward
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Shared);
    EXPECT_EQ(f.nodes[1]->l2().state(a), LineState::Shared);
    EXPECT_EQ(f.nodes[2]->dirState(a), DirState::Shared);
    EXPECT_EQ(f.nodes[0]->stats().forwardsServed, 1u);
    std::uint64_t sharers = f.nodes[2]->dirSharers(a);
    EXPECT_EQ(sharers, 0b11u);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, ReadOfCleanExclusiveDowngrades)
{
    CoherFixture f;
    mem::Addr a = lineAt(2, 4);
    f.access(0, a, false); // node 0 owns clean (E)
    f.access(1, a, false);
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Shared);
    EXPECT_EQ(f.nodes[1]->l2().state(a), LineState::Shared);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, WriteInvalidatesAllSharers)
{
    CoherFixture f;
    mem::Addr a = lineAt(3, 5);
    f.access(0, a, false);
    f.access(1, a, false);
    f.access(2, a, false); // three sharers
    f.access(1, a, true); // node 1 upgrades
    f.drain();
    EXPECT_EQ(f.nodes[1]->l2().state(a), LineState::Modified);
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Invalid);
    EXPECT_EQ(f.nodes[2]->l2().state(a), LineState::Invalid);
    EXPECT_EQ(f.nodes[3]->dirState(a), DirState::Exclusive);
    EXPECT_EQ(f.nodes[3]->dirOwner(a), 1);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, WriteToOwnedLineForwardsOwnership)
{
    CoherFixture f;
    mem::Addr a = lineAt(3, 6);
    f.access(0, a, true); // node 0 dirty owner
    f.access(2, a, true); // node 2 takes ownership via FwdRdMod
    f.drain();
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Invalid);
    EXPECT_EQ(f.nodes[2]->l2().state(a), LineState::Modified);
    EXPECT_EQ(f.nodes[3]->dirOwner(a), 2);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, PingPongOwnership)
{
    CoherFixture f;
    mem::Addr a = lineAt(1, 7);
    for (int round = 0; round < 6; ++round) {
        NodeId writer = round % 2 == 0 ? 0 : 2;
        f.access(writer, a, true);
    }
    f.drain();
    // The last writer (round 5) was node 2.
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Invalid);
    EXPECT_EQ(f.nodes[2]->l2().state(a), LineState::Modified);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, EvictionWritesBackAndInvalidatesDirectory)
{
    // A tiny cache forces evictions quickly.
    NodeConfig cfg;
    cfg.l2.sizeBytes = 4 * mem::lineBytes;
    cfg.l2.ways = 1;
    CoherFixture f(2, 2, cfg);

    // Write lines that map to the same set: 4-set direct-mapped, so
    // stride of 4 lines conflicts.
    mem::Addr a = lineAt(1, 0);
    mem::Addr b = lineAt(1, 4);
    f.access(0, a, true);
    f.access(0, b, true); // evicts a (dirty): VictimWB
    f.drain();
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Invalid);
    EXPECT_EQ(f.nodes[1]->dirState(a), DirState::Invalid);
    EXPECT_EQ(f.nodes[1]->dirState(b), DirState::Exclusive);
    EXPECT_EQ(f.nodes[0]->victimBufferFill(), 0); // acked and freed
    EXPECT_GE(f.nodes[0]->stats().victimsSent, 1u);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, CleanEvictionNotifiesDirectory)
{
    NodeConfig cfg;
    cfg.l2.sizeBytes = 4 * mem::lineBytes;
    cfg.l2.ways = 1;
    CoherFixture f(2, 2, cfg);

    mem::Addr a = lineAt(1, 0);
    mem::Addr b = lineAt(1, 4);
    f.access(0, a, false); // clean exclusive
    f.access(0, b, false); // evicts a: VictimClean
    f.drain();
    EXPECT_EQ(f.nodes[1]->dirState(a), DirState::Invalid);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, ReacquireAfterEviction)
{
    NodeConfig cfg;
    cfg.l2.sizeBytes = 4 * mem::lineBytes;
    cfg.l2.ways = 1;
    CoherFixture f(2, 2, cfg);

    mem::Addr a = lineAt(1, 0);
    mem::Addr b = lineAt(1, 4);
    f.access(0, a, true);
    f.access(0, b, true); // evict a
    f.access(0, a, true); // re-acquire while victim may be in flight
    f.drain();
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Modified);
    EXPECT_EQ(f.nodes[1]->dirOwner(a), 0);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, ReadMergesIntoOutstandingMiss)
{
    CoherFixture f;
    mem::Addr a = lineAt(1, 9);
    int done = 0;
    f.nodes[0]->memAccess(a, false, [&] { done += 1; });
    f.nodes[0]->memAccess(a + 8, false, [&] { done += 1; });
    f.nodes[0]->memAccess(a + 16, false, [&] { done += 1; });
    f.drain();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(f.nodes[0]->stats().mafMerges, 2u);
    // Only one request reached the home.
    EXPECT_EQ(f.nodes[1]->stats().homeRequests, 1u);
}

TEST(Protocol, WriteAfterReadMissRetries)
{
    CoherFixture f;
    mem::Addr a = lineAt(1, 10);
    int done = 0;
    f.nodes[0]->memAccess(a, false, [&] { done += 1; });
    f.nodes[0]->memAccess(a, true, [&] { done += 1; });
    f.drain();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(f.nodes[0]->l2().state(a), LineState::Modified);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, ConcurrentWritersSerializeAtHome)
{
    CoherFixture f;
    mem::Addr a = lineAt(3, 11);
    int done = 0;
    for (NodeId n : {0, 1, 2})
        f.nodes[std::size_t(n)]->memAccess(a, true,
                                           [&] { done += 1; });
    f.drain();
    EXPECT_EQ(done, 3);
    // Exactly one final owner.
    int owners = 0;
    for (NodeId n : {0, 1, 2})
        owners += f.nodes[std::size_t(n)]->l2().state(a) ==
                  LineState::Modified;
    EXPECT_EQ(owners, 1);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, MafLimitQueuesCoreAccesses)
{
    NodeConfig cfg;
    cfg.mafEntries = 2;
    CoherFixture f(2, 2, cfg);
    int done = 0;
    for (int i = 0; i < 8; ++i)
        f.nodes[0]->memAccess(lineAt(1, 20 + i), false,
                              [&] { done += 1; });
    EXPECT_LE(f.nodes[0]->outstandingMisses(), 2);
    f.drain();
    EXPECT_EQ(done, 8);
}

TEST(Protocol, SharerCountGrowsAndCollapses)
{
    CoherFixture f;
    mem::Addr a = lineAt(0, 12);
    for (NodeId n : {1, 2, 3})
        f.access(n, a, false);
    EXPECT_EQ(f.nodes[0]->dirState(a), DirState::Shared);
    f.access(0, a, true);
    f.drain();
    EXPECT_EQ(f.nodes[0]->dirState(a), DirState::Exclusive);
    EXPECT_EQ(f.nodes[0]->dirOwner(a), 0);
    for (NodeId n : {1, 2, 3})
        EXPECT_EQ(f.nodes[std::size_t(n)]->l2().state(a),
                  LineState::Invalid);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, StatsCountTheStory)
{
    CoherFixture f;
    mem::Addr a = lineAt(1, 13);
    f.access(0, a, false);
    f.access(0, a, false); // L2 hit
    const auto &st = f.nodes[0]->stats();
    EXPECT_EQ(st.accesses, 2u);
    EXPECT_EQ(st.l2Hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_GT(st.missLatencyNs.mean(), 0.0);
}

TEST(Protocol, CoarseSharerVectorInvalidatesWholeGroups)
{
    // Sharer groups of 2 on a 4x2 machine: nodes {2k, 2k+1} share a
    // directory bit. A write must still invalidate every cached
    // copy — over-invalidation of group members is allowed, stale
    // copies are not.
    NodeConfig cfg;
    cfg.sharerGroupSize = 2;
    CoherFixture f(4, 2, cfg);
    mem::Addr a = lineAt(0, 14);
    EXPECT_EQ(f.nodes[0]->sharerBitOf(2), f.nodes[0]->sharerBitOf(3));
    EXPECT_NE(f.nodes[0]->sharerBitOf(2), f.nodes[0]->sharerBitOf(4));

    for (NodeId n : {2, 3, 5})
        f.access(n, a, false);
    EXPECT_EQ(f.nodes[0]->dirState(a), DirState::Shared);
    f.access(7, a, true);
    f.drain();
    EXPECT_EQ(f.nodes[0]->dirState(a), DirState::Exclusive);
    EXPECT_EQ(f.nodes[0]->dirOwner(a), 7);
    for (NodeId n : {2, 3, 5})
        EXPECT_EQ(f.nodes[std::size_t(n)]->l2().state(a),
                  LineState::Invalid);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Protocol, CoarseWriterGroupmateStillInvalidated)
{
    // The writer shares a group bit with a current sharer: skipping
    // the writer at emission must not skip its groupmate.
    NodeConfig cfg;
    cfg.sharerGroupSize = 2;
    CoherFixture f(4, 2, cfg);
    mem::Addr a = lineAt(0, 15);
    for (NodeId n : {2, 3})
        f.access(n, a, false);
    f.access(2, a, true); // node 2 upgrades; groupmate 3 must drop
    f.drain();
    EXPECT_EQ(f.nodes[0]->dirOwner(a), 2);
    EXPECT_EQ(f.nodes[2]->l2().state(a), LineState::Modified);
    EXPECT_EQ(f.nodes[3]->l2().state(a), LineState::Invalid);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

} // namespace

/** @file Directed races: the victim-vs-forward interactions that
 *  make forwarding directories hard. Includes a regression test for
 *  the forward-behind-MAF deadlock (a forward arriving at a node
 *  that evicted a line and is re-requesting it must be served from
 *  the victim buffer, not deferred). */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/checker.hh"
#include "coherence/node.hh"
#include "net/network.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::coher;
using mem::LineState;

struct RaceFixture
{
    explicit RaceFixture(NodeConfig cfg = {})
        : topo(2, 2), net(ctx, topo, net::NetworkParams::gs1280())
    {
        for (NodeId n = 0; n < 4; ++n)
            nodes.push_back(std::make_unique<CoherentNode>(
                ctx, net, n, map, cfg));
    }

    void
    run(Tick t = 100 * tickUs)
    {
        ctx.queue().runUntil(ctx.now() + t);
    }

    std::vector<CoherentNode *>
    all()
    {
        std::vector<CoherentNode *> v;
        for (auto &n : nodes)
            v.push_back(n.get());
        return v;
    }

    SimContext ctx;
    topo::Torus2D topo;
    mem::NodeOwnedMap map;
    net::Network net;
    std::vector<std::unique_ptr<CoherentNode>> nodes;
};

NodeConfig
tinyCache()
{
    NodeConfig cfg;
    cfg.l2.sizeBytes = 4 * mem::lineBytes;
    cfg.l2.ways = 1;
    return cfg;
}

TEST(Race, ForwardServedFromVictimBufferDuringReacquire)
{
    // Node 0 dirties line A, evicts it (VictimWB in flight), and
    // immediately re-requests it. Meanwhile node 2's write to A is
    // processed first at the home, which forwards to node 0 — whose
    // copy now lives only in its victim buffer. The forward must be
    // served from the VB; node 0's own request completes afterward.
    RaceFixture f(tinyCache());
    mem::Addr a = mem::regionBase(1);             // home: node 1
    mem::Addr conflict = a + 4 * mem::lineBytes;  // same set

    int done = 0;
    f.nodes[0]->memAccess(a, true, [&] { done += 1; });
    f.run();
    f.nodes[0]->memAccess(conflict, true, [&] { done += 1; }); // evict a
    // Do NOT drain: fire the re-request and the third-party write
    // while the victim is still in flight.
    f.nodes[2]->memAccess(a, true, [&] { done += 1; });
    f.nodes[0]->memAccess(a, false, [&] { done += 1; });
    f.run();

    EXPECT_EQ(done, 4);
    auto check = verifyCoherence(f.all());
    EXPECT_TRUE(check.ok) << check.firstViolation;
    // Exactly one of node 0 / node 2 can own A; both may have
    // downgraded to Shared depending on processing order.
    int owners = 0;
    for (NodeId n : {0, 2})
        owners += f.nodes[std::size_t(n)]->l2().state(a) ==
                      LineState::Modified ||
                  f.nodes[std::size_t(n)]->l2().state(a) ==
                      LineState::Exclusive;
    EXPECT_LE(owners, 1);
}

TEST(Race, VictimAndReadCross)
{
    // Dirty eviction crossing with a remote read: the reader must
    // still receive the dirty data (from the VB) and memory must be
    // updated.
    RaceFixture f(tinyCache());
    mem::Addr a = mem::regionBase(1);
    mem::Addr conflict = a + 4 * mem::lineBytes;

    int done = 0;
    f.nodes[0]->memAccess(a, true, [&] { done += 1; });
    f.run();
    f.nodes[0]->memAccess(conflict, false, [&] { done += 1; });
    f.nodes[3]->memAccess(a, false, [&] { done += 1; });
    f.run();

    EXPECT_EQ(done, 3);
    EXPECT_TRUE(f.nodes[3]->l2().contains(a));
    auto check = verifyCoherence(f.all());
    EXPECT_TRUE(check.ok) << check.firstViolation;
}

TEST(Race, ThreeWayWriteStorm)
{
    // Three concurrent writers + tiny caches + victims: the home
    // must serialize without losing anyone.
    RaceFixture f(tinyCache());
    mem::Addr a = mem::regionBase(3) + 8 * mem::lineBytes;
    int done = 0;
    for (int round = 0; round < 5; ++round)
        for (NodeId n : {0, 1, 2})
            f.nodes[std::size_t(n)]->memAccess(a, true,
                                               [&] { done += 1; });
    f.run(500 * tickUs);
    EXPECT_EQ(done, 15);
    EXPECT_TRUE(verifyCoherence(f.all()).ok);
}

TEST(Race, ReadersAndWriterInterleaved)
{
    RaceFixture f;
    mem::Addr a = mem::regionBase(2);
    int done = 0;
    // Readers pile in while a writer upgrades repeatedly.
    for (int round = 0; round < 4; ++round) {
        f.nodes[0]->memAccess(a, false, [&] { done += 1; });
        f.nodes[1]->memAccess(a, true, [&] { done += 1; });
        f.nodes[3]->memAccess(a, false, [&] { done += 1; });
    }
    f.run(500 * tickUs);
    EXPECT_EQ(done, 12);
    auto check = verifyCoherence(f.all());
    EXPECT_TRUE(check.ok) << check.firstViolation;
}

TEST(Race, UpgradeWhileInvalidatedUnderneath)
{
    // Node 0 holds A Shared; node 1 writes (invalidating node 0)
    // while node 0 simultaneously upgrades. Both writes complete and
    // the final owner is well-defined.
    RaceFixture f;
    mem::Addr a = mem::regionBase(3);
    int done = 0;
    f.nodes[0]->memAccess(a, false, [&] { done += 1; });
    f.nodes[1]->memAccess(a, false, [&] { done += 1; });
    f.run();

    f.nodes[0]->memAccess(a, true, [&] { done += 1; });
    f.nodes[1]->memAccess(a, true, [&] { done += 1; });
    f.run();

    EXPECT_EQ(done, 4);
    auto check = verifyCoherence(f.all());
    EXPECT_TRUE(check.ok) << check.firstViolation;
    int owners = 0;
    for (NodeId n : {0, 1})
        owners += f.nodes[std::size_t(n)]->l2().state(a) ==
                  LineState::Modified;
    EXPECT_EQ(owners, 1);
}

TEST(Race, VictimBufferHighWaterIsBounded)
{
    // Streaming through a tiny cache produces a victim per fill; the
    // high-water mark must stay modest because VictimAcks drain.
    RaceFixture f(tinyCache());
    int done = 0;
    const int lines = 64;
    for (int i = 0; i < lines; ++i)
        f.nodes[0]->memAccess(mem::regionBase(1) +
                                  static_cast<mem::Addr>(i) *
                                      mem::lineBytes,
                              true, [&] { done += 1; });
    f.run(500 * tickUs);
    EXPECT_EQ(done, lines);
    EXPECT_EQ(f.nodes[0]->victimBufferFill(), 0);
    EXPECT_LE(f.nodes[0]->stats().vbHighWater, 16u)
        << "model needed more victim buffers than the 21364 has";
}

TEST(Race, IoPacketsBypassTheProtocol)
{
    RaceFixture f;
    net::Packet pkt;
    pkt.cls = net::MsgClass::IO;
    pkt.src = 0;
    pkt.dst = 2;
    pkt.flits = net::dataFlits;
    f.net.inject(pkt);
    f.run(tickMs);
    EXPECT_EQ(f.nodes[2]->ioPacketsReceived(), 1u);
    EXPECT_EQ(f.nodes[2]->stats().homeRequests, 0u);
}

} // namespace

/** @file Trace replay tests: parsing, round-trip, replay. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "coherence/node.hh"
#include "cpu/core.hh"
#include "cpu/trace.hh"
#include "net/network.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::cpu;

TEST(Trace, ParsesTheFormat)
{
    std::istringstream is(R"(# a comment
R 0x1000
T 25.5
W 0x2040

D 0x1000
)");
    auto trace = TraceSource::parse(is);
    ASSERT_EQ(trace.size(), 3u);

    auto r = trace.next();
    EXPECT_EQ(r->addr, 0x1000u);
    EXPECT_FALSE(r->write);
    EXPECT_DOUBLE_EQ(r->thinkNs, 0.0);

    auto w = trace.next();
    EXPECT_EQ(w->addr, 0x2040u);
    EXPECT_TRUE(w->write);
    EXPECT_DOUBLE_EQ(w->thinkNs, 25.5); // think folds into next op

    auto d = trace.next();
    EXPECT_TRUE(d->dependent);
    EXPECT_FALSE(trace.next().has_value());
}

TEST(Trace, RoundTripsThroughDump)
{
    std::vector<MemOp> ops;
    for (int i = 0; i < 20; ++i) {
        MemOp op;
        op.addr = static_cast<mem::Addr>(i) * 4096 + 64;
        op.write = i % 3 == 0;
        op.dependent = i % 5 == 0 && !op.write;
        op.thinkNs = i % 4 == 0 ? 12.0 : 0.0;
        ops.push_back(op);
    }
    TraceSource original(ops);
    std::ostringstream os;
    original.dump(os);
    std::istringstream is(os.str());
    auto parsed = TraceSource::parse(is);

    ASSERT_EQ(parsed.size(), original.size());
    original.rewind();
    while (auto a = original.next()) {
        auto b = parsed.next();
        ASSERT_TRUE(b);
        EXPECT_EQ(a->addr, b->addr);
        EXPECT_EQ(a->write, b->write);
        EXPECT_EQ(a->dependent, b->dependent);
        EXPECT_DOUBLE_EQ(a->thinkNs, b->thinkNs);
    }
}

TEST(Trace, RewindReplays)
{
    TraceSource t({MemOp{0x40, false, 0, false},
                   MemOp{0x80, true, 0, false}});
    EXPECT_TRUE(t.next());
    EXPECT_TRUE(t.next());
    EXPECT_FALSE(t.next());
    t.rewind();
    EXPECT_EQ(t.next()->addr, 0x40u);
}

TEST(Trace, DrivesTheTimingCore)
{
    SimContext ctx;
    topo::Torus2D topo(2, 1);
    mem::NodeOwnedMap map;
    net::Network net(ctx, topo, net::NetworkParams::gs1280());
    coher::CoherentNode node(ctx, net, 0, map, coher::NodeConfig{});
    coher::CoherentNode other(ctx, net, 1, map, coher::NodeConfig{});
    TimingCore core(ctx, node, CoreParams{});

    std::istringstream is(R"(
R 0x0
T 50
W 0x1000000000
D 0x40
)");
    auto trace = TraceSource::parse(is);
    bool done = false;
    core.run(trace, [&] { done = true; });
    ctx.queue().runUntil(ctx.now() + 100 * tickMs);

    EXPECT_TRUE(done);
    EXPECT_EQ(core.stats().opsDone, 3u);
    // The remote write landed on node 1's region: its directory now
    // records node 0 as the exclusive owner.
    EXPECT_EQ(other.dirState(0x1000000000ull),
              coher::DirState::Exclusive);
    EXPECT_EQ(other.dirOwner(0x1000000000ull), 0);
    EXPECT_EQ(node.l2().state(0x1000000000ull),
              mem::LineState::Modified);
}

TEST(TraceDeath, BadTagIsFatal)
{
    std::istringstream is("X 0x10\n");
    EXPECT_DEATH(
        { TraceSource::parse(is); }, "unknown tag");
}

TEST(TraceDeath, MissingAddressIsFatal)
{
    std::istringstream is("R\n");
    EXPECT_DEATH(
        { TraceSource::parse(is); }, "missing address");
}

} // namespace

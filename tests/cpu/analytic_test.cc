/** @file Analytic CPI model tests. */

#include <gtest/gtest.h>

#include "cpu/analytic_core.hh"

namespace
{

using namespace gs::cpu;

BenchProfile
cacheResident()
{
    BenchProfile p;
    p.name = "small";
    p.cpiBase = 0.7;
    p.mlp = 2.0;
    p.workingSet = {{0.5, 2.0}};
    return p;
}

BenchProfile
streaming()
{
    BenchProfile p;
    p.name = "swim-like";
    p.cpiBase = 0.6;
    p.mlp = 7.0;
    p.workingSet = {{0.5, 1.0}, {190.0, 26.0}};
    return p;
}

BenchProfile
midSized(double ws_mb)
{
    BenchProfile p;
    p.name = "facerec-like";
    p.cpiBase = 0.6;
    p.mlp = 4.0;
    p.workingSet = {{1.0, 2.0}, {ws_mb, 5.0}};
    return p;
}

TEST(AnalyticCore, CacheResidentIpcNearCoreBound)
{
    auto r = evaluateIpc(cacheResident(), MachineTiming::gs1280());
    EXPECT_EQ(r.memMpki, 0.0);
    EXPECT_GT(r.ipc, 1.0); // ~1/cpiBase less a little L2 time
    EXPECT_LT(r.memUtilization, 0.01);
}

TEST(AnalyticCore, StreamingFavorsGs1280)
{
    auto p = streaming();
    auto gs1280 = evaluateIpc(p, MachineTiming::gs1280());
    auto es45 = evaluateIpc(p, MachineTiming::es45());
    auto gs320 = evaluateIpc(p, MachineTiming::gs320());
    // The paper: swim shows 2.3x vs ES45 and 4x vs GS320.
    EXPECT_GT(gs1280.ipc / es45.ipc, 1.8);
    EXPECT_LT(gs1280.ipc / es45.ipc, 3.2);
    EXPECT_GT(gs1280.ipc / gs320.ipc, 3.0);
    EXPECT_LT(gs1280.ipc / gs320.ipc, 5.5);
}

TEST(AnalyticCore, MidWorkingSetFavorsBigCache)
{
    // The facerec story: fits 16 MB, not 1.75 MB.
    auto p = midSized(8.0);
    auto gs1280 = evaluateIpc(p, MachineTiming::gs1280());
    auto gs320 = evaluateIpc(p, MachineTiming::gs320());
    auto es45 = evaluateIpc(p, MachineTiming::es45());
    EXPECT_GT(gs320.ipc, gs1280.ipc);
    EXPECT_GT(es45.ipc, gs1280.ipc);
    EXPECT_EQ(gs320.memMpki, 0.0);
    EXPECT_GT(gs1280.memMpki, 0.0);
}

TEST(AnalyticCore, HugeWorkingSetSpillsEverywhere)
{
    auto p = midSized(64.0);
    auto gs1280 = evaluateIpc(p, MachineTiming::gs1280());
    auto gs320 = evaluateIpc(p, MachineTiming::gs320());
    EXPECT_GT(gs1280.memMpki, 0.0);
    EXPECT_GT(gs320.memMpki, 0.0);
    EXPECT_GT(gs1280.ipc, gs320.ipc); // latency/bandwidth advantage
}

TEST(AnalyticCore, BandwidthBoundDetection)
{
    auto p = streaming();
    auto slow = MachineTiming::gs320();
    auto r = evaluateIpc(p, slow);
    EXPECT_TRUE(r.bandwidthBound);
    // Core time still dilutes utilization below 1.0.
    EXPECT_GT(r.memUtilization, 0.6);
    EXPECT_LE(r.memUtilization, 1.0);
}

TEST(AnalyticCore, UtilizationSeriesFollowsPhases)
{
    BenchProfile p = streaming();
    p.phases = {0.5, 1.5};
    auto series = utilizationSeries(p, MachineTiming::gs1280(), 10);
    ASSERT_EQ(series.size(), 10u);
    // First half lower than second half.
    EXPECT_LT(series[1], series[8]);
    for (double u : series) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(AnalyticCore, SwimUtilizationNearPaper)
{
    // Paper: swim leads with ~53% memory utilization on the GS1280.
    auto r = evaluateIpc(streaming(), MachineTiming::gs1280());
    EXPECT_GT(r.memUtilization, 0.35);
    EXPECT_LT(r.memUtilization, 0.70);
}

TEST(AnalyticCore, FasterClockHelpsCacheResidentOnly)
{
    auto p = cacheResident();
    auto m = MachineTiming::gs1280();
    auto base = evaluateIpc(p, m);
    m.clockGHz *= 1.2;
    auto faster = evaluateIpc(p, m);
    // IPC barely moves for core-bound code (time per instr shrinks).
    EXPECT_NEAR(faster.ipc, base.ipc, 0.08 * base.ipc);
    EXPECT_LT(faster.nsPerInstr, base.nsPerInstr);
}

} // namespace
